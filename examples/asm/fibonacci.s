; Iterative Fibonacci: x3 = fib(40), stored to the result slot.
        li   x1, 0          ; fib(i)
        li   x2, 1          ; fib(i+1)
        li   x4, 40         ; iterations
loop:
        add  x3, x1, x2
        mv   x1, x2
        mv   x2, x3
        addi x4, x4, -1
        bne  x4, x0, loop

        li   x10, 0x600000
        st   x3, 0(x10)
        halt
