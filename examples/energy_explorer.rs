//! Explore the register-file design space with the analytic model: how do
//! entries, width, and ports trade off against energy, area, and access
//! time — and where does the paper's chosen geometry sit?
//!
//! ```text
//! cargo run --release -p carf-bench --example energy_explorer
//! ```

use carf_bench::carf_geometries;
use carf_core::CarfParams;
use carf_energy::{RegFileGeometry, TechModel, PAPER_BASELINE, PAPER_UNLIMITED};

fn main() {
    let model = TechModel::default_model();
    let unlimited_energy = model.read_energy(&PAPER_UNLIMITED);
    let unlimited_area = model.area(&PAPER_UNLIMITED);

    println!("register-file design space (relative to the unlimited 160x64b 16R/8W file)\n");
    println!("{:>28} {:>9} {:>9} {:>9}", "geometry", "energy", "area", "time");
    let show = |name: String, g: &RegFileGeometry| {
        println!(
            "{name:>28} {:>8.1}% {:>8.1}% {:>8.1}%",
            model.read_energy(g) / unlimited_energy * 100.0,
            model.area(g) / unlimited_area * 100.0,
            model.access_time(g) / model.access_time(&PAPER_UNLIMITED) * 100.0,
        );
    };

    show("unlimited 160x64 16R/8W".into(), &PAPER_UNLIMITED);
    show("baseline 112x64 8R/6W".into(), &PAPER_BASELINE);

    // Entry-count scaling at fixed width/ports.
    for entries in [32usize, 64, 96, 128] {
        show(format!("{entries}x64 8R/6W"), &RegFileGeometry::new(entries, 64, 8, 6));
    }
    // Port scaling at the baseline's size.
    for (r, w) in [(4u32, 3u32), (8, 6), (16, 8), (24, 12)] {
        show(format!("112x64 {r}R/{w}W"), &RegFileGeometry::new(112, 64, r, w));
    }

    // The content-aware decomposition across the d+n sweep.
    println!("\ncontent-aware sub-files (sum of three arrays):");
    for dn in [8u32, 16, 20, 24, 32] {
        let params = CarfParams::with_dn(dn);
        let [simple, short, long] = carf_geometries(&params);
        let area: f64 = [simple, short, long].iter().map(|g| model.area(g)).sum();
        let slowest =
            [simple, short, long].iter().map(|g| model.access_time(g)).fold(0.0f64, f64::max);
        println!(
            "  d+n={dn:<2}  area {:>5.1}% of baseline, slowest sub-file {:>5.1}% of baseline time",
            area / model.area(&PAPER_BASELINE) * 100.0,
            slowest / model.access_time(&PAPER_BASELINE) * 100.0,
        );
    }
    println!("\nThe paper picks d+n = 20: close to the area minimum while keeping the");
    println!("IPC plateau (see fig5_ipc_sweep) and ~15% access-time headroom.");
}
