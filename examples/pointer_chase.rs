//! Domain scenario: analyze the partial value locality of a
//! pointer-chasing workload — the paper's motivating case, where heap
//! pointers share their high-order bits.
//!
//! ```text
//! cargo run --release -p carf-bench --example pointer_chase
//! ```

use carf_core::analysis::GROUP_LABELS;
use carf_core::CarfParams;
use carf_sim::{SimConfig, AnySimulator};
use carf_workloads::{int_suite, SizeClass};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = int_suite()
        .into_iter()
        .find(|w| w.name == "pointer_chase")
        .expect("pointer_chase is registered");
    let program = workload.build(workload.size(SizeClass::Quick));

    // Oracle pass: what do the live integer values look like?
    let mut config = SimConfig::paper_baseline();
    config.oracle_period = Some(8);
    let mut sim = AnySimulator::new(config, &program);
    sim.run(500_000)?;
    let oracle = &sim.stats().oracle;

    println!("live-value demographics of `pointer_chase` ({} snapshots):\n", oracle.snapshots);
    println!("{:>12} {:>10} {:>10} {:>10}", "group", "exact", "d=8", "d=16");
    let (v, d8, d16) =
        (oracle.values.fractions(), oracle.sim_d8.fractions(), oracle.sim_d16.fractions());
    for (i, label) in GROUP_LABELS.iter().enumerate() {
        println!(
            "{label:>12} {:>9.1}% {:>9.1}% {:>9.1}%",
            v[i] * 100.0,
            d8[i] * 100.0,
            d16[i] * 100.0
        );
    }
    println!("\nExact values are spread out, but (64-d)-similarity collapses the heap");
    println!("pointers into a handful of groups — the locality the Short file captures.");

    // Content-aware pass: how does the register file classify the traffic?
    let mut sim = AnySimulator::new(SimConfig::paper_carf(CarfParams::paper_default()), &program);
    sim.run(500_000)?;
    let writes = sim.stats().int_rf.writes;
    println!(
        "\ncontent-aware classification of writes: {} simple, {} short, {} long",
        writes.simple, writes.short, writes.long
    );
    println!("short-file mean occupancy: {:.1} of 8", sim.stats().short_mean_occupancy);
    Ok(())
}
