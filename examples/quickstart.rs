//! Quickstart: assemble a program, run it on the baseline and the
//! content-aware machine, and compare IPC and register-file traffic.
//!
//! ```text
//! cargo run --release -p carf-bench --example quickstart
//! ```

use carf_core::CarfParams;
use carf_isa::{x, Asm};
use carf_sim::{AnySimulator, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small kernel: sum a table of heap values.
    let mut asm = Asm::new();
    asm.set_data_base(0x0000_7f3a_8000_0000); // heap-like addresses
    let table = asm.alloc_u64s(&(0..256u64).map(|i| i * 3).collect::<Vec<_>>());
    asm.li(x(10), table);
    asm.li(x(1), 0); // sum
    asm.li(x(3), 256);
    asm.li(x(4), 200); // outer repetitions
    asm.label("outer");
    asm.li(x(2), 0); // i
    asm.label("loop");
    asm.slli(x(5), x(2), 3);
    asm.add(x(6), x(10), x(5));
    asm.ld(x(7), x(6), 0);
    asm.add(x(1), x(1), x(7));
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(3), "loop");
    asm.addi(x(4), x(4), -1);
    asm.bne(x(4), x(0), "outer");
    asm.halt();
    let program = asm.finish()?;

    // Run the same program on both machines, with the golden-model check on.
    for (name, mut config) in [
        ("baseline      ", SimConfig::paper_baseline()),
        ("content-aware ", SimConfig::paper_carf(CarfParams::paper_default())),
    ] {
        config.cosim = true;
        let mut sim = AnySimulator::new(config, &program);
        let result = sim.run(10_000_000)?;
        let stats = sim.stats();
        println!(
            "{name} ipc={:.3}  cycles={:>7}  bypassed={:>4.1}%  rf accesses: {} reads / {} writes",
            result.ipc,
            result.cycles,
            stats.bypass_fraction() * 100.0,
            stats.int_rf.total_reads,
            stats.int_rf.total_writes,
        );
        if stats.int_rf.writes.total() > 0 {
            println!(
                "               value classes written: {:.0}% simple, {:.0}% short, {:.0}% long",
                stats.int_rf.writes.fraction(carf_core::ValueClass::Simple) * 100.0,
                stats.int_rf.writes.fraction(carf_core::ValueClass::Short) * 100.0,
                stats.int_rf.writes.fraction(carf_core::ValueClass::Long) * 100.0,
            );
        }
    }
    Ok(())
}
