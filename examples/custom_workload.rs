//! Build your own workload against the public API: a toy bank-ledger
//! kernel (hash + update + audit scan), then measure how the content-aware
//! register file classifies it and what the energy model says.
//!
//! ```text
//! cargo run --release -p carf-bench --example custom_workload
//! ```

use carf_bench::{rf_energy_carf, rf_energy_monolithic, ClassTotals};
use carf_core::CarfParams;
use carf_energy::{TechModel, PAPER_BASELINE};
use carf_isa::{x, Asm};
use carf_sim::{SimConfig, AnySimulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ledger: 1024 accounts of (balance, flags); apply 5000 transactions
    // keyed by an LCG, then audit-scan for negative balances.
    let mut asm = Asm::new();
    asm.set_data_base(0x0000_7f3a_8000_0000);
    let accounts = asm.alloc_u64s(&vec![100; 2 * 1024]);

    asm.li(x(10), accounts);
    asm.li(x(4), 0xABCD_EF12_3456_789B); // LCG state
    asm.li(x(5), 6364136223846793005);
    asm.li(x(6), 1442695040888963407);
    asm.li(x(20), 5_000);
    asm.label("txn");
    asm.mul(x(4), x(4), x(5));
    asm.add(x(4), x(4), x(6));
    asm.srli(x(7), x(4), 22);
    asm.andi(x(7), x(7), 1023); // account index
    asm.slli(x(7), x(7), 4); // 16-byte records
    asm.add(x(8), x(10), x(7));
    asm.srai(x(9), x(4), 58); // small signed amount
    asm.ld(x(2), x(8), 0);
    asm.add(x(2), x(2), x(9));
    asm.st(x(2), x(8), 0);
    asm.addi(x(20), x(20), -1);
    asm.bne(x(20), x(0), "txn");
    // Audit: count negative balances.
    asm.li(x(1), 0);
    asm.li(x(2), 0);
    asm.li(x(3), 1024);
    asm.label("audit");
    asm.slli(x(7), x(2), 4);
    asm.add(x(8), x(10), x(7));
    asm.ld(x(9), x(8), 0);
    asm.slt(x(9), x(9), x(0));
    asm.add(x(1), x(1), x(9));
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(3), "audit");
    asm.halt();
    let program = asm.finish()?;

    let params = CarfParams::paper_default();
    let mut config = SimConfig::paper_carf(params);
    config.cosim = true;
    let mut sim = AnySimulator::new(config, &program);
    let result = sim.run(10_000_000)?;
    let stats = sim.stats();

    println!(
        "ledger kernel: {} instructions in {} cycles (ipc {:.3})",
        result.committed, result.cycles, result.ipc
    );
    println!(
        "writes by class: {} simple / {} short / {} long",
        stats.int_rf.writes.simple, stats.int_rf.writes.short, stats.int_rf.writes.long
    );

    // Price the measured traffic with the energy model.
    let model = TechModel::default_model();
    let reads = ClassTotals {
        simple: stats.int_rf.reads.simple,
        short: stats.int_rf.reads.short,
        long: stats.int_rf.reads.long,
        total: stats.int_rf.total_reads,
    };
    let writes = ClassTotals {
        simple: stats.int_rf.writes.simple,
        short: stats.int_rf.writes.short,
        long: stats.int_rf.writes.long,
        total: stats.int_rf.total_writes,
    };
    let carf = rf_energy_carf(&model, &params, &reads, &writes);
    let base = rf_energy_monolithic(&model, &PAPER_BASELINE, &reads, &writes);
    println!("register-file energy for this kernel: {:.1}% of a baseline file", carf / base * 100.0);
    Ok(())
}
