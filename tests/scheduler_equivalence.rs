//! Scheduler-equivalence pinning: the event-driven scheduler rewrite must
//! be performance-only. Every workload × machine configuration fingerprint
//! is pinned in `carf_bench::fingerprint` (shared with the perf gate), and
//! the same fingerprints must come out **bit-identical** traced and
//! untraced, serial (jobs=1) and parallel (jobs=4).
//!
//! A post-rewrite old-vs-new differential harness is impossible (the old
//! scan-based scheduler is gone), so the pinned table *is* the old
//! scheduler: the values were captured from the pre-rewrite simulator and
//! any scheduling change that alters timing, squash behaviour, port
//! arbitration, or access counts lands here as a drifted hash.

use carf_bench::fingerprint::{check_multi_pinned, check_pinned, multi_sweep, sweep};

fn assert_pinned(got: &[(String, u64, u64)]) {
    if let Err(e) = check_pinned(got) {
        panic!("fingerprint drift from the pre-rewrite scheduler:\n{e}");
    }
}

fn assert_multi_pinned(got: &[(String, u64, u64)]) {
    if let Err(e) = check_multi_pinned(got) {
        panic!("multi-context fingerprint drift:\n{e}");
    }
}

#[test]
fn fingerprints_match_pinned_untraced_serial() {
    assert_pinned(&sweep(1, false));
}

#[test]
fn fingerprints_match_pinned_traced_serial() {
    assert_pinned(&sweep(1, true));
}

#[test]
fn fingerprints_match_pinned_untraced_jobs4() {
    assert_pinned(&sweep(4, false));
}

#[test]
fn fingerprints_match_pinned_traced_jobs4() {
    assert_pinned(&sweep(4, true));
}

// The multi-context layer (4-thread shared-Long SMT, 2-core shared-L2)
// pinned the same four ways: arbitration, capacity windowing, and the
// shared hierarchy must be deterministic under tracing and any worker
// count.

#[test]
fn multi_fingerprints_match_pinned_untraced_serial() {
    assert_multi_pinned(&multi_sweep(1, false));
}

#[test]
fn multi_fingerprints_match_pinned_traced_serial() {
    assert_multi_pinned(&multi_sweep(1, true));
}

#[test]
fn multi_fingerprints_match_pinned_untraced_jobs4() {
    assert_multi_pinned(&multi_sweep(4, false));
}

#[test]
fn multi_fingerprints_match_pinned_traced_jobs4() {
    assert_multi_pinned(&multi_sweep(4, true));
}

#[test]
#[ignore = "prints the pinned table for re-pinning"]
fn print_pinned_table() {
    for (name, cycles, hash) in sweep(1, false) {
        println!("    (\"{name}\", {cycles}, {hash:#018x}),");
    }
}

#[test]
#[ignore = "prints the multi-context pinned table for re-pinning"]
fn print_multi_pinned_table() {
    for (name, cycles, hash) in multi_sweep(1, false) {
        println!("    (\"{name}\", {cycles}, {hash:#018x}),");
    }
}
