//! Smoke tests of the experiment harness: every figure/table's pipeline
//! (workloads → simulator → aggregation → model) produces well-formed
//! numbers at tiny scale.

use carf_bench::{
    baseline_geometry, carf_geometries, rf_energy_carf, rf_energy_monolithic, run_matrix,
    run_suite, run_workload, unlimited_geometry, Budget, DN_SWEEP,
};
use carf_core::CarfParams;
use carf_energy::TechModel;
use carf_sim::SimConfig;
use carf_workloads::{int_suite, SizeClass, Suite};

/// Tiny scale, two workers: every smoke test also exercises the parallel
/// experiment engine's dispatch/reassembly path.
fn tiny_budget() -> Budget {
    Budget { size: SizeClass::Test, max_insts: 30_000, oracle_period: 16, jobs: 2, sample: None }
}

#[test]
fn suite_runner_produces_stats_for_every_workload() {
    let budget = tiny_budget();
    let result = run_suite(&SimConfig::paper_baseline(), Suite::Int, &budget);
    assert_eq!(result.runs.len(), 8);
    for (name, stats) in &result.runs {
        assert!(stats.committed > 1_000, "{name}");
        assert!(stats.ipc() > 0.01, "{name}");
    }
    assert!(result.mean_ipc() > 0.1);
}

#[test]
fn matrix_runner_matches_per_suite_runs() {
    let budget = tiny_budget();
    let base = SimConfig::paper_baseline();
    let carf = SimConfig::paper_carf(CarfParams::paper_default());
    let points =
        [(base.clone(), Suite::Int), (base.clone(), Suite::Fp), (carf.clone(), Suite::Int)];
    let matrix = run_matrix(&points, &budget);
    assert_eq!(matrix.len(), 3);
    for ((cfg, suite), result) in points.iter().zip(&matrix) {
        assert_eq!(result.suite, *suite);
        let solo = run_suite(cfg, *suite, &budget);
        assert_eq!(result.runs.len(), solo.runs.len());
        for ((n1, s1), (n2, s2)) in result.runs.iter().zip(&solo.runs) {
            assert_eq!(n1, n2);
            assert_eq!(s1.cycles, s2.cycles, "{n1}");
            assert_eq!(s1.committed, s2.committed, "{n1}");
        }
    }
}

#[test]
fn budget_arg_parsing_is_strict() {
    let ok = Budget::parse_args(["--full".into(), "--jobs".into(), "3".into()]).unwrap();
    assert_eq!((ok.label(), ok.jobs), ("full", 3));
    let ok = Budget::parse_args(["--jobs=5".into(), "--quick".into()]).unwrap();
    assert_eq!((ok.label(), ok.jobs), ("quick", 5));
    assert!(Budget::parse_args(["--bogus".into()]).is_err());
    assert!(Budget::parse_args(["--jobs".into(), "zero".into()]).is_err());
    assert!(Budget::parse_args(["--jobs=0".into()]).is_err());
}

#[test]
fn relative_ipc_of_identical_configs_is_one() {
    let budget = tiny_budget();
    let a = run_suite(&SimConfig::paper_baseline(), Suite::Fp, &budget);
    let b = run_suite(&SimConfig::paper_baseline(), Suite::Fp, &budget);
    let rel = a.mean_relative_ipc(&b);
    assert!((rel - 1.0).abs() < 1e-9, "determinism: rel = {rel}");
}

#[test]
fn fig1_oracle_fractions_sum_to_one() {
    let budget = tiny_budget();
    let mut cfg = SimConfig::paper_baseline();
    cfg.oracle_period = Some(budget.oracle_period);
    let wl = &int_suite()[0];
    let stats = run_workload(&cfg, wl, &budget);
    let sum: f64 = stats.oracle.values.fractions().iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
    let sum: f64 = stats.oracle.sim_d8.fractions().iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
}

#[test]
fn fig2_similarity_concentrates_with_growing_d() {
    let budget = tiny_budget();
    let mut cfg = SimConfig::paper_baseline();
    cfg.oracle_period = Some(8);
    let wl = int_suite().into_iter().find(|w| w.name == "pointer_chase").unwrap();
    let stats = run_workload(&cfg, &wl, &budget);
    let rest8 = stats.oracle.sim_d8.fractions()[5];
    let rest16 = stats.oracle.sim_d16.fractions()[5];
    assert!(rest16 <= rest8 + 1e-9, "REST must shrink with d: {rest8} -> {rest16}");
}

#[test]
fn fig6_access_fractions_are_well_formed_across_the_sweep() {
    let budget = tiny_budget();
    let wl = int_suite().into_iter().find(|w| w.name == "compress_loop").unwrap();
    for dn in [DN_SWEEP[0], DN_SWEEP[3], DN_SWEEP[6]] {
        let stats =
            run_workload(&SimConfig::paper_carf(CarfParams::with_dn(dn)), &wl, &budget);
        let w = stats.int_rf.writes;
        assert_eq!(w.total(), stats.int_rf.total_writes, "d+n={dn}");
        assert!(w.total() > 1_000, "d+n={dn}");
    }
}

#[test]
fn fig7_energy_orderings_hold() {
    let model = TechModel::default_model();
    let budget = tiny_budget();
    let params = CarfParams::paper_default();
    let wl = int_suite().into_iter().find(|w| w.name == "state_machine").unwrap();

    let base = run_workload(&SimConfig::paper_baseline(), &wl, &budget);
    let carf = run_workload(&SimConfig::paper_carf(params), &wl, &budget);

    let to_totals = |s: &carf_sim::SimStats| {
        (
            carf_bench::ClassTotals {
                simple: s.int_rf.reads.simple,
                short: s.int_rf.reads.short,
                long: s.int_rf.reads.long,
                total: s.int_rf.total_reads,
            },
            carf_bench::ClassTotals {
                simple: s.int_rf.writes.simple,
                short: s.int_rf.writes.short,
                long: s.int_rf.writes.long,
                total: s.int_rf.total_writes,
            },
        )
    };
    let (br, bw) = to_totals(&base);
    let (cr, cw) = to_totals(&carf);
    let e_unl = rf_energy_monolithic(&model, &unlimited_geometry(), &br, &bw);
    let e_base = rf_energy_monolithic(&model, &baseline_geometry(), &br, &bw);
    let e_carf = rf_energy_carf(&model, &params, &cr, &cw);
    assert!(e_base < e_unl, "baseline saves energy over unlimited");
    assert!(e_carf < e_base, "content-aware saves energy over baseline");
}

#[test]
fn fig8_fig9_model_orderings_hold_across_the_sweep() {
    let model = TechModel::default_model();
    let base_area = model.area(&baseline_geometry());
    let base_time = model.access_time(&baseline_geometry());
    for dn in DN_SWEEP {
        let geoms = carf_geometries(&CarfParams::with_dn(dn));
        let area: f64 = geoms.iter().map(|g| model.area(g)).sum();
        assert!(area < base_area, "d+n={dn}: CARF area beats baseline");
        for g in &geoms {
            assert!(model.access_time(g) < base_time, "d+n={dn}: every sub-file is faster");
        }
    }
}

#[test]
fn table2_bypass_fractions_are_probabilities() {
    let budget = tiny_budget();
    let int = run_suite(&SimConfig::paper_baseline(), Suite::Int, &budget);
    let f = int.bypass_fraction();
    assert!(f > 0.0 && f < 1.0, "bypass fraction = {f}");
}

#[test]
fn table4_mix_fractions_sum_to_one() {
    let budget = tiny_budget();
    let wl = int_suite().into_iter().find(|w| w.name == "graph_walk").unwrap();
    let stats =
        run_workload(&SimConfig::paper_carf(CarfParams::paper_default()), &wl, &budget);
    let sum: f64 = stats.operand_mix.fractions().iter().sum();
    assert!((sum - 1.0).abs() < 1e-9);
    assert!(stats.operand_mix.same_type_fraction() > 0.3);
}
