//! Co-simulation fuzzing: randomly generated (but guaranteed-terminating)
//! programs must commit the exact architectural effects of the functional
//! reference machine, under every register-file organization and under
//! deliberately tiny (stress) machine shapes.

use carf_core::{CarfParams, Policies};
use carf_sim::{RegFileKind, SimConfig, AnySimulator};
use carf_workloads::{random_program, RandomProgramParams};

fn stress_config() -> SimConfig {
    // Tiny structures maximize squashes, stalls, and recovery traffic.
    let mut cfg = SimConfig::test_small();
    cfg.rob_size = 16;
    cfg.lsq_size = 8;
    cfg.iq_int = 8;
    cfg.iq_fp = 8;
    cfg.int_pregs = 48;
    cfg.fp_pregs = 48;
    cfg.checkpoints = 4;
    cfg.cosim = true;
    cfg
}

fn run_seed(cfg: &SimConfig, seed: u64) {
    let program = random_program(&RandomProgramParams { seed, ..Default::default() });
    let mut sim = AnySimulator::new(cfg.clone(), &program);
    let result = sim.run(5_000_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    assert!(result.halted, "seed {seed} did not halt");
}

#[test]
fn random_programs_on_the_baseline() {
    let cfg = stress_config();
    for seed in 0..25 {
        run_seed(&cfg, seed);
    }
}

#[test]
fn random_programs_on_the_content_aware_machine() {
    let mut cfg = stress_config();
    cfg.regfile = RegFileKind::ContentAware(
        CarfParams { simple_entries: 48, ..CarfParams::paper_default() },
        Policies::default(),
    );
    for seed in 0..25 {
        run_seed(&cfg, seed);
    }
}

#[test]
fn random_programs_with_tiny_long_file() {
    // Long-file starvation path: the guard and (if needed) the recovery
    // flush must keep the machine correct and live. The file must still be
    // able to back every architecturally live wide value (the generator's
    // sandbox initializes 16 registers with wide values), so 20 entries is
    // tight but satisfiable — below that the configuration is unsatisfiable
    // for *any* hardware and the watchdog correctly reports a deadlock.
    let mut cfg = stress_config();
    cfg.regfile = RegFileKind::ContentAware(
        CarfParams { simple_entries: 48, long_entries: 20, ..CarfParams::paper_default() },
        Policies { long_stall_threshold: 4, ..Policies::default() },
    );
    for seed in 0..15 {
        run_seed(&cfg, seed);
    }
}

#[test]
fn unsatisfiable_long_file_is_detected_not_hung() {
    // More architecturally live wide values than Long entries: impossible
    // to make progress; the simulator must report it via the watchdog
    // rather than spin forever.
    let mut cfg = stress_config();
    cfg.watchdog_cycles = 5_000;
    cfg.regfile = RegFileKind::ContentAware(
        CarfParams { simple_entries: 48, long_entries: 4, ..CarfParams::paper_default() },
        Policies { long_stall_threshold: 2, ..Policies::default() },
    );
    let program = random_program(&RandomProgramParams { seed: 0, ..Default::default() });
    let mut sim = AnySimulator::new(cfg, &program);
    match sim.run(5_000_000) {
        Err(carf_sim::SimError::Watchdog { .. }) => {}
        other => panic!("expected a watchdog report, got {other:?}"),
    }
}

#[test]
fn random_programs_with_associative_short_file() {
    let mut cfg = stress_config();
    cfg.regfile = RegFileKind::ContentAware(
        CarfParams { simple_entries: 48, ..CarfParams::paper_default() },
        Policies {
            short_index: carf_core::ShortIndexPolicy::Associative,
            ..Policies::default()
        },
    );
    for seed in 0..15 {
        run_seed(&cfg, seed);
    }
}

#[test]
fn random_programs_without_extra_bypass() {
    let mut cfg = stress_config();
    cfg.regfile = RegFileKind::ContentAware(
        CarfParams { simple_entries: 48, ..CarfParams::paper_default() },
        Policies { extra_bypass: false, ..Policies::default() },
    );
    for seed in 0..15 {
        run_seed(&cfg, seed);
    }
}

#[test]
fn random_programs_with_narrow_and_wide_dn() {
    for dn in [8u32, 32] {
        let mut cfg = stress_config();
        cfg.regfile = RegFileKind::ContentAware(
            CarfParams { simple_entries: 48, ..CarfParams::with_dn(dn) },
            Policies::default(),
        );
        for seed in 0..10 {
            run_seed(&cfg, seed);
        }
    }
}

#[test]
fn branch_heavy_random_programs() {
    let cfg = stress_config();
    for seed in 100..115 {
        let program = random_program(&RandomProgramParams {
            seed,
            body_len: 40,
            iterations: 60,
            include_fp: false,
            include_mem: true,
            include_branches: true,
        });
        let mut sim = AnySimulator::new(cfg.clone(), &program);
        let result = sim.run(5_000_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(result.halted);
    }
}

#[test]
fn memory_heavy_random_programs() {
    let mut cfg = stress_config();
    cfg.regfile = RegFileKind::ContentAware(
        CarfParams { simple_entries: 48, ..CarfParams::paper_default() },
        Policies::default(),
    );
    for seed in 200..215 {
        let program = random_program(&RandomProgramParams {
            seed,
            body_len: 80,
            iterations: 40,
            include_fp: true,
            include_mem: true,
            include_branches: false,
        });
        let mut sim = AnySimulator::new(cfg.clone(), &program);
        let result = sim.run(5_000_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(result.halted);
    }
}

#[test]
fn random_programs_with_optimistic_memory_disambiguation() {
    let mut cfg = stress_config();
    cfg.mem_dep = carf_sim::MemDepPolicy::Optimistic;
    cfg.regfile = RegFileKind::ContentAware(
        CarfParams { simple_entries: 48, ..CarfParams::paper_default() },
        Policies::default(),
    );
    for seed in 300..325 {
        let program = random_program(&RandomProgramParams {
            seed,
            body_len: 60,
            iterations: 40,
            include_fp: true,
            include_mem: true,
            include_branches: true,
        });
        let mut sim = AnySimulator::new(cfg.clone(), &program);
        let result = sim.run(5_000_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(result.halted, "seed {seed}");
    }
}
