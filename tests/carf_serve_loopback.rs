//! `carf-serve` loopback integration: spawn the daemon on an ephemeral
//! port, drive the whole protocol over 127.0.0.1, and prove the streamed
//! results are **bit-for-bit** the same numbers a direct in-process
//! matrix run produces — cold (simulated) and warm (served from the
//! content-addressed cache).

use carf_bench::cache::{run_matrix_with_cache, ResultCache};
use carf_bench::parallel::json_field;
use carf_bench::serve::{check_sequence, request_events, Server};
use carf_bench::statsio::{stats_from_json, stats_to_json};
use carf_bench::Budget;
use carf_sim::{SimConfig, SimStats};
use carf_workloads::Suite;

/// Small enough that the whole matrix simulates in seconds even in debug
/// builds, large enough that every workload commits real work.
const MAX_INSTS: u64 = 2_500;

fn request(cmd: &str, machine: &str) -> String {
    format!(
        "{{\"cmd\":\"{cmd}\",\"machines\":\"{machine}\",\"suite\":\"int\",\
         \"budget\":\"quick\",\"jobs\":1,\"max_insts\":{MAX_INSTS}}}"
    )
}

/// The budget `serve::parse_request` builds for [`request`].
fn request_budget() -> Budget {
    let mut b = Budget::quick();
    b.jobs = 1;
    b.max_insts = MAX_INSTS;
    b
}

fn event_of(line: &str) -> String {
    json_field(line, "event").unwrap_or_else(|| panic!("no event field: {line}"))
}

/// Extracts (index, source, stats) from the `point` events, asserting
/// every one reconstructs through the exact stats codec.
fn decode_points(events: &[String]) -> Vec<(usize, String, SimStats)> {
    events
        .iter()
        .filter(|l| event_of(l) == "point")
        .map(|l| {
            let index = json_field(l, "index").unwrap().parse::<usize>().unwrap();
            let source = json_field(l, "source").unwrap();
            let stats =
                stats_from_json(&json_field(l, "stats").unwrap()).expect("stats decode");
            (index, source, stats)
        })
        .collect()
}

fn field_u64(line: &str, name: &str) -> u64 {
    json_field(line, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no numeric `{name}` in: {line}"))
}

#[test]
fn loopback_submit_streams_exact_results_then_serves_warm() {
    let cache_dir = std::env::temp_dir()
        .join(format!("carf-serve-loopback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = Server::spawn("127.0.0.1:0", Some(ResultCache::at(cache_dir.clone())))
        .expect("bind ephemeral loopback port");
    let addr = server.addr();

    // Liveness: ping → pong with the protocol version.
    let pong = request_events(&addr, "{\"cmd\":\"ping\"}").unwrap();
    assert_eq!(pong.len(), 1);
    assert_eq!(event_of(&pong[0]), "pong");
    check_sequence(&pong).unwrap();

    // Garbage is answered with an `error` event, not a dropped connection.
    let err = request_events(&addr, "{\"cmd\":\"dance\"}").unwrap();
    assert_eq!(err.len(), 1);
    assert_eq!(event_of(&err[0]), "error");

    // Cold submit: every point simulates, events arrive in matrix order
    // (jobs=1), and the stream is accepted → point... → done.
    let cold = request_events(&addr, &request("submit", "base")).unwrap();
    check_sequence(&cold).unwrap();
    assert_eq!(event_of(&cold[0]), "accepted");
    let done = cold.last().unwrap();
    assert_eq!(event_of(done), "done");
    let n_points = field_u64(&cold[0], "points") as usize;
    assert!(n_points > 0, "int suite is not empty");
    assert_eq!(cold.len(), n_points + 2, "accepted + one event per point + done");
    assert_eq!(field_u64(done, "simulated") as usize, n_points);
    assert_eq!(field_u64(done, "served"), 0);
    assert_eq!(field_u64(done, "missing"), 0);

    let cold_points = decode_points(&cold);
    assert_eq!(cold_points.len(), n_points);
    for (slot, (index, source, _)) in cold_points.iter().enumerate() {
        assert_eq!(*index, slot, "jobs=1 streams in matrix order");
        assert_eq!(source, "sim");
    }

    // The streamed stats must be bit-for-bit what a direct, cache-less
    // in-process run of the same matrix produces.
    let points = vec![(SimConfig::paper_baseline(), Suite::Int)];
    let direct = run_matrix_with_cache(&points, &request_budget(), None);
    assert_eq!(direct.served, 0);
    let direct_runs = &direct.results[0].runs;
    assert_eq!(direct_runs.len(), n_points);
    for ((_, _, streamed), (name, expected)) in cold_points.iter().zip(direct_runs) {
        assert_eq!(streamed, expected, "daemon result differs for `{name}`");
        assert_eq!(stats_to_json(streamed), stats_to_json(expected));
    }

    // Warm submit: zero simulation, every point served from the cache,
    // with identical stats.
    let warm = request_events(&addr, &request("submit", "base")).unwrap();
    check_sequence(&warm).unwrap();
    let done = warm.last().unwrap();
    assert_eq!(field_u64(done, "served") as usize, n_points);
    assert_eq!(field_u64(done, "simulated"), 0);
    let warm_points = decode_points(&warm);
    for ((_, source, warm_stats), (_, _, cold_stats)) in warm_points.iter().zip(&cold_points) {
        assert_eq!(source, "cache");
        assert_eq!(warm_stats, cold_stats);
    }

    // Fetch never simulates: a machine the cache has not seen comes back
    // all `miss`, and the warm machine comes back all `cache`.
    let miss = request_events(&addr, &request("fetch", "carf")).unwrap();
    check_sequence(&miss).unwrap();
    let done = miss.last().unwrap();
    assert_eq!(field_u64(done, "missing") as usize, n_points);
    assert_eq!(field_u64(done, "simulated"), 0);
    assert!(miss.iter().all(|l| event_of(l) != "point"), "fetch must never simulate");
    assert_eq!(miss.iter().filter(|l| event_of(l) == "miss").count(), n_points);

    let hit = request_events(&addr, &request("fetch", "base")).unwrap();
    let done = hit.last().unwrap();
    assert_eq!(field_u64(done, "served") as usize, n_points);
    assert_eq!(field_u64(done, "missing"), 0);

    // Clean shutdown over the wire: the daemon must actually exit —
    // wait() joins the accept loop, so a shutdown that left it blocked
    // in accept() would hang this test.
    let bye = request_events(&addr, "{\"cmd\":\"shutdown\"}").unwrap();
    assert_eq!(event_of(bye.last().unwrap()), "bye");
    server.wait();
    let _ = std::fs::remove_dir_all(&cache_dir);
}
