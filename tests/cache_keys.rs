//! Cache-key stability: the content-addressed result cache is only sound
//! if keys are (a) stable across builds for identical semantics, (b)
//! different whenever any result-affecting input differs, and (c)
//! *insensitive* to cosmetic code churn like struct-field reordering.
//!
//! (a) is pinned by golden fingerprints of representative configurations
//! across all four register-file backends; regenerate via the ignored
//! `print_golden_keys` test ONLY alongside a `CACHE_SALT` bump (a golden
//! drift without a salt bump means previously cached results silently
//! changed address). (b) is the perturbation battery. (c) holds by
//! construction — `canonical_config` writes every field explicitly in a
//! code-defined order — and the pinned canonical text locks that order
//! independent of the struct declaration.

use carf_bench::cache::{canonical_config, point_key, point_key_text, workload_identity};
use carf_bench::sample::SampleSpec;
use carf_bench::Budget;
use carf_core::{CarfParams, Policies, PortReducedParams};
use carf_sim::SimConfig;
use carf_workloads::Suite;

fn quick_jobs1() -> Budget {
    let mut b = Budget::quick();
    b.jobs = 1;
    b
}

/// The four representative backends, with their pinned golden keys.
fn golden_backends() -> Vec<(&'static str, SimConfig, u128)> {
    vec![
        ("baseline", SimConfig::paper_baseline(), GOLDEN_BASELINE),
        ("carf", SimConfig::paper_carf(CarfParams::paper_default()), GOLDEN_CARF),
        ("compressed", SimConfig::paper_compressed(CarfParams::paper_default()), GOLDEN_COMPRESSED),
        (
            "ports",
            SimConfig::paper_port_reduced(PortReducedParams::default()),
            GOLDEN_PORTS,
        ),
    ]
}

const GOLDEN_BASELINE: u128 = 0x6b6e80e407aa8a8e7919b38b79d16893;
const GOLDEN_CARF: u128 = 0xb7678aa0419d240238cce9d364c4ac12;
const GOLDEN_COMPRESSED: u128 = 0x3ecb5203ca045158911bd20096a8e919;
const GOLDEN_PORTS: u128 = 0x0886566c28132e32527fd8c649ac11d8;

#[test]
fn golden_keys_across_all_four_backends() {
    let budget = quick_jobs1();
    for (name, cfg, golden) in golden_backends() {
        let key = point_key(&cfg, Suite::Int, "tridiag", &budget);
        assert_eq!(
            key, golden,
            "{name}: cache key drifted (got {key:032x}, pinned {golden:032x}); \
             a semantic drift must come with a CACHE_SALT bump, \
             then re-pin via print_golden_keys"
        );
    }
}

#[test]
fn canonical_text_is_pinned_for_the_baseline() {
    // Locks the canonical field order independent of SimConfig's struct
    // declaration: reordering fields in the struct cannot move this text,
    // and any *semantic* edit to the canonicalizer shows up here.
    assert_eq!(canonical_config(&SimConfig::paper_baseline()), GOLDEN_BASELINE_TEXT);
}

const GOLDEN_BASELINE_TEXT: &str = "fetch=8;issue=8;commit=8;frontend=3;rob=128;lsq=64;\
    iq_int=32;iq_fp=32;int_pregs=112;fp_pregs=128;rf_r=8;rf_w=6;ckpt=32;int_units=8;\
    fp_units=8;mul=3;div=20;fp=2;fpdiv=12;il1=32768/4/64/1;dl1=32768/4/64/1;dl1_ports=2;\
    l2=1048576/4/64/10;mem_lat=100;gshare=14;btb=2048;ras=16;regfile=baseline;\
    mem_dep=optimistic;rob_interval=128;oracle=none;cosim=false;watchdog=100000;";

#[test]
fn identical_configs_built_differently_share_a_key() {
    let budget = quick_jobs1();
    // Field-by-field construction vs. constructor + struct-update: the
    // *values* are equal, so the keys must be too, regardless of the
    // textual order the fields were assigned in.
    let a = SimConfig::paper_carf(CarfParams::paper_default());
    let mut b = SimConfig::paper_baseline();
    b.regfile = carf_sim::RegFileKind::ContentAware(
        CarfParams::paper_default(),
        Policies::default(),
    );
    assert_eq!(a, b);
    assert_eq!(
        point_key(&a, Suite::Int, "tridiag", &budget),
        point_key(&b, Suite::Int, "tridiag", &budget),
    );
}

#[test]
fn every_config_perturbation_changes_the_key() {
    let budget = quick_jobs1();
    let base = SimConfig::paper_baseline();
    let base_key = point_key(&base, Suite::Int, "tridiag", &budget);

    let perturbations: Vec<(&str, SimConfig)> = vec![
        ("rob_size", {
            let mut c = base.clone();
            c.rob_size += 1;
            c
        }),
        ("rf_read_ports", {
            let mut c = base.clone();
            c.rf_read_ports += 1;
            c
        }),
        ("dl1 latency", {
            let mut c = base.clone();
            c.hierarchy.dl1.latency += 1;
            c
        }),
        ("bpred gshare", {
            let mut c = base.clone();
            c.bpred.gshare_bits += 1;
            c
        }),
        ("mem_dep", {
            let mut c = base.clone();
            c.mem_dep = carf_sim::MemDepPolicy::Conservative;
            c
        }),
        ("oracle_period", {
            let mut c = base.clone();
            c.oracle_period = Some(16);
            c
        }),
        ("regfile", SimConfig::paper_carf(CarfParams::paper_default())),
        ("carf policies", {
            let mut pol = Policies::default();
            pol.extra_bypass = !pol.extra_bypass;
            SimConfig::paper_carf_with(CarfParams::paper_default(), pol)
        }),
        ("carf geometry", {
            let mut p = CarfParams::paper_default();
            p.short_entries *= 2;
            SimConfig::paper_carf(p)
        }),
        ("port-reduced params", {
            let mut p = PortReducedParams::default();
            p.capture_entries += 1;
            SimConfig::paper_port_reduced(p)
        }),
    ];
    let mut keys = vec![base_key];
    for (what, cfg) in perturbations {
        let key = point_key(&cfg, Suite::Int, "tridiag", &budget);
        assert!(!keys.contains(&key), "{what}: perturbation did not change the key");
        keys.push(key);
    }
}

#[test]
fn workload_and_budget_perturbations_change_the_key() {
    let budget = quick_jobs1();
    let cfg = SimConfig::paper_baseline();
    let base_key = point_key(&cfg, Suite::Int, "tridiag", &budget);

    assert_ne!(base_key, point_key(&cfg, Suite::Int, "hash_table", &budget), "workload");
    assert_ne!(base_key, point_key(&cfg, Suite::Fp, "tridiag", &budget), "suite");

    let mut full = Budget::full();
    full.jobs = 1;
    assert_ne!(base_key, point_key(&cfg, Suite::Int, "tridiag", &full), "size class");

    let mut capped = quick_jobs1();
    capped.max_insts = 50_000;
    assert_ne!(base_key, point_key(&cfg, Suite::Int, "tridiag", &capped), "max_insts");

    let mut sampled = quick_jobs1();
    sampled.sample = Some(SampleSpec::default());
    assert_ne!(base_key, point_key(&cfg, Suite::Int, "tridiag", &sampled), "sampling on");

    let mut sampled2 = sampled;
    sampled2.sample = Some(SampleSpec { interval: 4_000, period: 8, warmup: 2_000 });
    assert_ne!(
        point_key(&cfg, Suite::Int, "tridiag", &sampled),
        point_key(&cfg, Suite::Int, "tridiag", &sampled2),
        "sampling spec"
    );
}

#[test]
fn cosmetic_execution_details_do_not_change_the_key() {
    let cfg = SimConfig::paper_baseline();
    let mut a = Budget::quick();
    a.jobs = 1;
    let mut b = Budget::quick();
    b.jobs = 32;
    // Worker count never changes results (run_ordered is order-preserving
    // and bit-identical), so it must not split the cache.
    assert_eq!(
        point_key(&cfg, Suite::Int, "tridiag", &a),
        point_key(&cfg, Suite::Int, "tridiag", &b),
    );
    // The budget's oracle_period only matters through the config (bins
    // copy it into SimConfig::oracle_period when an experiment needs the
    // oracle); by itself it must not split the cache either.
    let mut c = Budget::quick();
    c.jobs = 1;
    c.oracle_period = 999;
    assert_eq!(
        point_key(&cfg, Suite::Int, "tridiag", &a),
        point_key(&cfg, Suite::Int, "tridiag", &c),
    );
}

#[test]
fn key_text_names_its_parts() {
    // The pre-image is self-describing, so a future key-drift
    // investigation can diff texts instead of guessing.
    let text = point_key_text(
        &SimConfig::paper_baseline(),
        Suite::Int,
        "tridiag",
        &quick_jobs1(),
    );
    for needle in ["salt=carf-cache-v1", "codec=1", "point=Int/tridiag", "size=quick", "regfile=baseline"]
    {
        assert!(text.contains(needle), "key text missing `{needle}`: {text}");
    }
}

#[test]
fn corpus_cache_identity_tracks_program_text_and_entry() {
    // Corpus runs are keyed by a fingerprint over the *linked program*
    // (instruction text, data image, entry point), not the display name:
    // editing a source or relinking with a different entry symbol must
    // miss the cache, while an identical reassembly must hit it.
    let budget = quick_jobs1();
    let cfg = SimConfig::paper_baseline();
    let assemble = |src: &str, entry: &str| {
        let unit = carf_isa::parse_object(src, "kernel.s").expect("parse");
        carf_isa::link_with_entry(&[unit], Some(entry)).expect("link")
    };
    const SRC: &str = "first:\n li x1, 5\n halt\nsecond:\n li x1, 6\n halt\n";
    let wrap = |p| carf_workloads::Workload::from_program("kernel", Suite::Int, "t", p);
    let key = |w: &carf_workloads::Workload| {
        point_key(&cfg, Suite::Int, &workload_identity(w), &budget)
    };

    let base = wrap(assemble(SRC, "first"));
    let text_edit = wrap(assemble("first:\n li x1, 7\n halt\nsecond:\n li x1, 6\n halt\n", "first"));
    let entry_edit = wrap(assemble(SRC, "second"));

    assert_ne!(workload_identity(&base), workload_identity(&text_edit), "immediate edit");
    assert_ne!(workload_identity(&base), workload_identity(&entry_edit), "entry symbol");
    assert_ne!(key(&base), key(&text_edit), "immediate edit must change the cache key");
    assert_ne!(key(&base), key(&entry_edit), "entry symbol must change the cache key");
    // An identical reassembly shares the key — warm across processes.
    assert_eq!(key(&base), key(&wrap(assemble(SRC, "first"))));
    // Synthetic workloads still key by bare name, so the golden keys
    // above are untouched by the corpus machinery.
    let synthetic = &carf_workloads::int_suite()[0];
    assert_eq!(workload_identity(synthetic), synthetic.name);
}

#[test]
#[ignore = "prints the golden keys and canonical text for re-pinning"]
fn print_golden_keys() {
    let budget = quick_jobs1();
    for (name, cfg, _) in golden_backends() {
        let key = point_key(&cfg, Suite::Int, "tridiag", &budget);
        println!("const GOLDEN_{}: u128 = 0x{key:032x};", name.to_uppercase());
    }
    println!("const GOLDEN_BASELINE_TEXT: &str = \"{}\";", canonical_config(&SimConfig::paper_baseline()));
}
