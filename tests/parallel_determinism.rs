//! The parallel experiment engine must be invisible in the results: a
//! worker pool run returns **bit-identical** statistics to the serial run,
//! point for point, whatever the worker count. This is the guarantee that
//! lets every figure/table binary default to parallel execution.

use carf_bench::{run_matrix, Budget};
use carf_core::CarfParams;
use carf_sim::SimConfig;
use carf_workloads::Suite;

#[test]
fn quick_budget_parallel_runs_are_bit_identical_to_serial() {
    let mut serial_budget = Budget::quick();
    serial_budget.jobs = 1;
    let mut parallel_budget = serial_budget;
    parallel_budget.jobs = 4;

    let carf = SimConfig::paper_carf(CarfParams::paper_default());
    let points = [(carf.clone(), Suite::Int), (carf, Suite::Fp)];

    let serial = run_matrix(&points, &serial_budget);
    let parallel = run_matrix(&points, &parallel_budget);

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.suite, p.suite);
        assert_eq!(s.runs.len(), p.runs.len(), "{:?}", s.suite);
        for ((sn, ss), (pn, ps)) in s.runs.iter().zip(&p.runs) {
            assert_eq!(sn, pn, "{:?}: workload order must match", s.suite);
            // Full-stats structural equality: every counter, histogram,
            // and float must agree bit for bit.
            assert_eq!(ss, ps, "{:?}/{sn}: parallel run diverged from serial", s.suite);
        }
    }
}
