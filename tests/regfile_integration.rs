//! Cross-crate integration of the content-aware register file: heavy
//! allocate/write/read/release churn, aging across ROB intervals, Long
//! exhaustion and recovery, and consistency between the statistics the
//! file reports and the energy model's inputs.

use carf_core::{
    CarfParams, ContentAwareRegFile, IntRegFile, Policies, ShortAllocPolicy, ValueClass,
};
use carf_energy::TechModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HEAP: u64 = 0x0000_7f3a_8000_0000;

fn mixed_value(rng: &mut StdRng) -> u64 {
    match rng.gen_range(0..4) {
        0 => rng.gen_range(0..1u64 << 18),
        1 => (-(rng.gen_range(1..1i64 << 18))) as u64,
        2 => HEAP | rng.gen_range(0..1u64 << 17),
        _ => rng.gen(),
    }
}

#[test]
fn sustained_churn_reads_back_every_written_value() {
    let mut rf = ContentAwareRegFile::new(CarfParams::paper_default());
    rf.observe_address(HEAP);
    let mut rng = StdRng::seed_from_u64(42);
    let tags = rf.num_tags();
    let mut live: Vec<Option<u64>> = vec![None; tags];

    for step in 0..50_000usize {
        let tag = rng.gen_range(0..tags);
        match live[tag] {
            Some(expected) => {
                assert_eq!(rf.read(tag), expected, "step {step}, tag {tag}");
                rf.release(tag);
                live[tag] = None;
            }
            None => {
                let value = mixed_value(&mut rng);
                rf.on_alloc(tag);
                if rf.try_write(tag, value, false).is_ok() {
                    live[tag] = Some(value);
                } else {
                    // Long file momentarily full; drop the allocation.
                    rf.release(tag);
                }
            }
        }
        if step % 512 == 0 {
            rf.rob_interval_tick();
        }
    }
    // Everything still live must read back exactly.
    for (tag, v) in live.iter().enumerate() {
        if let Some(expected) = v {
            assert_eq!(rf.read(tag), *expected, "final read of tag {tag}");
        }
    }
}

#[test]
fn aging_never_corrupts_live_values_under_slot_contention() {
    // Many similarity groups competing for the same direct slot, with
    // interval ticks interleaved: live registers must stay intact.
    let params = CarfParams::paper_default();
    let mut rf = ContentAwareRegFile::new(params);
    let mut written = Vec::new();
    for round in 0..32u64 {
        // A new region each round, all mapping to slot 5.
        let region = (0x4000 + round) << 20 | (5 << 17);
        rf.observe_address(region);
        let tag = (round % 48) as usize;
        if written.len() == 48 {
            let (old_tag, _) = written.remove(0);
            rf.release(old_tag);
        }
        rf.on_alloc(tag);
        let value = region | 0x1abc;
        rf.try_write(tag, value, false).expect("capacity available");
        written.push((tag, value));
        rf.rob_interval_tick();
        rf.rob_interval_tick();
        for (t, v) in &written {
            assert_eq!(rf.read(*t), *v, "round {round}, tag {t}");
        }
    }
}

#[test]
fn long_exhaustion_recovers_after_releases() {
    let params = CarfParams { long_entries: 4, ..CarfParams::paper_default() };
    let mut rf = ContentAwareRegFile::with_policies(
        params,
        Policies { long_stall_threshold: 0, ..Policies::default() },
    );
    let wide = |i: u64| 0x1111_0000_0000_0000u64.wrapping_mul(i + 1) | (1 << 40);
    for tag in 0..4usize {
        rf.on_alloc(tag);
        rf.try_write(tag, wide(tag as u64), false).expect("room for four longs");
    }
    rf.on_alloc(4);
    assert!(rf.try_write(4, wide(99), false).is_err(), "fifth long must stall");
    assert!(rf.stats().long_write_stalls >= 1);
    rf.release(1);
    rf.try_write(4, wide(99), false).expect("released entry is reusable");
    assert_eq!(rf.read(4), wide(99));
    // The remaining tags are untouched by the churn.
    assert_eq!(rf.read(0), wide(0));
    assert_eq!(rf.read(3), wide(3));
}

#[test]
fn stats_feed_the_energy_model_consistently() {
    let params = CarfParams::paper_default();
    let mut rf = ContentAwareRegFile::new(params);
    rf.observe_address(HEAP);
    let mut rng = StdRng::seed_from_u64(7);
    for tag in 0..100usize {
        rf.on_alloc(tag % rf.num_tags());
        let _ = rf.try_write(tag % rf.num_tags(), mixed_value(&mut rng), false);
        let _ = rf.read(tag % rf.num_tags());
        rf.release(tag % rf.num_tags());
    }
    let stats = rf.stats();
    assert_eq!(stats.reads.total(), stats.total_reads);
    assert_eq!(stats.writes.total() + stats.long_write_stalls, 100);

    // Any classified access mix must price below the baseline monolith.
    let model = TechModel::default_model();
    let unl = model.read_energy(&carf_energy::PAPER_UNLIMITED);
    for class in [ValueClass::Simple, ValueClass::Short, ValueClass::Long] {
        let geom_idx = match class {
            ValueClass::Simple => 0,
            ValueClass::Short => 1,
            ValueClass::Long => 2,
        };
        let g = geometry(&params, geom_idx);
        assert!(model.read_energy(&g) < unl, "{class} sub-file beats unlimited per access");
    }
}

fn geometry(params: &CarfParams, which: usize) -> carf_energy::RegFileGeometry {
    let widths = [params.simple_width(), params.short_width(), params.long_width()];
    let entries = [params.simple_entries, params.short_entries, params.long_entries];
    carf_energy::RegFileGeometry::new(entries[which], widths[which], 8, 6)
}

#[test]
fn alloc_policy_changes_population_but_not_values() {
    let mut rng = StdRng::seed_from_u64(11);
    let values: Vec<u64> = (0..200).map(|_| mixed_value(&mut rng)).collect();
    let mut outcomes = Vec::new();
    for policy in [ShortAllocPolicy::AddressesOnly, ShortAllocPolicy::AllResults] {
        let mut rf = ContentAwareRegFile::with_policies(
            CarfParams::paper_default(),
            Policies { short_alloc: policy, ..Policies::default() },
        );
        rf.observe_address(HEAP);
        let mut shorts = 0u64;
        for (i, v) in values.iter().enumerate() {
            let tag = i % 64;
            if rf.class_of(tag).is_some() {
                assert!(rf.peek(tag).is_some());
                rf.release(tag);
            }
            rf.on_alloc(tag);
            if let Ok(Some(ValueClass::Short)) = rf.try_write(tag, *v, false) {
                shorts += 1;
            }
            assert_eq!(rf.read(tag), *v, "policy {policy:?}, value {i}");
        }
        outcomes.push(shorts);
    }
    // Allocate-on-every-result must classify at least as many shorts.
    assert!(outcomes[1] >= outcomes[0], "{outcomes:?}");
}
