//! End-to-end perf-regression gate: `bench_kips --gate` must pass against
//! an honest baseline and fail against an injected regression, and the
//! committed `BENCH_after.json` it defaults to must stay parseable.

use carf_bench::gate::{parse_baseline, run_gate};
use carf_bench::parallel::workspace_root;
use std::path::PathBuf;

fn write_baseline(tag: &str, geomean_kips: f64) -> PathBuf {
    let path = std::env::temp_dir()
        .join(format!("carf-gate-{tag}-{}.json", std::process::id()));
    // The same multi-line shape `bench_kips --snapshot` writes.
    let text = format!(
        "{{\n  \"bin\": \"bench_kips\",\n  \"budget\": \"quick\",\n  \"jobs\": 1,\n  \
         \"total_secs\": 1.000,\n  \"geomean_kips\": {geomean_kips:.3},\n  \
         \"peak_kips\": {geomean_kips:.3},\n  \"points\": [\n  ]\n}}\n"
    );
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn committed_baseline_snapshot_is_a_valid_gate_input() {
    let path = workspace_root().join("BENCH_after.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let baseline = parse_baseline(&text).expect("committed snapshot parses");
    assert!(baseline.geomean_kips > 0.0);
    assert!(matches!(baseline.budget.as_str(), "quick" | "full"));
}

/// Both gate directions in one sequential test: the measurement drains a
/// process-global timing collector, so two concurrent `run_gate` calls in
/// the same binary would contaminate each other's geomean.
#[test]
fn gate_passes_on_baseline_and_fails_on_injected_regression() {
    // An honest (very conservative) baseline: any working build clears
    // 0.001 KIPS, and the pinned fingerprints match by construction on an
    // unmodified tree — so the full gate passes end to end.
    let honest = write_baseline("honest", 0.001);
    run_gate(&honest, 0.5, 4).expect("gate passes against an honest baseline");
    let _ = std::fs::remove_file(&honest);

    // Injected regression: the baseline claims an absurd 1e12 KIPS, so
    // the measured geomean lands far below the floor and the gate must
    // refuse with a REGRESSED verdict (fingerprints still pass — the
    // failure is isolated to throughput).
    let absurd = write_baseline("absurd", 1.0e12);
    let err = run_gate(&absurd, 0.5, 4).expect_err("gate fails on an injected regression");
    assert!(err.contains("REGRESSED"), "{err}");
    assert!(!err.contains("DRIFTED"), "fingerprints must not be implicated: {err}");
    let _ = std::fs::remove_file(&absurd);
}
