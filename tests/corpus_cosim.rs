//! Differential coverage for the real-program corpus: every kernel under
//! `corpus/` must halt within budget, leave a non-trivial checksum in
//! `x10`, and retire **bit-identical architectural state** on the
//! functional executor and all four timing backends — independent of the
//! worker-pool dispatch width.

use carf_bench::cli::MachineSet;
use carf_bench::{corpus, parallel};
use carf_isa::{x, Machine, DEFAULT_DATA_BASE};
use carf_sim::AnySimulator;

/// Every corpus kernel is sized well under the quick budget.
const BUDGET: u64 = 200_000;

fn corpus_programs() -> Vec<corpus::CorpusProgram> {
    corpus::discover(&corpus::default_corpus_dir(), None).expect("corpus must assemble and link")
}

fn run_functional(p: &corpus::CorpusProgram) -> Machine {
    let mut m = Machine::load(&p.program);
    m.run(&p.program, BUDGET).unwrap_or_else(|e| panic!("{}: {e}", p.name));
    assert!(m.is_halted(), "{} did not halt within {BUDGET} instructions", p.name);
    m
}

#[test]
fn corpus_kernels_halt_with_nonzero_checksums() {
    let programs = corpus_programs();
    assert!(programs.len() >= 6, "expected >= 6 kernels, found {}", programs.len());
    assert!(
        programs.iter().any(|p| p.files.len() >= 2),
        "expected at least one multi-translation-unit kernel"
    );
    for p in &programs {
        let m = run_functional(p);
        assert_ne!(m.int_reg(x(10)), 0, "{} left a zero checksum in x10", p.name);
    }
}

#[test]
fn quicksort_really_sorts() {
    let programs = corpus_programs();
    let p = programs.iter().find(|p| p.name == "quicksort").expect("quicksort kernel");
    let m = run_functional(p);
    // main.s is the first translation unit, and `arr` its first data
    // symbol, so the array sits at the start of the relocatable region.
    let mut prev = 0u64;
    for i in 0..512 {
        let v = m.mem.read_u64(DEFAULT_DATA_BASE + i * 8);
        assert!(v >= prev, "arr[{i}] = {v:#x} < arr[{}] = {prev:#x}", i - 1);
        prev = v;
    }
}

#[test]
fn all_backends_retire_identical_state_at_any_dispatch_width() {
    let programs = corpus_programs();
    let configs = MachineSet::All.configs();

    let reference: Vec<u64> =
        programs.iter().map(|p| run_functional(p).checkpoint(&p.program).fingerprint()).collect();

    let points: Vec<(usize, usize)> = (0..programs.len())
        .flat_map(|pi| (0..configs.len()).map(move |ci| (pi, ci)))
        .collect();
    let fingerprints_at = |jobs: usize| -> Vec<u64> {
        parallel::run_ordered(&points, jobs, |&(pi, ci)| {
            let p = &programs[pi];
            let (label, config) = &configs[ci];
            let mut cfg = config.clone();
            cfg.cosim = true; // self-checking against the reference at every commit
            let mut sim = AnySimulator::new(cfg, &p.program);
            let result = sim
                .run(BUDGET)
                .unwrap_or_else(|e| panic!("{} on {label}: {e}", p.name));
            assert!(result.halted, "{} on {label} did not halt", p.name);
            sim.arch_checkpoint().fingerprint()
        })
    };

    let serial = fingerprints_at(1);
    let pooled = fingerprints_at(4);
    assert_eq!(serial, pooled, "dispatch width changed architectural results");
    for (&(pi, ci), fp) in points.iter().zip(&serial) {
        assert_eq!(
            *fp, reference[pi],
            "{} on {} diverged from the functional reference",
            programs[pi].name, configs[ci].0
        );
    }
}
