//! Checkpoint round-trip guarantees behind sampled simulation: a
//! [`carf_isa::Checkpoint`] taken anywhere in a run must restore to the
//! bit-identical architectural state (registers, pc, memory image,
//! retired count), both on the functional machine and across the
//! functional→cycle-level hand-off `carf-sample` performs — and a sampled
//! run itself must be deterministic whatever the worker count.

use carf_bench::sample::SampleSpec;
use carf_bench::{run_matrix, Budget};
use carf_core::CarfParams;
use carf_isa::{DecodedProgram, ExecError, Machine};
use carf_sim::{AnySimulator, SimConfig};
use carf_workloads::{all_workloads, SizeClass, Suite};
use proptest::prelude::*;

/// Advances `m` to `target` retired instructions; halting early is fine,
/// anything else fatal.
fn fast_forward(m: &mut Machine, decoded: &DecodedProgram, target: u64) {
    let needed = target.saturating_sub(m.retired());
    if needed == 0 || m.is_halted() {
        return;
    }
    match m.run_decoded(decoded, needed) {
        Ok(_) | Err(ExecError::InstLimit(_)) => {}
        Err(e) => panic!("fast-forward failed: {e}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Save/restore at a random cut point, for every workload family:
    /// the restored machine's checkpoint must fingerprint identically,
    /// and *continuing* from the restore must track the original machine
    /// instruction for instruction.
    #[test]
    fn functional_checkpoints_round_trip_bit_identically(
        cut in 1u64..20_000,
        extra in 1u64..5_000,
    ) {
        for w in all_workloads() {
            let program = w.build_class(SizeClass::Test);
            let decoded = DecodedProgram::decode(&program);

            let mut m = Machine::load(&program);
            fast_forward(&mut m, &decoded, cut);
            let ckpt = m.checkpoint(&program);

            let mut restored = Machine::from_checkpoint(&program, &ckpt)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            prop_assert_eq!(
                restored.checkpoint(&program).fingerprint(),
                ckpt.fingerprint(),
                "{}: restore must reproduce the checkpoint exactly", w.name
            );

            fast_forward(&mut m, &decoded, cut + extra);
            fast_forward(&mut restored, &decoded, cut + extra);
            prop_assert_eq!(
                m.retired(), restored.retired(),
                "{}: continuation diverged in length", w.name
            );
            prop_assert_eq!(
                m.checkpoint(&program).fingerprint(),
                restored.checkpoint(&program).fingerprint(),
                "{}: continuation diverged architecturally", w.name
            );
        }
    }

}

/// A checkpoint taken from a machine that ran clean through must carry
/// the halted flag and final state faithfully.
#[test]
fn checkpoints_survive_program_completion() {
    for w in all_workloads() {
        let program = w.build_class(SizeClass::Test);
        let mut m = Machine::load(&program);
        // Test-size workloads may exceed this cap; either way is a valid
        // state to checkpoint.
        let _ = m.run(&program, 50_000);
        let ckpt = m.checkpoint(&program);
        let restored = Machine::from_checkpoint(&program, &ckpt)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(restored.is_halted(), m.is_halted(), "{}", w.name);
        assert_eq!(restored.retired(), m.retired(), "{}", w.name);
        assert_eq!(restored.checkpoint(&program).fingerprint(), ckpt.fingerprint(), "{}", w.name);
    }
}

/// The hand-off `carf-sample` relies on, under co-simulation on the pinned
/// suite's workloads: fast-forwarding functionally, restoring into the
/// cycle-level simulator, and simulating an interval must land on the same
/// architectural state (and retired count) as simulating straight through
/// from reset — for both the baseline and the content-aware machine.
#[test]
fn restore_then_simulate_matches_straight_through() {
    const FF_TARGET: u64 = 5_000;
    const MEASURE: u64 = 2_000;

    let configs = [
        ("baseline", SimConfig::paper_baseline()),
        ("carf", SimConfig::paper_carf(CarfParams::paper_default())),
    ];
    for (label, base_cfg) in configs {
        let mut cfg = base_cfg;
        cfg.cosim = true; // golden machine cross-checks every commit
        for w in all_workloads() {
            let program = w.build_class(SizeClass::Test);

            let mut straight = AnySimulator::new(cfg.clone(), &program);
            straight
                .run_exact(FF_TARGET + MEASURE)
                .unwrap_or_else(|e| panic!("{label}/{} straight: {e}", w.name));

            let decoded = DecodedProgram::decode(&program);
            let mut m = Machine::load(&program);
            fast_forward(&mut m, &decoded, FF_TARGET);
            let ckpt = m.checkpoint(&program);
            let mut resumed = AnySimulator::from_checkpoint(cfg.clone(), &program, &ckpt)
                .unwrap_or_else(|e| panic!("{label}/{} restore: {e}", w.name));
            resumed
                .run_exact(FF_TARGET + MEASURE)
                .unwrap_or_else(|e| panic!("{label}/{} resumed: {e}", w.name));

            assert_eq!(
                straight.retired(),
                resumed.retired(),
                "{label}/{}: retired counts diverged",
                w.name
            );
            assert_eq!(
                straight.arch_checkpoint().fingerprint(),
                resumed.arch_checkpoint().fingerprint(),
                "{label}/{}: architectural state diverged after restore",
                w.name
            );
        }
    }
}

/// Sampled runs must be bit-identical serial vs parallel: sampling rides
/// the same worker pool as every sweep binary, so the `--sample` flag must
/// not reintroduce scheduling-dependent results.
#[test]
fn sampled_runs_are_deterministic_across_worker_counts() {
    let mut serial = Budget::quick();
    serial.size = SizeClass::Test;
    serial.max_insts = 40_000;
    serial.jobs = 1;
    serial.sample = Some(SampleSpec { interval: 2_000, period: 4, warmup: 1_000 });
    let mut parallel = serial;
    parallel.jobs = 4;

    let carf = SimConfig::paper_carf(CarfParams::paper_default());
    let points = [(carf.clone(), Suite::Int), (carf, Suite::Fp)];

    let s = run_matrix(&points, &serial);
    let p = run_matrix(&points, &parallel);
    assert_eq!(s.len(), p.len());
    for (a, b) in s.iter().zip(&p) {
        assert_eq!(a.suite, b.suite);
        assert_eq!(a.runs.len(), b.runs.len(), "{:?}", a.suite);
        for ((an, astats), (bn, bstats)) in a.runs.iter().zip(&b.runs) {
            assert_eq!(an, bn, "{:?}: workload order must match", a.suite);
            assert_eq!(astats, bstats, "{:?}/{an}: sampled run diverged with jobs=4", a.suite);
        }
    }
}
