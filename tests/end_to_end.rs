//! End-to-end integration: full workload kernels through the cycle-level
//! simulator under every register-file organization, with the golden-model
//! check enabled throughout.

use carf_core::CarfParams;
use carf_sim::{RegFileKind, SimConfig, SimResult, AnySimulator};
use carf_workloads::{all_workloads, int_suite, SizeClass};

fn run(cfg: &SimConfig, name: &str, max: u64) -> (SimResult, carf_sim::SimStats) {
    let wl = all_workloads().into_iter().find(|w| w.name == name).expect("workload exists");
    let program = wl.build_class(SizeClass::Test);
    let mut sim = AnySimulator::new(cfg.clone(), &program);
    let result = sim.run(max).unwrap_or_else(|e| panic!("{name}: {e}"));
    (result, sim.stats().clone())
}

#[test]
fn every_kernel_runs_cosim_clean_on_the_carf_machine() {
    let mut cfg = SimConfig::paper_carf(CarfParams::paper_default());
    cfg.cosim = true;
    for wl in all_workloads() {
        let (result, _) = run(&cfg, wl.name, 150_000);
        assert!(result.committed > 1_000, "{}", wl.name);
    }
}

#[test]
fn every_kernel_runs_cosim_clean_on_the_baseline_machine() {
    let mut cfg = SimConfig::paper_baseline();
    cfg.cosim = true;
    for wl in all_workloads() {
        let (result, _) = run(&cfg, wl.name, 150_000);
        assert!(result.committed > 1_000, "{}", wl.name);
    }
}

#[test]
fn carf_ipc_stays_within_a_sane_band_of_baseline() {
    let mut base = SimConfig::paper_baseline();
    base.cosim = true;
    let mut carf = SimConfig::paper_carf(CarfParams::paper_default());
    carf.cosim = true;
    for wl in int_suite() {
        let (b, _) = run(&base, wl.name, 100_000);
        let (c, _) = run(&carf, wl.name, 100_000);
        let rel = c.ipc / b.ipc;
        // The paper's average loss is 1.7%; individual kernels vary, but
        // anything outside this band indicates a pipeline bug.
        assert!(rel > 0.80 && rel < 1.05, "{}: carf/base = {rel:.3}", wl.name);
    }
}

#[test]
fn unlimited_machine_is_at_least_as_fast_as_baseline() {
    let mut unl = SimConfig::paper_unlimited();
    unl.cosim = true;
    let mut base = SimConfig::paper_baseline();
    base.cosim = true;
    for name in ["pointer_chase", "sort_kernel", "matvec"] {
        let (u, _) = run(&unl, name, 100_000);
        let (b, _) = run(&base, name, 100_000);
        assert!(u.ipc >= b.ipc * 0.995, "{name}: unlimited {:.3} < baseline {:.3}", u.ipc, b.ipc);
    }
}

#[test]
fn simulation_is_deterministic() {
    let cfg = SimConfig::paper_carf(CarfParams::paper_default());
    let (r1, s1) = run(&cfg, "hash_table", 80_000);
    let (r2, s2) = run(&cfg, "hash_table", 80_000);
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.committed, r2.committed);
    assert_eq!(s1.int_rf.writes.short, s2.int_rf.writes.short);
    assert_eq!(s1.mispredicts, s2.mispredicts);
}

#[test]
fn classification_reflects_workload_character() {
    let mut cfg = SimConfig::paper_carf(CarfParams::paper_default());
    cfg.cosim = true;
    // Pointer chasing: plenty of short (heap addresses) and simple values.
    let (_, chase) = run(&cfg, "pointer_chase", 100_000);
    assert!(chase.int_rf.writes.short > 0);
    assert!(chase.int_rf.writes.simple > 0);
    // Hashing: dominated by long (wide hash) values.
    let (_, hash) = run(&cfg, "hash_table", 100_000);
    assert!(
        hash.int_rf.writes.long > hash.int_rf.writes.short,
        "{:?}",
        hash.int_rf.writes
    );
}

#[test]
fn deadlock_recoveries_do_not_happen_with_paper_sizing() {
    let mut cfg = SimConfig::paper_carf(CarfParams::paper_default());
    cfg.cosim = true;
    for name in ["hash_table", "sparse_update", "tridiag"] {
        let (_, stats) = run(&cfg, name, 100_000);
        assert_eq!(stats.deadlock_recoveries, 0, "{name}");
    }
}

#[test]
fn stores_drain_to_memory_in_program_order() {
    // The compress kernel writes an output buffer; its RLE output must
    // decode to the input even on the out-of-order machine (the functional
    // check is in carf-workloads; here cosim guarantees equivalence, so we
    // only need a clean run that actually stores).
    let mut cfg = SimConfig::paper_carf(CarfParams::paper_default());
    cfg.cosim = true;
    let (result, stats) = run(&cfg, "compress_loop", 120_000);
    assert!(result.committed > 10_000);
    assert!(stats.stores > 500);
    assert!(stats.stl_forwards < stats.loads, "forwards bounded by loads");
}

#[test]
fn regfile_kind_is_observable_in_config() {
    let cfg = SimConfig::paper_carf(CarfParams::paper_default());
    assert!(matches!(cfg.regfile, RegFileKind::ContentAware(..)));
    let cfg = SimConfig::paper_baseline();
    assert!(matches!(cfg.regfile, RegFileKind::Baseline));
}

#[test]
fn extended_kernels_run_cosim_clean_on_both_machines() {
    for wl in carf_workloads::extended_suite() {
        let program = wl.build_class(SizeClass::Test);
        for mut cfg in [
            SimConfig::paper_baseline(),
            SimConfig::paper_carf(CarfParams::paper_default()),
        ] {
            cfg.cosim = true;
            let mut sim = AnySimulator::new(cfg, &program);
            let r = sim.run(120_000).unwrap_or_else(|e| panic!("{}: {e}", wl.name));
            assert!(r.committed > 1_000, "{}", wl.name);
        }
    }
}
