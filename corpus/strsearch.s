; Naive substring search: count occurrences of a 4-byte needle in 2 KiB
; of two-letter text ("a"/"b"), so matches actually happen (~128
; expected) and the inner loop runs a couple of iterations on average.
.data
text:   .zero 2048
needle: .bytes 97 98 98 97          ; "abba"
result: .words 0
.text
_start:
        li   x3, 0x0123456789abcdef     ; LCG state
        li   x6, 6364136223846793005
        li   x7, 1442695040888963407
        li   x1, text
        li   x4, 2048
        mv   x5, x1
fill:
        mul  x3, x3, x6
        add  x3, x3, x7
        srli x8, x3, 61
        andi x8, x8, 1
        addi x8, x8, 97     ; 'a' or 'b'
        sb   x8, 0(x5)
        addi x5, x5, 1
        addi x4, x4, -1
        bne  x4, x0, fill

        li   x10, 0         ; match count
        li   x11, needle
        mv   x5, x1         ; window start
        addi x12, x1, 2045  ; one past the last window start
outer:
        li   x13, 0         ; k
inner:
        add  x14, x5, x13
        lbu  x6, 0(x14)
        add  x15, x11, x13
        lbu  x7, 0(x15)
        bne  x6, x7, miss
        addi x13, x13, 1
        slti x9, x13, 4
        bne  x9, x0, inner
        addi x10, x10, 1    ; full match
miss:
        addi x5, x5, 1
        bltu x5, x12, outer

        li   x11, result
        st   x10, 0(x11)
        halt
