; List primitives for the listops kernel. The dominant access pattern is
; the pointer chase: every `ld x4, 8(x4)` depends on the previous load.

; list_reverse: x4 = head -> x4 = new head. Clobbers x5, x6.
.globl list_reverse
list_reverse:
        li   x5, 0          ; prev
rev_loop:
        beq  x4, x0, rev_done
        ld   x6, 8(x4)      ; next
        st   x5, 8(x4)      ; node.next = prev
        mv   x5, x4
        mv   x4, x6
        j    rev_loop
rev_done:
        mv   x4, x5
        ret  x31

; list_sum: x4 = head -> x10 = sum(value * position). Clobbers x5, x6.
.globl list_sum
list_sum:
        li   x10, 0
        li   x5, 1          ; position, 1-based
sum_loop:
        beq  x4, x0, sum_done
        ld   x6, 0(x4)
        mul  x6, x6, x5
        add  x10, x10, x6
        addi x5, x5, 1
        ld   x4, 8(x4)
        j    sum_loop
sum_done:
        ret  x31
