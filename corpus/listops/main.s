; Linked-list workout: build 2000 nodes in the pool (prepending, so the
; list comes out in reverse build order), reverse the list in place, then
; take a position-weighted sum. Node layout: [value u64][next u64].
.globl _start
.data
pool:   .zero 32000         ; 2000 nodes of 16 bytes
result: .words 0
.text
_start:
        li   x1, pool
        li   x3, 0x9e3779b97f4a7c15     ; LCG state
        li   x6, 6364136223846793005
        li   x7, 1442695040888963407
        li   x5, 2000
        li   x4, 0          ; head = null
build:
        mul  x3, x3, x6
        add  x3, x3, x7
        st   x3, 0(x1)      ; node.value
        st   x4, 8(x1)      ; node.next = head
        mv   x4, x1
        addi x1, x1, 16
        addi x5, x5, -1
        bne  x5, x0, build

        jal  x31, list_reverse      ; x4 = reversed head
        jal  x31, list_sum          ; x10 = weighted sum
        li   x11, result
        st   x10, 0(x11)
        halt
