; CRC-32 (reflected, polynomial 0xEDB88320) over 1024 pseudo-random
; bytes, computed bitwise — a long chain of narrow shift/xor values.
.data
buf:    .zero 1024
result: .words 0
.text
_start:
        li   x1, buf
        li   x3, 0x1234567890abcdef     ; LCG state
        li   x6, 6364136223846793005
        li   x7, 1442695040888963407
        li   x4, 1024
        mv   x5, x1
fill:
        mul  x3, x3, x6
        add  x3, x3, x7
        srli x8, x3, 56
        sb   x8, 0(x5)
        addi x5, x5, 1
        addi x4, x4, -1
        bne  x4, x0, fill

        li   x10, 0xffffffff
        li   x9, 0xedb88320
        mv   x5, x1
        li   x4, 1024
byte_loop:
        lbu  x6, 0(x5)
        xor  x10, x10, x6
        li   x7, 8
bit_loop:
        andi x8, x10, 1
        srli x10, x10, 1
        beq  x8, x0, bit_next
        xor  x10, x10, x9
bit_next:
        addi x7, x7, -1
        bne  x7, x0, bit_loop
        addi x5, x5, 1
        addi x4, x4, -1
        bne  x4, x0, byte_loop

        li   x6, 0xffffffff
        xor  x10, x10, x6
        li   x11, result
        st   x10, 0(x11)
        halt
