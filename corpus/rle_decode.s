; Run-length decoder: generate 1024 (count, value) byte pairs with
; counts 1..8, expand them into the output buffer, then checksum the
; decoded bytes and fold in the decoded length.
.data
enc:    .zero 2048          ; 1024 pairs
dec:    .zero 8192          ; worst case 1024 * 8
result: .words 0
.text
_start:
        li   x3, 0xdeadbeefcafebabe     ; LCG state
        li   x6, 6364136223846793005
        li   x7, 1442695040888963407
        li   x1, enc
        li   x4, 1024
        mv   x5, x1
gen:
        mul  x3, x3, x6
        add  x3, x3, x7
        srli x8, x3, 58
        andi x9, x8, 7
        addi x9, x9, 1      ; count in 1..8
        sb   x9, 0(x5)
        srli x8, x3, 48
        andi x8, x8, 255
        sb   x8, 1(x5)
        addi x5, x5, 2
        addi x4, x4, -1
        bne  x4, x0, gen

        mv   x5, x1         ; decode
        li   x11, dec
        mv   x12, x11       ; out ptr
        li   x4, 1024
pair:
        lbu  x9, 0(x5)      ; count
        lbu  x8, 1(x5)      ; value
run:
        sb   x8, 0(x12)
        addi x12, x12, 1
        addi x9, x9, -1
        bne  x9, x0, run
        addi x5, x5, 2
        addi x4, x4, -1
        bne  x4, x0, pair

        li   x10, 0         ; checksum over [dec, out)
        mv   x5, x11
cksum:
        bgeu x5, x12, done
        lbu  x6, 0(x5)
        slli x7, x10, 1
        srli x8, x10, 63
        or   x10, x7, x8
        xor  x10, x10, x6
        addi x5, x5, 1
        j    cksum
done:
        sub  x6, x12, x11   ; decoded length
        add  x10, x10, x6
        li   x11, result
        st   x10, 0(x11)
        halt
