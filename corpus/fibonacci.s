; Iterative Fibonacci (mod 2^64): x10 = fib(10000), stored to the result
; slot. Promoted from examples/asm — the smallest corpus kernel, and the
; smoke program the docs use throughout.
.data
result: .words 0
.text
_start:
        li   x1, 0          ; fib(i)
        li   x2, 1          ; fib(i+1)
        li   x4, 10000      ; iterations
loop:
        add  x3, x1, x2
        mv   x1, x2
        mv   x2, x3
        addi x4, x4, -1
        bne  x4, x0, loop

        mv   x10, x3
        li   x11, result
        st   x10, 0(x11)
        halt
