; Quicksort driver: fill 512 pseudo-random u64s, sort them with the
; recursive qsort from the sibling unit, then checksum the sorted array
; (and fold in the inversion count, which must be zero).
.globl _start
.data
arr:    .zero 4096          ; 512 u64
result: .words 0
.text
_start:
        li   x2, 0x7f0000   ; call stack, grows down
        li   x1, arr
        li   x3, 0x243f6a8885a308d3     ; LCG state
        li   x6, 6364136223846793005
        li   x7, 1442695040888963407
        li   x4, 512
        mv   x5, x1
fill:
        mul  x3, x3, x6
        add  x3, x3, x7
        st   x3, 0(x5)
        addi x5, x5, 8
        addi x4, x4, -1
        bne  x4, x0, fill

        mv   x4, x1         ; lo = &arr[0]
        addi x5, x1, 4088   ; hi = &arr[511]
        jal  x31, qsort

        li   x10, 0         ; checksum
        li   x11, 0         ; inversions
        mv   x5, x1
        li   x4, 0
        li   x7, 512
        li   x8, 0          ; previous value
check:
        ld   x6, 0(x5)
        bgeu x6, x8, ordered
        addi x11, x11, 1
ordered:
        mv   x8, x6
        xor  x6, x6, x4
        add  x10, x10, x6
        addi x5, x5, 8
        addi x4, x4, 1
        bne  x4, x7, check

        add  x10, x10, x11  ; zero when sorted
        li   x12, result
        st   x10, 0(x12)
        halt
