; Recursive quicksort over u64 elements, Lomuto partition.
;
;   qsort(x4 = lo addr, x5 = hi addr)   ; inclusive bounds, 8-byte elems
;
; x2 is the call stack pointer; x31 the link register. Clobbers x6..x9
; and x11.
.globl qsort
qsort:
        bltu x4, x5, qs_go
        ret  x31
qs_go:
        addi x2, x2, -32
        st   x31, 0(x2)
        st   x4, 8(x2)
        st   x5, 16(x2)

        ld   x6, 0(x5)      ; pivot = *hi
        addi x7, x4, -8     ; i = lo - 8
        mv   x8, x4         ; j = lo
qs_loop:
        bgeu x8, x5, qs_after
        ld   x9, 0(x8)
        bltu x6, x9, qs_next        ; skip when pivot < *j
        addi x7, x7, 8
        ld   x11, 0(x7)
        st   x9, 0(x7)
        st   x11, 0(x8)
qs_next:
        addi x8, x8, 8
        j    qs_loop
qs_after:
        addi x7, x7, 8      ; pivot slot
        ld   x9, 0(x7)
        ld   x11, 0(x5)
        st   x11, 0(x7)
        st   x9, 0(x5)
        st   x7, 24(x2)

        ld   x4, 8(x2)      ; left half: (lo, pivot - 8)
        addi x5, x7, -8
        jal  x31, qsort
        ld   x4, 24(x2)     ; right half: (pivot + 8, hi)
        addi x4, x4, 8
        ld   x5, 16(x2)
        jal  x31, qsort

        ld   x31, 0(x2)
        addi x2, x2, 32
        ret  x31
