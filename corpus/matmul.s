; 16x16 integer matrix multiply (row-major u64): C = A * B over
; pseudo-random inputs, then a rotate-xor checksum of C.
.data
mat_a:  .zero 2048
mat_b:  .zero 2048
mat_c:  .zero 2048
result: .words 0
.text
_start:
        li   x3, 0x0feedface0ddba11     ; LCG state
        li   x6, 6364136223846793005
        li   x7, 1442695040888963407
        li   x1, mat_a
        li   x2, mat_b
        li   x4, 256
fill:
        mul  x3, x3, x6
        add  x3, x3, x7
        st   x3, 0(x1)
        mul  x3, x3, x6
        add  x3, x3, x7
        st   x3, 0(x2)
        addi x1, x1, 8
        addi x2, x2, 8
        addi x4, x4, -1
        bne  x4, x0, fill

        li   x1, mat_a
        li   x2, mat_b
        li   x5, mat_c
        li   x11, 0         ; i
mm_i:
        li   x12, 0         ; j
mm_j:
        li   x13, 0         ; k
        li   x14, 0         ; acc
        slli x15, x11, 7
        add  x15, x15, x1   ; &A[i][0]
        slli x16, x12, 3
        add  x16, x16, x2   ; &B[0][j]
mm_k:
        ld   x7, 0(x15)
        ld   x8, 0(x16)
        mul  x7, x7, x8
        add  x14, x14, x7
        addi x15, x15, 8
        addi x16, x16, 128
        addi x13, x13, 1
        slti x9, x13, 16
        bne  x9, x0, mm_k
        st   x14, 0(x5)
        addi x5, x5, 8
        addi x12, x12, 1
        slti x9, x12, 16
        bne  x9, x0, mm_j
        addi x11, x11, 1
        slti x9, x11, 16
        bne  x9, x0, mm_i

        li   x10, 0         ; checksum = rotl1(checksum) ^ c
        li   x5, mat_c
        li   x4, 256
sum:
        ld   x6, 0(x5)
        slli x7, x10, 1
        srli x8, x10, 63
        or   x10, x7, x8
        xor  x10, x10, x6
        addi x5, x5, 8
        addi x4, x4, -1
        bne  x4, x0, sum

        li   x11, result
        st   x10, 0(x11)
        halt
