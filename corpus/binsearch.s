; Binary search: build a 1024-entry strictly increasing table
; (tab[i] = i*i + 3i), then probe it with 400 pseudo-random 21-bit keys,
; accumulating each key's insertion point into a rotating checksum.
.data
tab:    .zero 8192
result: .words 0
.text
_start:
        li   x1, tab
        li   x4, 0
        li   x5, 1024
build:
        mul  x6, x4, x4
        slli x7, x4, 1
        add  x6, x6, x7
        add  x6, x6, x4     ; i*i + 3i
        slli x7, x4, 3
        add  x7, x7, x1
        st   x6, 0(x7)
        addi x4, x4, 1
        bne  x4, x5, build

        li   x3, 0x2545f4914f6cdd1d     ; LCG state
        li   x8, 6364136223846793005
        li   x9, 1442695040888963407
        li   x10, 0
        li   x11, 400       ; probes
probe:
        mul  x3, x3, x8
        add  x3, x3, x9
        srli x13, x3, 43    ; 21-bit key, same order as max table entry
        li   x14, 0         ; lo
        li   x15, 1024      ; hi: find first tab[m] >= key
bs:
        bgeu x14, x15, bs_done
        add  x16, x14, x15
        srli x16, x16, 1    ; mid
        slli x17, x16, 3
        add  x17, x17, x1
        ld   x18, 0(x17)
        bltu x18, x13, bs_right
        mv   x15, x16
        j    bs
bs_right:
        addi x14, x16, 1
        j    bs
bs_done:
        add  x10, x10, x14
        slli x6, x10, 1     ; rotl1 keeps probe order significant
        srli x7, x10, 63
        or   x10, x6, x7
        addi x11, x11, -1
        bne  x11, x0, probe

        li   x11, result
        st   x10, 0(x11)
        halt
