#!/bin/bash
# Regenerates every table and figure at full scale (plus the extension
# studies). Outputs land in results/<binary>.txt.
set -u
cd "$(dirname "$0")/.."
BINS="
fig1_value_distribution
fig2_similarity
fig5_ipc_sweep
fig6_access_distribution
table2_bypass
table3_access_energy
table4_operand_mix
fig7_energy
fig8_area
fig9_access_time
related_work
sweep_subfile_sizes
sweep_ports
sweep_width
edp_analysis
headline_summary
detail_per_workload
ext_clustering
ext_smt_sharing
ablations
"
for b in $BINS; do
  echo "[$(date +%H:%M:%S)] $b"
  cargo run -p carf-bench --release --bin "$b" -- --full > "results/$b.txt" 2>&1
done
echo "[$(date +%H:%M:%S)] carf-smt"
cargo run -p carf-bench --release --bin carf-smt -- --full > "results/carf-smt.txt" 2>&1
echo "[$(date +%H:%M:%S)] all experiments complete"
