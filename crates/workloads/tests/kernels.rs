//! Functional validation of every workload kernel: each runs to halt on
//! the reference machine and leaves behaviorally meaningful state.

use carf_isa::Machine;
use carf_workloads::{all_workloads, fp_suite, int_suite, SizeClass};

const RESULT_SLOT: u64 = 0x0000_0000_0060_0000;

fn run_to_halt(name: &str) -> Machine {
    let wl = all_workloads().into_iter().find(|w| w.name == name).expect("workload exists");
    let program = wl.build_class(SizeClass::Test);
    let mut m = Machine::load(&program);
    m.run(&program, 100_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
    m
}

#[test]
fn every_kernel_halts_at_test_size() {
    for wl in all_workloads() {
        let program = wl.build_class(SizeClass::Test);
        let mut m = Machine::load(&program);
        m.run(&program, 100_000_000).unwrap_or_else(|e| panic!("{}: {e}", wl.name));
        assert!(m.is_halted(), "{}", wl.name);
        assert!(m.retired() > 1_000, "{} retired only {}", wl.name, m.retired());
    }
}

#[test]
fn kernels_are_deterministic() {
    for wl in all_workloads() {
        let p1 = wl.build_class(SizeClass::Test);
        let p2 = wl.build_class(SizeClass::Test);
        assert_eq!(p1.insts, p2.insts, "{}", wl.name);
        assert_eq!(p1.data, p2.data, "{}", wl.name);
    }
}

#[test]
fn size_scales_dynamic_instruction_count() {
    for wl in int_suite() {
        let small = wl.build(1);
        let large = wl.build(4);
        let retired = |p: &carf_isa::Program| {
            let mut m = Machine::load(p);
            m.run(p, 200_000_000).unwrap();
            m.retired()
        };
        let (rs, rl) = (retired(&small), retired(&large));
        assert!(rl > rs * 2, "{}: {rs} -> {rl}", wl.name);
    }
}

#[test]
fn pointer_chase_checksum_is_stable_and_nonzero() {
    let m = run_to_halt("pointer_chase");
    assert_ne!(m.mem.read_u64(RESULT_SLOT), 0);
}

#[test]
fn sort_kernel_actually_sorts() {
    let m = run_to_halt("sort_kernel");
    // The work buffer sits directly after the 128-word source array.
    let src = 0x0000_7f3a_8000_0000u64;
    let work = src + 128 * 8;
    let mut prev = m.mem.read_u64(work);
    for i in 1..128u64 {
        let v = m.mem.read_u64(work + i * 8);
        assert!(v >= prev, "work[{i}] = {v:#x} < work[{}] = {prev:#x}", i - 1);
        prev = v;
    }
}

#[test]
fn string_match_finds_the_planted_patterns() {
    let m = run_to_halt("string_match");
    let matches = m.mem.read_u64(RESULT_SLOT);
    // 48 planted occurrences per scan (some may overlap-plant earlier ones,
    // so allow slack), at least one scan repetition.
    assert!(matches >= 40, "only {matches} matches found");
}

#[test]
fn compress_loop_output_decodes_to_the_input() {
    let m = run_to_halt("compress_loop");
    let input = 0x0000_7f3a_8000_0000u64;
    let output = 0x0000_7f3a_c000_0000u64;
    let pairs = m.mem.read_u64(RESULT_SLOT);
    assert!(pairs > 0);
    // Decode the (byte, run) pairs and compare with the original input.
    let mut decoded = Vec::new();
    for k in 0..pairs {
        let byte = m.mem.read_u8(output + 2 * k);
        let run = m.mem.read_u8(output + 2 * k + 1) as usize;
        assert!(run > 0, "zero-length run at pair {k}");
        decoded.extend(std::iter::repeat_n(byte, run));
    }
    assert_eq!(decoded.len(), 4096);
    for (i, b) in decoded.iter().enumerate() {
        assert_eq!(*b, m.mem.read_u8(input + i as u64), "byte {i}");
    }
}

#[test]
fn state_machine_visits_accepting_states() {
    let m = run_to_halt("state_machine");
    let accepts = m.mem.read_u64(RESULT_SLOT);
    // Roughly half the states are odd-numbered; expect a broad band.
    assert!(accepts > 500, "accepts = {accepts}");
}

#[test]
fn fp_kernels_produce_finite_checksums() {
    for wl in fp_suite() {
        let program = wl.build_class(SizeClass::Test);
        let mut m = Machine::load(&program);
        m.run(&program, 100_000_000).unwrap();
        let checksum = m.mem.read_f64(RESULT_SLOT);
        assert!(checksum.is_finite(), "{}: checksum = {checksum}", wl.name);
        assert_ne!(checksum, 0.0, "{}", wl.name);
    }
}

#[test]
fn hash_table_checksum_depends_on_size() {
    let wl = int_suite().into_iter().find(|w| w.name == "hash_table").unwrap();
    let result = |size: u32| {
        let p = wl.build(size);
        let mut m = Machine::load(&p);
        m.run(&p, 200_000_000).unwrap();
        m.mem.read_u64(RESULT_SLOT)
    };
    assert_ne!(result(1), result(2));
}

mod extended {
    use carf_isa::Machine;
    use carf_workloads::{extended_suite, SizeClass};

    #[test]
    fn extended_kernels_halt_and_scale() {
        assert_eq!(extended_suite().len(), 5);
        for wl in extended_suite() {
            let p = wl.build_class(SizeClass::Test);
            let mut m = Machine::load(&p);
            m.run(&p, 200_000_000).unwrap_or_else(|e| panic!("{}: {e}", wl.name));
            assert!(m.is_halted(), "{}", wl.name);
            assert!(m.retired() > 1_000, "{} retired {}", wl.name, m.retired());
        }
    }

    #[test]
    fn extended_names_do_not_collide_with_the_paper_suites() {
        let base: Vec<&str> = carf_workloads::all_workloads().iter().map(|w| w.name).collect();
        for wl in extended_suite() {
            assert!(!base.contains(&wl.name), "{} collides", wl.name);
        }
    }

    #[test]
    fn btree_lookup_finds_some_keys() {
        let wl = extended_suite().into_iter().find(|w| w.name == "btree_lookup").unwrap();
        let p = wl.build(2);
        let mut m = Machine::load(&p);
        m.run(&p, 200_000_000).unwrap();
        // The checksum accumulates payloads of hit lookups; with 4095 keys
        // out of a 2^30 space hits are rare but the checksum is
        // deterministic either way.
        let _ = m.mem.read_u64(0x0000_0000_0060_0000);
    }

    #[test]
    fn bitboard_counts_bits() {
        let wl = extended_suite().into_iter().find(|w| w.name == "bitboard").unwrap();
        let p = wl.build(1);
        let mut m = Machine::load(&p);
        m.run(&p, 200_000_000).unwrap();
        let count = m.mem.read_u64(0x0000_0000_0060_0000);
        // 256 boards x 4 reps, masked to roughly a third of 64 bits each:
        // anything in a broad positive band is sane and deterministic.
        assert!(count > 4_000, "popcount total = {count}");
    }
}
