//! Adversarial kernels: worst-case inputs for the content-aware file.
//!
//! Where the default suites model *representative* programs and
//! `extended` widens the behavior space, these kernels are deliberately
//! hostile — each one attacks a specific structural weakness of the
//! content-aware organization, for the multi-context contention studies
//! (`carf-smt`) and the differential fuzz harness:
//!
//! * [`short_thrash`] — address-cluster churn: pointer values that all
//!   collide in one direct-indexed Short slot while cycling distinct
//!   high-bit clusters, so the 2^n-entry Short file keeps evicting and
//!   every spill lands in the Long file;
//! * [`long_storm`] — Long-file exhaustion: two dozen concurrent
//!   full-width LCG streams keep live Long demand pinned near the
//!   issue-width stall threshold;
//! * [`phase_flip`] — a value-class phase change mid-run: narrow
//!   arithmetic (Simple/Short) flips to full-width values (Long) every
//!   repetition, defeating any steady-state provisioning.
//!
//! Like `extended`, these are *not* part of
//! [`crate::int_suite`]/[`crate::fp_suite`] (whose composition the
//! recorded experiment results depend on); harnesses opt in through
//! [`adversarial_suite`].

use crate::gen::{rng, GLOBALS_BASE, HEAP_BASE};
use crate::suite::{Suite, Workload};
use carf_isa::{x, Asm, Program};
use rand::Rng;

/// The three hostile kernels (all integer).
pub fn adversarial_suite() -> Vec<Workload> {
    vec![
        Workload::new(
            "short_thrash",
            Suite::Int,
            "address-cluster churn: one Short slot, rotating high-bit clusters",
            short_thrash,
            (2, 30, 300),
        ),
        Workload::new(
            "long_storm",
            Suite::Int,
            "Long-file exhaustion: 24 live full-width LCG streams near the stall threshold",
            long_storm,
            (2, 30, 300),
        ),
        Workload::new(
            "phase_flip",
            Suite::Int,
            "value-class phase change: narrow arithmetic flips to full-width every rep",
            phase_flip,
            (2, 30, 300),
        ),
    ]
}

fn epilogue_int(asm: &mut Asm) {
    asm.li(x(28), GLOBALS_BASE);
    asm.st(x(1), x(28), 0);
    asm.halt();
}

/// Rotates stores/loads through `CLUSTERS` addresses that agree in value
/// bits `[d, d+n)` (one Short slot for the paper's d=17, n=3 geometry)
/// but differ above bit 20, so every access belongs to a *different*
/// (64-d)-similarity cluster. The direct-indexed Short file can hold only
/// one cluster per slot: each rotation evicts the last, and the churned
/// addresses spill to the Long file.
fn short_thrash(size: u32) -> Program {
    const CLUSTERS: u64 = 16;
    // 1 MiB apart: bits [0, 20) identical (same Short index, same page
    // offset), bit 20 onward distinct (different high-bit cluster).
    const CLUSTER_STRIDE: u64 = 1 << 20;
    let iters = u64::from(size) * 400;

    let mut asm = Asm::new();
    asm.li(x(10), HEAP_BASE);
    asm.li(x(11), CLUSTER_STRIDE);
    asm.li(x(12), CLUSTERS);
    asm.li(x(1), 0); // checksum
    asm.li(x(20), iters);
    asm.label("iter");
    asm.li(x(2), 0); // cluster index
    asm.add(x(3), x(10), x(0)); // addr = base
    asm.label("cluster");
    // The address write is the adversarial payload: a pointer value whose
    // Short-slot index never changes while its high bits always do.
    asm.st(x(1), x(3), 0);
    asm.ld(x(4), x(3), 0);
    asm.add(x(1), x(1), x(4));
    asm.addi(x(1), x(1), 1);
    asm.add(x(3), x(3), x(11)); // next cluster, same slot
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(12), "cluster");
    asm.addi(x(20), x(20), -1);
    asm.bne(x(20), x(0), "iter");
    epilogue_int(&mut asm);
    asm.finish().expect("short_thrash assembles")
}

/// Keeps 24 architectural registers holding live full-width LCG values,
/// refreshed every iteration: with renaming in flight, live Long demand
/// sits near the provisioned capacity, so the free-entry guard (stall at
/// `long_free_stall` ≈ issue width) fires continuously — the Long-file
/// analogue of a register-pressure storm.
fn long_storm(size: u32) -> Program {
    const STREAMS: u8 = 24; // x3..=x26
    let iters = u64::from(size) * 150;
    let mut seed_rng = rng(0x106_5708);

    let mut asm = Asm::new();
    asm.li(x(27), 6364136223846793005); // LCG multiplier
    asm.li(x(2), 1442695040888963407); // LCG increment
    for s in 0..STREAMS {
        // Full-width seeds: every stream starts (and stays) Long-class.
        asm.li(x(3 + s), seed_rng.gen::<u64>() | (1 << 63));
    }
    asm.li(x(20), iters);
    asm.label("storm");
    for s in 0..STREAMS {
        // xi = xi * A + C: a full-width product every time, and the old
        // value stays live until the new one commits.
        asm.mul(x(3 + s), x(3 + s), x(27));
        asm.add(x(3 + s), x(3 + s), x(2));
    }
    asm.addi(x(20), x(20), -1);
    asm.bne(x(20), x(0), "storm");
    // Fold the streams into the checksum.
    asm.li(x(1), 0);
    for s in 0..STREAMS {
        asm.xor(x(1), x(1), x(3 + s));
    }
    epilogue_int(&mut asm);
    asm.finish().expect("long_storm assembles")
}

/// Alternates a narrow phase (small-immediate arithmetic: every value
/// sign-extends from its low d+n bits, all Simple/Short) with a wide
/// phase (full-width LCG streams, all Long) each repetition. The
/// demographics any sampler sees in one phase are wrong for the next —
/// the stress case for capacity windowing and for interval sampling.
fn phase_flip(size: u32) -> Program {
    const STREAMS: u8 = 12; // x3..=x14
    let reps = u64::from(size) * 4;
    let narrow_iters = 300u64;
    let wide_iters = 150u64;
    let mut seed_rng = rng(0xF11B);
    let seeds: Vec<u64> = (0..STREAMS).map(|_| seed_rng.gen::<u64>() | (1 << 63)).collect();

    let mut asm = Asm::new();
    asm.li(x(27), 6364136223846793005);
    asm.li(x(26), 1442695040888963407);
    asm.li(x(1), 0); // checksum
    asm.li(x(21), reps);
    asm.label("rep");
    // ---- narrow phase: everything fits in the low d+n bits ----
    for s in 0..STREAMS {
        asm.li(x(3 + s), u64::from(s) * 37 + 5);
    }
    asm.li(x(20), narrow_iters);
    asm.label("narrow");
    for s in 0..STREAMS {
        asm.addi(x(3 + s), x(3 + s), 7);
        asm.andi(x(3 + s), x(3 + s), 0x7fff); // clamp to 15 bits: Simple
    }
    asm.addi(x(20), x(20), -1);
    asm.bne(x(20), x(0), "narrow");
    for s in 0..STREAMS {
        asm.add(x(1), x(1), x(3 + s));
    }
    // ---- wide phase: the same registers flip to full-width ----
    for (s, seed) in (0u8..).zip(seeds.iter()) {
        asm.li(x(3 + s), *seed);
    }
    asm.li(x(20), wide_iters);
    asm.label("wide");
    for s in 0..STREAMS {
        asm.mul(x(3 + s), x(3 + s), x(27));
        asm.add(x(3 + s), x(3 + s), x(26));
    }
    asm.addi(x(20), x(20), -1);
    asm.bne(x(20), x(0), "wide");
    for s in 0..STREAMS {
        asm.xor(x(1), x(1), x(3 + s));
    }
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    epilogue_int(&mut asm);
    asm.finish().expect("phase_flip assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_assemble_and_are_deterministic() {
        for w in adversarial_suite() {
            let a = w.build(2);
            let b = w.build(2);
            assert_eq!(a.insts, b.insts, "{} must be deterministic", w.name);
            assert!(!a.insts.is_empty());
        }
    }

    #[test]
    fn not_in_default_suites() {
        let defaults: Vec<&str> =
            crate::all_workloads().iter().map(|w| w.name).collect();
        for w in adversarial_suite() {
            assert!(!defaults.contains(&w.name), "{} leaked into a default suite", w.name);
        }
    }
}
