//! The SPECint-like kernels.
//!
//! Register conventions within kernels: `x1..x9` scratch/locals,
//! `x10..x19` pointers, `x20..x25` loop bounds and outer counters.

use crate::gen::{
    payload_values, permutation_ring, random_bytes, rng, runny_bytes, GLOBALS_BASE,
    HEAP2_BASE, HEAP_BASE,
};
use crate::suite::{Suite, Workload};
use carf_isa::{x, Asm, Program};

/// The registry for the integer suite.
pub fn suite() -> Vec<Workload> {
    vec![
        Workload::new(
            "pointer_chase",
            Suite::Int,
            "mcf-like linked-structure traversal: serial loads of heap pointers",
            pointer_chase,
            (2, 40, 400),
        ),
        Workload::new(
            "hash_table",
            Suite::Int,
            "perl-like hashing: wide multiplies, scattered table read-modify-write",
            hash_table,
            (2, 30, 300),
        ),
        Workload::new(
            "sort_kernel",
            Suite::Int,
            "bzip2-like insertion sort: data-dependent branches, shifting stores",
            sort_kernel,
            (1, 8, 60),
        ),
        Workload::new(
            "string_match",
            Suite::Int,
            "gcc/perl-like byte scanning with short-circuit compares",
            string_match,
            (1, 15, 150),
        ),
        Workload::new(
            "graph_walk",
            Suite::Int,
            "mcf-like CSR graph sweep: indexed indirection, irregular inner loops",
            graph_walk,
            (1, 25, 250),
        ),
        Workload::new(
            "state_machine",
            Suite::Int,
            "parser-like table-driven FSM over a byte stream",
            state_machine,
            (1, 15, 150),
        ),
        Workload::new(
            "compress_loop",
            Suite::Int,
            "gzip-like run-length encoding: byte IO, run-length counting",
            compress_loop,
            (1, 20, 200),
        ),
        Workload::new(
            "sparse_update",
            Suite::Int,
            "vpr-like scattered read-modify-write over a large array (cache-hostile)",
            sparse_update,
            (2, 30, 300),
        ),
    ]
}

/// Stores the checksum in `x1` to the well-known result slot and halts.
fn epilogue(asm: &mut Asm) {
    asm.li(x(28), GLOBALS_BASE);
    asm.st(x(1), x(28), 0);
    asm.halt();
}

/// Serial pointer chase around a shuffled ring of heap nodes.
fn pointer_chase(size: u32) -> Program {
    const NODES: usize = 1024;
    let steps = u64::from(size) * 2_000;
    let mut rng = rng(0xC0FFEE);
    let next = permutation_ring(&mut rng, NODES);
    let payloads = payload_values(&mut rng, NODES);

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    // Node layout: [next_ptr: u64][payload: u64].
    let mut image = Vec::with_capacity(NODES * 16);
    for i in 0..NODES {
        image.extend_from_slice(&(HEAP_BASE + (next[i] as u64) * 16).to_le_bytes());
        image.extend_from_slice(&payloads[i].to_le_bytes());
    }
    let head = asm.alloc_data(&image);

    asm.li(x(10), head);
    asm.li(x(1), 0); // checksum
    asm.li(x(20), steps);
    asm.label("chase");
    asm.ld(x(4), x(10), 8); // payload
    asm.add(x(1), x(1), x(4));
    asm.ld(x(10), x(10), 0); // next
    asm.addi(x(20), x(20), -1);
    asm.bne(x(20), x(0), "chase");
    epilogue(&mut asm);
    asm.finish().expect("pointer_chase assembles")
}

/// LCG-keyed hashing into a 4096-bucket table with read-modify-write.
fn hash_table(size: u32) -> Program {
    const BUCKETS: usize = 4096;
    let ops = u64::from(size) * 1_000;

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let table = asm.alloc_bytes_zeroed(BUCKETS * 8);

    asm.li(x(10), table);
    asm.li(x(4), 0x243F_6A88_85A3_08D3); // LCG state (pi digits)
    asm.li(x(5), 6364136223846793005); // LCG multiplier
    asm.li(x(6), 1442695040888963407); // LCG increment
    asm.li(x(1), 0); // checksum
    asm.li(x(20), ops);
    asm.label("op");
    // key = lcg(state)
    asm.mul(x(4), x(4), x(5));
    asm.add(x(4), x(4), x(6));
    // h = (key >> 13) & (BUCKETS-1)
    asm.srli(x(7), x(4), 13);
    asm.andi(x(7), x(7), (BUCKETS - 1) as i64);
    asm.slli(x(7), x(7), 3);
    asm.add(x(8), x(10), x(7));
    // bucket ^= key; checksum += bucket
    asm.ld(x(9), x(8), 0);
    asm.xor(x(9), x(9), x(4));
    asm.st(x(9), x(8), 0);
    asm.add(x(1), x(1), x(9));
    asm.addi(x(20), x(20), -1);
    asm.bne(x(20), x(0), "op");
    epilogue(&mut asm);
    asm.finish().expect("hash_table assembles")
}

/// Repeated insertion sort of a 128-element scratch copy.
fn sort_kernel(size: u32) -> Program {
    const N: usize = 128;
    let reps = u64::from(size);
    let mut rng = rng(0x50FA);
    use rand::Rng;
    let data: Vec<u64> = (0..N).map(|_| rng.gen_range(0..1u64 << 20)).collect();

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let src = asm.alloc_u64s(&data);
    let work = asm.alloc_bytes_zeroed(N * 8);

    asm.li(x(1), 0); // checksum
    asm.li(x(21), reps);
    asm.label("rep");
    // Copy src -> work.
    asm.li(x(2), 0);
    asm.li(x(3), N as u64);
    asm.li(x(10), src);
    asm.li(x(11), work);
    asm.label("copy");
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(10), x(4));
    asm.ld(x(6), x(5), 0);
    asm.add(x(5), x(11), x(4));
    asm.st(x(6), x(5), 0);
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(3), "copy");
    // Insertion sort work[0..N] (unsigned order).
    asm.li(x(2), 1); // i
    asm.label("outer");
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(11), x(4));
    asm.ld(x(6), x(5), 0); // key
    asm.mv(x(7), x(2)); // j
    asm.label("inner");
    asm.beq(x(7), x(0), "place");
    asm.addi(x(8), x(7), -1);
    asm.slli(x(9), x(8), 3);
    asm.add(x(12), x(11), x(9));
    asm.ld(x(13), x(12), 0); // work[j-1]
    asm.bgeu(x(6), x(13), "place");
    asm.st(x(13), x(12), 8); // work[j] = work[j-1]
    asm.mv(x(7), x(8));
    asm.j("inner");
    asm.label("place");
    asm.slli(x(9), x(7), 3);
    asm.add(x(12), x(11), x(9));
    asm.st(x(6), x(12), 0);
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(3), "outer");
    // Checksum the median to defeat dead-code concerns.
    asm.ld(x(4), x(11), ((N / 2) * 8) as i64);
    asm.add(x(1), x(1), x(4));
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    epilogue(&mut asm);
    asm.finish().expect("sort_kernel assembles")
}

/// Scans a pseudo-random text for a 4-byte pattern, counting matches.
fn string_match(size: u32) -> Program {
    const TEXT: usize = 4096;
    let reps = u64::from(size);
    let mut rng = rng(0x7E57);
    let mut text = random_bytes(&mut rng, TEXT);
    // Plant the pattern a few dozen times so matches exist.
    let pattern = [0x42u8, 0x13, 0x37, 0x99];
    for k in 0..48 {
        let at = (k * 83 + 7) % (TEXT - 4);
        text[at..at + 4].copy_from_slice(&pattern);
    }

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let base = asm.alloc_data(&text);

    asm.li(x(1), 0); // match count
    asm.li(x(21), reps);
    asm.li(x(5), u64::from(pattern[0]));
    asm.li(x(6), u64::from(pattern[1]));
    asm.li(x(7), u64::from(pattern[2]));
    asm.li(x(8), u64::from(pattern[3]));
    asm.label("rep");
    asm.li(x(10), base);
    asm.li(x(11), base + (TEXT - 4) as u64);
    asm.label("scan");
    asm.lbu(x(2), x(10), 0);
    asm.bne(x(2), x(5), "next");
    asm.lbu(x(2), x(10), 1);
    asm.bne(x(2), x(6), "next");
    asm.lbu(x(2), x(10), 2);
    asm.bne(x(2), x(7), "next");
    asm.lbu(x(2), x(10), 3);
    asm.bne(x(2), x(8), "next");
    asm.addi(x(1), x(1), 1);
    asm.label("next");
    asm.addi(x(10), x(10), 1);
    asm.bltu(x(10), x(11), "scan");
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    epilogue(&mut asm);
    asm.finish().expect("string_match assembles")
}

/// Sweeps a CSR graph, accumulating neighbor payloads (irregular inner
/// loop lengths).
fn graph_walk(size: u32) -> Program {
    const NODES: usize = 256;
    const AVG_DEGREE: usize = 4;
    let reps = u64::from(size);
    let mut rng = rng(0x6EA4);

    // Build a CSR structure with varying degrees 1..8.
    let mut row = Vec::with_capacity(NODES + 1);
    let mut col: Vec<u64> = Vec::new();
    row.push(0u64);
    use rand::Rng;
    for _ in 0..NODES {
        let deg = rng.gen_range(1..=2 * AVG_DEGREE);
        for _ in 0..deg {
            col.push(rng.gen_range(0..NODES as u64));
        }
        row.push(col.len() as u64);
    }
    let payload = payload_values(&mut rng, NODES);

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let row_base = asm.alloc_u64s(&row);
    let col_base = asm.alloc_u64s(&col);
    asm.set_data_base(HEAP2_BASE); // payloads live in a second mapping
    let pay_base = asm.alloc_u64s(&payload);

    asm.li(x(1), 0); // checksum
    asm.li(x(21), reps);
    asm.li(x(10), row_base);
    asm.li(x(11), col_base);
    asm.li(x(12), pay_base);
    asm.li(x(22), NODES as u64);
    asm.label("rep");
    asm.li(x(2), 0); // node
    asm.label("node");
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(10), x(4));
    asm.ld(x(6), x(5), 0); // row[n]
    asm.ld(x(7), x(5), 8); // row[n+1]
    asm.label("edge");
    asm.bgeu(x(6), x(7), "node_done");
    asm.slli(x(4), x(6), 3);
    asm.add(x(5), x(11), x(4));
    asm.ld(x(8), x(5), 0); // neighbor id
    asm.slli(x(8), x(8), 3);
    asm.add(x(9), x(12), x(8));
    asm.ld(x(3), x(9), 0); // payload[neighbor]
    asm.add(x(1), x(1), x(3));
    asm.addi(x(6), x(6), 1);
    asm.j("edge");
    asm.label("node_done");
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(22), "node");
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    epilogue(&mut asm);
    asm.finish().expect("graph_walk assembles")
}

/// Table-driven finite state machine over a byte stream.
fn state_machine(size: u32) -> Program {
    const STATES: usize = 16;
    const INPUT: usize = 4096;
    let reps = u64::from(size);
    let mut rng = rng(0xF5A);
    let table = random_bytes(&mut rng, STATES * 256)
        .into_iter()
        .map(|b| b % STATES as u8)
        .collect::<Vec<u8>>();
    let input = random_bytes(&mut rng, INPUT);

    let mut asm = Asm::new();
    asm.set_data_base(GLOBALS_BASE + 0x1000); // the FSM table is static data
    let table_base = asm.alloc_data(&table);
    asm.set_data_base(HEAP_BASE);
    let input_base = asm.alloc_data(&input);

    asm.li(x(1), 0); // accept count
    asm.li(x(21), reps);
    asm.li(x(10), table_base);
    asm.label("rep");
    asm.li(x(11), input_base);
    asm.li(x(12), input_base + INPUT as u64);
    asm.li(x(5), 0); // state
    asm.label("step");
    asm.lbu(x(6), x(11), 0);
    asm.slli(x(7), x(5), 8);
    asm.add(x(7), x(7), x(6));
    asm.add(x(7), x(10), x(7));
    asm.lbu(x(5), x(7), 0);
    asm.andi(x(8), x(5), 1);
    asm.add(x(1), x(1), x(8));
    asm.addi(x(11), x(11), 1);
    asm.bltu(x(11), x(12), "step");
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    epilogue(&mut asm);
    asm.finish().expect("state_machine assembles")
}

/// Run-length encodes a byte buffer with planted runs.
fn compress_loop(size: u32) -> Program {
    const INPUT: usize = 4096;
    let reps = u64::from(size);
    let mut rng = rng(0x21F1);
    let input = runny_bytes(&mut rng, INPUT);

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let in_base = asm.alloc_data(&input);
    asm.set_data_base(HEAP2_BASE);
    let out_base = asm.alloc_bytes_zeroed(2 * INPUT);

    asm.li(x(1), 0); // emitted pairs
    asm.li(x(21), reps);
    asm.label("rep");
    asm.li(x(10), in_base);
    asm.li(x(12), in_base + INPUT as u64);
    asm.li(x(11), out_base);
    asm.label("loop");
    asm.lbu(x(4), x(10), 0); // current byte
    asm.li(x(5), 1); // run length
    asm.label("run");
    asm.add(x(6), x(10), x(5));
    asm.bgeu(x(6), x(12), "emit");
    asm.lbu(x(7), x(6), 0);
    asm.bne(x(7), x(4), "emit");
    asm.addi(x(5), x(5), 1);
    asm.j("run");
    asm.label("emit");
    asm.sb(x(4), x(11), 0);
    asm.sb(x(5), x(11), 1);
    asm.addi(x(11), x(11), 2);
    asm.addi(x(1), x(1), 1);
    asm.add(x(10), x(10), x(5));
    asm.bltu(x(10), x(12), "loop");
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    epilogue(&mut asm);
    asm.finish().expect("compress_loop assembles")
}

/// LCG-indexed read-modify-write over a 512 KB array (cache-hostile).
fn sparse_update(size: u32) -> Program {
    const WORDS: usize = 64 * 1024;
    let ops = u64::from(size) * 1_000;

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let base = asm.alloc_bytes_zeroed(WORDS * 8);

    asm.li(x(10), base);
    asm.li(x(4), 0x9E37_79B9_7F4A_7C15); // state
    asm.li(x(5), 6364136223846793005);
    asm.li(x(6), 1442695040888963407);
    asm.li(x(1), 0);
    asm.li(x(20), ops);
    asm.label("op");
    asm.mul(x(4), x(4), x(5));
    asm.add(x(4), x(4), x(6));
    asm.srli(x(7), x(4), 28);
    asm.andi(x(7), x(7), (WORDS - 1) as i64);
    asm.slli(x(7), x(7), 3);
    asm.add(x(8), x(10), x(7));
    asm.ld(x(9), x(8), 0);
    asm.add(x(9), x(9), x(4));
    asm.st(x(9), x(8), 0);
    asm.add(x(1), x(1), x(9));
    asm.addi(x(20), x(20), -1);
    asm.bne(x(20), x(0), "op");
    epilogue(&mut asm);
    asm.finish().expect("sparse_update assembles")
}
