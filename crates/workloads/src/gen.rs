//! Deterministic data generation and memory-layout conventions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Heap-like region (typical 64-bit mmap addresses — high bits shared, so
/// pointers into it are *short* values).
pub const HEAP_BASE: u64 = 0x0000_7f3a_8000_0000;

/// A second mapping, for workloads with two live regions.
pub const HEAP2_BASE: u64 = 0x0000_7f3a_c000_0000;

/// Static-data region (low addresses — often *simple* or short values).
pub const GLOBALS_BASE: u64 = 0x0000_0000_0060_0000;

/// Stack-like region.
#[allow(dead_code)] // documented layout anchor; kernels use heap/globals
pub const STACK_BASE: u64 = 0x0000_7ffd_4000_0000;

/// A seeded RNG for a workload (stable across runs).
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `n` random 64-bit words (uniform over the full range — classifies as
/// *long*; kernels mostly use [`payload_values`] instead).
#[allow(dead_code)] // exercised by this module's tests
pub fn random_u64s(rng: &mut StdRng, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.gen()).collect()
}

/// `n` random bytes.
pub fn random_bytes(rng: &mut StdRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.gen()).collect()
}

/// `n` data values with a SPEC-like magnitude mixture: mostly small
/// integers (counts, indices, enum codes — *simple* under the paper's
/// classification), some 32-bit quantities, and a tail of full-width
/// values. This is the distribution behind the paper's Figure 1: a few
/// narrow values dominate the live-register population.
pub fn payload_values(rng: &mut StdRng, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let roll: f64 = rng.gen();
            if roll < 0.55 {
                // Small non-negative (fits easily in d+n bits).
                rng.gen_range(0..1u64 << 16)
            } else if roll < 0.70 {
                // Small negative.
                (-(rng.gen_range(1..1i64 << 16))) as u64
            } else if roll < 0.85 {
                // 32-bit quantity.
                u64::from(rng.gen::<u32>())
            } else {
                // Full-width value.
                rng.gen()
            }
        })
        .collect()
}

/// `n` bytes with run-length structure (for the compression kernel):
/// alternating runs of repeated and random bytes.
pub fn runny_bytes(rng: &mut StdRng, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        if rng.gen_bool(0.6) {
            let b: u8 = rng.gen();
            let len = rng.gen_range(3..20).min(n - out.len());
            out.extend(std::iter::repeat_n(b, len));
        } else {
            let len = rng.gen_range(1..8).min(n - out.len());
            for _ in 0..len {
                out.push(rng.gen());
            }
        }
    }
    out
}

/// `n` random doubles in `(-1, 1)` (away from subnormals).
pub fn random_f64s(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// A random permutation ring: `next[i]` visits every slot exactly once
/// before returning to 0 (a single cycle — the classic pointer-chase
/// layout).
pub fn permutation_ring(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (1..n).collect();
    // Fisher-Yates.
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut next = vec![0usize; n];
    let mut cur = 0usize;
    for &slot in &order {
        next[cur] = slot;
        cur = slot;
    }
    next[cur] = 0;
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a = random_u64s(&mut rng(7), 16);
        let b = random_u64s(&mut rng(7), 16);
        assert_eq!(a, b);
        let c = random_u64s(&mut rng(8), 16);
        assert_ne!(a, c);
    }

    #[test]
    fn permutation_ring_is_a_single_cycle() {
        let next = permutation_ring(&mut rng(3), 64);
        let mut seen = [false; 64];
        let mut cur = 0usize;
        for _ in 0..64 {
            assert!(!seen[cur], "revisited {cur} before completing the cycle");
            seen[cur] = true;
            cur = next[cur];
        }
        assert_eq!(cur, 0, "must return to the head");
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn runny_bytes_have_runs() {
        let data = runny_bytes(&mut rng(1), 1024);
        assert_eq!(data.len(), 1024);
        let repeats = data.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 200, "only {repeats} repeated adjacent bytes");
    }

    #[test]
    fn regions_are_distinct() {
        assert_ne!(HEAP_BASE >> 32, GLOBALS_BASE >> 32);
        assert_ne!(HEAP_BASE >> 30, HEAP2_BASE >> 30);
        assert_ne!(STACK_BASE >> 32, GLOBALS_BASE >> 32);
    }
}
