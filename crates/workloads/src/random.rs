//! Random-but-terminating program generation for stress and property
//! tests (co-simulation fuzzing).

use crate::gen::HEAP_BASE;
use carf_isa::{f, x, Asm, Opcode, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for [`random_program`].
#[derive(Debug, Clone, Copy)]
pub struct RandomProgramParams {
    /// RNG seed (programs are deterministic per seed).
    pub seed: u64,
    /// Instructions per loop body.
    pub body_len: usize,
    /// Outer loop iterations.
    pub iterations: u64,
    /// Emit FP instructions.
    pub include_fp: bool,
    /// Emit loads/stores into a scratch buffer.
    pub include_mem: bool,
    /// Emit short forward branches.
    pub include_branches: bool,
}

impl Default for RandomProgramParams {
    fn default() -> Self {
        Self {
            seed: 0,
            body_len: 60,
            iterations: 30,
            include_fp: true,
            include_mem: true,
            include_branches: true,
        }
    }
}

/// Generates a random program that is guaranteed to terminate: a counted
/// outer loop whose body is straight-line (plus forward-only skips) over a
/// register sandbox. Dedicated registers hold the buffer base and loop
/// counter and are never clobbered, so every generated program halts.
///
/// # Example
///
/// ```
/// use carf_workloads::{random_program, RandomProgramParams};
/// use carf_isa::Machine;
///
/// let p = random_program(&RandomProgramParams { seed: 42, ..Default::default() });
/// let mut m = Machine::load(&p);
/// m.run(&p, 1_000_000)?;
/// assert!(m.is_halted());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn random_program(params: &RandomProgramParams) -> Program {
    const BUF_WORDS: usize = 128;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let init: Vec<u64> = (0..BUF_WORDS).map(|_| rng.gen()).collect();
    let buf = asm.alloc_u64s(&init);

    // Sandbox: x1..x15 mutable, x16 = buffer base, x17 = loop counter.
    for i in 1..=15u8 {
        asm.li(x(i), rng.gen());
    }
    asm.li(x(16), buf);
    asm.li(x(17), params.iterations.max(1));
    if params.include_fp {
        let seeds = asm.alloc_f64s(
            &(0..8).map(|_| rng.gen_range(-100.0..100.0)).collect::<Vec<f64>>(),
        );
        asm.li(x(18), seeds);
        for i in 1..=7u8 {
            asm.fld(f(i), x(18), i64::from(i) * 8);
        }
    }

    asm.label("loop");
    let mut skip_id = 0usize;
    let mut pending_skips: Vec<(String, usize)> = Vec::new(); // (label, insts remaining)
    for _ in 0..params.body_len {
        // Place any skip labels that are due.
        pending_skips.retain_mut(|(label, left)| {
            if *left == 0 {
                asm.label(label);
                false
            } else {
                *left -= 1;
                true
            }
        });
        emit_random_inst(
            &mut asm,
            &mut rng,
            params,
            &mut skip_id,
            &mut pending_skips,
            BUF_WORDS,
        );
    }
    // Close any skips still pending.
    for (label, _) in pending_skips.drain(..) {
        asm.label(&label);
    }
    asm.addi(x(17), x(17), -1);
    asm.bne(x(17), x(0), "loop");
    // Publish a checksum so the body is observable.
    asm.st(x(1), x(16), 0);
    asm.halt();
    asm.finish().expect("random programs always assemble")
}

fn emit_random_inst(
    asm: &mut Asm,
    rng: &mut StdRng,
    params: &RandomProgramParams,
    skip_id: &mut usize,
    pending_skips: &mut Vec<(String, usize)>,
    buf_words: usize,
) {
    use Opcode::*;
    let rd = x(rng.gen_range(1..=15));
    let rs1 = x(rng.gen_range(1..=15));
    let rs2 = x(rng.gen_range(1..=15));
    let choice = rng.gen_range(0..100);
    match choice {
        0..=44 => {
            // Integer ALU register-register.
            let op = [Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Mul, Div]
                [rng.gen_range(0..12)];
            asm.emit(carf_isa::Inst::rrr(op, rd.number(), rs1.number(), rs2.number()));
        }
        45..=64 => {
            // Integer ALU with immediate.
            let op = [Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti][rng.gen_range(0..8)];
            let imm = match op {
                Slli | Srli | Srai => rng.gen_range(0..64),
                _ => rng.gen_range(-4096..4096),
            };
            asm.emit(carf_isa::Inst::rri(op, rd.number(), rs1.number(), imm));
        }
        65..=69 => {
            asm.li(rd, rng.gen());
        }
        70..=81 if params.include_mem => {
            // Mixed-width accesses within the scratch buffer (all widths
            // naturally aligned), exercising sub-word forwarding and the
            // partial-overlap and violation paths.
            match rng.gen_range(0..6) {
                0 => {
                    let off = (rng.gen_range(0..buf_words) * 8) as i64;
                    asm.ld(rd, x(16), off);
                }
                1 => {
                    let off = (rng.gen_range(0..buf_words) * 8) as i64;
                    asm.st(rs1, x(16), off);
                }
                2 => {
                    let off = (rng.gen_range(0..buf_words * 2) * 4) as i64;
                    asm.lw(rd, x(16), off);
                }
                3 => {
                    let off = (rng.gen_range(0..buf_words * 2) * 4) as i64;
                    asm.sw(rs1, x(16), off);
                }
                4 => {
                    let off = rng.gen_range(0..buf_words as i64 * 8);
                    asm.lbu(rd, x(16), off);
                }
                _ => {
                    let off = rng.gen_range(0..buf_words as i64 * 8);
                    asm.sb(rs1, x(16), off);
                }
            }
        }
        82..=92 if params.include_fp => {
            let fd = f(rng.gen_range(1..=7));
            let fs1 = f(rng.gen_range(1..=7));
            let fs2 = f(rng.gen_range(1..=7));
            match rng.gen_range(0..6) {
                0 => {
                    asm.fadd(fd, fs1, fs2);
                }
                1 => {
                    asm.fsub(fd, fs1, fs2);
                }
                2 => {
                    asm.fmul(fd, fs1, fs2);
                }
                3 => {
                    asm.fcvt_fi(fd, rs1);
                }
                4 => {
                    asm.fcmplt(rd, fs1, fs2);
                }
                _ => {
                    let off = (rng.gen_range(0..buf_words) * 8) as i64;
                    if rng.gen_bool(0.5) {
                        asm.fld(fd, x(16), off);
                    } else {
                        asm.fst(fs2, x(16), off);
                    }
                }
            }
        }
        93..=97 if params.include_branches => {
            // Forward-only skip over the next few instructions.
            let label = format!("skip{}", *skip_id);
            *skip_id += 1;
            let distance = rng.gen_range(1..=4usize);
            match rng.gen_range(0..4) {
                0 => asm.beq(rs1, rs2, &label),
                1 => asm.bne(rs1, rs2, &label),
                2 => asm.blt(rs1, rs2, &label),
                _ => asm.bgeu(rs1, rs2, &label),
            };
            pending_skips.push((label, distance));
        }
        _ => {
            asm.add(rd, rs1, rs2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carf_isa::Machine;

    #[test]
    fn generated_programs_halt_on_the_functional_machine() {
        for seed in 0..20 {
            let p = random_program(&RandomProgramParams { seed, ..Default::default() });
            let mut m = Machine::load(&p);
            m.run(&p, 10_000_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(m.is_halted(), "seed {seed}");
        }
    }

    #[test]
    fn same_seed_same_program() {
        let a = random_program(&RandomProgramParams { seed: 9, ..Default::default() });
        let b = random_program(&RandomProgramParams { seed: 9, ..Default::default() });
        assert_eq!(a.insts, b.insts);
        let c = random_program(&RandomProgramParams { seed: 10, ..Default::default() });
        assert_ne!(a.insts, c.insts);
    }

    #[test]
    fn feature_knobs_are_respected() {
        let p = random_program(&RandomProgramParams {
            seed: 3,
            include_fp: false,
            include_mem: false,
            include_branches: false,
            ..Default::default()
        });
        use carf_isa::InstKind::*;
        for inst in &p.insts[..p.insts.len() - 4] {
            // Allow the loop scaffolding (final branch/store/halt).
            assert!(
                !matches!(inst.kind(), FpAlu | FpDiv),
                "unexpected fp inst {inst}"
            );
        }
    }

    #[test]
    fn iterations_scale_dynamic_length() {
        let short = random_program(&RandomProgramParams {
            seed: 5,
            iterations: 2,
            ..Default::default()
        });
        let long = random_program(&RandomProgramParams {
            seed: 5,
            iterations: 50,
            ..Default::default()
        });
        let run = |p: &Program| {
            let mut m = Machine::load(p);
            m.run(p, 10_000_000).unwrap();
            m.retired()
        };
        assert!(run(&long) > run(&short) * 10);
    }
}
