//! Synthetic workload suite standing in for SPEC CPU2000.
//!
//! The paper evaluates on SPECint2000 and SPECfp2000 (300M representative
//! instructions each). Those binaries and inputs cannot be shipped, so this
//! crate provides kernels — written in the `carf-isa` assembly — chosen to
//! reproduce the *register value demographics* the content-aware register
//! file exploits:
//!
//! * **addresses** clustered in a few heap/stack regions (pointer chasing,
//!   hashing, graph walking) → *short* values sharing high bits;
//! * **counters, flags, and small constants** (every loop) → *simple*
//!   values;
//! * **hashes, checksums, packed data** → *long* values;
//! * data-dependent branches, irregular memory access, serial FP
//!   dependence chains — the control/memory behaviour that shapes IPC.
//!
//! The integer suite ([`int_suite`]) has eight kernels, the FP suite
//! ([`fp_suite`]) six; all are deterministic (seeded [`rand`] data) and
//! halt. [`random_program`] generates arbitrary-but-terminating programs
//! for stress and property tests.
//!
//! # Example
//!
//! ```
//! use carf_workloads::{int_suite, SizeClass};
//! use carf_isa::Machine;
//!
//! let wl = &int_suite()[0]; // pointer_chase
//! let program = wl.build(wl.size(SizeClass::Test));
//! let mut m = Machine::load(&program);
//! m.run(&program, 50_000_000)?;
//! assert!(m.is_halted());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod adversarial;
mod extended;
mod fp;
mod gen;
mod int;
mod random;
mod suite;

pub use adversarial::adversarial_suite;
pub use extended::extended_suite;
pub use random::{random_program, RandomProgramParams};
pub use suite::{all_workloads, fp_suite, int_suite, SizeClass, Suite, Workload};
