//! Extended kernels beyond the default paper suites.
//!
//! These are *not* part of [`crate::int_suite`]/[`crate::fp_suite`] (whose
//! composition the recorded experiment results depend on); they widen the
//! behaviour space for tests and for users bringing their own studies:
//! search-tree descent, bit-board manipulation, FIR filtering, an
//! escape-time fractal loop with data-dependent FP exits, and a
//! bpred-hostile branch storm for squash-recovery stress.

use crate::gen::{payload_values, random_f64s, rng, GLOBALS_BASE, HEAP_BASE};
use crate::suite::{Suite, Workload};
use carf_isa::{f, x, Asm, Program};
use rand::Rng;

/// Five additional kernels (three integer, two floating-point).
pub fn extended_suite() -> Vec<Workload> {
    vec![
        Workload::new(
            "btree_lookup",
            Suite::Int,
            "search-tree descent: pointer chasing with data-dependent branching",
            btree_lookup,
            (2, 30, 300),
        ),
        Workload::new(
            "bitboard",
            Suite::Int,
            "crafty-like bit-board manipulation: wide masks, shifts, popcount loops",
            bitboard,
            (1, 20, 200),
        ),
        Workload::new(
            "fir_filter",
            Suite::Fp,
            "16-tap FIR convolution over a long signal",
            fir_filter,
            (1, 20, 200),
        ),
        Workload::new(
            "escape_iter",
            Suite::Fp,
            "escape-time iteration with FP-compare-driven exits",
            escape_iter,
            (1, 25, 250),
        ),
        Workload::new(
            "branch_storm",
            Suite::Int,
            "bpred-hostile LCG-driven branching: near-50% mispredict squash storm",
            branch_storm,
            (4, 60, 600),
        ),
    ]
}

fn epilogue_int(asm: &mut Asm) {
    asm.li(x(28), GLOBALS_BASE);
    asm.st(x(1), x(28), 0);
    asm.halt();
}

/// Descends a perfect binary search tree stored as an implicit array of
/// (key, payload) nodes; keys drawn from an LCG.
fn btree_lookup(size: u32) -> Program {
    const NODES: usize = 4095; // depth-12 perfect tree
    let lookups = u64::from(size) * 500;
    let mut rng = rng(0xB7EE);
    let mut keys: Vec<u64> = (0..NODES as u64).map(|_| rng.gen_range(0..1u64 << 30)).collect();
    keys.sort_unstable();
    // Implicit heap order: node i has children 2i+1, 2i+2. Fill by in-order
    // walk so the BST property holds.
    let mut tree = vec![0u64; 2 * NODES];
    fn fill(tree: &mut [u64], keys: &[u64], node: usize, lo: usize, hi: usize, pay: &[u64]) {
        if lo >= hi {
            return;
        }
        let mid = (lo + hi) / 2;
        tree[2 * node] = keys[mid];
        tree[2 * node + 1] = pay[mid];
        fill(tree, keys, 2 * node + 1, lo, mid, pay);
        fill(tree, keys, 2 * node + 2, mid + 1, hi, pay);
    }
    let payloads = payload_values(&mut rng, NODES);
    fill(&mut tree, &keys, 0, 0, NODES, &payloads);

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let tree_base = asm.alloc_u64s(&tree);

    asm.li(x(10), tree_base);
    asm.li(x(4), 0x2545_F491_4F6C_DD1D); // LCG state
    asm.li(x(5), 6364136223846793005);
    asm.li(x(6), 1442695040888963407);
    asm.li(x(1), 0); // checksum
    asm.li(x(20), lookups);
    asm.li(x(22), NODES as u64);
    asm.label("lookup");
    asm.mul(x(4), x(4), x(5));
    asm.add(x(4), x(4), x(6));
    asm.srli(x(7), x(4), 34); // 30-bit probe key
    asm.li(x(2), 0); // node index
    asm.label("descend");
    asm.bgeu(x(2), x(22), "done"); // fell off a leaf
    asm.slli(x(8), x(2), 4); // node stride 16 bytes
    asm.add(x(9), x(10), x(8));
    asm.ld(x(3), x(9), 0); // key
    asm.beq(x(3), x(7), "hit");
    // next = 2*i + 1 + (probe > key)
    asm.sltu(x(8), x(3), x(7));
    asm.slli(x(2), x(2), 1);
    asm.addi(x(2), x(2), 1);
    asm.add(x(2), x(2), x(8));
    asm.j("descend");
    asm.label("hit");
    asm.ld(x(3), x(9), 8); // payload
    asm.add(x(1), x(1), x(3));
    asm.label("done");
    asm.addi(x(20), x(20), -1);
    asm.bne(x(20), x(0), "lookup");
    epilogue_int(&mut asm);
    asm.finish().expect("btree_lookup assembles")
}

/// Bit-board sweeps: wide random masks combined with shifts and a
/// popcount loop (Kernighan's trick — data-dependent iteration counts).
fn bitboard(size: u32) -> Program {
    const BOARDS: usize = 256;
    let reps = u64::from(size) * 4;
    let mut rng = rng(0xB0A2D);
    let boards: Vec<u64> = (0..BOARDS).map(|_| rng.gen()).collect();

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let base = asm.alloc_u64s(&boards);

    asm.li(x(10), base);
    asm.li(x(1), 0); // total popcount
    asm.li(x(21), reps);
    asm.li(x(22), BOARDS as u64);
    asm.label("rep");
    asm.li(x(2), 0);
    asm.label("board");
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(10), x(4));
    asm.ld(x(6), x(5), 0);
    // Mix: attacks = (b << 8) | (b >> 8); b &= attacks ^ b
    asm.slli(x(7), x(6), 8);
    asm.srli(x(8), x(6), 8);
    asm.or(x(7), x(7), x(8));
    asm.xor(x(7), x(7), x(6));
    asm.and(x(6), x(6), x(7));
    // popcount via Kernighan: while (b) { b &= b-1; count++ }
    asm.label("pop");
    asm.beq(x(6), x(0), "pop_done");
    asm.addi(x(8), x(6), -1);
    asm.and(x(6), x(6), x(8));
    asm.addi(x(1), x(1), 1);
    asm.j("pop");
    asm.label("pop_done");
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(22), "board");
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    epilogue_int(&mut asm);
    asm.finish().expect("bitboard assembles")
}

/// 16-tap FIR filter over a 4096-sample signal.
fn fir_filter(size: u32) -> Program {
    const N: usize = 4096;
    const TAPS: usize = 16;
    let reps = u64::from(size);
    let mut rng = rng(0xF12);
    let signal = random_f64s(&mut rng, N);
    let taps = random_f64s(&mut rng, TAPS);

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let sig_base = asm.alloc_f64s(&signal);
    let tap_base = asm.alloc_f64s(&taps);
    let out_base = asm.alloc_bytes_zeroed((N - TAPS) * 8);

    asm.li(x(10), sig_base);
    asm.li(x(11), tap_base);
    asm.li(x(12), out_base);
    asm.li(x(21), reps);
    asm.li(x(22), (N - TAPS) as u64);
    asm.li(x(23), TAPS as u64);
    asm.label("rep");
    asm.li(x(2), 0); // output index
    asm.label("sample");
    asm.fsub(f(2), f(2), f(2)); // acc = 0
    asm.li(x(3), 0); // tap
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(10), x(4)); // &signal[i]
    asm.label("tap");
    asm.slli(x(6), x(3), 3);
    asm.add(x(7), x(5), x(6));
    asm.fld(f(3), x(7), 0);
    asm.add(x(7), x(11), x(6));
    asm.fld(f(4), x(7), 0);
    asm.fmul(f(3), f(3), f(4));
    asm.fadd(f(2), f(2), f(3));
    asm.addi(x(3), x(3), 1);
    asm.blt(x(3), x(23), "tap");
    asm.add(x(7), x(12), x(4));
    asm.fst(f(2), x(7), 0);
    asm.fadd(f(1), f(1), f(2));
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(22), "sample");
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    asm.li(x(28), GLOBALS_BASE);
    asm.fst(f(1), x(28), 0);
    asm.halt();
    asm.finish().expect("fir_filter assembles")
}

/// A squash storm: every iteration branches on a fresh LCG bit, so gshare
/// sees an effectively random outcome stream and mispredicts close to half
/// the time. Each arm then runs a short dependent tail so the recovery
/// path always has a ROB suffix to walk — this is the regression kernel
/// for `squash_younger_than` being bounded by the squashed suffix.
fn branch_storm(size: u32) -> Program {
    let iters = u64::from(size) * 250;

    let mut asm = Asm::new();
    asm.li(x(4), 0x2545_F491_4F6C_DD1D); // LCG state
    asm.li(x(5), 6364136223846793005);
    asm.li(x(6), 1442695040888963407);
    asm.li(x(1), 0); // checksum
    asm.li(x(20), iters);
    asm.label("storm");
    asm.mul(x(4), x(4), x(5));
    asm.add(x(4), x(4), x(6));
    asm.srli(x(7), x(4), 61); // top bits: the least predictable
    asm.andi(x(8), x(7), 1);
    asm.bne(x(8), x(0), "odd");
    // Even arm: dependent add chain the squash has to unwind when the
    // branch above was guessed "taken".
    asm.addi(x(1), x(1), 3);
    asm.slli(x(9), x(1), 1);
    asm.xor(x(1), x(1), x(9));
    asm.srli(x(1), x(1), 1);
    asm.j("join");
    asm.label("odd");
    asm.xori(x(1), x(1), 0x55);
    asm.add(x(1), x(1), x(7));
    asm.slli(x(9), x(7), 2);
    asm.add(x(1), x(1), x(9));
    asm.label("join");
    // Second unpredictable branch per iteration doubles the squash rate.
    asm.andi(x(8), x(7), 2);
    asm.beq(x(8), x(0), "skip");
    asm.addi(x(1), x(1), 1);
    asm.label("skip");
    asm.addi(x(20), x(20), -1);
    asm.bne(x(20), x(0), "storm");
    epilogue_int(&mut asm);
    asm.finish().expect("branch_storm assembles")
}

/// Escape-time iteration (Mandelbrot-style) over a grid of points:
/// `z = z^2 + c` until `|z|^2 > 4` or the iteration cap — data-dependent
/// FP-compare exits feeding integer branches.
fn escape_iter(size: u32) -> Program {
    const POINTS: usize = 256;
    const MAX_ITER: u64 = 24;
    let reps = u64::from(size);
    let mut rng = rng(0xE5CA);
    let cx = random_f64s(&mut rng, POINTS).iter().map(|v| v * 1.5).collect::<Vec<f64>>();
    let cy = random_f64s(&mut rng, POINTS).iter().map(|v| v * 1.5).collect::<Vec<f64>>();

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let cx_base = asm.alloc_f64s(&cx);
    let cy_base = asm.alloc_f64s(&cy);
    let four = asm.alloc_f64s(&[4.0, 2.0]);

    asm.li(x(9), four);
    asm.fld(f(9), x(9), 0); // 4.0
    asm.fld(f(8), x(9), 8); // 2.0
    asm.li(x(10), cx_base);
    asm.li(x(11), cy_base);
    asm.li(x(1), 0); // total iterations (checksum)
    asm.li(x(21), reps);
    asm.li(x(22), POINTS as u64);
    asm.label("rep");
    asm.li(x(2), 0); // point
    asm.label("point");
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(10), x(4));
    asm.fld(f(6), x(5), 0); // cx
    asm.add(x(5), x(11), x(4));
    asm.fld(f(7), x(5), 0); // cy
    asm.fsub(f(2), f(2), f(2)); // zx = 0
    asm.fsub(f(3), f(3), f(3)); // zy = 0
    asm.li(x(3), MAX_ITER);
    asm.label("iter");
    // zx2 = zx*zx, zy2 = zy*zy
    asm.fmul(f(4), f(2), f(2));
    asm.fmul(f(5), f(3), f(3));
    asm.fadd(f(10), f(4), f(5)); // |z|^2
    asm.fcmplt(x(6), f(9), f(10)); // 4 < |z|^2 ?
    asm.bne(x(6), x(0), "escaped");
    // zy = 2*zx*zy + cy ; zx = zx2 - zy2 + cx
    asm.fmul(f(10), f(2), f(3));
    asm.fmul(f(10), f(10), f(8));
    asm.fadd(f(3), f(10), f(7));
    asm.fsub(f(2), f(4), f(5));
    asm.fadd(f(2), f(2), f(6));
    asm.addi(x(1), x(1), 1);
    asm.addi(x(3), x(3), -1);
    asm.bne(x(3), x(0), "iter");
    asm.label("escaped");
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(22), "point");
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    epilogue_int(&mut asm);
    asm.finish().expect("escape_iter assembles")
}
