//! Workload registry.

use carf_isa::Program;
use std::sync::Arc;

/// Which benchmark suite a workload belongs to (SPECint- or SPECfp-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Integer codes.
    Int,
    /// Floating-point codes (numerical kernels with integer address math).
    Fp,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Int => write!(f, "INT"),
            Suite::Fp => write!(f, "FP"),
        }
    }
}

/// Standard problem sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// Tiny: unit tests (≈ tens of thousands of dynamic instructions).
    Test,
    /// Quick experiments (≈ a few hundred thousand instructions).
    Quick,
    /// Full experiments (millions of instructions, still laptop-scale).
    Full,
}

/// One benchmark: a name, its suite, and a parameterized program builder.
#[derive(Clone)]
pub struct Workload {
    /// Short kernel name (e.g. `pointer_chase`).
    pub name: &'static str,
    /// The suite it models.
    pub suite: Suite,
    /// What the kernel stresses (for reports).
    pub description: &'static str,
    builder: Builder,
    test_size: u32,
    quick_size: u32,
    full_size: u32,
}

/// How a workload produces its program: the synthetic kernels are pure
/// `fn(size)` builders; corpus programs are fixed, pre-linked images.
#[derive(Clone)]
enum Builder {
    Synthetic(fn(u32) -> Program),
    Fixed(Arc<Program>),
}

impl Workload {
    pub(crate) fn new(
        name: &'static str,
        suite: Suite,
        description: &'static str,
        builder: fn(u32) -> Program,
        sizes: (u32, u32, u32),
    ) -> Self {
        Self {
            name,
            suite,
            description,
            builder: Builder::Synthetic(builder),
            test_size: sizes.0,
            quick_size: sizes.1,
            full_size: sizes.2,
        }
    }

    /// Wraps a fixed, already-linked [`Program`] (e.g. an assembled corpus
    /// kernel) as a workload so it can ride the standard suite machinery
    /// (matrix runs, sampling, the result cache). The size parameter is
    /// meaningless for a fixed image, so every [`SizeClass`] maps to the
    /// same program; identity for caching comes from
    /// [`Workload::content_fingerprint`] instead of the name alone.
    pub fn from_program(
        name: &'static str,
        suite: Suite,
        description: &'static str,
        program: Program,
    ) -> Self {
        Self {
            name,
            suite,
            description,
            builder: Builder::Fixed(Arc::new(program)),
            test_size: 1,
            quick_size: 1,
            full_size: 1,
        }
    }

    /// Builds the program at an explicit size parameter (roughly linear in
    /// dynamic instruction count). Fixed-program workloads ignore `size`.
    pub fn build(&self, size: u32) -> Program {
        match &self.builder {
            Builder::Synthetic(f) => f(size.max(1)),
            Builder::Fixed(p) => (**p).clone(),
        }
    }

    /// For fixed-program workloads, the [`carf_isa::program_fingerprint`]
    /// of the image (covers instruction text, entry point, and data);
    /// `None` for synthetic builders, whose identity is `name` + size.
    pub fn content_fingerprint(&self) -> Option<u64> {
        match &self.builder {
            Builder::Synthetic(_) => None,
            Builder::Fixed(p) => Some(carf_isa::program_fingerprint(p)),
        }
    }

    /// The calibrated size for a [`SizeClass`].
    pub fn size(&self, class: SizeClass) -> u32 {
        match class {
            SizeClass::Test => self.test_size,
            SizeClass::Quick => self.quick_size,
            SizeClass::Full => self.full_size,
        }
    }

    /// Convenience: build at a size class.
    pub fn build_class(&self, class: SizeClass) -> Program {
        self.build(self.size(class))
    }

    /// The deterministic identity of this workload at `class`: the
    /// fingerprint of the built program (code, entry point, and the seeded
    /// initial data image). Workloads are pure builders — same name and
    /// size always produce the same program — so this one value is the
    /// whole "workload state" a [`carf_isa::Checkpoint`] needs to be
    /// restorable, and the key under which checkpoints may be cached.
    pub fn fingerprint(&self, class: SizeClass) -> u64 {
        carf_isa::program_fingerprint(&self.build_class(class))
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .finish()
    }
}

/// The eight SPECint-like kernels.
pub fn int_suite() -> Vec<Workload> {
    crate::int::suite()
}

/// The six SPECfp-like kernels.
pub fn fp_suite() -> Vec<Workload> {
    crate::fp::suite()
}

/// Both suites, integer first.
pub fn all_workloads() -> Vec<Workload> {
    let mut v = int_suite();
    v.extend(fp_suite());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_shape() {
        assert_eq!(int_suite().len(), 8);
        assert_eq!(fp_suite().len(), 6);
        assert_eq!(all_workloads().len(), 14);
        assert!(int_suite().iter().all(|w| w.suite == Suite::Int));
        assert!(fp_suite().iter().all(|w| w.suite == Suite::Fp));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_workloads().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn sizes_are_ordered() {
        for w in all_workloads() {
            assert!(w.size(SizeClass::Test) <= w.size(SizeClass::Quick), "{}", w.name);
            assert!(w.size(SizeClass::Quick) <= w.size(SizeClass::Full), "{}", w.name);
        }
    }

    #[test]
    fn size_is_clamped_to_one() {
        let w = &int_suite()[0];
        let p = w.build(0); // clamps to 1
        assert!(!p.is_empty());
    }

    #[test]
    fn fixed_program_workloads_ignore_size_and_expose_content() {
        let program = carf_isa::parse_asm("li x1, 7\nhalt\n").unwrap();
        let fp = carf_isa::program_fingerprint(&program);
        let w = Workload::from_program("fixed_demo", Suite::Int, "a fixed image", program);
        assert_eq!(w.content_fingerprint(), Some(fp));
        assert_eq!(
            carf_isa::program_fingerprint(&w.build(1)),
            carf_isa::program_fingerprint(&w.build(1_000_000)),
        );
        assert_eq!(w.fingerprint(SizeClass::Test), fp);
        assert_eq!(w.fingerprint(SizeClass::Full), fp);
        // Synthetic builders have no content fingerprint.
        assert_eq!(int_suite()[0].content_fingerprint(), None);
    }
}
