//! The SPECfp-like kernels.
//!
//! Numerical codes still keep their *integer* register file busy with
//! address arithmetic and loop control — exactly the population the paper
//! measures for its FP bars.

use crate::gen::{random_f64s, rng, GLOBALS_BASE, HEAP2_BASE, HEAP_BASE};
use crate::suite::{Suite, Workload};
use carf_isa::{f, x, Asm, Program};

/// The registry for the FP suite.
pub fn suite() -> Vec<Workload> {
    vec![
        Workload::new(
            "matvec",
            Suite::Fp,
            "dense matrix-vector product: streaming loads, multiply-add chains",
            matvec,
            (1, 20, 200),
        ),
        Workload::new(
            "stencil3",
            Suite::Fp,
            "1-D 3-point stencil sweeps with ping-pong buffers",
            stencil3,
            (1, 20, 200),
        ),
        Workload::new(
            "dot_products",
            Suite::Fp,
            "swim-like streaming reduction over two large arrays",
            dot_products,
            (1, 20, 200),
        ),
        Workload::new(
            "particle_push",
            Suite::Fp,
            "n-body-like position/velocity integration",
            particle_push,
            (1, 30, 300),
        ),
        Workload::new(
            "tridiag",
            Suite::Fp,
            "Thomas-algorithm tridiagonal solve: serial divide chains",
            tridiag,
            (1, 15, 150),
        ),
        Workload::new(
            "table_interp",
            Suite::Fp,
            "table lookup with linear interpolation: int index math feeding FP",
            table_interp,
            (2, 30, 300),
        ),
    ]
}

/// Stores the FP accumulator `f1` (as bits) to the result slot and halts.
fn epilogue(asm: &mut Asm) {
    asm.li(x(28), GLOBALS_BASE);
    asm.fst(f(1), x(28), 0);
    asm.halt();
}

/// `y = A·x` over a 48×48 matrix, repeated.
fn matvec(size: u32) -> Program {
    const N: usize = 48;
    let reps = u64::from(size);
    let mut rng = rng(0xA7A7);
    let a = random_f64s(&mut rng, N * N);
    let v = random_f64s(&mut rng, N);

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let a_base = asm.alloc_f64s(&a);
    let x_base = asm.alloc_f64s(&v);
    let y_base = asm.alloc_bytes_zeroed(N * 8);

    asm.li(x(21), reps);
    asm.li(x(10), a_base);
    asm.li(x(11), x_base);
    asm.li(x(12), y_base);
    asm.li(x(22), N as u64);
    asm.label("rep");
    asm.li(x(2), 0); // i
    asm.label("row");
    asm.fsub(f(2), f(2), f(2)); // acc = 0
    asm.li(x(3), 0); // j
    asm.mul(x(4), x(2), x(22));
    asm.slli(x(4), x(4), 3);
    asm.add(x(5), x(10), x(4)); // &A[i][0]
    asm.label("col");
    asm.slli(x(6), x(3), 3);
    asm.add(x(7), x(5), x(6));
    asm.fld(f(3), x(7), 0); // A[i][j]
    asm.add(x(7), x(11), x(6));
    asm.fld(f(4), x(7), 0); // x[j]
    asm.fmul(f(3), f(3), f(4));
    asm.fadd(f(2), f(2), f(3));
    asm.addi(x(3), x(3), 1);
    asm.blt(x(3), x(22), "col");
    asm.slli(x(6), x(2), 3);
    asm.add(x(7), x(12), x(6));
    asm.fst(f(2), x(7), 0);
    asm.fadd(f(1), f(1), f(2)); // checksum
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(22), "row");
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    epilogue(&mut asm);
    asm.finish().expect("matvec assembles")
}

/// Ping-pong 3-point stencil over 2048 doubles.
fn stencil3(size: u32) -> Program {
    const N: usize = 2048;
    let reps = u64::from(size) * 2;
    let mut rng = rng(0x57E4);
    let init = random_f64s(&mut rng, N);

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let buf_a = asm.alloc_f64s(&init);
    let buf_b = asm.alloc_bytes_zeroed(N * 8);
    let weights = asm.alloc_f64s(&[0.25, 0.5, 0.25]);

    asm.li(x(9), weights);
    asm.fld(f(5), x(9), 0);
    asm.fld(f(6), x(9), 8);
    asm.fld(f(7), x(9), 16);
    asm.li(x(10), buf_a);
    asm.li(x(11), buf_b);
    asm.li(x(21), reps);
    asm.label("sweep");
    asm.li(x(2), 1);
    asm.li(x(22), (N - 1) as u64);
    asm.label("point");
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(10), x(4));
    asm.fld(f(2), x(5), -8);
    asm.fld(f(3), x(5), 0);
    asm.fld(f(4), x(5), 8);
    asm.fmul(f(2), f(2), f(5));
    asm.fmul(f(3), f(3), f(6));
    asm.fmul(f(4), f(4), f(7));
    asm.fadd(f(2), f(2), f(3));
    asm.fadd(f(2), f(2), f(4));
    asm.add(x(6), x(11), x(4));
    asm.fst(f(2), x(6), 0);
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(22), "point");
    // Swap the buffers (pointer exchange via xor).
    asm.xor(x(10), x(10), x(11));
    asm.xor(x(11), x(10), x(11));
    asm.xor(x(10), x(10), x(11));
    asm.fadd(f(1), f(1), f(2)); // running checksum of last point
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "sweep");
    epilogue(&mut asm);
    asm.finish().expect("stencil3 assembles")
}

/// Streaming dot product of two 4096-double arrays.
fn dot_products(size: u32) -> Program {
    const N: usize = 4096;
    let reps = u64::from(size) * 2;
    let mut rng = rng(0xD07);
    let a = random_f64s(&mut rng, N);
    let b = random_f64s(&mut rng, N);

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let a_base = asm.alloc_f64s(&a);
    asm.set_data_base(HEAP2_BASE);
    let b_base = asm.alloc_f64s(&b);

    asm.li(x(10), a_base);
    asm.li(x(11), b_base);
    asm.li(x(21), reps);
    asm.li(x(22), N as u64);
    asm.label("rep");
    asm.fsub(f(2), f(2), f(2)); // acc = 0
    asm.li(x(2), 0);
    asm.label("elem");
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(10), x(4));
    asm.fld(f(3), x(5), 0);
    asm.add(x(5), x(11), x(4));
    asm.fld(f(4), x(5), 0);
    asm.fmul(f(3), f(3), f(4));
    asm.fadd(f(2), f(2), f(3));
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(22), "elem");
    asm.fadd(f(1), f(1), f(2));
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    epilogue(&mut asm);
    asm.finish().expect("dot_products assembles")
}

/// Position/velocity integration for 256 particles.
fn particle_push(size: u32) -> Program {
    const N: usize = 256;
    let reps = u64::from(size) * 8;
    let mut rng = rng(0xBA11);
    let pos = random_f64s(&mut rng, N);
    let vel = random_f64s(&mut rng, N);

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let pos_base = asm.alloc_f64s(&pos);
    let vel_base = asm.alloc_f64s(&vel);
    let consts = asm.alloc_f64s(&[0.001, -0.0005]); // dt, -k*dt

    asm.li(x(9), consts);
    asm.fld(f(5), x(9), 0); // dt
    asm.fld(f(6), x(9), 8); // -k*dt
    asm.li(x(10), pos_base);
    asm.li(x(11), vel_base);
    asm.li(x(21), reps);
    asm.li(x(22), N as u64);
    asm.label("step");
    asm.li(x(2), 0);
    asm.label("particle");
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(10), x(4));
    asm.add(x(6), x(11), x(4));
    asm.fld(f(2), x(5), 0); // pos
    asm.fld(f(3), x(6), 0); // vel
    // vel += -k*dt * pos; pos += dt * vel
    asm.fmul(f(4), f(2), f(6));
    asm.fadd(f(3), f(3), f(4));
    asm.fmul(f(4), f(3), f(5));
    asm.fadd(f(2), f(2), f(4));
    asm.fst(f(2), x(5), 0);
    asm.fst(f(3), x(6), 0);
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(22), "particle");
    asm.fadd(f(1), f(1), f(2));
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "step");
    epilogue(&mut asm);
    asm.finish().expect("particle_push assembles")
}

/// Thomas algorithm on a diagonally dominant 256-point system, from
/// pristine copies each repetition.
fn tridiag(size: u32) -> Program {
    const N: usize = 256;
    let reps = u64::from(size) * 4;
    let mut rng = rng(0x7D1A);
    let sub = random_f64s(&mut rng, N);
    let diag: Vec<f64> = random_f64s(&mut rng, N).iter().map(|v| 4.0 + v).collect();
    let sup = random_f64s(&mut rng, N);
    let rhs = random_f64s(&mut rng, N);

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let a_base = asm.alloc_f64s(&sub); // read-only
    let b_src = asm.alloc_f64s(&diag);
    let c_base = asm.alloc_f64s(&sup); // read-only
    let d_src = asm.alloc_f64s(&rhs);
    let b_work = asm.alloc_bytes_zeroed(N * 8);
    let d_work = asm.alloc_bytes_zeroed(N * 8);
    let x_out = asm.alloc_bytes_zeroed(N * 8);

    asm.li(x(10), a_base);
    asm.li(x(11), b_work);
    asm.li(x(12), c_base);
    asm.li(x(13), d_work);
    asm.li(x(14), x_out);
    asm.li(x(15), b_src);
    asm.li(x(16), d_src);
    asm.li(x(21), reps);
    asm.li(x(22), N as u64);
    asm.label("rep");
    // Restore pristine b and d.
    asm.li(x(2), 0);
    asm.label("restore");
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(15), x(4));
    asm.fld(f(2), x(5), 0);
    asm.add(x(5), x(11), x(4));
    asm.fst(f(2), x(5), 0);
    asm.add(x(5), x(16), x(4));
    asm.fld(f(2), x(5), 0);
    asm.add(x(5), x(13), x(4));
    asm.fst(f(2), x(5), 0);
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(22), "restore");
    // Forward elimination: w = a[i]/b[i-1]; b[i] -= w*c[i-1]; d[i] -= w*d[i-1].
    asm.li(x(2), 1);
    asm.label("forward");
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(10), x(4));
    asm.fld(f(2), x(5), 0); // a[i]
    asm.add(x(5), x(11), x(4));
    asm.fld(f(3), x(5), -8); // b[i-1]
    asm.fdiv(f(2), f(2), f(3)); // w
    asm.add(x(6), x(12), x(4));
    asm.fld(f(3), x(6), -8); // c[i-1]
    asm.fmul(f(3), f(3), f(2));
    asm.fld(f(4), x(5), 0); // b[i]
    asm.fsub(f(4), f(4), f(3));
    asm.fst(f(4), x(5), 0);
    asm.add(x(6), x(13), x(4));
    asm.fld(f(3), x(6), -8); // d[i-1]
    asm.fmul(f(3), f(3), f(2));
    asm.fld(f(4), x(6), 0); // d[i]
    asm.fsub(f(4), f(4), f(3));
    asm.fst(f(4), x(6), 0);
    asm.addi(x(2), x(2), 1);
    asm.blt(x(2), x(22), "forward");
    // Back substitution: x[n-1] = d/b; x[i] = (d[i] - c[i]*x[i+1]) / b[i].
    asm.li(x(2), (N - 1) as u64);
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(13), x(4));
    asm.fld(f(2), x(5), 0);
    asm.add(x(5), x(11), x(4));
    asm.fld(f(3), x(5), 0);
    asm.fdiv(f(2), f(2), f(3));
    asm.add(x(5), x(14), x(4));
    asm.fst(f(2), x(5), 0);
    asm.label("back");
    asm.addi(x(2), x(2), -1);
    asm.blt(x(2), x(0), "rep_done");
    asm.slli(x(4), x(2), 3);
    asm.add(x(5), x(12), x(4));
    asm.fld(f(3), x(5), 0); // c[i]
    asm.add(x(5), x(14), x(4));
    asm.fld(f(4), x(5), 8); // x[i+1]
    asm.fmul(f(3), f(3), f(4));
    asm.add(x(5), x(13), x(4));
    asm.fld(f(4), x(5), 0); // d[i]
    asm.fsub(f(4), f(4), f(3));
    asm.add(x(5), x(11), x(4));
    asm.fld(f(3), x(5), 0); // b[i]
    asm.fdiv(f(4), f(4), f(3));
    asm.add(x(5), x(14), x(4));
    asm.fst(f(4), x(5), 0);
    asm.j("back");
    asm.label("rep_done");
    asm.li(x(5), x_out);
    asm.fld(f(2), x(5), 0);
    asm.fadd(f(1), f(1), f(2));
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "rep");
    epilogue(&mut asm);
    asm.finish().expect("tridiag assembles")
}

/// Table lookup + linear interpolation: integer index math feeding FP.
fn table_interp(size: u32) -> Program {
    const ENTRIES: usize = 1024;
    let ops = u64::from(size) * 1_000;
    let mut rng = rng(0x1EE7);
    let table = random_f64s(&mut rng, ENTRIES + 1);

    let mut asm = Asm::new();
    asm.set_data_base(HEAP_BASE);
    let table_base = asm.alloc_f64s(&table);
    let scale = asm.alloc_f64s(&[1.0 / 1048576.0]); // 2^-20

    asm.li(x(9), scale);
    asm.fld(f(5), x(9), 0);
    asm.li(x(10), table_base);
    asm.li(x(4), 0x853C_49E6_748F_EA9B); // LCG state
    asm.li(x(5), 6364136223846793005);
    asm.li(x(6), 1442695040888963407);
    asm.li(x(21), ops);
    asm.label("op");
    asm.mul(x(4), x(4), x(5));
    asm.add(x(4), x(4), x(6));
    asm.srli(x(7), x(4), 30);
    asm.andi(x(7), x(7), (ENTRIES - 1) as i64);
    asm.slli(x(8), x(7), 3);
    asm.add(x(8), x(10), x(8));
    asm.fld(f(2), x(8), 0); // t[i]
    asm.fld(f(3), x(8), 8); // t[i+1]
    // frac = (state & 0xFFFFF) * 2^-20
    asm.andi(x(7), x(4), 0xFFFFF);
    asm.fcvt_fi(f(4), x(7));
    asm.fmul(f(4), f(4), f(5));
    asm.fsub(f(3), f(3), f(2));
    asm.fmul(f(3), f(3), f(4));
    asm.fadd(f(2), f(2), f(3));
    asm.fadd(f(1), f(1), f(2));
    asm.addi(x(21), x(21), -1);
    asm.bne(x(21), x(0), "op");
    epilogue(&mut asm);
    asm.finish().expect("table_interp assembles")
}
