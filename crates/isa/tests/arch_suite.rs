//! Architectural test suite: one directed case per opcode, checked
//! against hand-computed results on the functional machine. (The timing
//! pipeline is exercised on the same programs by `carf-sim`'s
//! co-simulation tests.)

use carf_isa::{f, x, Asm, Machine};

fn run(asm: Asm) -> Machine {
    let p = asm.finish().expect("assembles");
    let mut m = Machine::load(&p);
    m.run(&p, 100_000).expect("runs");
    m
}

macro_rules! alu_case {
    ($name:ident, $method:ident, $a:expr, $b:expr, $expect:expr) => {
        #[test]
        fn $name() {
            let mut asm = Asm::new();
            asm.li(x(1), $a);
            asm.li(x(2), $b);
            asm.$method(x(3), x(1), x(2));
            asm.halt();
            assert_eq!(run(asm).int_reg(x(3)), $expect, stringify!($name));
        }
    };
}

alu_case!(add_basic, add, 7, 5, 12);
alu_case!(add_wraps, add, u64::MAX, 1, 0);
alu_case!(sub_basic, sub, 7, 5, 2);
alu_case!(sub_borrows, sub, 0, 1, u64::MAX);
alu_case!(and_masks, and, 0b1100, 0b1010, 0b1000);
alu_case!(or_merges, or, 0b1100, 0b1010, 0b1110);
alu_case!(xor_toggles, xor, 0b1100, 0b1010, 0b0110);
alu_case!(sll_shifts, sll, 1, 12, 1 << 12);
alu_case!(sll_masks_amount, sll, 1, 64, 1);
alu_case!(srl_logical, srl, u64::MAX, 60, 0xF);
alu_case!(sra_arithmetic, sra, (-16i64) as u64, 2, (-4i64) as u64);
alu_case!(slt_signed, slt, (-1i64) as u64, 0, 1);
alu_case!(sltu_unsigned, sltu, (-1i64) as u64, 0, 0);
alu_case!(mul_low_bits, mul, 1 << 40, 1 << 30, 0); // low 64 bits of 2^70
alu_case!(div_signed, div, (-9i64) as u64, 2, (-4i64) as u64);
alu_case!(div_by_zero_is_all_ones, div, 5, 0, u64::MAX);

macro_rules! alui_case {
    ($name:ident, $method:ident, $a:expr, $imm:expr, $expect:expr) => {
        #[test]
        fn $name() {
            let mut asm = Asm::new();
            asm.li(x(1), $a);
            asm.$method(x(3), x(1), $imm);
            asm.halt();
            assert_eq!(run(asm).int_reg(x(3)), $expect, stringify!($name));
        }
    };
}

alui_case!(addi_negative, addi, 10, -3, 7);
alui_case!(andi_masks, andi, 0xFF, 0x0F, 0x0F);
alui_case!(ori_sets, ori, 0xF0, 0x0F, 0xFF);
alui_case!(xori_flips, xori, 0xFF, 0x0F, 0xF0);
alui_case!(slli_shifts, slli, 3, 4, 48);
alui_case!(srli_shifts, srli, 48, 4, 3);
alui_case!(srai_sign_extends, srai, (-8i64) as u64, 1, (-4i64) as u64);
alui_case!(slti_signed, slti, (-5i64) as u64, -4, 1);

#[test]
fn li_loads_full_64_bits() {
    let mut asm = Asm::new();
    asm.li(x(1), 0xFEDC_BA98_7654_3210);
    asm.halt();
    assert_eq!(run(asm).int_reg(x(1)), 0xFEDC_BA98_7654_3210);
}

#[test]
fn loads_and_stores_every_width() {
    let mut asm = Asm::new();
    let buf = asm.alloc_bytes_zeroed(32);
    asm.li(x(1), buf);
    asm.li(x(2), 0x1122_3344_5566_8899);
    asm.st(x(2), x(1), 0); // 64-bit
    asm.sw(x(2), x(1), 8); // 32-bit
    asm.sb(x(2), x(1), 16); // 8-bit
    asm.ld(x(3), x(1), 0);
    asm.lw(x(4), x(1), 8); // sign-extends 0x55668899 (positive)
    asm.lbu(x(5), x(1), 16); // 0x99 zero-extended
    asm.lw(x(6), x(1), 0); // sign-extends 0x55668899
    asm.halt();
    let m = run(asm);
    assert_eq!(m.int_reg(x(3)), 0x1122_3344_5566_8899);
    assert_eq!(m.int_reg(x(4)), 0x5566_8899);
    assert_eq!(m.int_reg(x(5)), 0x99);
    assert_eq!(m.int_reg(x(6)), 0x5566_8899);
}

#[test]
fn lw_sign_extends_negative_words() {
    let mut asm = Asm::new();
    let buf = asm.alloc_bytes_zeroed(8);
    asm.li(x(1), buf);
    asm.li(x(2), 0x8000_0001);
    asm.sw(x(2), x(1), 0);
    asm.lw(x(3), x(1), 0);
    asm.halt();
    assert_eq!(run(asm).int_reg(x(3)), 0xFFFF_FFFF_8000_0001);
}

macro_rules! branch_case {
    ($name:ident, $method:ident, $a:expr, $b:expr, $taken:expr) => {
        #[test]
        fn $name() {
            let mut asm = Asm::new();
            asm.li(x(1), $a);
            asm.li(x(2), $b);
            asm.li(x(3), 0);
            asm.$method(x(1), x(2), "taken");
            asm.li(x(3), 1); // fallthrough marker
            asm.label("taken");
            asm.halt();
            let expected = if $taken { 0 } else { 1 };
            assert_eq!(run(asm).int_reg(x(3)), expected, stringify!($name));
        }
    };
}

branch_case!(beq_taken, beq, 4, 4, true);
branch_case!(beq_not_taken, beq, 4, 5, false);
branch_case!(bne_taken, bne, 4, 5, true);
branch_case!(blt_signed_taken, blt, (-1i64) as u64, 0, true);
branch_case!(bge_equal_taken, bge, 9, 9, true);
branch_case!(bltu_unsigned_not_taken, bltu, (-1i64) as u64, 0, false);
branch_case!(bgeu_unsigned_taken, bgeu, (-1i64) as u64, 0, true);

#[test]
fn jal_links_and_jumps() {
    let mut asm = Asm::new();
    asm.jal(x(1), "target"); // at code_base
    asm.li(x(2), 99); // skipped
    asm.label("target");
    asm.halt();
    let m = run(asm);
    assert_eq!(m.int_reg(x(2)), 0);
    assert_eq!(m.int_reg(x(1)), 0x40_0000 + 8);
}

#[test]
fn jalr_computes_indirect_targets() {
    let mut asm = Asm::new();
    asm.li(x(1), 0x40_0000 + 4 * 8); // address of the halt
    asm.jalr(x(2), x(1), 0);
    asm.li(x(3), 99); // skipped
    asm.nop();
    asm.halt();
    let m = run(asm);
    assert_eq!(m.int_reg(x(3)), 0);
    assert_eq!(m.int_reg(x(2)), 0x40_0000 + 16);
}

#[test]
fn fp_arithmetic_matches_ieee() {
    let mut asm = Asm::new();
    let c = asm.alloc_f64s(&[0.5, -1.25]);
    asm.li(x(1), c);
    asm.fld(f(1), x(1), 0);
    asm.fld(f(2), x(1), 8);
    asm.fadd(f(3), f(1), f(2));
    asm.fsub(f(4), f(1), f(2));
    asm.fmul(f(5), f(1), f(2));
    asm.fdiv(f(6), f(1), f(2));
    asm.fmov(f(7), f(2));
    asm.halt();
    let m = run(asm);
    assert_eq!(m.fp_reg(f(3)), -0.75);
    assert_eq!(m.fp_reg(f(4)), 1.75);
    assert_eq!(m.fp_reg(f(5)), -0.625);
    assert_eq!(m.fp_reg(f(6)), -0.4);
    assert_eq!(m.fp_reg(f(7)), -1.25);
}

#[test]
fn fp_compares_and_conversions() {
    let mut asm = Asm::new();
    let c = asm.alloc_f64s(&[2.0, 3.0]);
    asm.li(x(1), c);
    asm.fld(f(1), x(1), 0);
    asm.fld(f(2), x(1), 8);
    asm.fcmplt(x(2), f(1), f(2));
    asm.fcmplt(x(3), f(2), f(1));
    asm.fcmpeq(x(4), f(1), f(1));
    asm.fcvt_if(x(5), f(2));
    asm.li(x(6), (-9i64) as u64);
    asm.fcvt_fi(f(3), x(6));
    asm.fcvt_if(x(7), f(3));
    asm.halt();
    let m = run(asm);
    assert_eq!(m.int_reg(x(2)), 1);
    assert_eq!(m.int_reg(x(3)), 0);
    assert_eq!(m.int_reg(x(4)), 1);
    assert_eq!(m.int_reg(x(5)), 3);
    assert_eq!(m.int_reg(x(7)), (-9i64) as u64);
}

#[test]
fn fst_round_trips_through_memory() {
    let mut asm = Asm::new();
    let c = asm.alloc_f64s(&[6.25]);
    let out = asm.alloc_bytes_zeroed(8);
    asm.li(x(1), c);
    asm.li(x(2), out);
    asm.fld(f(1), x(1), 0);
    asm.fst(f(1), x(2), 0);
    asm.fld(f(2), x(2), 0);
    asm.halt();
    assert_eq!(run(asm).fp_reg(f(2)), 6.25);
}

#[test]
fn nop_does_nothing_and_halt_stops() {
    let mut asm = Asm::new();
    asm.li(x(1), 1);
    asm.nop();
    asm.nop();
    asm.halt();
    asm.li(x(1), 2); // never reached
    asm.halt();
    let m = run(asm);
    assert_eq!(m.int_reg(x(1)), 1);
    assert_eq!(m.retired(), 4); // li + 2 nops + halt
}

#[test]
fn negative_offsets_address_backward() {
    let mut asm = Asm::new();
    let buf = asm.alloc_u64s(&[111, 222]);
    asm.li(x(1), buf + 8);
    asm.ld(x(2), x(1), -8);
    asm.halt();
    assert_eq!(run(asm).int_reg(x(2)), 111);
}
