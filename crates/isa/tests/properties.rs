//! Property-based tests of the ISA: encoding, assembly, and semantics.

use carf_isa::semantics::{eval_branch, eval_int_alu, extend_load, LoadWidth};
use carf_isa::{decode, encode, x, Asm, Inst, Machine, Opcode};
use proptest::prelude::*;

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    (0usize..Opcode::ALL.len()).prop_map(|i| Opcode::ALL[i])
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    (arb_opcode(), 0u8..32, 0u8..32, 0u8..32, any::<i64>())
        .prop_map(|(op, rd, rs1, rs2, imm)| Inst { op, rd, rs1, rs2, imm })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_is_identity(inst in arb_inst()) {
        prop_assert_eq!(decode(encode(&inst)).unwrap(), inst);
    }

    #[test]
    fn decode_never_panics(word in any::<u128>()) {
        let _ = decode(word); // may be Err, must not panic
    }

    #[test]
    fn display_never_panics(inst in arb_inst()) {
        let text = inst.to_string();
        prop_assert!(!text.is_empty());
    }

    #[test]
    fn sources_and_dest_are_always_in_range(inst in arb_inst()) {
        if let Some(d) = inst.dest() {
            match d {
                carf_isa::RegRef::Int(r) => prop_assert!(r.index() < 32),
                carf_isa::RegRef::Fp(r) => prop_assert!(r.index() < 32),
            }
        }
        for s in inst.sources().into_iter().flatten() {
            match s {
                carf_isa::RegRef::Int(r) => prop_assert!(r.index() < 32),
                carf_isa::RegRef::Fp(r) => prop_assert!(r.index() < 32),
            }
        }
    }

    #[test]
    fn add_sub_are_inverses(a in any::<u64>(), b in any::<u64>()) {
        let sum = eval_int_alu(Opcode::Add, a, b);
        prop_assert_eq!(eval_int_alu(Opcode::Sub, sum, b), a);
    }

    #[test]
    fn add_is_commutative_xor_self_inverse(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(
            eval_int_alu(Opcode::Add, a, b),
            eval_int_alu(Opcode::Add, b, a)
        );
        let x1 = eval_int_alu(Opcode::Xor, a, b);
        prop_assert_eq!(eval_int_alu(Opcode::Xor, x1, b), a);
    }

    #[test]
    fn shifts_compose_with_masks(v in any::<u64>(), s in 0u64..64) {
        let left = eval_int_alu(Opcode::Sll, v, s);
        prop_assert_eq!(left, v << s);
        let logical = eval_int_alu(Opcode::Srl, v, s);
        prop_assert_eq!(logical, v >> s);
        // Arithmetic shift preserves the sign bit.
        let arith = eval_int_alu(Opcode::Sra, v, s);
        prop_assert_eq!(arith >> 63, v >> 63);
    }

    #[test]
    fn branch_pairs_are_complements(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_ne!(eval_branch(Opcode::Beq, a, b), eval_branch(Opcode::Bne, a, b));
        prop_assert_ne!(eval_branch(Opcode::Blt, a, b), eval_branch(Opcode::Bge, a, b));
        prop_assert_ne!(eval_branch(Opcode::Bltu, a, b), eval_branch(Opcode::Bgeu, a, b));
    }

    #[test]
    fn load_extension_is_idempotent(raw in any::<u64>()) {
        for w in [LoadWidth::U64, LoadWidth::I32, LoadWidth::U8, LoadWidth::F64] {
            let once = extend_load(w, raw);
            prop_assert_eq!(extend_load(w, once), once);
        }
    }

    #[test]
    fn executor_computes_alu_chains(a in any::<u64>(), b in 1u64..1000) {
        // (a + b) - b == a, computed by the machine.
        let mut asm = Asm::new();
        asm.li(x(1), a);
        asm.li(x(2), b);
        asm.add(x(3), x(1), x(2));
        asm.sub(x(4), x(3), x(2));
        asm.halt();
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p);
        m.run(&p, 100).unwrap();
        prop_assert_eq!(m.int_reg(x(4)), a);
    }

    #[test]
    fn executor_memory_is_last_writer_wins(
        addr_off in 0u64..64,
        v1 in any::<u64>(),
        v2 in any::<u64>(),
    ) {
        let mut asm = Asm::new();
        let base = asm.alloc_bytes_zeroed(128);
        asm.li(x(1), base);
        asm.li(x(2), v1);
        asm.li(x(3), v2);
        asm.st(x(2), x(1), (addr_off * 8 % 120) as i64);
        asm.st(x(3), x(1), (addr_off * 8 % 120) as i64);
        asm.ld(x(4), x(1), (addr_off * 8 % 120) as i64);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p);
        m.run(&p, 100).unwrap();
        prop_assert_eq!(m.int_reg(x(4)), v2);
    }

    #[test]
    fn counted_loops_retire_exactly(n in 1u64..200) {
        let mut asm = Asm::new();
        asm.li(x(1), n);
        asm.label("loop");
        asm.addi(x(1), x(1), -1);
        asm.bne(x(1), x(0), "loop");
        asm.halt();
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p);
        m.run(&p, 10_000_000).unwrap();
        // li + n * (addi + bne) + halt
        prop_assert_eq!(m.retired(), 1 + 2 * n + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disassembly_reparses_for_straight_line_code(
        seeds in proptest::collection::vec((0u8..4, 1u8..16, 1u8..16, 1u8..16, -500i64..500), 1..30),
    ) {
        // Build straight-line programs from a safe subset, disassemble,
        // re-parse, and compare instruction streams.
        use carf_isa::{parse_asm, Opcode};
        let mut asm = Asm::new();
        for (kind, rd, rs1, rs2, imm) in seeds {
            match kind {
                0 => {
                    asm.emit(Inst::rrr(Opcode::Add, rd, rs1, rs2));
                }
                1 => {
                    asm.emit(Inst::rri(Opcode::Addi, rd, rs1, imm));
                }
                2 => {
                    asm.emit(Inst::rri(Opcode::Ld, rd, rs1, imm));
                }
                _ => {
                    asm.emit(Inst {
                        op: Opcode::St,
                        rd: 0,
                        rs1,
                        rs2,
                        imm,
                    });
                }
            }
        }
        asm.halt();
        let original = asm.finish().unwrap();
        let text = original.disassemble()
            .lines()
            .map(|l| l.split_once(": ").map(|(_, i)| i).unwrap_or(l))
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = parse_asm(&text).unwrap();
        prop_assert_eq!(original.insts, reparsed.insts);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "[ -~\n]{0,200}") {
        let _ = carf_isa::parse_asm(&text); // Err is fine; panic is not
    }
}
