//! Fixed-width binary instruction encoding.
//!
//! Instructions encode into a 128-bit word:
//!
//! ```text
//! bits   0..8    opcode
//! bits   8..16   rd
//! bits  16..24   rs1
//! bits  24..32   rs2
//! bits  32..64   reserved (zero)
//! bits  64..128  imm (two's complement)
//! ```
//!
//! The encoding exists for realism and round-trip testing; the simulators
//! execute decoded [`Inst`]s directly.

use crate::inst::{Inst, Opcode};

/// Why a 128-bit word failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeInstError {
    /// The opcode byte does not name an instruction.
    BadOpcode(u8),
    /// A register field is out of range for its file.
    BadRegister(u8),
    /// The reserved field was non-zero.
    ReservedBitsSet,
}

impl std::fmt::Display for DecodeInstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeInstError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#x}"),
            DecodeInstError::BadRegister(r) => write!(f, "register field {r} out of range"),
            DecodeInstError::ReservedBitsSet => write!(f, "reserved encoding bits set"),
        }
    }
}

impl std::error::Error for DecodeInstError {}

/// Encodes an instruction into its 128-bit binary form.
///
/// # Example
///
/// ```
/// use carf_isa::{encode, decode, Inst, Opcode};
///
/// let inst = Inst::rri(Opcode::Addi, 4, 5, -12);
/// assert_eq!(decode(encode(&inst))?, inst);
/// # Ok::<(), carf_isa::DecodeInstError>(())
/// ```
pub fn encode(inst: &Inst) -> u128 {
    (inst.op as u128)
        | ((inst.rd as u128) << 8)
        | ((inst.rs1 as u128) << 16)
        | ((inst.rs2 as u128) << 24)
        | ((inst.imm as u64 as u128) << 64)
}

/// Decodes a 128-bit word back into an instruction.
///
/// # Errors
///
/// Returns [`DecodeInstError`] when the opcode byte is unknown, a register
/// field exceeds 31, or reserved bits are set.
pub fn decode(word: u128) -> Result<Inst, DecodeInstError> {
    let op_byte = (word & 0xff) as u8;
    let op = Opcode::from_u8(op_byte).ok_or(DecodeInstError::BadOpcode(op_byte))?;
    let rd = ((word >> 8) & 0xff) as u8;
    let rs1 = ((word >> 16) & 0xff) as u8;
    let rs2 = ((word >> 24) & 0xff) as u8;
    for r in [rd, rs1, rs2] {
        if r >= 32 {
            return Err(DecodeInstError::BadRegister(r));
        }
    }
    if (word >> 32) & 0xffff_ffff != 0 {
        return Err(DecodeInstError::ReservedBitsSet);
    }
    let imm = ((word >> 64) as u64) as i64;
    Ok(Inst { op, rd, rs1, rs2, imm })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_opcode() {
        for op in Opcode::ALL {
            let inst = Inst { op, rd: 3, rs1: 17, rs2: 31, imm: -0x1234_5678_9abc };
            assert_eq!(decode(encode(&inst)).unwrap(), inst, "{op:?}");
        }
    }

    #[test]
    fn negative_immediates_survive() {
        let inst = Inst::rri(Opcode::Addi, 1, 2, i64::MIN);
        assert_eq!(decode(encode(&inst)).unwrap().imm, i64::MIN);
        let inst = Inst::rri(Opcode::Li, 1, 0, -1);
        assert_eq!(decode(encode(&inst)).unwrap().imm, -1);
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode(0xff), Err(DecodeInstError::BadOpcode(0xff)));
    }

    #[test]
    fn bad_register_rejected() {
        let word = encode(&Inst::nop()) | (63 << 8);
        assert_eq!(decode(word), Err(DecodeInstError::BadRegister(63)));
    }

    #[test]
    fn reserved_bits_rejected() {
        let word = encode(&Inst::nop()) | (1u128 << 40);
        assert_eq!(decode(word), Err(DecodeInstError::ReservedBitsSet));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(DecodeInstError::BadOpcode(200).to_string().contains("0xc8"));
        assert!(DecodeInstError::BadRegister(40).to_string().contains("40"));
    }
}
