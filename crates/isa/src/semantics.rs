//! Shared evaluation semantics.
//!
//! Both the functional executor ([`crate::Machine`]) and the cycle-level
//! simulator in `carf-sim` call into this module to compute results, so the
//! two can never disagree about *what* an instruction computes — only about
//! *when*. This is the property the co-simulation tests rely on.

use crate::inst::Opcode;

/// Result width/extension of a memory load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadWidth {
    /// 64-bit load.
    U64,
    /// 32-bit load, sign-extended.
    I32,
    /// 8-bit load, zero-extended.
    U8,
    /// 64-bit FP load.
    F64,
}

/// Width of a memory store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreWidth {
    /// 64-bit store.
    U64,
    /// 32-bit store (low bits).
    U32,
    /// 8-bit store (low byte).
    U8,
    /// 64-bit FP store.
    F64,
}

/// Evaluates an integer ALU operation (register-register or
/// register-immediate; for immediate forms pass the immediate as `b`).
///
/// # Panics
///
/// Panics if `op` is not an integer ALU/mul/div opcode.
pub fn eval_int_alu(op: Opcode, a: u64, b: u64) -> u64 {
    use Opcode::*;
    match op {
        Add | Addi => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        And | Andi => a & b,
        Or | Ori => a | b,
        Xor | Xori => a ^ b,
        Sll | Slli => a.wrapping_shl((b & 63) as u32),
        Srl | Srli => a.wrapping_shr((b & 63) as u32),
        Sra | Srai => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        Slt | Slti => ((a as i64) < (b as i64)) as u64,
        Sltu => (a < b) as u64,
        Mul => a.wrapping_mul(b),
        Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                // RISC-V convention: divide by zero yields all ones.
                u64::MAX
            } else {
                a.wrapping_div(b) as u64
            }
        }
        Li => b,
        other => panic!("eval_int_alu called with non-ALU opcode {other:?}"),
    }
}

/// Evaluates a conditional branch condition.
///
/// # Panics
///
/// Panics if `op` is not a conditional branch.
pub fn eval_branch(op: Opcode, a: u64, b: u64) -> bool {
    use Opcode::*;
    match op {
        Beq => a == b,
        Bne => a != b,
        Blt => (a as i64) < (b as i64),
        Bge => (a as i64) >= (b as i64),
        Bltu => a < b,
        Bgeu => a >= b,
        other => panic!("eval_branch called with non-branch opcode {other:?}"),
    }
}

/// Evaluates an FP arithmetic operation that produces an FP result.
///
/// # Panics
///
/// Panics if `op` is not one of `Fadd`/`Fsub`/`Fmul`/`Fdiv`/`Fmov`.
pub fn eval_fp_alu(op: Opcode, a: f64, b: f64) -> f64 {
    use Opcode::*;
    match op {
        Fadd => a + b,
        Fsub => a - b,
        Fmul => a * b,
        Fdiv => a / b,
        Fmov => a,
        other => panic!("eval_fp_alu called with non-FP opcode {other:?}"),
    }
}

/// Evaluates an FP operation producing an *integer* result (compares and
/// the FP→int conversion).
///
/// # Panics
///
/// Panics if `op` is not `Fcmplt`/`Fcmpeq`/`FcvtIF`.
pub fn eval_fp_to_int(op: Opcode, a: f64, b: f64) -> u64 {
    use Opcode::*;
    match op {
        Fcmplt => (a < b) as u64,
        Fcmpeq => (a == b) as u64,
        // `as` saturates and maps NaN to 0, which is deterministic across
        // both simulators.
        FcvtIF => (a as i64) as u64,
        other => panic!("eval_fp_to_int called with non-FP-to-int opcode {other:?}"),
    }
}

/// Evaluates the int→FP conversion.
pub fn eval_int_to_fp(a: u64) -> f64 {
    (a as i64) as f64
}

/// The load width of a load opcode.
///
/// # Panics
///
/// Panics if `op` is not a load.
pub fn load_width(op: Opcode) -> LoadWidth {
    match op {
        Opcode::Ld => LoadWidth::U64,
        Opcode::Lw => LoadWidth::I32,
        Opcode::Lbu => LoadWidth::U8,
        Opcode::Fld => LoadWidth::F64,
        other => panic!("load_width called with non-load opcode {other:?}"),
    }
}

/// The store width of a store opcode.
///
/// # Panics
///
/// Panics if `op` is not a store.
pub fn store_width(op: Opcode) -> StoreWidth {
    match op {
        Opcode::St => StoreWidth::U64,
        Opcode::Sw => StoreWidth::U32,
        Opcode::Sb => StoreWidth::U8,
        Opcode::Fst => StoreWidth::F64,
        other => panic!("store_width called with non-store opcode {other:?}"),
    }
}

/// Extends raw loaded bits according to the load width, returning the value
/// as it lands in the destination register (bit pattern for FP).
pub fn extend_load(width: LoadWidth, raw: u64) -> u64 {
    match width {
        LoadWidth::U64 | LoadWidth::F64 => raw,
        LoadWidth::I32 => (raw as u32 as i32) as i64 as u64,
        LoadWidth::U8 => raw as u8 as u64,
    }
}

/// Number of bytes a store width covers.
pub fn store_bytes(width: StoreWidth) -> u64 {
    match width {
        StoreWidth::U64 | StoreWidth::F64 => 8,
        StoreWidth::U32 => 4,
        StoreWidth::U8 => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Opcode::*;

    #[test]
    fn alu_basics() {
        assert_eq!(eval_int_alu(Add, 2, 3), 5);
        assert_eq!(eval_int_alu(Sub, 2, 3), u64::MAX); // wraps
        assert_eq!(eval_int_alu(And, 0b1100, 0b1010), 0b1000);
        assert_eq!(eval_int_alu(Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(eval_int_alu(Xor, 0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn shifts_mask_amount_to_six_bits() {
        assert_eq!(eval_int_alu(Sll, 1, 64), 1); // 64 & 63 == 0
        assert_eq!(eval_int_alu(Sll, 1, 63), 1 << 63);
        assert_eq!(eval_int_alu(Srl, u64::MAX, 63), 1);
        assert_eq!(eval_int_alu(Sra, (-2i64) as u64, 1), (-1i64) as u64);
    }

    #[test]
    fn comparisons_are_signed_and_unsigned() {
        let neg1 = (-1i64) as u64;
        assert_eq!(eval_int_alu(Slt, neg1, 0), 1); // signed: -1 < 0
        assert_eq!(eval_int_alu(Sltu, neg1, 0), 0); // unsigned: MAX > 0
    }

    #[test]
    fn div_conventions() {
        assert_eq!(eval_int_alu(Div, 7, 2), 3);
        assert_eq!(eval_int_alu(Div, (-7i64) as u64, 2), (-3i64) as u64);
        assert_eq!(eval_int_alu(Div, 5, 0), u64::MAX); // div by zero
        // i64::MIN / -1 overflows; wrapping_div yields i64::MIN.
        assert_eq!(
            eval_int_alu(Div, i64::MIN as u64, (-1i64) as u64),
            i64::MIN as u64
        );
    }

    #[test]
    fn branch_conditions() {
        let neg = (-5i64) as u64;
        assert!(eval_branch(Beq, 4, 4));
        assert!(eval_branch(Bne, 4, 5));
        assert!(eval_branch(Blt, neg, 3));
        assert!(!eval_branch(Bltu, neg, 3));
        assert!(eval_branch(Bge, 3, 3));
        assert!(eval_branch(Bgeu, neg, 3));
    }

    #[test]
    fn fp_ops() {
        assert_eq!(eval_fp_alu(Fadd, 1.5, 2.25), 3.75);
        assert_eq!(eval_fp_alu(Fdiv, 1.0, 0.0), f64::INFINITY);
        assert_eq!(eval_fp_to_int(Fcmplt, 1.0, 2.0), 1);
        assert_eq!(eval_fp_to_int(Fcmpeq, f64::NAN, f64::NAN), 0);
        assert_eq!(eval_fp_to_int(FcvtIF, -3.7, 0.0), (-3i64) as u64);
        assert_eq!(eval_fp_to_int(FcvtIF, f64::NAN, 0.0), 0);
        assert_eq!(eval_int_to_fp((-4i64) as u64), -4.0);
    }

    #[test]
    fn load_extension() {
        assert_eq!(extend_load(LoadWidth::U64, 0xffff_ffff_ffff_ffff), u64::MAX);
        assert_eq!(extend_load(LoadWidth::I32, 0x8000_0000), 0xffff_ffff_8000_0000);
        assert_eq!(extend_load(LoadWidth::I32, 0x7fff_ffff), 0x7fff_ffff);
        assert_eq!(extend_load(LoadWidth::U8, 0x1ff), 0xff);
    }

    #[test]
    fn widths() {
        assert_eq!(load_width(Ld), LoadWidth::U64);
        assert_eq!(store_width(Sb), StoreWidth::U8);
        assert_eq!(store_bytes(StoreWidth::U32), 4);
        assert_eq!(store_bytes(StoreWidth::F64), 8);
    }

    #[test]
    #[should_panic(expected = "non-ALU")]
    fn alu_rejects_branches() {
        let _ = eval_int_alu(Beq, 0, 0);
    }
}
