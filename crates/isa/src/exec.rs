//! The functional (architectural) executor.
//!
//! [`Machine`] runs a [`Program`] one instruction at a time with no notion
//! of timing. It is the golden reference for the cycle-level simulator:
//! `carf-sim` co-simulates against it at commit, checking that every retired
//! instruction wrote the same destination value.

use crate::checkpoint::{Checkpoint, CheckpointMismatch};
use crate::decoded::{DecodedOp, DecodedProgram};
use crate::inst::{Inst, InstKind, Opcode};
use crate::program::{Program, INST_BYTES};
use crate::reg::{FpReg, IntReg};
use crate::semantics::{
    eval_branch, eval_fp_alu, eval_fp_to_int, eval_int_alu, eval_int_to_fp, extend_load,
    load_width, store_bytes, store_width, LoadWidth, StoreWidth,
};
use carf_mem::SparseMemory;

/// Record of one architecturally retired instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retired {
    /// The instruction's byte address.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// The integer destination write, if any (`x0` writes are suppressed).
    pub int_write: Option<(IntReg, u64)>,
    /// The FP destination write, if any.
    pub fp_write: Option<(FpReg, f64)>,
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// The next PC after this instruction.
    pub next_pc: u64,
}

/// Outcome of one [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// An instruction retired.
    Retired(Retired),
    /// The machine hit `halt` (now or earlier).
    Halted,
}

/// Execution errors (a wild PC is a bug in the program under test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the code segment.
    PcOutOfRange(u64),
    /// `run` hit its instruction budget before `halt`.
    InstLimit(u64),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PcOutOfRange(pc) => write!(f, "pc {pc:#x} outside the code segment"),
            ExecError::InstLimit(n) => write!(f, "instruction budget of {n} exhausted before halt"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Side channel out of the decoded dispatch loop
/// ([`Machine::run_decoded_with`]): called with each retired
/// instruction's address, effective memory addresses, and control-flow
/// outcomes, in program order.
///
/// The intended use is *functional warming* for sampled simulation — a
/// fast-forward leg streams its access history into cache and
/// branch-predictor models so a measured interval does not start from
/// cold microarchitectural state. Every method defaults to a no-op and
/// the loop is monomorphized per observer, so [`NullObserver`] costs
/// nothing.
pub trait ExecObserver {
    /// An instruction at `pc` is about to execute (and will retire,
    /// unless it is the one that trips `PcOutOfRange` next step).
    #[inline]
    fn retire(&mut self, _pc: u64) {}
    /// A load's effective byte address.
    #[inline]
    fn load(&mut self, _addr: u64) {}
    /// A store's effective byte address.
    #[inline]
    fn store(&mut self, _addr: u64) {}
    /// A conditional branch at `pc` resolved `taken`.
    #[inline]
    fn cond_branch(&mut self, _pc: u64, _taken: bool) {}
    /// An indirect jump at `pc` went to `target`; `is_return` follows the
    /// link-register convention (no link write ⇒ return).
    #[inline]
    fn indirect_jump(&mut self, _pc: u64, _target: u64, _is_return: bool) {}
    /// A call wrote `return_addr` to its link register.
    #[inline]
    fn call(&mut self, _return_addr: u64) {}
}

/// The do-nothing [`ExecObserver`]; `run_decoded` is
/// `run_decoded_with(.., &mut NullObserver)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ExecObserver for NullObserver {}

/// Architectural machine state plus memory.
///
/// # Example
///
/// ```
/// use carf_isa::{Asm, Machine, x};
///
/// let mut asm = Asm::new();
/// asm.li(x(5), 21);
/// asm.add(x(5), x(5), x(5));
/// asm.halt();
/// let p = asm.finish()?;
/// let mut m = Machine::load(&p);
/// m.run(&p, 100)?;
/// assert_eq!(m.int_reg(x(5)), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [u64; 32],
    fregs: [f64; 32],
    /// Current program counter (byte address).
    pub pc: u64,
    /// Data memory.
    pub mem: SparseMemory,
    halted: bool,
    retired: u64,
}

impl Machine {
    /// Creates a machine with zeroed registers, the program's data image
    /// loaded, and the PC at the entry point.
    pub fn load(program: &Program) -> Self {
        let mut mem = SparseMemory::new();
        program.load_data(&mut mem);
        Self { regs: [0; 32], fregs: [0.0; 32], pc: program.entry, mem, halted: false, retired: 0 }
    }

    /// Reads an integer register (`x0` is always 0).
    pub fn int_reg(&self, r: IntReg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes an integer register (writes to `x0` are ignored).
    pub fn set_int_reg(&mut self, r: IntReg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Reads an FP register.
    pub fn fp_reg(&self, r: FpReg) -> f64 {
        self.fregs[r.index()]
    }

    /// Writes an FP register.
    pub fn set_fp_reg(&mut self, r: FpReg, v: f64) {
        self.fregs[r.index()] = v;
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// `true` once `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    fn read_mem(&self, width: LoadWidth, addr: u64) -> u64 {
        let raw = match width {
            LoadWidth::U64 | LoadWidth::F64 => self.mem.read_u64(addr),
            LoadWidth::I32 => u64::from(self.mem.read_u32(addr)),
            LoadWidth::U8 => u64::from(self.mem.read_u8(addr)),
        };
        extend_load(width, raw)
    }

    fn write_mem(&mut self, width: StoreWidth, addr: u64, value: u64) {
        match store_bytes(width) {
            8 => self.mem.write_u64(addr, value),
            4 => self.mem.write_u32(addr, value as u32),
            _ => self.mem.write_u8(addr, value as u8),
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::PcOutOfRange`] if the PC does not address an
    /// instruction in `program`.
    pub fn step(&mut self, program: &Program) -> Result<StepOutcome, ExecError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let pc = self.pc;
        let inst = *program.fetch(pc).ok_or(ExecError::PcOutOfRange(pc))?;
        let mut next_pc = pc + crate::program::INST_BYTES;
        let mut int_write: Option<(IntReg, u64)> = None;
        let mut fp_write: Option<(FpReg, f64)> = None;
        let mut mem_addr: Option<u64> = None;

        use Opcode::*;
        match inst.kind() {
            InstKind::IntAlu | InstKind::IntMul | InstKind::IntDiv => match inst.op {
                Fcmplt | Fcmpeq | FcvtIF => {
                    let a = self.fregs[inst.rs1 as usize];
                    let b = self.fregs[inst.rs2 as usize];
                    int_write = Some((IntReg::new(inst.rd), eval_fp_to_int(inst.op, a, b)));
                }
                Li => {
                    int_write = Some((IntReg::new(inst.rd), inst.imm as u64));
                }
                Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => {
                    let a = self.regs[inst.rs1 as usize];
                    int_write =
                        Some((IntReg::new(inst.rd), eval_int_alu(inst.op, a, inst.imm as u64)));
                }
                _ => {
                    let a = self.regs[inst.rs1 as usize];
                    let b = self.regs[inst.rs2 as usize];
                    int_write = Some((IntReg::new(inst.rd), eval_int_alu(inst.op, a, b)));
                }
            },
            InstKind::Load => {
                let addr = self.regs[inst.rs1 as usize].wrapping_add(inst.imm as u64);
                mem_addr = Some(addr);
                let width = load_width(inst.op);
                let bits = self.read_mem(width, addr);
                if inst.op == Fld {
                    fp_write = Some((FpReg::new(inst.rd), f64::from_bits(bits)));
                } else {
                    int_write = Some((IntReg::new(inst.rd), bits));
                }
            }
            InstKind::Store => {
                let addr = self.regs[inst.rs1 as usize].wrapping_add(inst.imm as u64);
                mem_addr = Some(addr);
                let value = if inst.op == Fst {
                    self.fregs[inst.rs2 as usize].to_bits()
                } else {
                    self.regs[inst.rs2 as usize]
                };
                self.write_mem(store_width(inst.op), addr, value);
            }
            InstKind::Branch => {
                let a = self.regs[inst.rs1 as usize];
                let b = self.regs[inst.rs2 as usize];
                if eval_branch(inst.op, a, b) {
                    next_pc = inst.imm as u64;
                }
            }
            InstKind::Jump => {
                int_write = Some((IntReg::new(inst.rd), pc + crate::program::INST_BYTES));
                next_pc = inst.imm as u64;
            }
            InstKind::JumpReg => {
                let target = self.regs[inst.rs1 as usize].wrapping_add(inst.imm as u64);
                int_write = Some((IntReg::new(inst.rd), pc + crate::program::INST_BYTES));
                next_pc = target;
            }
            InstKind::FpAlu | InstKind::FpDiv => match inst.op {
                FcvtFI => {
                    let a = self.regs[inst.rs1 as usize];
                    fp_write = Some((FpReg::new(inst.rd), eval_int_to_fp(a)));
                }
                _ => {
                    let a = self.fregs[inst.rs1 as usize];
                    let b = self.fregs[inst.rs2 as usize];
                    fp_write = Some((FpReg::new(inst.rd), eval_fp_alu(inst.op, a, b)));
                }
            },
            InstKind::Nop => {}
            InstKind::Halt => {
                self.halted = true;
                self.retired += 1;
                return Ok(StepOutcome::Retired(Retired {
                    pc,
                    inst,
                    int_write: None,
                    fp_write: None,
                    mem_addr: None,
                    next_pc: pc,
                }));
            }
        }

        if let Some((r, v)) = int_write {
            self.set_int_reg(r, v);
            if r.is_zero() {
                int_write = None;
            }
        }
        if let Some((r, v)) = fp_write {
            self.set_fp_reg(r, v);
        }
        self.pc = next_pc;
        self.retired += 1;
        Ok(StepOutcome::Retired(Retired { pc, inst, int_write, fp_write, mem_addr, next_pc }))
    }

    /// Runs until `halt` or the instruction budget is exhausted.
    ///
    /// Decodes `program` once (see [`DecodedProgram`]) and drives the
    /// tight dispatch loop of [`Machine::run_decoded`]. Call sites that
    /// run in bursts (fast-forward legs between checkpoints) should
    /// decode once themselves and call [`Machine::run_decoded`] directly.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError::PcOutOfRange`]; returns
    /// [`ExecError::InstLimit`] if the budget runs out first.
    pub fn run(&mut self, program: &Program, max_insts: u64) -> Result<u64, ExecError> {
        let decoded = DecodedProgram::decode(program);
        self.run_decoded(&decoded, max_insts)
    }

    /// [`Machine::run`] via repeated [`Machine::step`] — the pre-decoded-
    /// cache loop. Kept as the reference the decoded executor is pinned
    /// against (differential tests) and as the microbenchmark baseline.
    ///
    /// # Errors
    ///
    /// As [`Machine::run`].
    pub fn run_stepwise(&mut self, program: &Program, max_insts: u64) -> Result<u64, ExecError> {
        let start = self.retired;
        while !self.halted {
            if self.retired - start >= max_insts {
                return Err(ExecError::InstLimit(max_insts));
            }
            self.step(program)?;
        }
        Ok(self.retired - start)
    }

    /// The fast-forward hot loop: runs until `halt` or the budget is
    /// exhausted, dispatching pre-decoded ops. Behaves exactly like
    /// [`Machine::run`] — same state evolution, same errors — but skips
    /// per-step decode and retirement-record construction.
    ///
    /// # Errors
    ///
    /// As [`Machine::run`].
    pub fn run_decoded(&mut self, decoded: &DecodedProgram, max_insts: u64) -> Result<u64, ExecError> {
        self.run_decoded_with(decoded, max_insts, &mut NullObserver)
    }

    /// [`Machine::run_decoded`] with an [`ExecObserver`] wired into the
    /// dispatch loop. The observer is monomorphized in, so
    /// [`NullObserver`] compiles to exactly the plain loop — the observed
    /// and unobserved paths are the same function.
    ///
    /// # Errors
    ///
    /// As [`Machine::run`].
    pub fn run_decoded_with<O: ExecObserver>(
        &mut self,
        decoded: &DecodedProgram,
        max_insts: u64,
        obs: &mut O,
    ) -> Result<u64, ExecError> {
        use DecodedOp::*;
        let code_base = decoded.code_base();
        let ops = decoded.ops();
        let n = ops.len() as u64;
        let mut pc = self.pc;
        let mut done: u64 = 0;
        let outcome = loop {
            if self.halted {
                break Ok(());
            }
            if done >= max_insts {
                break Err(ExecError::InstLimit(max_insts));
            }
            let off = pc.wrapping_sub(code_base);
            let idx = off / INST_BYTES;
            if !off.is_multiple_of(INST_BYTES) || idx >= n {
                break Err(ExecError::PcOutOfRange(pc));
            }
            obs.retire(pc);
            let mut next = pc + INST_BYTES;
            match ops[idx as usize] {
                IntRR { op, rd, rs1, rs2 } => {
                    let v = eval_int_alu(op, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                    if rd != 0 {
                        self.regs[rd as usize] = v;
                    }
                }
                IntRI { op, rd, rs1, imm } => {
                    let v = eval_int_alu(op, self.regs[rs1 as usize], imm);
                    if rd != 0 {
                        self.regs[rd as usize] = v;
                    }
                }
                Li { rd, imm } => {
                    if rd != 0 {
                        self.regs[rd as usize] = imm;
                    }
                }
                LoadInt { width, rd, rs1, imm } => {
                    let addr = self.regs[rs1 as usize].wrapping_add(imm);
                    obs.load(addr);
                    let bits = self.read_mem(width, addr);
                    if rd != 0 {
                        self.regs[rd as usize] = bits;
                    }
                }
                LoadFp { rd, rs1, imm } => {
                    let addr = self.regs[rs1 as usize].wrapping_add(imm);
                    obs.load(addr);
                    self.fregs[rd as usize] = f64::from_bits(self.mem.read_u64(addr));
                }
                StoreInt { width, rs1, rs2, imm } => {
                    let addr = self.regs[rs1 as usize].wrapping_add(imm);
                    obs.store(addr);
                    self.write_mem(width, addr, self.regs[rs2 as usize]);
                }
                StoreFp { rs1, rs2, imm } => {
                    let addr = self.regs[rs1 as usize].wrapping_add(imm);
                    obs.store(addr);
                    self.mem.write_u64(addr, self.fregs[rs2 as usize].to_bits());
                }
                Branch { op, rs1, rs2, target } => {
                    let taken = eval_branch(op, self.regs[rs1 as usize], self.regs[rs2 as usize]);
                    obs.cond_branch(pc, taken);
                    if taken {
                        next = target;
                    }
                }
                Jump { rd, target } => {
                    if rd != 0 {
                        self.regs[rd as usize] = pc + INST_BYTES;
                        obs.call(pc + INST_BYTES);
                    }
                    next = target;
                }
                JumpReg { rd, rs1, imm } => {
                    let target = self.regs[rs1 as usize].wrapping_add(imm);
                    obs.indirect_jump(pc, target, rd == 0);
                    if rd != 0 {
                        self.regs[rd as usize] = pc + INST_BYTES;
                        obs.call(pc + INST_BYTES);
                    }
                    next = target;
                }
                FpRR { op, rd, rs1, rs2 } => {
                    self.fregs[rd as usize] =
                        eval_fp_alu(op, self.fregs[rs1 as usize], self.fregs[rs2 as usize]);
                }
                FpFromInt { rd, rs1 } => {
                    self.fregs[rd as usize] = eval_int_to_fp(self.regs[rs1 as usize]);
                }
                IntFromFp { op, rd, rs1, rs2 } => {
                    let v = eval_fp_to_int(op, self.fregs[rs1 as usize], self.fregs[rs2 as usize]);
                    if rd != 0 {
                        self.regs[rd as usize] = v;
                    }
                }
                Nop => {}
                Halt => {
                    // Same contract as `step`: the halt retires and the PC
                    // stays at the halt instruction.
                    self.halted = true;
                    done += 1;
                    break Ok(());
                }
            }
            done += 1;
            pc = next;
        };
        self.pc = pc;
        self.retired += done;
        outcome.map(|()| done)
    }

    /// Captures an architectural checkpoint of this machine (see
    /// [`Checkpoint`]). `program` must be the program the machine is
    /// running; its initial data image is the delta base.
    pub fn checkpoint(&self, program: &Program) -> Checkpoint {
        Checkpoint::from_parts(
            self.regs,
            self.fregs.map(f64::to_bits),
            self.pc,
            self.retired,
            self.halted,
            &self.mem,
            program,
        )
    }

    /// Reconstructs a machine from a checkpoint, bit-identical to the one
    /// that captured it.
    ///
    /// # Errors
    ///
    /// Refuses a `program` whose fingerprint differs from the one the
    /// checkpoint was captured against.
    pub fn from_checkpoint(
        program: &Program,
        ckpt: &Checkpoint,
    ) -> Result<Self, CheckpointMismatch> {
        let mem = ckpt.restore_memory(program)?;
        Ok(Self {
            regs: ckpt.regs,
            fregs: ckpt.fregs.map(f64::from_bits),
            pc: ckpt.pc,
            mem,
            halted: ckpt.halted,
            retired: ckpt.retired,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::{f, x};

    fn run(asm: Asm) -> Machine {
        let p = asm.finish().expect("assembly");
        let mut m = Machine::load(&p);
        m.run(&p, 1_000_000).expect("execution");
        m
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut asm = Asm::new();
        asm.li(x(1), 10);
        asm.li(x(2), 4);
        asm.sub(x(3), x(1), x(2));
        asm.mul(x(4), x(3), x(3));
        asm.halt();
        let m = run(asm);
        assert_eq!(m.int_reg(x(3)), 6);
        assert_eq!(m.int_reg(x(4)), 36);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut asm = Asm::new();
        asm.li(x(0), 99);
        asm.addi(x(0), x(0), 5);
        asm.add(x(1), x(0), x(0));
        asm.halt();
        let m = run(asm);
        assert_eq!(m.int_reg(x(0)), 0);
        assert_eq!(m.int_reg(x(1)), 0);
    }

    #[test]
    fn loop_with_branch() {
        let mut asm = Asm::new();
        asm.li(x(1), 0); // sum
        asm.li(x(2), 1); // i
        asm.li(x(3), 11); // bound
        asm.label("loop");
        asm.add(x(1), x(1), x(2));
        asm.addi(x(2), x(2), 1);
        asm.blt(x(2), x(3), "loop");
        asm.halt();
        let m = run(asm);
        assert_eq!(m.int_reg(x(1)), 55);
    }

    #[test]
    fn memory_round_trip_all_widths() {
        let mut asm = Asm::new();
        let buf = asm.alloc_bytes_zeroed(64);
        asm.li(x(1), buf);
        asm.li(x(2), 0xffff_ffff_9abc_def0);
        asm.st(x(2), x(1), 0);
        asm.ld(x(3), x(1), 0);
        asm.lw(x(4), x(1), 0); // sign-extends 0x9abcdef0
        asm.lbu(x(5), x(1), 0); // 0xf0
        asm.sw(x(2), x(1), 16);
        asm.ld(x(6), x(1), 16); // only low 32 bits stored
        asm.sb(x(2), x(1), 24);
        asm.ld(x(7), x(1), 24);
        asm.halt();
        let m = run(asm);
        assert_eq!(m.int_reg(x(3)), 0xffff_ffff_9abc_def0);
        assert_eq!(m.int_reg(x(4)), 0xffff_ffff_9abc_def0); // sext of 0x9abcdef0
        assert_eq!(m.int_reg(x(5)), 0xf0);
        assert_eq!(m.int_reg(x(6)), 0x9abc_def0);
        assert_eq!(m.int_reg(x(7)), 0xf0);
    }

    #[test]
    fn call_and_return() {
        let mut asm = Asm::new();
        asm.li(x(10), 5);
        asm.jal(x(31), "double");
        asm.jal(x(31), "double");
        asm.halt();
        asm.label("double");
        asm.add(x(10), x(10), x(10));
        asm.ret(x(31));
        let m = run(asm);
        assert_eq!(m.int_reg(x(10)), 20);
    }

    #[test]
    fn fp_pipeline() {
        let mut asm = Asm::new();
        let data = asm.alloc_f64s(&[3.0, 4.0]);
        asm.li(x(1), data);
        asm.fld(f(1), x(1), 0);
        asm.fld(f(2), x(1), 8);
        asm.fmul(f(3), f(1), f(2));
        asm.fadd(f(4), f(3), f(3));
        asm.fst(f(4), x(1), 16);
        asm.fld(f(5), x(1), 16);
        asm.fcvt_if(x(2), f(5));
        asm.fcmplt(x(3), f(1), f(2));
        asm.halt();
        let m = run(asm);
        assert_eq!(m.fp_reg(f(3)), 12.0);
        assert_eq!(m.int_reg(x(2)), 24);
        assert_eq!(m.int_reg(x(3)), 1);
    }

    #[test]
    fn int_fp_conversions() {
        let mut asm = Asm::new();
        asm.li(x(1), (-7i64) as u64);
        asm.fcvt_fi(f(1), x(1));
        asm.fcvt_if(x(2), f(1));
        asm.halt();
        let m = run(asm);
        assert_eq!(m.fp_reg(f(1)), -7.0);
        assert_eq!(m.int_reg(x(2)), (-7i64) as u64);
    }

    #[test]
    fn retired_records_carry_writes() {
        let mut asm = Asm::new();
        asm.li(x(1), 7);
        asm.halt();
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p);
        match m.step(&p).unwrap() {
            StepOutcome::Retired(r) => {
                assert_eq!(r.int_write, Some((x(1), 7)));
                assert_eq!(r.pc, p.entry);
                assert_eq!(r.next_pc, p.entry + 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pc_out_of_range_is_reported() {
        let p = Program::from_insts(vec![Inst::rri(Opcode::Li, 1, 0, 1)]);
        let mut m = Machine::load(&p);
        m.step(&p).unwrap();
        assert_eq!(m.step(&p), Err(ExecError::PcOutOfRange(p.addr_of(1))));
    }

    #[test]
    fn run_budget_is_enforced() {
        let mut asm = Asm::new();
        asm.label("spin");
        asm.j("spin");
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p);
        assert_eq!(m.run(&p, 100), Err(ExecError::InstLimit(100)));
    }

    /// Mixed control/memory/FP kernel for the decoded-vs-stepwise
    /// differential tests below.
    fn mixed_kernel() -> Program {
        let mut asm = Asm::new();
        let buf = asm.alloc_f64s(&[1.5, 2.5, 0.0, 0.0]);
        asm.li(x(1), 0); // i
        asm.li(x(2), 40); // bound
        asm.li(x(3), buf);
        asm.label("loop");
        asm.fld(f(1), x(3), 0);
        asm.fld(f(2), x(3), 8);
        asm.fmul(f(3), f(1), f(2));
        asm.fst(f(3), x(3), 16);
        asm.ld(x(4), x(3), 16);
        asm.add(x(5), x(5), x(4));
        asm.sb(x(5), x(3), 24);
        asm.lbu(x(6), x(3), 24);
        asm.jal(x(31), "bump");
        asm.blt(x(1), x(2), "loop");
        asm.halt();
        asm.label("bump");
        asm.addi(x(1), x(1), 1);
        asm.ret(x(31));
        asm.finish().expect("assembly")
    }

    fn arch_fingerprint(m: &Machine, p: &Program) -> u64 {
        m.checkpoint(p).fingerprint()
    }

    #[test]
    fn decoded_and_stepwise_agree_on_a_full_run() {
        let p = mixed_kernel();
        let mut a = Machine::load(&p);
        let mut b = Machine::load(&p);
        let ra = a.run(&p, 1_000_000);
        let rb = b.run_stepwise(&p, 1_000_000);
        assert_eq!(ra.unwrap(), rb.unwrap());
        assert_eq!(arch_fingerprint(&a, &p), arch_fingerprint(&b, &p));
        assert_eq!((a.pc, a.retired(), a.is_halted()), (b.pc, b.retired(), b.is_halted()));
    }

    #[test]
    fn decoded_and_stepwise_agree_at_every_budget() {
        let p = mixed_kernel();
        for budget in [0u64, 1, 2, 7, 63, 200] {
            let mut a = Machine::load(&p);
            let mut b = Machine::load(&p);
            assert_eq!(a.run(&p, budget), b.run_stepwise(&p, budget), "budget {budget}");
            assert_eq!(
                arch_fingerprint(&a, &p),
                arch_fingerprint(&b, &p),
                "state diverged at budget {budget}"
            );
        }
    }

    #[test]
    fn decoded_reports_wild_control_flow_like_stepwise() {
        // A jump straight out of the code segment: the jump itself retires
        // and the *next* step reports PcOutOfRange, in both executors.
        let mut asm = Asm::new();
        asm.li(x(1), 0xdead_0000);
        asm.jalr(x(0), x(1), 0);
        let p = asm.finish().unwrap();
        let mut a = Machine::load(&p);
        let mut b = Machine::load(&p);
        let ra = a.run(&p, 100);
        let rb = b.run_stepwise(&p, 100);
        assert_eq!(ra, rb);
        assert_eq!(ra, Err(ExecError::PcOutOfRange(0xdead_0000)));
        assert_eq!((a.pc, a.retired()), (b.pc, b.retired()));
    }

    #[test]
    fn decoded_budget_matches_stepwise_on_the_spin_loop() {
        let mut asm = Asm::new();
        asm.label("spin");
        asm.j("spin");
        let p = asm.finish().unwrap();
        let mut a = Machine::load(&p);
        let mut b = Machine::load(&p);
        assert_eq!(a.run(&p, 100), Err(ExecError::InstLimit(100)));
        assert_eq!(b.run_stepwise(&p, 100), Err(ExecError::InstLimit(100)));
        assert_eq!((a.pc, a.retired()), (b.pc, b.retired()));
    }

    #[test]
    fn halted_machine_stays_halted() {
        let mut asm = Asm::new();
        asm.halt();
        let p = asm.finish().unwrap();
        let mut m = Machine::load(&p);
        m.step(&p).unwrap();
        assert!(m.is_halted());
        assert_eq!(m.step(&p).unwrap(), StepOutcome::Halted);
        assert_eq!(m.retired(), 1);
    }
}
