//! Instructions, opcodes, and operand introspection.

use crate::reg::{FpReg, IntReg};
use std::fmt;

/// Every operation in the ISA.
///
/// The encoding discriminant is stable (used by [`crate::encode`]). The set
/// mirrors what the paper's workloads need: full 64-bit integer ALU ops with
/// register and immediate forms, loads/stores of several widths,
/// compare-and-branch, jump-and-link, and a double-precision FP group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    // --- integer register-register ---
    /// `rd = rs1 + rs2`
    Add = 0,
    /// `rd = rs1 - rs2`
    Sub = 1,
    /// `rd = rs1 & rs2`
    And = 2,
    /// `rd = rs1 | rs2`
    Or = 3,
    /// `rd = rs1 ^ rs2`
    Xor = 4,
    /// `rd = rs1 << (rs2 & 63)`
    Sll = 5,
    /// `rd = rs1 >> (rs2 & 63)` (logical)
    Srl = 6,
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic)
    Sra = 7,
    /// `rd = (rs1 <s rs2) ? 1 : 0`
    Slt = 8,
    /// `rd = (rs1 <u rs2) ? 1 : 0`
    Sltu = 9,
    /// `rd = rs1 * rs2` (low 64 bits)
    Mul = 10,
    /// `rd = rs1 /s rs2` (RISC-V overflow/zero conventions)
    Div = 11,
    // --- integer register-immediate ---
    /// `rd = rs1 + imm`
    Addi = 12,
    /// `rd = rs1 & imm`
    Andi = 13,
    /// `rd = rs1 | imm`
    Ori = 14,
    /// `rd = rs1 ^ imm`
    Xori = 15,
    /// `rd = rs1 << (imm & 63)`
    Slli = 16,
    /// `rd = rs1 >> (imm & 63)` (logical)
    Srli = 17,
    /// `rd = rs1 >> (imm & 63)` (arithmetic)
    Srai = 18,
    /// `rd = (rs1 <s imm) ? 1 : 0`
    Slti = 19,
    /// `rd = imm` (full 64-bit immediate load)
    Li = 20,
    // --- memory ---
    /// `rd = mem64[rs1 + imm]`
    Ld = 21,
    /// `rd = sext(mem32[rs1 + imm])`
    Lw = 22,
    /// `rd = zext(mem8[rs1 + imm])`
    Lbu = 23,
    /// `mem64[rs1 + imm] = rs2`
    St = 24,
    /// `mem32[rs1 + imm] = rs2[31:0]`
    Sw = 25,
    /// `mem8[rs1 + imm] = rs2[7:0]`
    Sb = 26,
    /// `fd = mem_f64[rs1 + imm]`
    Fld = 27,
    /// `mem_f64[rs1 + imm] = fs2`
    Fst = 28,
    // --- control ---
    /// branch to `imm` (absolute byte address) if `rs1 == rs2`
    Beq = 29,
    /// branch if `rs1 != rs2`
    Bne = 30,
    /// branch if `rs1 <s rs2`
    Blt = 31,
    /// branch if `rs1 >=s rs2`
    Bge = 32,
    /// branch if `rs1 <u rs2`
    Bltu = 33,
    /// branch if `rs1 >=u rs2`
    Bgeu = 34,
    /// `rd = pc + 8; pc = imm` (absolute)
    Jal = 35,
    /// `rd = pc + 8; pc = rs1 + imm`
    Jalr = 36,
    // --- floating point (double precision) ---
    /// `fd = fs1 + fs2`
    Fadd = 37,
    /// `fd = fs1 - fs2`
    Fsub = 38,
    /// `fd = fs1 * fs2`
    Fmul = 39,
    /// `fd = fs1 / fs2`
    Fdiv = 40,
    /// `fd = fs1`
    Fmov = 41,
    /// `fd = (f64) rs1` (signed int to double)
    FcvtFI = 42,
    /// `rd = (i64) fs1` (double to signed int, truncating/saturating)
    FcvtIF = 43,
    /// `rd = (fs1 < fs2) ? 1 : 0`
    Fcmplt = 44,
    /// `rd = (fs1 == fs2) ? 1 : 0`
    Fcmpeq = 45,
    // --- misc ---
    /// no operation
    Nop = 46,
    /// stop the machine
    Halt = 47,
}

impl Opcode {
    /// All opcodes, in discriminant order (useful for exhaustive tests).
    pub const ALL: [Opcode; 48] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Slt,
        Opcode::Sltu,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Addi,
        Opcode::Andi,
        Opcode::Ori,
        Opcode::Xori,
        Opcode::Slli,
        Opcode::Srli,
        Opcode::Srai,
        Opcode::Slti,
        Opcode::Li,
        Opcode::Ld,
        Opcode::Lw,
        Opcode::Lbu,
        Opcode::St,
        Opcode::Sw,
        Opcode::Sb,
        Opcode::Fld,
        Opcode::Fst,
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Blt,
        Opcode::Bge,
        Opcode::Bltu,
        Opcode::Bgeu,
        Opcode::Jal,
        Opcode::Jalr,
        Opcode::Fadd,
        Opcode::Fsub,
        Opcode::Fmul,
        Opcode::Fdiv,
        Opcode::Fmov,
        Opcode::FcvtFI,
        Opcode::FcvtIF,
        Opcode::Fcmplt,
        Opcode::Fcmpeq,
        Opcode::Nop,
        Opcode::Halt,
    ];

    /// Recovers an opcode from its encoding discriminant.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        Opcode::ALL.get(v as usize).copied()
    }
}

/// Broad classification used for functional-unit selection and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Single-cycle integer ALU operation.
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide.
    IntDiv,
    /// Memory load (integer or FP destination).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional direct jump (`jal`).
    Jump,
    /// Indirect jump (`jalr`).
    JumpReg,
    /// Pipelined FP operation.
    FpAlu,
    /// Unpipelined FP divide.
    FpDiv,
    /// No-op.
    Nop,
    /// Machine stop.
    Halt,
}

/// Either register file an operand can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegRef {
    /// An integer register.
    Int(IntReg),
    /// A floating-point register.
    Fp(FpReg),
}

impl RegRef {
    /// `true` when this names the integer file.
    pub fn is_int(self) -> bool {
        matches!(self, RegRef::Int(_))
    }
}

/// One decoded instruction.
///
/// Register fields are raw numbers; which fields are meaningful, and which
/// file they index, is determined by the opcode (see [`Inst::dest`] and
/// [`Inst::sources`]). Branch/jump targets are absolute byte addresses in
/// `imm`.
///
/// # Example
///
/// ```
/// use carf_isa::{Inst, Opcode, InstKind, RegRef, x};
///
/// let add = Inst::rrr(Opcode::Add, 3, 1, 2);
/// assert_eq!(add.kind(), InstKind::IntAlu);
/// assert_eq!(add.dest(), Some(RegRef::Int(x(3))));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// The operation.
    pub op: Opcode,
    /// Destination register number (meaning depends on `op`).
    pub rd: u8,
    /// First source register number.
    pub rs1: u8,
    /// Second source register number.
    pub rs2: u8,
    /// Immediate / branch target (absolute byte address for control flow).
    pub imm: i64,
}

impl Inst {
    /// A three-register instruction (`rd`, `rs1`, `rs2`).
    pub fn rrr(op: Opcode, rd: u8, rs1: u8, rs2: u8) -> Self {
        Inst { op, rd, rs1, rs2, imm: 0 }
    }

    /// A register-register-immediate instruction (`rd`, `rs1`, `imm`).
    pub fn rri(op: Opcode, rd: u8, rs1: u8, imm: i64) -> Self {
        Inst { op, rd, rs1, rs2: 0, imm }
    }

    /// A `nop`.
    pub fn nop() -> Self {
        Inst { op: Opcode::Nop, rd: 0, rs1: 0, rs2: 0, imm: 0 }
    }

    /// A `halt`.
    pub fn halt() -> Self {
        Inst { op: Opcode::Halt, rd: 0, rs1: 0, rs2: 0, imm: 0 }
    }

    /// The broad class of this instruction.
    pub fn kind(&self) -> InstKind {
        use Opcode::*;
        match self.op {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Addi | Andi | Ori
            | Xori | Slli | Srli | Srai | Slti | Li | Fcmplt | Fcmpeq | FcvtIF => InstKind::IntAlu,
            Mul => InstKind::IntMul,
            Div => InstKind::IntDiv,
            Ld | Lw | Lbu | Fld => InstKind::Load,
            St | Sw | Sb | Fst => InstKind::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu => InstKind::Branch,
            Jal => InstKind::Jump,
            Jalr => InstKind::JumpReg,
            Fadd | Fsub | Fmul | Fmov | FcvtFI => InstKind::FpAlu,
            Fdiv => InstKind::FpDiv,
            Nop => InstKind::Nop,
            Halt => InstKind::Halt,
        }
    }

    /// `true` for any control-transfer instruction.
    pub fn is_control(&self) -> bool {
        matches!(self.kind(), InstKind::Branch | InstKind::Jump | InstKind::JumpReg)
    }

    /// `true` for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(self.kind(), InstKind::Load | InstKind::Store)
    }

    /// The destination register, if the instruction writes one.
    ///
    /// Writes to `x0` are architectural no-ops but are still reported here;
    /// the renamer is responsible for discarding them.
    pub fn dest(&self) -> Option<RegRef> {
        use Opcode::*;
        match self.op {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Mul | Div | Addi
            | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Li | Ld | Lw | Lbu | Jal | Jalr
            | FcvtIF | Fcmplt | Fcmpeq => Some(RegRef::Int(IntReg::new(self.rd))),
            Fld | Fadd | Fsub | Fmul | Fdiv | Fmov | FcvtFI => {
                Some(RegRef::Fp(FpReg::new(self.rd)))
            }
            St | Sw | Sb | Fst | Beq | Bne | Blt | Bge | Bltu | Bgeu | Nop | Halt => None,
        }
    }

    /// The source registers, in operand order.
    pub fn sources(&self) -> [Option<RegRef>; 2] {
        use Opcode::*;
        let int1 = Some(RegRef::Int(IntReg::new(self.rs1)));
        let int2 = Some(RegRef::Int(IntReg::new(self.rs2)));
        let fp1 = Some(RegRef::Fp(FpReg::new(self.rs1)));
        let fp2 = Some(RegRef::Fp(FpReg::new(self.rs2)));
        match self.op {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Mul | Div | Beq | Bne
            | Blt | Bge | Bltu | Bgeu | St | Sw | Sb => [int1, int2],
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Ld | Lw | Lbu | Fld | Jalr => {
                [int1, None]
            }
            Fst => [int1, fp2],
            Fadd | Fsub | Fmul | Fdiv | Fcmplt | Fcmpeq => [fp1, fp2],
            Fmov | FcvtIF => [fp1, None],
            FcvtFI => [int1, None],
            Li | Jal | Nop | Halt => [None, None],
        }
    }

    /// `true` when the instruction computes a memory address from `rs1 + imm`
    /// (load or store). The paper's Short-file allocation policy keys off
    /// these.
    pub fn is_address_computation(&self) -> bool {
        self.is_mem()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, fo: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        let op = format!("{:?}", self.op).to_lowercase();
        match self.op {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Mul | Div => {
                write!(fo, "{op} x{}, x{}, x{}", self.rd, self.rs1, self.rs2)
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => {
                write!(fo, "{op} x{}, x{}, {}", self.rd, self.rs1, self.imm)
            }
            Li => write!(fo, "li x{}, {:#x}", self.rd, self.imm),
            Ld | Lw | Lbu => write!(fo, "{op} x{}, {}(x{})", self.rd, self.imm, self.rs1),
            Fld => write!(fo, "fld f{}, {}(x{})", self.rd, self.imm, self.rs1),
            St | Sw | Sb => write!(fo, "{op} x{}, {}(x{})", self.rs2, self.imm, self.rs1),
            Fst => write!(fo, "fst f{}, {}(x{})", self.rs2, self.imm, self.rs1),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                write!(fo, "{op} x{}, x{}, {:#x}", self.rs1, self.rs2, self.imm)
            }
            Jal => write!(fo, "jal x{}, {:#x}", self.rd, self.imm),
            Jalr => write!(fo, "jalr x{}, x{}, {}", self.rd, self.rs1, self.imm),
            Fadd | Fsub | Fmul | Fdiv => {
                write!(fo, "{op} f{}, f{}, f{}", self.rd, self.rs1, self.rs2)
            }
            Fmov => write!(fo, "fmov f{}, f{}", self.rd, self.rs1),
            FcvtFI => write!(fo, "fcvt.d.l f{}, x{}", self.rd, self.rs1),
            FcvtIF => write!(fo, "fcvt.l.d x{}, f{}", self.rd, self.rs1),
            Fcmplt => write!(fo, "fcmplt x{}, f{}, f{}", self.rd, self.rs1, self.rs2),
            Fcmpeq => write!(fo, "fcmpeq x{}, f{}, f{}", self.rd, self.rs1, self.rs2),
            Nop => write!(fo, "nop"),
            Halt => write!(fo, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{f, x};

    #[test]
    fn opcode_discriminants_round_trip() {
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(*op as u8, i as u8);
            assert_eq!(Opcode::from_u8(i as u8), Some(*op));
        }
        assert_eq!(Opcode::from_u8(48), None);
        assert_eq!(Opcode::from_u8(255), None);
    }

    #[test]
    fn kinds_are_sane() {
        assert_eq!(Inst::rrr(Opcode::Add, 1, 2, 3).kind(), InstKind::IntAlu);
        assert_eq!(Inst::rrr(Opcode::Mul, 1, 2, 3).kind(), InstKind::IntMul);
        assert_eq!(Inst::rri(Opcode::Ld, 1, 2, 8).kind(), InstKind::Load);
        assert_eq!(Inst::rrr(Opcode::Fst, 0, 2, 3).kind(), InstKind::Store);
        assert_eq!(Inst::rrr(Opcode::Beq, 0, 1, 2).kind(), InstKind::Branch);
        assert_eq!(Inst::rrr(Opcode::Fdiv, 1, 2, 3).kind(), InstKind::FpDiv);
    }

    #[test]
    fn dest_register_file_follows_opcode() {
        assert_eq!(Inst::rrr(Opcode::Add, 5, 1, 2).dest(), Some(RegRef::Int(x(5))));
        assert_eq!(Inst::rrr(Opcode::Fadd, 5, 1, 2).dest(), Some(RegRef::Fp(f(5))));
        // Loads write the file named by the opcode.
        assert_eq!(Inst::rri(Opcode::Ld, 4, 1, 0).dest(), Some(RegRef::Int(x(4))));
        assert_eq!(Inst::rri(Opcode::Fld, 4, 1, 0).dest(), Some(RegRef::Fp(f(4))));
        // FP compares and conversions to int write the integer file.
        assert_eq!(Inst::rrr(Opcode::Fcmplt, 3, 1, 2).dest(), Some(RegRef::Int(x(3))));
        assert_eq!(Inst::rri(Opcode::FcvtIF, 3, 1, 0).dest(), Some(RegRef::Int(x(3))));
        assert_eq!(Inst::rri(Opcode::FcvtFI, 3, 1, 0).dest(), Some(RegRef::Fp(f(3))));
        // Stores and branches write nothing.
        assert_eq!(Inst::rrr(Opcode::St, 0, 1, 2).dest(), None);
        assert_eq!(Inst::rrr(Opcode::Bne, 0, 1, 2).dest(), None);
    }

    #[test]
    fn sources_follow_operand_structure() {
        let st = Inst { op: Opcode::St, rd: 0, rs1: 7, rs2: 8, imm: 16 };
        assert_eq!(st.sources(), [Some(RegRef::Int(x(7))), Some(RegRef::Int(x(8)))]);
        let fst = Inst { op: Opcode::Fst, rd: 0, rs1: 7, rs2: 8, imm: 16 };
        assert_eq!(fst.sources(), [Some(RegRef::Int(x(7))), Some(RegRef::Fp(f(8)))]);
        let li = Inst::rri(Opcode::Li, 1, 0, 42);
        assert_eq!(li.sources(), [None, None]);
        let jalr = Inst::rri(Opcode::Jalr, 1, 9, 0);
        assert_eq!(jalr.sources(), [Some(RegRef::Int(x(9))), None]);
    }

    #[test]
    fn address_computations_are_all_memory_ops() {
        for op in Opcode::ALL {
            let inst = Inst::rrr(op, 1, 2, 3);
            assert_eq!(inst.is_address_computation(), inst.is_mem(), "{op:?}");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Inst::rrr(Opcode::Add, 1, 2, 3).to_string(), "add x1, x2, x3");
        assert_eq!(Inst::rri(Opcode::Ld, 1, 2, -8).to_string(), "ld x1, -8(x2)");
        assert_eq!(Inst::nop().to_string(), "nop");
        assert_eq!(Inst::halt().to_string(), "halt");
    }
}
