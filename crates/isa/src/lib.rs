//! A 64-bit load/store RISC ISA for the CARF reproduction.
//!
//! The paper evaluates a 64-bit out-of-order machine running SPEC CPU2000
//! binaries. We cannot ship those, so this crate defines a compact 64-bit
//! RISC instruction set with the same operand structure the content-aware
//! register file exploits: two source registers, one destination register,
//! base+offset addressing, and full-width 64-bit integer values. It
//! provides:
//!
//! * typed registers ([`IntReg`], [`FpReg`]) and instructions ([`Inst`],
//!   [`Opcode`], [`InstKind`]);
//! * a fixed-width binary [`encode`]/[`decode`] pair (for round-trip tests
//!   and realism);
//! * a label-resolving [`Asm`] assembler that builds [`Program`]s;
//! * a functional executor ([`Machine`]) used both to drive workloads and as
//!   the *golden reference* the cycle-level simulator is co-simulated
//!   against;
//! * shared [`semantics`] so the functional and timing simulators evaluate
//!   every instruction identically by construction.
//!
//! Program counters are byte addresses; every instruction occupies
//! [`INST_BYTES`] bytes starting at [`Program::code_base`], so code pointers
//! and return addresses look like real 64-bit text-segment addresses — which
//! matters for the value-locality demographics the paper measures.
//!
//! # Example
//!
//! ```
//! use carf_isa::{Asm, Machine, x};
//!
//! let mut asm = Asm::new();
//! asm.li(x(1), 0);
//! asm.li(x(2), 10);
//! asm.label("loop");
//! asm.addi(x(1), x(1), 3);
//! asm.addi(x(2), x(2), -1);
//! asm.bne(x(2), x(0), "loop");
//! asm.halt();
//! let program = asm.finish()?;
//!
//! let mut m = Machine::load(&program);
//! m.run(&program, 1_000_000)?;
//! assert_eq!(m.int_reg(x(1)), 30);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod asm;
mod checkpoint;
mod decoded;
mod encode;
mod exec;
mod inst;
pub mod object;
pub mod parse;
mod program;
mod reg;
pub mod semantics;

pub use asm::{Asm, AsmError, DEFAULT_DATA_BASE};
pub use checkpoint::{program_fingerprint, Checkpoint, CheckpointMismatch};
pub use decoded::{DecodedOp, DecodedProgram};
pub use encode::{decode, encode, DecodeInstError};
pub use exec::{ExecError, ExecObserver, Machine, NullObserver, Retired, StepOutcome};
pub use inst::{Inst, InstKind, Opcode, RegRef};
pub use object::{
    link, link_with_entry, DataPlace, LinkError, ObjData, ObjectUnit, Reloc, RelocKind,
    SourceDiag, ENTRY_SYMBOL, UNIT_DATA_ALIGN,
};
pub use parse::{parse_asm, parse_object, ParseAsmError};
pub use program::{DataSegment, Program, DEFAULT_CODE_BASE, INST_BYTES};
pub use reg::{f, x, FpReg, IntReg};
