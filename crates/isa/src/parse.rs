//! A text assembler: parse assembly source into object units / programs.
//!
//! Two entry points share one grammar:
//!
//! * [`parse_asm`] — one source string straight to an executable
//!   [`Program`] (quick experiments, single-file `.s` programs);
//! * [`parse_object`] — one source file to a relocatable
//!   [`ObjectUnit`], several of which [`crate::link`] merges into a
//!   program (multi-file corpora; see [`crate::object`] for layout and
//!   symbol-resolution rules).
//!
//! Grammar, by example:
//!
//! ```text
//! ; comments run to end of line (also // and #)
//! .globl _start             ; export a symbol to other units
//! .data 0x7f3a80000000      ; pin the data cursor to an absolute base
//! table:  .words 1 2 0xff   ; 64-bit words; label = base address
//! buf:                      ; a label on its own line binds to the
//!         .zero 64          ;   next data directive or instruction
//! vals:   .doubles 1.5 -2.5 ; f64 constants
//!
//! .text
//! _start: li   x10, table   ; data symbols usable as immediates
//!         li   x2, 3
//! loop:   ld   x1, 0(x10)
//!         add  x3, x3, x1
//!         addi x10, x10, 8
//!         addi x2, x2, -1
//!         bne  x2, x0, loop
//!         jal  x31, helper  ; `helper` may live in another unit
//!         halt
//! ```
//!
//! Registers are `x0`–`x31` and `f0`–`f31`. Branch/jump targets are code
//! labels (or absolute byte addresses, so disassembly output re-parses);
//! loads/stores use `offset(base)` addressing. Immediates are decimal or
//! `0x` hex, optionally negative, covering the full 64-bit range. Labels
//! are identifiers (`[A-Za-z_][A-Za-z0-9_]*`). Data placed before any
//! `.data <base>` directive is *relocatable*: the linker assigns each
//! unit its own region (a single-unit program keeps the traditional
//! [`crate::DEFAULT_DATA_BASE`] addresses).

use crate::inst::{Inst, Opcode};
use crate::object::{link, DataPlace, LinkError, ObjData, ObjectUnit, Reloc, RelocKind, SourceDiag};
use crate::program::Program;
use crate::reg::{FpReg, IntReg};

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number (0 when the failure is not line-specific).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError { line, message: message.into() }
}

/// Parses assembly text into a linked [`Program`].
///
/// The source forms a single translation unit; undefined symbols,
/// duplicate labels, and entry resolution follow [`crate::link`] for a
/// one-unit link (the entry is the first instruction unless the unit
/// exports `_start`).
///
/// # Errors
///
/// Returns a [`ParseAsmError`] naming the offending line for syntax
/// errors, unknown mnemonics/registers, malformed numbers, duplicate or
/// undefined labels.
///
/// # Example
///
/// ```
/// use carf_isa::{parse_asm, Machine, x};
///
/// let program = parse_asm(r"
///     li   x1, 5
///     li   x2, 0
/// loop:
///     add  x2, x2, x1
///     addi x1, x1, -1
///     bne  x1, x0, loop
///     halt
/// ")?;
/// let mut m = Machine::load(&program);
/// m.run(&program, 1000)?;
/// assert_eq!(m.int_reg(x(2)), 5 + 4 + 3 + 2 + 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_asm(source: &str) -> Result<Program, ParseAsmError> {
    let unit = parse_unit(source)?;
    link(&[unit]).map_err(|e| match e {
        LinkError::UndefinedSymbol { symbol, line, .. } => {
            err(line, format!("undefined symbol `{symbol}`"))
        }
        LinkError::BranchToData { symbol, line, .. } => {
            err(line, format!("branch target `{symbol}` is a data symbol"))
        }
        other => err(0, other.to_string()),
    })
}

/// Parses one source file into a relocatable [`ObjectUnit`] for
/// [`crate::link`]. `file` is recorded for diagnostics only.
///
/// # Errors
///
/// Returns a [`SourceDiag`] (`file:line: message`) for syntax errors,
/// unknown mnemonics/registers, malformed numbers, and duplicate labels.
/// Undefined symbols are *not* errors here — they become relocations the
/// linker resolves (or reports).
pub fn parse_object(source: &str, file: &str) -> Result<ObjectUnit, SourceDiag> {
    match parse_unit(source) {
        Ok(mut unit) => {
            unit.file = file.to_string();
            Ok(unit)
        }
        Err(e) => Err(SourceDiag { file: file.to_string(), line: e.line, message: e.message }),
    }
}

fn parse_unit(source: &str) -> Result<ObjectUnit, ParseAsmError> {
    let mut p = UnitParser::new();
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (label, rest) = split_label(line);
        if let Some(label) = label {
            p.define_label(label, lineno)?;
        }
        let rest = rest.trim();
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            p.directive(directive, lineno)?;
        } else {
            p.instruction(rest, lineno)?;
        }
    }
    Ok(p.finish())
}

/// Where the next data directive lands.
enum Cursor {
    /// Offset into the unit's relocatable region (linker places it).
    Rel(u64),
    /// Absolute address (a `.data <base>` directive is in effect).
    Abs(u64),
}

struct UnitParser {
    unit: ObjectUnit,
    /// Labels seen but not yet bound to an instruction or data directive.
    pending: Vec<String>,
    cursor: Cursor,
}

impl UnitParser {
    fn new() -> Self {
        Self {
            unit: ObjectUnit {
                file: String::new(),
                insts: Vec::new(),
                code_defs: std::collections::HashMap::new(),
                data_defs: std::collections::HashMap::new(),
                globals: Vec::new(),
                data: Vec::new(),
                relocs: Vec::new(),
                rel_size: 0,
            },
            pending: Vec::new(),
            cursor: Cursor::Rel(0),
        }
    }

    fn define_label(&mut self, name: &str, line: usize) -> Result<(), ParseAsmError> {
        if self.unit.code_defs.contains_key(name)
            || self.unit.data_defs.contains_key(name)
            || self.pending.iter().any(|p| p == name)
        {
            return Err(err(line, format!("duplicate label `{name}`")));
        }
        self.pending.push(name.to_string());
        Ok(())
    }

    /// Binds pending labels to the next instruction slot.
    fn bind_code(&mut self) {
        let at = self.unit.insts.len();
        for name in self.pending.drain(..) {
            self.unit.code_defs.insert(name, at);
        }
    }

    /// Binds pending labels to a data placement.
    fn bind_data(&mut self, place: DataPlace) {
        for name in self.pending.drain(..) {
            self.unit.data_defs.insert(name, place);
        }
    }

    fn instruction(&mut self, text: &str, line: usize) -> Result<(), ParseAsmError> {
        let (inst, reloc) = encode_instruction(text, line)?;
        self.bind_code();
        if let Some((symbol, kind)) = reloc {
            self.unit.relocs.push(Reloc { inst: self.unit.insts.len(), symbol, kind, line });
        }
        self.unit.insts.push(inst);
        Ok(())
    }

    fn emit_data(&mut self, bytes: Vec<u8>) {
        let place = match self.cursor {
            Cursor::Rel(off) => DataPlace::Relative(off),
            Cursor::Abs(addr) => DataPlace::Absolute(addr),
        };
        self.bind_data(place);
        // The cursor keeps 8-byte alignment, like the builder's allocator.
        let advance = (bytes.len() as u64 + 7) & !7;
        match &mut self.cursor {
            Cursor::Rel(off) => {
                *off += advance;
                self.unit.rel_size = self.unit.rel_size.max(*off);
            }
            Cursor::Abs(addr) => *addr += advance,
        }
        self.unit.data.push(ObjData { place, bytes });
    }

    fn directive(&mut self, directive: &str, line: usize) -> Result<(), ParseAsmError> {
        let mut parts = directive.split_whitespace();
        let name = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        match name {
            "data" => {
                if let Some(base) = args.first() {
                    self.cursor = Cursor::Abs(parse_u64(base, line)?);
                }
                Ok(())
            }
            "text" => Ok(()), // sections are implicit; accepted for familiarity
            "globl" | "global" => {
                if args.is_empty() {
                    return Err(err(line, ".globl needs at least one symbol"));
                }
                for a in &args {
                    let sym = a.trim_end_matches(',');
                    match symbol_token(sym) {
                        Some(sym) => self.unit.globals.push((sym, line)),
                        None => return Err(err(line, format!("invalid symbol name `{sym}`"))),
                    }
                }
                Ok(())
            }
            "words" => {
                let words = args
                    .iter()
                    .map(|a| parse_u64(a, line))
                    .collect::<Result<Vec<u64>, _>>()?;
                let mut bytes = Vec::with_capacity(words.len() * 8);
                for w in words {
                    bytes.extend_from_slice(&w.to_le_bytes());
                }
                self.emit_data(bytes);
                Ok(())
            }
            "doubles" => {
                let vals = args
                    .iter()
                    .map(|a| parse_f64(a, line))
                    .collect::<Result<Vec<f64>, _>>()?;
                let mut bytes = Vec::with_capacity(vals.len() * 8);
                for v in vals {
                    bytes.extend_from_slice(&v.to_bits().to_le_bytes());
                }
                self.emit_data(bytes);
                Ok(())
            }
            "bytes" => {
                let bytes = args
                    .iter()
                    .map(|a| parse_u64(a, line).map(|v| v as u8))
                    .collect::<Result<Vec<u8>, _>>()?;
                self.emit_data(bytes);
                Ok(())
            }
            "zero" => {
                let n = parse_u64(
                    args.first().ok_or_else(|| err(line, ".zero needs a byte count"))?,
                    line,
                )?;
                self.emit_data(vec![0u8; n as usize]);
                Ok(())
            }
            other => Err(err(line, format!("unknown directive `.{other}`"))),
        }
    }

    fn finish(mut self) -> ObjectUnit {
        // Trailing labels bind past the last instruction (like the builder).
        self.bind_code();
        self.unit
    }
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in [";", "//", "#"] {
        if let Some(pos) = line.find(marker) {
            end = end.min(pos);
        }
    }
    &line[..end]
}

fn split_label(line: &str) -> (Option<&str>, &str) {
    match line.find(':') {
        Some(pos) if is_ident(&line[..pos]) => (Some(&line[..pos]), &line[pos + 1..]),
        _ => (None, line),
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || c == '_')
}

/// Returns `Some(name)` when `token` (after comma-trimming) is a valid
/// symbol reference.
fn symbol_token(token: &str) -> Option<String> {
    let t = token.trim().trim_end_matches(',');
    if is_ident(t) {
        Some(t.to_string())
    } else {
        None
    }
}

fn parse_u64(token: &str, line: usize) -> Result<u64, ParseAsmError> {
    let token = token.trim().trim_end_matches(',');
    let (neg, body) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        body.parse::<u64>()
    }
    .map_err(|_| err(line, format!("malformed number `{token}`")))?;
    Ok(if neg { (value as i64).wrapping_neg() as u64 } else { value })
}

fn parse_f64(token: &str, line: usize) -> Result<f64, ParseAsmError> {
    token
        .trim()
        .trim_end_matches(',')
        .parse::<f64>()
        .map_err(|_| err(line, format!("malformed float `{token}`")))
}

fn parse_int_reg(token: &str, line: usize) -> Result<IntReg, ParseAsmError> {
    let token = token.trim().trim_end_matches(',');
    token
        .strip_prefix('x')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|n| *n < 32)
        .map(IntReg::new)
        .ok_or_else(|| err(line, format!("expected integer register, got `{token}`")))
}

fn parse_fp_reg(token: &str, line: usize) -> Result<FpReg, ParseAsmError> {
    let token = token.trim().trim_end_matches(',');
    token
        .strip_prefix('f')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|n| *n < 32)
        .map(FpReg::new)
        .ok_or_else(|| err(line, format!("expected fp register, got `{token}`")))
}

/// Parses `offset(base)` into `(offset, base)`.
fn parse_mem_operand(token: &str, line: usize) -> Result<(i64, IntReg), ParseAsmError> {
    let token = token.trim().trim_end_matches(',');
    let open = token
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(base), got `{token}`")))?;
    let close = token
        .rfind(')')
        .filter(|c| *c > open)
        .ok_or_else(|| err(line, format!("unclosed memory operand `{token}`")))?;
    let offset_str = &token[..open];
    let offset = if offset_str.is_empty() { 0 } else { parse_u64(offset_str, line)? as i64 };
    let base = parse_int_reg(&token[open + 1..close], line)?;
    Ok((offset, base))
}

/// A branch/jump target: either an absolute byte address (so disassembly
/// output re-parses) or a symbol for the linker.
enum Target {
    Addr(i64),
    Sym(String),
}

fn parse_target(token: &str, line: usize) -> Result<Target, ParseAsmError> {
    match symbol_token(token) {
        Some(sym) => Ok(Target::Sym(sym)),
        None => parse_u64(token, line).map(|a| Target::Addr(a as i64)),
    }
}

/// Encodes one instruction line. Symbol-referencing immediates come back
/// as a pending relocation with `imm` left at 0.
fn encode_instruction(
    text: &str,
    line: usize,
) -> Result<(Inst, Option<(String, RelocKind)>), ParseAsmError> {
    let mut parts = text.split_whitespace();
    let mnemonic = parts.next().unwrap_or_default().to_lowercase();
    let rest: String = parts.collect::<Vec<&str>>().join(" ");
    let ops: Vec<&str> = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();

    let want = |n: usize| -> Result<(), ParseAsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(line, format!("`{mnemonic}` expects {n} operands, got {}", ops.len())))
        }
    };
    let ireg = |i: usize| parse_int_reg(ops[i], line);
    let freg = |i: usize| parse_fp_reg(ops[i], line);
    let imm = |i: usize| parse_u64(ops[i], line).map(|v| v as i64);
    let plain = |inst: Inst| Ok((inst, None));

    match mnemonic.as_str() {
        // Three-register ALU.
        "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu" | "mul"
        | "div" => {
            want(3)?;
            let (rd, rs1, rs2) = (ireg(0)?, ireg(1)?, ireg(2)?);
            let op = match mnemonic.as_str() {
                "add" => Opcode::Add,
                "sub" => Opcode::Sub,
                "and" => Opcode::And,
                "or" => Opcode::Or,
                "xor" => Opcode::Xor,
                "sll" => Opcode::Sll,
                "srl" => Opcode::Srl,
                "sra" => Opcode::Sra,
                "slt" => Opcode::Slt,
                "sltu" => Opcode::Sltu,
                "mul" => Opcode::Mul,
                _ => Opcode::Div,
            };
            plain(Inst::rrr(op, rd.number(), rs1.number(), rs2.number()))
        }
        // Register-immediate ALU.
        "addi" | "andi" | "ori" | "xori" | "slli" | "srli" | "srai" | "slti" => {
            want(3)?;
            let (rd, rs1, v) = (ireg(0)?, ireg(1)?, imm(2)?);
            let op = match mnemonic.as_str() {
                "addi" => Opcode::Addi,
                "andi" => Opcode::Andi,
                "ori" => Opcode::Ori,
                "xori" => Opcode::Xori,
                "slli" => Opcode::Slli,
                "srli" => Opcode::Srli,
                "srai" => Opcode::Srai,
                _ => Opcode::Slti,
            };
            plain(Inst::rri(op, rd.number(), rs1.number(), v))
        }
        "li" => {
            want(2)?;
            let rd = ireg(0)?;
            // A symbol materializes an address (data or code) at link time.
            match symbol_token(ops[1]) {
                Some(sym) => Ok((
                    Inst::rri(Opcode::Li, rd.number(), 0, 0),
                    Some((sym, RelocKind::Abs)),
                )),
                None => {
                    let v = parse_u64(ops[1], line)? as i64;
                    plain(Inst::rri(Opcode::Li, rd.number(), 0, v))
                }
            }
        }
        "mv" => {
            want(2)?;
            let (rd, rs1) = (ireg(0)?, ireg(1)?);
            plain(Inst::rri(Opcode::Addi, rd.number(), rs1.number(), 0))
        }
        // Memory.
        "ld" | "lw" | "lbu" => {
            want(2)?;
            let rd = ireg(0)?;
            let (off, base) = parse_mem_operand(ops[1], line)?;
            let op = match mnemonic.as_str() {
                "ld" => Opcode::Ld,
                "lw" => Opcode::Lw,
                _ => Opcode::Lbu,
            };
            plain(Inst::rri(op, rd.number(), base.number(), off))
        }
        "st" | "sw" | "sb" => {
            want(2)?;
            let src = ireg(0)?;
            let (off, base) = parse_mem_operand(ops[1], line)?;
            let op = match mnemonic.as_str() {
                "st" => Opcode::St,
                "sw" => Opcode::Sw,
                _ => Opcode::Sb,
            };
            plain(Inst { op, rd: 0, rs1: base.number(), rs2: src.number(), imm: off })
        }
        "fld" => {
            want(2)?;
            let fd = freg(0)?;
            let (off, base) = parse_mem_operand(ops[1], line)?;
            plain(Inst { op: Opcode::Fld, rd: fd.number(), rs1: base.number(), rs2: 0, imm: off })
        }
        "fst" => {
            want(2)?;
            let fs = freg(0)?;
            let (off, base) = parse_mem_operand(ops[1], line)?;
            plain(Inst { op: Opcode::Fst, rd: 0, rs1: base.number(), rs2: fs.number(), imm: off })
        }
        // Control flow.
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            want(3)?;
            let (rs1, rs2) = (ireg(0)?, ireg(1)?);
            let op = match mnemonic.as_str() {
                "beq" => Opcode::Beq,
                "bne" => Opcode::Bne,
                "blt" => Opcode::Blt,
                "bge" => Opcode::Bge,
                "bltu" => Opcode::Bltu,
                _ => Opcode::Bgeu,
            };
            let base = Inst { op, rd: 0, rs1: rs1.number(), rs2: rs2.number(), imm: 0 };
            match parse_target(ops[2], line)? {
                Target::Addr(a) => plain(Inst { imm: a, ..base }),
                Target::Sym(s) => Ok((base, Some((s, RelocKind::Branch)))),
            }
        }
        "jal" => {
            want(2)?;
            let rd = ireg(0)?;
            let base = Inst { op: Opcode::Jal, rd: rd.number(), rs1: 0, rs2: 0, imm: 0 };
            match parse_target(ops[1], line)? {
                Target::Addr(a) => plain(Inst { imm: a, ..base }),
                Target::Sym(s) => Ok((base, Some((s, RelocKind::Branch)))),
            }
        }
        "j" => {
            want(1)?;
            let base = Inst { op: Opcode::Jal, rd: 0, rs1: 0, rs2: 0, imm: 0 };
            match parse_target(ops[0], line)? {
                Target::Addr(a) => plain(Inst { imm: a, ..base }),
                Target::Sym(s) => Ok((base, Some((s, RelocKind::Branch)))),
            }
        }
        "jalr" => {
            want(3)?;
            let (rd, rs1, v) = (ireg(0)?, ireg(1)?, imm(2)?);
            plain(Inst::rri(Opcode::Jalr, rd.number(), rs1.number(), v))
        }
        "ret" => {
            want(1)?;
            let rs1 = ireg(0)?;
            plain(Inst::rri(Opcode::Jalr, 0, rs1.number(), 0))
        }
        // Floating point.
        "fadd" | "fsub" | "fmul" | "fdiv" => {
            want(3)?;
            let (fd, f1, f2) = (freg(0)?, freg(1)?, freg(2)?);
            let op = match mnemonic.as_str() {
                "fadd" => Opcode::Fadd,
                "fsub" => Opcode::Fsub,
                "fmul" => Opcode::Fmul,
                _ => Opcode::Fdiv,
            };
            plain(Inst::rrr(op, fd.number(), f1.number(), f2.number()))
        }
        "fmov" => {
            want(2)?;
            let (fd, f1) = (freg(0)?, freg(1)?);
            plain(Inst::rrr(Opcode::Fmov, fd.number(), f1.number(), 0))
        }
        "fcvt.d.l" => {
            want(2)?;
            let (fd, rs1) = (freg(0)?, ireg(1)?);
            plain(Inst::rrr(Opcode::FcvtFI, fd.number(), rs1.number(), 0))
        }
        "fcvt.l.d" => {
            want(2)?;
            let (rd, f1) = (ireg(0)?, freg(1)?);
            plain(Inst::rrr(Opcode::FcvtIF, rd.number(), f1.number(), 0))
        }
        "fcmplt" | "fcmpeq" => {
            want(3)?;
            let (rd, f1, f2) = (ireg(0)?, freg(1)?, freg(2)?);
            let op = if mnemonic == "fcmplt" { Opcode::Fcmplt } else { Opcode::Fcmpeq };
            plain(Inst::rrr(op, rd.number(), f1.number(), f2.number()))
        }
        "nop" => {
            want(0)?;
            plain(Inst::nop())
        }
        "halt" => {
            want(0)?;
            plain(Inst::halt())
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::exec::Machine;
    use crate::reg::{f, x};

    fn run(src: &str) -> Machine {
        let p = parse_asm(src).expect("parse");
        let mut m = Machine::load(&p);
        m.run(&p, 1_000_000).expect("run");
        m
    }

    #[test]
    fn parses_a_counting_loop() {
        let m = run(r"
            li x1, 10
            li x2, 0
        loop:
            add x2, x2, x1
            addi x1, x1, -1
            bne x1, x0, loop
            halt
        ");
        assert_eq!(m.int_reg(x(2)), 55);
    }

    #[test]
    fn data_symbols_resolve_to_addresses() {
        let m = run(r"
            .data 0x7f3a80000000
        table: .words 11 22 33
        buf:   .zero 16
            li x10, table
            li x11, buf
            ld x1, 8(x10)
            st x1, 0(x11)
            ld x2, 0(x11)
            halt
        ");
        assert_eq!(m.int_reg(x(1)), 22);
        assert_eq!(m.int_reg(x(2)), 22);
        assert_eq!(m.int_reg(x(11)), 0x7f3a_8000_0000 + 24);
    }

    #[test]
    fn relocatable_data_defaults_to_the_builder_base() {
        // Without `.data <base>`, single-unit data lands where the
        // builder's allocator would put it.
        let m = run(r"
        table: .words 7
            li x1, table
            ld x2, 0(x1)
            halt
        ");
        assert_eq!(m.int_reg(x(1)), crate::asm::DEFAULT_DATA_BASE);
        assert_eq!(m.int_reg(x(2)), 7);
    }

    #[test]
    fn doubles_and_fp_ops() {
        let m = run(r"
        vals: .doubles 1.5 2.5
            li x1, vals
            fld f1, 0(x1)
            fld f2, 8(x1)
            fmul f3, f1, f2
            fcvt.l.d x2, f3
            halt
        ");
        assert_eq!(m.fp_reg(f(3)), 3.75);
        assert_eq!(m.int_reg(x(2)), 3);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let m = run(r"
            ; a comment
            li x1, 1   // trailing
            # another style
            halt
        ");
        assert_eq!(m.int_reg(x(1)), 1);
    }

    #[test]
    fn calls_and_returns() {
        let m = run(r"
            li x10, 3
            jal x31, double
            jal x31, double
            halt
        double:
            add x10, x10, x10
            ret x31
        ");
        assert_eq!(m.int_reg(x(10)), 12);
    }

    #[test]
    fn hex_and_negative_immediates() {
        let m = run(r"
            li x1, 0xff
            addi x2, x1, -0x0f
            halt
        ");
        assert_eq!(m.int_reg(x(2)), 0xf0);
    }

    #[test]
    fn immediates_cover_the_i64_boundaries() {
        let m = run(r"
            li x1, -9223372036854775808
            li x2, 9223372036854775807
            li x3, 0xffffffffffffffff
            li x4, -1
            halt
        ");
        assert_eq!(m.int_reg(x(1)), i64::MIN as u64);
        assert_eq!(m.int_reg(x(2)), i64::MAX as u64);
        assert_eq!(m.int_reg(x(3)), u64::MAX);
        assert_eq!(m.int_reg(x(4)), u64::MAX);
    }

    #[test]
    fn byte_data_and_byte_loads() {
        let m = run(r"
        msg: .bytes 7 8 9
            li x1, msg
            lbu x2, 2(x1)
            halt
        ");
        assert_eq!(m.int_reg(x(2)), 9);
    }

    #[test]
    fn label_on_its_own_line_binds_to_following_data() {
        // Regression: labels used to bind as *code* labels unless the data
        // directive shared their line, breaking `li` of the symbol.
        let m = run(r"
        table:
            .words 42
            li x1, table
            ld x2, 0(x1)
            halt
        ");
        assert_eq!(m.int_reg(x(2)), 42);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("li x1, 1\nbogus x1, x2\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse_asm("li x99, 1").unwrap_err();
        assert!(e.message.contains("register"));

        let e = parse_asm("addi x1, x2").unwrap_err();
        assert!(e.message.contains("expects 3"));

        let e = parse_asm("ld x1, 8[x2]").unwrap_err();
        assert!(e.message.contains("offset(base)"));

        let e = parse_asm("li x1, 0xzz").unwrap_err();
        assert!(e.message.contains("malformed number"));
    }

    #[test]
    fn undefined_branch_target_is_reported() {
        let e = parse_asm("bne x1, x0, nowhere\nhalt").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_data_label_is_reported() {
        let e = parse_asm("a: .words 1\na: .words 2\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn duplicate_code_label_is_reported_with_its_line() {
        let e = parse_asm("a:\n nop\na:\n halt").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn parser_and_builder_agree() {
        let parsed = parse_asm(r"
            li x1, 7
        top:
            addi x1, x1, -1
            bne x1, x0, top
            halt
        ").unwrap();
        let mut asm = Asm::new();
        asm.li(x(1), 7);
        asm.label("top");
        asm.addi(x(1), x(1), -1);
        asm.bne(x(1), x(0), "top");
        asm.halt();
        let built = asm.finish().unwrap();
        assert_eq!(parsed.insts, built.insts);
    }

    #[test]
    fn exported_start_sets_the_entry() {
        let p = parse_asm(r"
        helper:
            nop
            halt
        .globl _start
        _start:
            halt
        ").unwrap();
        assert_eq!(p.entry, p.addr_of(2));
    }

    #[test]
    fn code_symbols_materialize_as_function_pointers() {
        let m = run(r"
            li x1, target
            jalr x31, x1, 0
            halt
        target:
            li x2, 9
            halt
        ");
        assert_eq!(m.int_reg(x(2)), 9);
    }
}
