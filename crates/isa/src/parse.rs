//! A text assembler: parse assembly source into a [`Program`].
//!
//! The builder API ([`crate::Asm`]) is the primary interface; this parser
//! makes standalone `.s` files and quick experiments possible. Grammar, by
//! example:
//!
//! ```text
//! ; comments run to end of line (also // and #)
//! .data 0x7f3a80000000      ; set the data allocator base
//! table:  .words 1 2 0xff   ; 64-bit words; label = base address
//! buf:    .zero 64          ; zeroed bytes
//! vals:   .doubles 1.5 -2.5 ; f64 constants
//!
//! .text
//!         li   x10, table   ; data symbols usable as immediates
//!         li   x2, 3
//! loop:   ld   x1, 0(x10)
//!         add  x3, x3, x1
//!         addi x10, x10, 8
//!         addi x2, x2, -1
//!         bne  x2, x0, loop
//!         fld  f1, 0(x10)
//!         halt
//! ```
//!
//! Registers are `x0`–`x31` and `f0`–`f31`. Branch/jump targets are code
//! labels; loads/stores use `offset(base)` addressing. Immediates are
//! decimal or `0x` hex, optionally negative.

use crate::asm::Asm;
use crate::program::Program;
use crate::reg::{FpReg, IntReg};
use std::collections::HashMap;

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

fn err(line: usize, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError { line, message: message.into() }
}

/// Parses assembly text into a linked [`Program`].
///
/// # Errors
///
/// Returns a [`ParseAsmError`] naming the offending line for syntax
/// errors, unknown mnemonics/registers, malformed numbers, duplicate or
/// undefined labels.
///
/// # Example
///
/// ```
/// use carf_isa::{parse_asm, Machine, x};
///
/// let program = parse_asm(r"
///     li   x1, 5
///     li   x2, 0
/// loop:
///     add  x2, x2, x1
///     addi x1, x1, -1
///     bne  x1, x0, loop
///     halt
/// ")?;
/// let mut m = Machine::load(&program);
/// m.run(&program, 1000)?;
/// assert_eq!(m.int_reg(x(2)), 5 + 4 + 3 + 2 + 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_asm(source: &str) -> Result<Program, ParseAsmError> {
    // Pass 1: compute data-symbol addresses by replaying the directives.
    let data_symbols = collect_data_symbols(source)?;

    // Pass 2: emit code and data through the builder.
    let mut asm = Asm::new();
    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (label, rest) = split_label(line);
        let rest = rest.trim();
        if let Some(label) = label {
            // Data labels were resolved in pass 1; only code labels are
            // declared to the builder.
            if !is_data_line(rest) {
                asm.label(label);
            }
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            emit_directive(&mut asm, directive, lineno)?;
        } else {
            emit_instruction(&mut asm, rest, lineno, &data_symbols)?;
        }
    }
    asm.finish().map_err(|e| err(0, e.to_string()))
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for marker in [";", "//", "#"] {
        if let Some(pos) = line.find(marker) {
            end = end.min(pos);
        }
    }
    &line[..end]
}

fn split_label(line: &str) -> (Option<&str>, &str) {
    match line.find(':') {
        Some(pos) if line[..pos].chars().all(|c| c.is_alphanumeric() || c == '_') => {
            (Some(&line[..pos]), &line[pos + 1..])
        }
        _ => (None, line),
    }
}

fn is_data_line(rest: &str) -> bool {
    let rest = rest.trim();
    rest.starts_with(".words") || rest.starts_with(".zero") || rest.starts_with(".doubles")
        || rest.starts_with(".bytes")
}

fn parse_u64(token: &str, line: usize) -> Result<u64, ParseAsmError> {
    let token = token.trim().trim_end_matches(',');
    let (neg, body) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        body.parse::<u64>()
    }
    .map_err(|_| err(line, format!("malformed number `{token}`")))?;
    Ok(if neg { (value as i64).wrapping_neg() as u64 } else { value })
}

fn parse_f64(token: &str, line: usize) -> Result<f64, ParseAsmError> {
    token
        .trim()
        .trim_end_matches(',')
        .parse::<f64>()
        .map_err(|_| err(line, format!("malformed float `{token}`")))
}

fn collect_data_symbols(source: &str) -> Result<HashMap<String, u64>, ParseAsmError> {
    let mut symbols = HashMap::new();
    let mut cursor = crate::asm::DEFAULT_DATA_BASE;
    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (label, rest) = split_label(line);
        let rest = rest.trim();
        if let Some(base) = rest.strip_prefix(".data") {
            let base = base.trim();
            if !base.is_empty() {
                cursor = parse_u64(base, lineno)?;
            }
            continue;
        }
        if !is_data_line(rest) {
            continue;
        }
        if let Some(label) = label {
            if symbols.insert(label.to_string(), cursor).is_some() {
                return Err(err(lineno, format!("duplicate data label `{label}`")));
            }
        }
        let size = data_size(rest, lineno)?;
        cursor += (size + 7) & !7; // the builder keeps 8-byte alignment
    }
    Ok(symbols)
}

fn data_size(rest: &str, line: usize) -> Result<u64, ParseAsmError> {
    let mut parts = rest.split_whitespace();
    let directive = parts.next().unwrap_or_default();
    let args: Vec<&str> = parts.collect();
    match directive {
        ".words" => Ok(args.len() as u64 * 8),
        ".doubles" => Ok(args.len() as u64 * 8),
        ".bytes" => Ok(args.len() as u64),
        ".zero" => parse_u64(
            args.first().ok_or_else(|| err(line, ".zero needs a byte count"))?,
            line,
        ),
        other => Err(err(line, format!("unknown data directive `{other}`"))),
    }
}

fn emit_directive(asm: &mut Asm, directive: &str, line: usize) -> Result<(), ParseAsmError> {
    let mut parts = directive.split_whitespace();
    let name = parts.next().unwrap_or_default();
    let args: Vec<&str> = parts.collect();
    match name {
        "data" => {
            if let Some(base) = args.first() {
                asm.set_data_base(parse_u64(base, line)?);
            }
            Ok(())
        }
        "text" => Ok(()), // sections are implicit; accepted for familiarity
        "words" => {
            let words = args
                .iter()
                .map(|a| parse_u64(a, line))
                .collect::<Result<Vec<u64>, _>>()?;
            asm.alloc_u64s(&words);
            Ok(())
        }
        "doubles" => {
            let vals = args
                .iter()
                .map(|a| parse_f64(a, line))
                .collect::<Result<Vec<f64>, _>>()?;
            asm.alloc_f64s(&vals);
            Ok(())
        }
        "bytes" => {
            let bytes = args
                .iter()
                .map(|a| parse_u64(a, line).map(|v| v as u8))
                .collect::<Result<Vec<u8>, _>>()?;
            asm.alloc_data(&bytes);
            Ok(())
        }
        "zero" => {
            let n = parse_u64(
                args.first().ok_or_else(|| err(line, ".zero needs a byte count"))?,
                line,
            )?;
            asm.alloc_bytes_zeroed(n as usize);
            Ok(())
        }
        other => Err(err(line, format!("unknown directive `.{other}`"))),
    }
}

fn parse_int_reg(token: &str, line: usize) -> Result<IntReg, ParseAsmError> {
    let token = token.trim().trim_end_matches(',');
    token
        .strip_prefix('x')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|n| *n < 32)
        .map(IntReg::new)
        .ok_or_else(|| err(line, format!("expected integer register, got `{token}`")))
}

fn parse_fp_reg(token: &str, line: usize) -> Result<FpReg, ParseAsmError> {
    let token = token.trim().trim_end_matches(',');
    token
        .strip_prefix('f')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|n| *n < 32)
        .map(FpReg::new)
        .ok_or_else(|| err(line, format!("expected fp register, got `{token}`")))
}

/// Parses `offset(base)` into `(offset, base)`.
fn parse_mem_operand(token: &str, line: usize) -> Result<(i64, IntReg), ParseAsmError> {
    let token = token.trim().trim_end_matches(',');
    let open = token
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(base), got `{token}`")))?;
    let close = token
        .rfind(')')
        .filter(|c| *c > open)
        .ok_or_else(|| err(line, format!("unclosed memory operand `{token}`")))?;
    let offset_str = &token[..open];
    let offset = if offset_str.is_empty() { 0 } else { parse_u64(offset_str, line)? as i64 };
    let base = parse_int_reg(&token[open + 1..close], line)?;
    Ok((offset, base))
}

fn emit_instruction(
    asm: &mut Asm,
    text: &str,
    line: usize,
    data_symbols: &HashMap<String, u64>,
) -> Result<(), ParseAsmError> {
    let mut parts = text.split_whitespace();
    let mnemonic = parts.next().unwrap_or_default().to_lowercase();
    let rest: String = parts.collect::<Vec<&str>>().join(" ");
    let ops: Vec<&str> =
        rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();

    let want = |n: usize| -> Result<(), ParseAsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(line, format!("`{mnemonic}` expects {n} operands, got {}", ops.len())))
        }
    };
    let ireg = |i: usize| parse_int_reg(ops[i], line);
    let freg = |i: usize| parse_fp_reg(ops[i], line);
    let imm = |i: usize| parse_u64(ops[i], line).map(|v| v as i64);

    match mnemonic.as_str() {
        // Three-register ALU.
        "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu"
        | "mul" | "div" => {
            want(3)?;
            let (rd, rs1, rs2) = (ireg(0)?, ireg(1)?, ireg(2)?);
            match mnemonic.as_str() {
                "add" => asm.add(rd, rs1, rs2),
                "sub" => asm.sub(rd, rs1, rs2),
                "and" => asm.and(rd, rs1, rs2),
                "or" => asm.or(rd, rs1, rs2),
                "xor" => asm.xor(rd, rs1, rs2),
                "sll" => asm.sll(rd, rs1, rs2),
                "srl" => asm.srl(rd, rs1, rs2),
                "sra" => asm.sra(rd, rs1, rs2),
                "slt" => asm.slt(rd, rs1, rs2),
                "sltu" => asm.sltu(rd, rs1, rs2),
                "mul" => asm.mul(rd, rs1, rs2),
                _ => asm.div(rd, rs1, rs2),
            };
        }
        // Register-immediate ALU.
        "addi" | "andi" | "ori" | "xori" | "slli" | "srli" | "srai" | "slti" => {
            want(3)?;
            let (rd, rs1, v) = (ireg(0)?, ireg(1)?, imm(2)?);
            match mnemonic.as_str() {
                "addi" => asm.addi(rd, rs1, v),
                "andi" => asm.andi(rd, rs1, v),
                "ori" => asm.ori(rd, rs1, v),
                "xori" => asm.xori(rd, rs1, v),
                "slli" => asm.slli(rd, rs1, v),
                "srli" => asm.srli(rd, rs1, v),
                "srai" => asm.srai(rd, rs1, v),
                _ => asm.slti(rd, rs1, v),
            };
        }
        "li" => {
            want(2)?;
            let rd = ireg(0)?;
            let value = match data_symbols.get(ops[1]) {
                Some(addr) => *addr,
                None => parse_u64(ops[1], line)?,
            };
            asm.li(rd, value);
        }
        "mv" => {
            want(2)?;
            let (rd, rs1) = (ireg(0)?, ireg(1)?);
            asm.mv(rd, rs1);
        }
        // Memory.
        "ld" | "lw" | "lbu" => {
            want(2)?;
            let rd = ireg(0)?;
            let (off, base) = parse_mem_operand(ops[1], line)?;
            match mnemonic.as_str() {
                "ld" => asm.ld(rd, base, off),
                "lw" => asm.lw(rd, base, off),
                _ => asm.lbu(rd, base, off),
            };
        }
        "st" | "sw" | "sb" => {
            want(2)?;
            let src = ireg(0)?;
            let (off, base) = parse_mem_operand(ops[1], line)?;
            match mnemonic.as_str() {
                "st" => asm.st(src, base, off),
                "sw" => asm.sw(src, base, off),
                _ => asm.sb(src, base, off),
            };
        }
        "fld" => {
            want(2)?;
            let fd = freg(0)?;
            let (off, base) = parse_mem_operand(ops[1], line)?;
            asm.fld(fd, base, off);
        }
        "fst" => {
            want(2)?;
            let fs = freg(0)?;
            let (off, base) = parse_mem_operand(ops[1], line)?;
            asm.fst(fs, base, off);
        }
        // Control flow. Targets are labels, or absolute byte addresses
        // (so disassembly output re-parses).
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            want(3)?;
            let (rs1, rs2, target) = (ireg(0)?, ireg(1)?, ops[2]);
            if let Ok(addr) = parse_u64(target, line) {
                let op = match mnemonic.as_str() {
                    "beq" => crate::Opcode::Beq,
                    "bne" => crate::Opcode::Bne,
                    "blt" => crate::Opcode::Blt,
                    "bge" => crate::Opcode::Bge,
                    "bltu" => crate::Opcode::Bltu,
                    _ => crate::Opcode::Bgeu,
                };
                asm.emit(crate::Inst {
                    op,
                    rd: 0,
                    rs1: rs1.number(),
                    rs2: rs2.number(),
                    imm: addr as i64,
                });
            } else {
                match mnemonic.as_str() {
                    "beq" => asm.beq(rs1, rs2, target),
                    "bne" => asm.bne(rs1, rs2, target),
                    "blt" => asm.blt(rs1, rs2, target),
                    "bge" => asm.bge(rs1, rs2, target),
                    "bltu" => asm.bltu(rs1, rs2, target),
                    _ => asm.bgeu(rs1, rs2, target),
                };
            }
        }
        "jal" => {
            want(2)?;
            let rd = ireg(0)?;
            if let Ok(addr) = parse_u64(ops[1], line) {
                asm.emit(crate::Inst {
                    op: crate::Opcode::Jal,
                    rd: rd.number(),
                    rs1: 0,
                    rs2: 0,
                    imm: addr as i64,
                });
            } else {
                asm.jal(rd, ops[1]);
            }
        }
        "j" => {
            want(1)?;
            if let Ok(addr) = parse_u64(ops[0], line) {
                asm.emit(crate::Inst {
                    op: crate::Opcode::Jal,
                    rd: 0,
                    rs1: 0,
                    rs2: 0,
                    imm: addr as i64,
                });
            } else {
                asm.j(ops[0]);
            }
        }
        "jalr" => {
            want(3)?;
            let (rd, rs1, v) = (ireg(0)?, ireg(1)?, imm(2)?);
            asm.jalr(rd, rs1, v);
        }
        "ret" => {
            want(1)?;
            let rs1 = ireg(0)?;
            asm.ret(rs1);
        }
        // Floating point.
        "fadd" | "fsub" | "fmul" | "fdiv" => {
            want(3)?;
            let (fd, f1, f2) = (freg(0)?, freg(1)?, freg(2)?);
            match mnemonic.as_str() {
                "fadd" => asm.fadd(fd, f1, f2),
                "fsub" => asm.fsub(fd, f1, f2),
                "fmul" => asm.fmul(fd, f1, f2),
                _ => asm.fdiv(fd, f1, f2),
            };
        }
        "fmov" => {
            want(2)?;
            let (fd, f1) = (freg(0)?, freg(1)?);
            asm.fmov(fd, f1);
        }
        "fcvt.d.l" => {
            want(2)?;
            let (fd, rs1) = (freg(0)?, ireg(1)?);
            asm.fcvt_fi(fd, rs1);
        }
        "fcvt.l.d" => {
            want(2)?;
            let (rd, f1) = (ireg(0)?, freg(1)?);
            asm.fcvt_if(rd, f1);
        }
        "fcmplt" => {
            want(3)?;
            let (rd, f1, f2) = (ireg(0)?, freg(1)?, freg(2)?);
            asm.fcmplt(rd, f1, f2);
        }
        "fcmpeq" => {
            want(3)?;
            let (rd, f1, f2) = (ireg(0)?, freg(1)?, freg(2)?);
            asm.fcmpeq(rd, f1, f2);
        }
        "nop" => {
            want(0)?;
            asm.nop();
        }
        "halt" => {
            want(0)?;
            asm.halt();
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Machine;
    use crate::reg::{f, x};

    fn run(src: &str) -> Machine {
        let p = parse_asm(src).expect("parse");
        let mut m = Machine::load(&p);
        m.run(&p, 1_000_000).expect("run");
        m
    }

    #[test]
    fn parses_a_counting_loop() {
        let m = run(r"
            li x1, 10
            li x2, 0
        loop:
            add x2, x2, x1
            addi x1, x1, -1
            bne x1, x0, loop
            halt
        ");
        assert_eq!(m.int_reg(x(2)), 55);
    }

    #[test]
    fn data_symbols_resolve_to_addresses() {
        let m = run(r"
            .data 0x7f3a80000000
        table: .words 11 22 33
        buf:   .zero 16
            li x10, table
            li x11, buf
            ld x1, 8(x10)
            st x1, 0(x11)
            ld x2, 0(x11)
            halt
        ");
        assert_eq!(m.int_reg(x(1)), 22);
        assert_eq!(m.int_reg(x(2)), 22);
        assert_eq!(m.int_reg(x(11)), 0x7f3a_8000_0000 + 24);
    }

    #[test]
    fn doubles_and_fp_ops() {
        let m = run(r"
        vals: .doubles 1.5 2.5
            li x1, vals
            fld f1, 0(x1)
            fld f2, 8(x1)
            fmul f3, f1, f2
            fcvt.l.d x2, f3
            halt
        ");
        assert_eq!(m.fp_reg(f(3)), 3.75);
        assert_eq!(m.int_reg(x(2)), 3);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let m = run(r"
            ; a comment
            li x1, 1   // trailing
            # another style
            halt
        ");
        assert_eq!(m.int_reg(x(1)), 1);
    }

    #[test]
    fn calls_and_returns() {
        let m = run(r"
            li x10, 3
            jal x31, double
            jal x31, double
            halt
        double:
            add x10, x10, x10
            ret x31
        ");
        assert_eq!(m.int_reg(x(10)), 12);
    }

    #[test]
    fn hex_and_negative_immediates() {
        let m = run(r"
            li x1, 0xff
            addi x2, x1, -0x0f
            halt
        ");
        assert_eq!(m.int_reg(x(2)), 0xf0);
    }

    #[test]
    fn byte_data_and_byte_loads() {
        let m = run(r"
        msg: .bytes 7 8 9
            li x1, msg
            lbu x2, 2(x1)
            halt
        ");
        assert_eq!(m.int_reg(x(2)), 9);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("li x1, 1\nbogus x1, x2\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse_asm("li x99, 1").unwrap_err();
        assert!(e.message.contains("register"));

        let e = parse_asm("addi x1, x2").unwrap_err();
        assert!(e.message.contains("expects 3"));

        let e = parse_asm("ld x1, 8[x2]").unwrap_err();
        assert!(e.message.contains("offset(base)"));

        let e = parse_asm("li x1, 0xzz").unwrap_err();
        assert!(e.message.contains("malformed number"));
    }

    #[test]
    fn undefined_branch_target_is_reported() {
        let e = parse_asm("bne x1, x0, nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_data_label_is_reported() {
        let e = parse_asm("a: .words 1\na: .words 2\nhalt").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn parser_and_builder_agree() {
        let parsed = parse_asm(r"
            li x1, 7
        top:
            addi x1, x1, -1
            bne x1, x0, top
            halt
        ").unwrap();
        let mut asm = Asm::new();
        asm.li(x(1), 7);
        asm.label("top");
        asm.addi(x(1), x(1), -1);
        asm.bne(x(1), x(0), "top");
        asm.halt();
        let built = asm.finish().unwrap();
        assert_eq!(parsed.insts, built.insts);
    }
}
