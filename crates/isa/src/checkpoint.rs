//! Architectural checkpoints: save/restore points for sampled simulation.
//!
//! A [`Checkpoint`] captures everything architecturally visible at an
//! instruction boundary — the 32 integer registers, the 32 FP registers
//! (as bit patterns, so NaN payloads survive), the PC, the retired count,
//! the halt flag — plus the memory image as a copy-on-write
//! [`MemoryDelta`] against the program's initial data image. Workloads
//! are deterministic programs (seeded data baked in at build time), so a
//! program fingerprint is the whole "workload state": restoring against a
//! different program is refused rather than silently diverging.
//!
//! Checkpoints are produced by the functional executor
//! ([`crate::Machine::checkpoint`]) after a fast-forward, and consumed by
//! both executors: [`crate::Machine::from_checkpoint`] resumes functional
//! execution, and the cycle-level simulator seeds its committed state from
//! one (see `carf-sim`). Round trips are bit-identical — the property the
//! sampling driver's validity rests on, pinned by [`Checkpoint::fingerprint`]
//! equality tests.

use crate::encode::encode;
use crate::program::Program;
use carf_mem::{MemoryDelta, SparseMemory};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A stable FNV-1a fingerprint of a program's identity: every encoded
/// instruction, the code base, the entry point, and the initial data
/// image. Two builds of the same deterministic workload at the same size
/// fingerprint identically; any other change (size, seed, code edit)
/// does not.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut h = FNV_OFFSET;
    h = fold_bytes(h, &program.code_base.to_le_bytes());
    h = fold_bytes(h, &program.entry.to_le_bytes());
    for inst in &program.insts {
        h = fold_bytes(h, &encode(inst).to_le_bytes());
    }
    for seg in &program.data {
        h = fold_bytes(h, &seg.addr.to_le_bytes());
        h = fold_bytes(h, &(seg.bytes.len() as u64).to_le_bytes());
        h = fold_bytes(h, &seg.bytes);
    }
    h
}

/// Restoring a checkpoint against the wrong program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMismatch {
    /// Fingerprint the checkpoint was captured against.
    pub expected: u64,
    /// Fingerprint of the program offered for restore.
    pub got: u64,
}

impl std::fmt::Display for CheckpointMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint was captured against program {:#018x}, not {:#018x}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for CheckpointMismatch {}

/// One architectural save point (see the module docs).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Integer register values (`regs[0]` is always 0).
    pub regs: [u64; 32],
    /// FP register bit patterns.
    pub fregs: [u64; 32],
    /// Program counter.
    pub pc: u64,
    /// Instructions retired up to this point.
    pub retired: u64,
    /// `true` when the machine had already halted.
    pub halted: bool,
    /// Fingerprint of the program this checkpoint belongs to.
    pub program_fp: u64,
    /// Memory pages differing from the program's initial data image.
    pub mem: MemoryDelta,
}

impl Checkpoint {
    /// Builds a checkpoint from raw architectural state. `mem` is diffed
    /// against `program`'s initial data image; both executors use this
    /// one constructor so their checkpoints are comparable bit for bit.
    pub fn from_parts(
        regs: [u64; 32],
        fregs: [u64; 32],
        pc: u64,
        retired: u64,
        halted: bool,
        mem: &SparseMemory,
        program: &Program,
    ) -> Self {
        let mut base = SparseMemory::new();
        program.load_data(&mut base);
        Self {
            regs,
            fregs,
            pc,
            retired,
            halted,
            program_fp: program_fingerprint(program),
            mem: mem.delta_from(&base),
        }
    }

    /// Reconstructs the full memory image: the program's initial data
    /// image with the delta applied.
    ///
    /// # Errors
    ///
    /// Refuses a `program` whose fingerprint differs from the one the
    /// checkpoint was captured against.
    pub fn restore_memory(&self, program: &Program) -> Result<SparseMemory, CheckpointMismatch> {
        self.check_program(program)?;
        let mut mem = SparseMemory::new();
        program.load_data(&mut mem);
        mem.apply_delta(&self.mem);
        Ok(mem)
    }

    /// Validates that `program` is the one this checkpoint belongs to.
    ///
    /// # Errors
    ///
    /// Returns the fingerprint pair on mismatch.
    pub fn check_program(&self, program: &Program) -> Result<(), CheckpointMismatch> {
        let got = program_fingerprint(program);
        if got != self.program_fp {
            return Err(CheckpointMismatch { expected: self.program_fp, got });
        }
        Ok(())
    }

    /// An FNV-1a hash over every field — registers, PC, retired count,
    /// halt flag, program identity, and the full memory delta. Two
    /// checkpoints fingerprint equal iff the architectural states are
    /// bit-identical (modulo FNV collisions), which is how the round-trip
    /// tests assert (fast-forward → restore → simulate) ≡ (simulate
    /// straight through).
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for r in self.regs {
            h = fold_bytes(h, &r.to_le_bytes());
        }
        for r in self.fregs {
            h = fold_bytes(h, &r.to_le_bytes());
        }
        h = fold_bytes(h, &self.pc.to_le_bytes());
        h = fold_bytes(h, &self.retired.to_le_bytes());
        h = fold_bytes(h, &[u8::from(self.halted)]);
        h = fold_bytes(h, &self.program_fp.to_le_bytes());
        self.mem.fold_fnv1a(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::exec::Machine;
    use crate::reg::x;

    fn counting_program(n: i64) -> Program {
        let mut asm = Asm::new();
        let buf = asm.alloc_bytes_zeroed(64);
        asm.li(x(1), 0);
        asm.li(x(2), n as u64);
        asm.li(x(3), buf);
        asm.label("loop");
        asm.addi(x(1), x(1), 1);
        asm.st(x(1), x(3), 0);
        asm.bne(x(1), x(2), "loop");
        asm.halt();
        asm.finish().expect("assembly")
    }

    #[test]
    fn program_fingerprint_distinguishes_programs() {
        let a = counting_program(10);
        let b = counting_program(11);
        assert_eq!(program_fingerprint(&a), program_fingerprint(&a));
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
    }

    #[test]
    fn round_trip_equals_straight_through() {
        let p = counting_program(50);
        // Straight through.
        let mut straight = Machine::load(&p);
        straight.run(&p, 1_000_000).expect("halts");
        // Split at an arbitrary point.
        let mut m = Machine::load(&p);
        assert!(m.run(&p, 37).is_err()); // budget exhausted mid-program
        let ckpt = m.checkpoint(&p);
        let mut resumed = Machine::from_checkpoint(&p, &ckpt).expect("same program");
        resumed.run(&p, 1_000_000).expect("halts");
        assert_eq!(
            straight.checkpoint(&p).fingerprint(),
            resumed.checkpoint(&p).fingerprint()
        );
        assert_eq!(straight.retired(), resumed.retired());
    }

    #[test]
    fn checkpoint_is_bit_identical_after_restore() {
        let p = counting_program(20);
        let mut m = Machine::load(&p);
        assert!(m.run(&p, 13).is_err());
        let ckpt = m.checkpoint(&p);
        let restored = Machine::from_checkpoint(&p, &ckpt).expect("same program");
        assert_eq!(ckpt.fingerprint(), restored.checkpoint(&p).fingerprint());
    }

    #[test]
    fn wrong_program_is_refused() {
        let a = counting_program(10);
        let b = counting_program(11);
        let m = Machine::load(&a);
        let ckpt = m.checkpoint(&a);
        assert!(Machine::from_checkpoint(&b, &ckpt).is_err());
        assert!(ckpt.restore_memory(&b).is_err());
        assert!(ckpt.check_program(&a).is_ok());
    }

    #[test]
    fn halted_state_survives_the_round_trip() {
        let p = counting_program(5);
        let mut m = Machine::load(&p);
        m.run(&p, 1_000_000).expect("halts");
        assert!(m.is_halted());
        let ckpt = m.checkpoint(&p);
        assert!(ckpt.halted);
        let restored = Machine::from_checkpoint(&p, &ckpt).expect("same program");
        assert!(restored.is_halted());
        assert_eq!(restored.retired(), m.retired());
    }
}
