//! A small label-resolving assembler.

use crate::inst::{Inst, Opcode};
use crate::program::{DataSegment, Program, DEFAULT_CODE_BASE, INST_BYTES};
use crate::reg::{FpReg, IntReg};
use std::collections::HashMap;

/// Errors produced while assembling a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A control-flow instruction referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Builds [`Program`]s instruction by instruction, with forward-referencing
/// labels and a data-segment allocator.
///
/// Every opcode has a method; branch methods take a label that is resolved
/// to an absolute byte address by [`Asm::finish`]. Data lives in a separate
/// bump-allocated region whose base is configurable (workloads use this to
/// place "heap", "stack", and "globals" at realistic 64-bit addresses).
///
/// # Example
///
/// ```
/// use carf_isa::{Asm, x};
///
/// let mut asm = Asm::new();
/// let table = asm.alloc_u64s(&[10, 20, 30]);
/// asm.li(x(1), table);
/// asm.ld(x(2), x(1), 8); // x2 = 20
/// asm.halt();
/// let p = asm.finish()?;
/// assert_eq!(p.len(), 3);
/// # Ok::<(), carf_isa::AsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Asm {
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>, // instruction index -> label for imm
    data: Vec<DataSegment>,
    data_cursor: u64,
    code_base: u64,
    duplicate: Option<String>,
}

/// Default base of the bump-allocated data region (a typical static-data
/// address).
pub const DEFAULT_DATA_BASE: u64 = 0x0000_0000_0060_0000;

impl Asm {
    /// Creates an empty assembler at the default code and data bases.
    pub fn new() -> Self {
        Self {
            insts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            data: Vec::new(),
            data_cursor: DEFAULT_DATA_BASE,
            code_base: DEFAULT_CODE_BASE,
            duplicate: None,
        }
    }

    /// Moves the data allocator to `base` (call before allocating).
    pub fn set_data_base(&mut self, base: u64) -> &mut Self {
        self.data_cursor = base;
        self
    }

    /// Current position of the data allocator.
    pub fn data_cursor(&self) -> u64 {
        self.data_cursor
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Defines `name` at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_string(), self.insts.len()).is_some()
            && self.duplicate.is_none()
        {
            self.duplicate = Some(name.to_string());
        }
        self
    }

    /// Reserves `bytes` of zeroed data, returning its base address.
    pub fn alloc_bytes_zeroed(&mut self, bytes: usize) -> u64 {
        self.alloc_data(&vec![0u8; bytes])
    }

    /// Places `bytes` into the data region, returning its base address.
    pub fn alloc_data(&mut self, bytes: &[u8]) -> u64 {
        let addr = self.data_cursor;
        self.data.push(DataSegment { addr, bytes: bytes.to_vec() });
        // Keep allocations 8-byte aligned.
        self.data_cursor += ((bytes.len() as u64) + 7) & !7;
        addr
    }

    /// Places little-endian `u64` words, returning their base address.
    pub fn alloc_u64s(&mut self, words: &[u64]) -> u64 {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.alloc_data(&bytes)
    }

    /// Places `f64` values (as IEEE bits), returning their base address.
    pub fn alloc_f64s(&mut self, values: &[f64]) -> u64 {
        let words: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        self.alloc_u64s(&words)
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn rrr(&mut self, op: Opcode, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.emit(Inst::rrr(op, rd.number(), rs1.number(), rs2.number()))
    }

    fn rri(&mut self, op: Opcode, rd: IntReg, rs1: IntReg, imm: i64) -> &mut Self {
        self.emit(Inst::rri(op, rd.number(), rs1.number(), imm))
    }

    fn branch(&mut self, op: Opcode, rs1: IntReg, rs2: IntReg, label: &str) -> &mut Self {
        self.fixups.push((self.insts.len(), label.to_string()));
        self.emit(Inst {
            op,
            rd: 0,
            rs1: rs1.number(),
            rs2: rs2.number(),
            imm: 0,
        })
    }

    // --- integer register-register ---

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::Add, rd, rs1, rs2)
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::Sub, rd, rs1, rs2)
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::And, rd, rs1, rs2)
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::Or, rd, rs1, rs2)
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::Xor, rd, rs1, rs2)
    }
    /// `rd = rs1 << rs2`
    pub fn sll(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::Sll, rd, rs1, rs2)
    }
    /// `rd = rs1 >> rs2` (logical)
    pub fn srl(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::Srl, rd, rs1, rs2)
    }
    /// `rd = rs1 >> rs2` (arithmetic)
    pub fn sra(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::Sra, rd, rs1, rs2)
    }
    /// `rd = rs1 <s rs2`
    pub fn slt(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::Slt, rd, rs1, rs2)
    }
    /// `rd = rs1 <u rs2`
    pub fn sltu(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::Sltu, rd, rs1, rs2)
    }
    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::Mul, rd, rs1, rs2)
    }
    /// `rd = rs1 / rs2`
    pub fn div(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) -> &mut Self {
        self.rrr(Opcode::Div, rd, rs1, rs2)
    }

    // --- integer immediates ---

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: IntReg, rs1: IntReg, imm: i64) -> &mut Self {
        self.rri(Opcode::Addi, rd, rs1, imm)
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: IntReg, rs1: IntReg, imm: i64) -> &mut Self {
        self.rri(Opcode::Andi, rd, rs1, imm)
    }
    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: IntReg, rs1: IntReg, imm: i64) -> &mut Self {
        self.rri(Opcode::Ori, rd, rs1, imm)
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: IntReg, rs1: IntReg, imm: i64) -> &mut Self {
        self.rri(Opcode::Xori, rd, rs1, imm)
    }
    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: IntReg, rs1: IntReg, imm: i64) -> &mut Self {
        self.rri(Opcode::Slli, rd, rs1, imm)
    }
    /// `rd = rs1 >> imm` (logical)
    pub fn srli(&mut self, rd: IntReg, rs1: IntReg, imm: i64) -> &mut Self {
        self.rri(Opcode::Srli, rd, rs1, imm)
    }
    /// `rd = rs1 >> imm` (arithmetic)
    pub fn srai(&mut self, rd: IntReg, rs1: IntReg, imm: i64) -> &mut Self {
        self.rri(Opcode::Srai, rd, rs1, imm)
    }
    /// `rd = rs1 <s imm`
    pub fn slti(&mut self, rd: IntReg, rs1: IntReg, imm: i64) -> &mut Self {
        self.rri(Opcode::Slti, rd, rs1, imm)
    }
    /// `rd = imm` (any 64-bit value)
    pub fn li(&mut self, rd: IntReg, imm: u64) -> &mut Self {
        self.rri(Opcode::Li, rd, IntReg::ZERO, imm as i64)
    }
    /// `rd = rs1` (pseudo: `addi rd, rs1, 0`)
    pub fn mv(&mut self, rd: IntReg, rs1: IntReg) -> &mut Self {
        self.addi(rd, rs1, 0)
    }

    // --- memory ---

    /// `rd = mem64[rs1 + imm]`
    pub fn ld(&mut self, rd: IntReg, base: IntReg, offset: i64) -> &mut Self {
        self.rri(Opcode::Ld, rd, base, offset)
    }
    /// `rd = sext(mem32[rs1 + imm])`
    pub fn lw(&mut self, rd: IntReg, base: IntReg, offset: i64) -> &mut Self {
        self.rri(Opcode::Lw, rd, base, offset)
    }
    /// `rd = zext(mem8[rs1 + imm])`
    pub fn lbu(&mut self, rd: IntReg, base: IntReg, offset: i64) -> &mut Self {
        self.rri(Opcode::Lbu, rd, base, offset)
    }
    /// `mem64[base + offset] = src`
    pub fn st(&mut self, src: IntReg, base: IntReg, offset: i64) -> &mut Self {
        self.emit(Inst { op: Opcode::St, rd: 0, rs1: base.number(), rs2: src.number(), imm: offset })
    }
    /// `mem32[base + offset] = src[31:0]`
    pub fn sw(&mut self, src: IntReg, base: IntReg, offset: i64) -> &mut Self {
        self.emit(Inst { op: Opcode::Sw, rd: 0, rs1: base.number(), rs2: src.number(), imm: offset })
    }
    /// `mem8[base + offset] = src[7:0]`
    pub fn sb(&mut self, src: IntReg, base: IntReg, offset: i64) -> &mut Self {
        self.emit(Inst { op: Opcode::Sb, rd: 0, rs1: base.number(), rs2: src.number(), imm: offset })
    }
    /// `fd = mem_f64[base + offset]`
    pub fn fld(&mut self, fd: FpReg, base: IntReg, offset: i64) -> &mut Self {
        self.emit(Inst { op: Opcode::Fld, rd: fd.number(), rs1: base.number(), rs2: 0, imm: offset })
    }
    /// `mem_f64[base + offset] = fsrc`
    pub fn fst(&mut self, fsrc: FpReg, base: IntReg, offset: i64) -> &mut Self {
        self.emit(Inst { op: Opcode::Fst, rd: 0, rs1: base.number(), rs2: fsrc.number(), imm: offset })
    }

    // --- control flow ---

    /// Branch to `label` if `rs1 == rs2`.
    pub fn beq(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> &mut Self {
        self.branch(Opcode::Beq, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 != rs2`.
    pub fn bne(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> &mut Self {
        self.branch(Opcode::Bne, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 <s rs2`.
    pub fn blt(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> &mut Self {
        self.branch(Opcode::Blt, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 >=s rs2`.
    pub fn bge(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> &mut Self {
        self.branch(Opcode::Bge, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 <u rs2`.
    pub fn bltu(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> &mut Self {
        self.branch(Opcode::Bltu, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 >=u rs2`.
    pub fn bgeu(&mut self, rs1: IntReg, rs2: IntReg, label: &str) -> &mut Self {
        self.branch(Opcode::Bgeu, rs1, rs2, label)
    }
    /// `rd = return address; pc = label`.
    pub fn jal(&mut self, rd: IntReg, label: &str) -> &mut Self {
        self.fixups.push((self.insts.len(), label.to_string()));
        self.emit(Inst { op: Opcode::Jal, rd: rd.number(), rs1: 0, rs2: 0, imm: 0 })
    }
    /// Unconditional jump to `label` (pseudo: `jal x0, label`).
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.jal(IntReg::ZERO, label)
    }
    /// `rd = return address; pc = rs1 + imm`.
    pub fn jalr(&mut self, rd: IntReg, rs1: IntReg, imm: i64) -> &mut Self {
        self.rri(Opcode::Jalr, rd, rs1, imm)
    }
    /// Return (pseudo: `jalr x0, rs1, 0`).
    pub fn ret(&mut self, rs1: IntReg) -> &mut Self {
        self.jalr(IntReg::ZERO, rs1, 0)
    }

    // --- floating point ---

    /// `fd = fs1 + fs2`
    pub fn fadd(&mut self, fd: FpReg, fs1: FpReg, fs2: FpReg) -> &mut Self {
        self.emit(Inst::rrr(Opcode::Fadd, fd.number(), fs1.number(), fs2.number()))
    }
    /// `fd = fs1 - fs2`
    pub fn fsub(&mut self, fd: FpReg, fs1: FpReg, fs2: FpReg) -> &mut Self {
        self.emit(Inst::rrr(Opcode::Fsub, fd.number(), fs1.number(), fs2.number()))
    }
    /// `fd = fs1 * fs2`
    pub fn fmul(&mut self, fd: FpReg, fs1: FpReg, fs2: FpReg) -> &mut Self {
        self.emit(Inst::rrr(Opcode::Fmul, fd.number(), fs1.number(), fs2.number()))
    }
    /// `fd = fs1 / fs2`
    pub fn fdiv(&mut self, fd: FpReg, fs1: FpReg, fs2: FpReg) -> &mut Self {
        self.emit(Inst::rrr(Opcode::Fdiv, fd.number(), fs1.number(), fs2.number()))
    }
    /// `fd = fs1`
    pub fn fmov(&mut self, fd: FpReg, fs1: FpReg) -> &mut Self {
        self.emit(Inst::rrr(Opcode::Fmov, fd.number(), fs1.number(), 0))
    }
    /// `fd = (f64) rs1`
    pub fn fcvt_fi(&mut self, fd: FpReg, rs1: IntReg) -> &mut Self {
        self.emit(Inst::rrr(Opcode::FcvtFI, fd.number(), rs1.number(), 0))
    }
    /// `rd = (i64) fs1`
    pub fn fcvt_if(&mut self, rd: IntReg, fs1: FpReg) -> &mut Self {
        self.emit(Inst::rrr(Opcode::FcvtIF, rd.number(), fs1.number(), 0))
    }
    /// `rd = fs1 < fs2`
    pub fn fcmplt(&mut self, rd: IntReg, fs1: FpReg, fs2: FpReg) -> &mut Self {
        self.emit(Inst::rrr(Opcode::Fcmplt, rd.number(), fs1.number(), fs2.number()))
    }
    /// `rd = fs1 == fs2`
    pub fn fcmpeq(&mut self, rd: IntReg, fs1: FpReg, fs2: FpReg) -> &mut Self {
        self.emit(Inst::rrr(Opcode::Fcmpeq, rd.number(), fs1.number(), fs2.number()))
    }

    // --- misc ---

    /// Emits a `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::nop())
    }
    /// Emits a `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst::halt())
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if a branch references a label
    /// that was never defined, or [`AsmError::DuplicateLabel`] if a label was
    /// defined more than once.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(dup) = self.duplicate.take() {
            return Err(AsmError::DuplicateLabel(dup));
        }
        for (inst_index, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            self.insts[*inst_index].imm = (self.code_base + target as u64 * INST_BYTES) as i64;
        }
        Ok(Program {
            insts: self.insts,
            code_base: self.code_base,
            entry: self.code_base,
            data: self.data,
        })
    }
}

impl Default for Asm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{f, x};

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut asm = Asm::new();
        asm.label("top");
        asm.addi(x(1), x(1), 1);
        asm.beq(x(1), x(2), "done"); // forward
        asm.j("top"); // backward
        asm.label("done");
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(p.insts[1].imm, p.addr_of(3) as i64);
        assert_eq!(p.insts[2].imm, p.addr_of(0) as i64);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut asm = Asm::new();
        asm.j("nowhere");
        assert_eq!(asm.finish(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut asm = Asm::new();
        asm.label("a");
        asm.nop();
        asm.label("a");
        asm.halt();
        assert_eq!(asm.finish(), Err(AsmError::DuplicateLabel("a".into())));
    }

    #[test]
    fn data_allocation_is_aligned_and_sequential() {
        let mut asm = Asm::new();
        let a = asm.alloc_data(&[1, 2, 3]); // 3 bytes, rounds to 8
        let b = asm.alloc_u64s(&[42]);
        assert_eq!(b, a + 8);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(p.data.len(), 2);
        assert_eq!(p.data[1].bytes, 42u64.to_le_bytes().to_vec());
    }

    #[test]
    fn f64_data_round_trips() {
        let mut asm = Asm::new();
        let a = asm.alloc_f64s(&[1.5, -2.5]);
        asm.halt();
        let p = asm.finish().unwrap();
        let seg = p.data.iter().find(|s| s.addr == a).unwrap();
        assert_eq!(
            f64::from_bits(u64::from_le_bytes(seg.bytes[0..8].try_into().unwrap())),
            1.5
        );
    }

    #[test]
    fn pseudo_instructions_expand() {
        let mut asm = Asm::new();
        asm.mv(x(2), x(1));
        asm.ret(x(31));
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(p.insts[0].op, Opcode::Addi);
        assert_eq!(p.insts[1].op, Opcode::Jalr);
        assert_eq!(p.insts[1].rd, 0);
    }

    #[test]
    fn stores_place_source_in_rs2() {
        let mut asm = Asm::new();
        asm.st(x(5), x(6), 24);
        asm.fst(f(7), x(6), 32);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(p.insts[0].rs2, 5);
        assert_eq!(p.insts[0].rs1, 6);
        assert_eq!(p.insts[1].rs2, 7);
    }
}
