//! Architectural register names.

use std::fmt;

/// Number of integer architectural registers (x0 is hardwired to zero).
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: usize = 32;

/// An integer architectural register, `x0`–`x31`.
///
/// `x0` always reads as zero and ignores writes, the usual RISC convention.
///
/// # Example
///
/// ```
/// use carf_isa::{x, IntReg};
///
/// assert_eq!(IntReg::ZERO, x(0));
/// assert_eq!(x(7).index(), 7);
/// assert_eq!(format!("{}", x(7)), "x7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

impl IntReg {
    /// The hardwired-zero register `x0`.
    pub const ZERO: IntReg = IntReg(0);

    /// Creates `x<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn new(i: u8) -> Self {
        assert!((i as usize) < NUM_INT_REGS, "integer register index {i} out of range");
        IntReg(i)
    }

    /// The register number as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw register number.
    pub fn number(self) -> u8 {
        self.0
    }

    /// `true` for `x0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for IntReg {
    fn fmt(&self, fo: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fo, "x{}", self.0)
    }
}

/// A floating-point architectural register, `f0`–`f31`.
///
/// # Example
///
/// ```
/// use carf_isa::f;
///
/// assert_eq!(f(3).index(), 3);
/// assert_eq!(format!("{}", f(3)), "f3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

impl FpReg {
    /// Creates `f<i>`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn new(i: u8) -> Self {
        assert!((i as usize) < NUM_FP_REGS, "fp register index {i} out of range");
        FpReg(i)
    }

    /// The register number as an array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw register number.
    pub fn number(self) -> u8 {
        self.0
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, fo: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fo, "f{}", self.0)
    }
}

/// Shorthand constructor for integer registers: `x(5)` is `x5`.
///
/// # Panics
///
/// Panics if `i >= 32`.
pub fn x(i: u8) -> IntReg {
    IntReg::new(i)
}

/// Shorthand constructor for floating-point registers: `f(5)` is `f5`.
///
/// # Panics
///
/// Panics if `i >= 32`.
pub fn f(i: u8) -> FpReg {
    FpReg::new(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_index() {
        assert_eq!(x(0), IntReg::ZERO);
        assert!(x(0).is_zero());
        assert!(!x(1).is_zero());
        assert_eq!(x(31).index(), 31);
        assert_eq!(f(31).index(), 31);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_out_of_range_panics() {
        let _ = x(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_reg_out_of_range_panics() {
        let _ = f(32);
    }

    #[test]
    fn display() {
        assert_eq!(x(12).to_string(), "x12");
        assert_eq!(f(0).to_string(), "f0");
    }
}
