//! Relocatable translation units and the link pass.
//!
//! [`crate::parse_object`] turns one `.s` source file into an
//! [`ObjectUnit`]: instructions whose symbol-referencing immediates are
//! still zero, a table of the symbols the unit defines (code labels and
//! data labels), the list of symbols it exports (`.globl`), its data
//! segments (relocatable by default, absolute after a `.data <base>`
//! directive), and one [`Reloc`] per unresolved immediate. [`link`] then
//! lays several units out in one address space and patches every
//! relocation, producing an executable [`Program`]:
//!
//! * **code**: units are concatenated in input order starting at
//!   [`DEFAULT_CODE_BASE`](crate::Program::code_base);
//! * **data**: each unit's relocatable segments keep their unit-relative
//!   offsets and the unit regions are placed back to back from
//!   [`DEFAULT_DATA_BASE`](crate::asm::DEFAULT_DATA_BASE), each region
//!   aligned to [`UNIT_DATA_ALIGN`] so units land on separate "pages"
//!   (realistic 64-bit addresses, like the builder's allocator); absolute
//!   segments stay where the source pinned them;
//! * **symbols**: references resolve unit-locally first, then through the
//!   exported-global table. Undefined and doubly-exported symbols are
//!   link errors carrying `file:line` provenance; overlapping data
//!   placements are diagnosed instead of silently clobbering memory.
//!
//! The entry point is the exported `_start` symbol when one exists; a
//! single-unit program falls back to its first instruction (matching
//! [`crate::parse_asm`]); multi-unit programs without `_start` must name
//! an entry explicitly via [`link_with_entry`].
//!
//! # Example
//!
//! ```
//! use carf_isa::{link, parse_object, Machine, x};
//!
//! let lib = parse_object("
//!     .globl double
//! double:
//!     add x10, x10, x10
//!     ret x31
//! ", "lib.s")?;
//! let main = parse_object("
//!     .globl _start
//! _start:
//!     li  x10, 21
//!     jal x31, double
//!     halt
//! ", "main.s")?;
//! let program = link(&[main, lib])?;
//! let mut m = Machine::load(&program);
//! m.run(&program, 1000)?;
//! assert_eq!(m.int_reg(x(10)), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::asm::DEFAULT_DATA_BASE;
use crate::inst::Inst;
use crate::program::{DataSegment, Program, DEFAULT_CODE_BASE, INST_BYTES};
use std::collections::HashMap;

/// Alignment of each unit's relocatable data region in the linked image.
pub const UNIT_DATA_ALIGN: u64 = 4096;

/// The conventional entry symbol ([`link`] uses it when exported).
pub const ENTRY_SYMBOL: &str = "_start";

/// A diagnostic anchored to a source position (`file:line: message`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceDiag {
    /// Source file the diagnostic points into.
    pub file: String,
    /// 1-based line, or 0 when the position is not line-specific.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SourceDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.file, self.message)
        } else {
            write!(f, "{}:{}: {}", self.file, self.line, self.message)
        }
    }
}

impl std::error::Error for SourceDiag {}

/// How a relocated immediate is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocKind {
    /// A control-flow target: the symbol must be a code label; the
    /// resolved absolute byte address is written into `imm`.
    Branch,
    /// An absolute address materialization (`li rd, symbol`): the symbol
    /// may be a data label or a code label (function pointers).
    Abs,
}

/// One unresolved symbol reference in a unit's instruction stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reloc {
    /// Index of the instruction whose `imm` receives the address.
    pub inst: usize,
    /// The referenced symbol.
    pub symbol: String,
    /// How the address is used.
    pub kind: RelocKind,
    /// 1-based source line of the reference (diagnostics).
    pub line: usize,
}

/// Where a data symbol or segment lives before linking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlace {
    /// Pinned byte address (`.data <base>` was in effect).
    Absolute(u64),
    /// Offset into the unit's relocatable data region.
    Relative(u64),
}

/// One chunk of initialized data in a unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjData {
    /// Placement (resolved to an address at link time).
    pub place: DataPlace,
    /// Contents.
    pub bytes: Vec<u8>,
}

/// One assembled-but-unlinked translation unit (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectUnit {
    /// Source file name (diagnostics only; not part of program identity).
    pub file: String,
    /// The instruction stream; symbol-referencing `imm` fields are 0
    /// until [`link`] patches them.
    pub insts: Vec<Inst>,
    /// Code labels defined in this unit: name → instruction index.
    pub code_defs: HashMap<String, usize>,
    /// Data labels defined in this unit: name → placement.
    pub data_defs: HashMap<String, DataPlace>,
    /// Exported symbols, with the line of their `.globl` directive.
    pub globals: Vec<(String, usize)>,
    /// Initialized data segments, in source order.
    pub data: Vec<ObjData>,
    /// Unresolved symbol references.
    pub relocs: Vec<Reloc>,
    /// Extent (bytes) of the relocatable data region.
    pub rel_size: u64,
}

/// A linking failure; every variant names the symbols and files involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// A referenced (or exported) symbol has no definition anywhere.
    UndefinedSymbol {
        /// The unresolved name.
        symbol: String,
        /// File containing the reference.
        file: String,
        /// Line of the reference (0 when not line-specific).
        line: usize,
    },
    /// Two units export the same symbol.
    DuplicateSymbol {
        /// The doubly-exported name.
        symbol: String,
        /// File of the first export.
        first: String,
        /// File of the second export.
        second: String,
    },
    /// A branch or jump targets a data symbol.
    BranchToData {
        /// The data symbol used as a control-flow target.
        symbol: String,
        /// File containing the branch.
        file: String,
        /// Line of the branch.
        line: usize,
    },
    /// The requested entry symbol is not defined in any unit.
    UndefinedEntry {
        /// The missing entry symbol.
        symbol: String,
    },
    /// The requested entry symbol is defined (unexported) in several units.
    AmbiguousEntry {
        /// The ambiguous entry symbol.
        symbol: String,
    },
    /// The entry symbol names data, not code.
    EntryNotCode {
        /// The non-code entry symbol.
        symbol: String,
    },
    /// Several units, no exported `_start`, and no explicit entry.
    NoEntry,
    /// No unit contributed any instructions.
    EmptyProgram,
    /// Two data segments claim the same byte address.
    DataOverlap {
        /// File owning the lower segment.
        first: String,
        /// File owning the overlapping segment.
        second: String,
        /// First overlapping byte address.
        addr: u64,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::UndefinedSymbol { symbol, file, line } => {
                if *line == 0 {
                    write!(f, "{file}: undefined symbol `{symbol}`")
                } else {
                    write!(f, "{file}:{line}: undefined symbol `{symbol}`")
                }
            }
            LinkError::DuplicateSymbol { symbol, first, second } => write!(
                f,
                "duplicate symbol `{symbol}` exported by both {first} and {second}"
            ),
            LinkError::BranchToData { symbol, file, line } => write!(
                f,
                "{file}:{line}: branch target `{symbol}` is a data symbol"
            ),
            LinkError::UndefinedEntry { symbol } => {
                write!(f, "entry symbol `{symbol}` is not defined by any unit")
            }
            LinkError::AmbiguousEntry { symbol } => write!(
                f,
                "entry symbol `{symbol}` is defined in several units; export one with .globl"
            ),
            LinkError::EntryNotCode { symbol } => {
                write!(f, "entry symbol `{symbol}` names data, not code")
            }
            LinkError::NoEntry => write!(
                f,
                "multi-unit program has no exported `{ENTRY_SYMBOL}`; \
                 add `.globl {ENTRY_SYMBOL}` or name an entry symbol"
            ),
            LinkError::EmptyProgram => write!(f, "linked program has no instructions"),
            LinkError::DataOverlap { first, second, addr } => write!(
                f,
                "data segments from {first} and {second} overlap at {addr:#x}"
            ),
        }
    }
}

impl std::error::Error for LinkError {}

/// A resolved symbol value during linking.
#[derive(Debug, Clone, Copy)]
enum SymVal {
    Code(u64),
    Data(u64),
}

fn round_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

/// Links translation units into an executable [`Program`], entering at
/// the exported `_start` (or, for a single unit, its first instruction).
///
/// # Errors
///
/// See [`LinkError`]; diagnostics carry the involved files and lines.
pub fn link(units: &[ObjectUnit]) -> Result<Program, LinkError> {
    link_with_entry(units, None)
}

/// [`link`] with an explicit entry symbol. The symbol may be exported
/// from any unit, or defined (unexported) in exactly one.
///
/// # Errors
///
/// See [`LinkError`].
pub fn link_with_entry(units: &[ObjectUnit], entry: Option<&str>) -> Result<Program, LinkError> {
    // Code layout: concatenation in input order.
    let mut code_off = Vec::with_capacity(units.len());
    let mut total_insts = 0usize;
    for u in units {
        code_off.push(total_insts);
        total_insts += u.insts.len();
    }
    if total_insts == 0 {
        return Err(LinkError::EmptyProgram);
    }
    let code_addr =
        |ui: usize, idx: usize| DEFAULT_CODE_BASE + (code_off[ui] + idx) as u64 * INST_BYTES;

    // Data layout: one aligned region per unit for relocatable segments.
    let mut data_base = Vec::with_capacity(units.len());
    let mut cursor = DEFAULT_DATA_BASE;
    for u in units {
        data_base.push(cursor);
        cursor += round_up(u.rel_size, UNIT_DATA_ALIGN);
    }
    let data_addr = |ui: usize, place: DataPlace| match place {
        DataPlace::Absolute(a) => a,
        DataPlace::Relative(off) => data_base[ui] + off,
    };

    // Exported-global table: symbol → (defining unit, resolved value).
    let mut exports: HashMap<&str, (usize, SymVal)> = HashMap::new();
    for (ui, u) in units.iter().enumerate() {
        for (name, line) in &u.globals {
            let val = if let Some(idx) = u.code_defs.get(name) {
                SymVal::Code(code_addr(ui, *idx))
            } else if let Some(place) = u.data_defs.get(name) {
                SymVal::Data(data_addr(ui, *place))
            } else {
                return Err(LinkError::UndefinedSymbol {
                    symbol: name.clone(),
                    file: u.file.clone(),
                    line: *line,
                });
            };
            match exports.get(name.as_str()) {
                Some((prev_ui, _)) if *prev_ui != ui => {
                    return Err(LinkError::DuplicateSymbol {
                        symbol: name.clone(),
                        first: units[*prev_ui].file.clone(),
                        second: u.file.clone(),
                    });
                }
                _ => {
                    exports.insert(name.as_str(), (ui, val));
                }
            }
        }
    }

    // Patch every relocation: unit-local definitions first, then globals.
    let mut insts: Vec<Inst> = Vec::with_capacity(total_insts);
    for u in units {
        insts.extend_from_slice(&u.insts);
    }
    for (ui, u) in units.iter().enumerate() {
        for r in &u.relocs {
            let local_code = u.code_defs.get(&r.symbol).map(|idx| SymVal::Code(code_addr(ui, *idx)));
            let local_data = u.data_defs.get(&r.symbol).map(|p| SymVal::Data(data_addr(ui, *p)));
            let global = exports.get(r.symbol.as_str()).map(|(_, v)| *v);
            let resolved = match r.kind {
                RelocKind::Branch => local_code.or(local_data).or(global),
                RelocKind::Abs => local_data.or(local_code).or(global),
            };
            let addr = match resolved {
                Some(SymVal::Code(a)) => a,
                Some(SymVal::Data(a)) if r.kind == RelocKind::Abs => a,
                Some(SymVal::Data(_)) => {
                    return Err(LinkError::BranchToData {
                        symbol: r.symbol.clone(),
                        file: u.file.clone(),
                        line: r.line,
                    });
                }
                None => {
                    return Err(LinkError::UndefinedSymbol {
                        symbol: r.symbol.clone(),
                        file: u.file.clone(),
                        line: r.line,
                    });
                }
            };
            insts[code_off[ui] + r.inst].imm = addr as i64;
        }
    }

    // Entry point.
    let entry_addr = match entry {
        Some(sym) => match exports.get(sym) {
            Some((_, SymVal::Code(a))) => *a,
            Some((_, SymVal::Data(_))) => {
                return Err(LinkError::EntryNotCode { symbol: sym.to_string() })
            }
            None => {
                let mut hits = units.iter().enumerate().filter_map(|(ui, u)| {
                    u.code_defs.get(sym).map(|idx| code_addr(ui, *idx))
                });
                match (hits.next(), hits.next()) {
                    (Some(a), None) => a,
                    (Some(_), Some(_)) => {
                        return Err(LinkError::AmbiguousEntry { symbol: sym.to_string() })
                    }
                    (None, _) => {
                        if units.iter().any(|u| u.data_defs.contains_key(sym)) {
                            return Err(LinkError::EntryNotCode { symbol: sym.to_string() });
                        }
                        return Err(LinkError::UndefinedEntry { symbol: sym.to_string() });
                    }
                }
            }
        },
        None => match exports.get(ENTRY_SYMBOL) {
            Some((_, SymVal::Code(a))) => *a,
            Some((_, SymVal::Data(_))) => {
                return Err(LinkError::EntryNotCode { symbol: ENTRY_SYMBOL.to_string() })
            }
            None if units.len() == 1 => DEFAULT_CODE_BASE,
            None => return Err(LinkError::NoEntry),
        },
    };

    // Final data image, in source order; then prove no two segments clash.
    let mut segments: Vec<DataSegment> = Vec::new();
    let mut owners: Vec<(u64, u64, usize)> = Vec::new(); // (addr, len, unit)
    for (ui, u) in units.iter().enumerate() {
        for d in &u.data {
            let addr = data_addr(ui, d.place);
            if !d.bytes.is_empty() {
                owners.push((addr, d.bytes.len() as u64, ui));
            }
            segments.push(DataSegment { addr, bytes: d.bytes.clone() });
        }
    }
    owners.sort_unstable();
    for pair in owners.windows(2) {
        let (a_addr, a_len, a_ui) = pair[0];
        let (b_addr, _, b_ui) = pair[1];
        if b_addr < a_addr + a_len {
            return Err(LinkError::DataOverlap {
                first: units[a_ui].file.clone(),
                second: units[b_ui].file.clone(),
                addr: b_addr,
            });
        }
    }

    Ok(Program { insts, code_base: DEFAULT_CODE_BASE, entry: entry_addr, data: segments })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_object;

    fn unit(src: &str, file: &str) -> ObjectUnit {
        parse_object(src, file).expect("parse")
    }

    #[test]
    fn single_unit_entry_defaults_to_first_instruction() {
        let p = link(&[unit("li x1, 1\nhalt\n", "a.s")]).unwrap();
        assert_eq!(p.entry, p.code_base);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn multi_unit_without_start_is_an_error() {
        let a = unit("halt\n", "a.s");
        let b = unit("halt\n", "b.s");
        assert_eq!(link(&[a, b]), Err(LinkError::NoEntry));
    }

    #[test]
    fn exported_start_wins_over_position() {
        let lib = unit("helper:\n nop\n halt\n", "lib.s");
        let main = unit(".globl _start\n_start:\n halt\n", "main.s");
        let p = link(&[lib, main]).unwrap();
        // _start is instruction 2 (after lib's two instructions).
        assert_eq!(p.entry, p.addr_of(2));
    }

    #[test]
    fn duplicate_export_names_both_files() {
        let a = unit(".globl f\nf:\n halt\n", "a.s");
        let b = unit(".globl f\nf:\n halt\n", "b.s");
        match link(&[a, b]) {
            Err(LinkError::DuplicateSymbol { symbol, first, second }) => {
                assert_eq!(symbol, "f");
                assert_eq!(first, "a.s");
                assert_eq!(second, "b.s");
            }
            other => panic!("expected duplicate-symbol error, got {other:?}"),
        }
    }

    #[test]
    fn undefined_reference_carries_file_and_line() {
        let a = unit("nop\nj nowhere\nhalt\n", "a.s");
        match link(&[a]) {
            Err(LinkError::UndefinedSymbol { symbol, file, line }) => {
                assert_eq!(symbol, "nowhere");
                assert_eq!(file, "a.s");
                assert_eq!(line, 2);
            }
            other => panic!("expected undefined-symbol error, got {other:?}"),
        }
    }

    #[test]
    fn exporting_an_undefined_symbol_is_an_error() {
        let a = unit(".globl ghost\nhalt\n", "a.s");
        match link(&[a]) {
            Err(LinkError::UndefinedSymbol { symbol, file, line }) => {
                assert_eq!(symbol, "ghost");
                assert_eq!(file, "a.s");
                assert_eq!(line, 1);
            }
            other => panic!("expected undefined-symbol error, got {other:?}"),
        }
    }

    #[test]
    fn relocatable_data_regions_do_not_collide() {
        let a = unit(".globl _start\nbuf_a: .zero 16\n_start:\n li x1, buf_a\n halt\n", "a.s");
        let b = unit("buf_b: .zero 16\n", "b.s");
        let p = link(&[a, b]).unwrap();
        assert_eq!(p.data[0].addr, DEFAULT_DATA_BASE);
        assert_eq!(p.data[1].addr, DEFAULT_DATA_BASE + UNIT_DATA_ALIGN);
    }

    #[test]
    fn absolute_overlap_is_diagnosed() {
        let a = unit(".data 0x700000\nx: .words 1 2\n.globl _start\n_start:\n halt\n", "a.s");
        let b = unit(".data 0x700008\ny: .words 3\n", "b.s");
        match link(&[a, b]) {
            Err(LinkError::DataOverlap { first, second, addr }) => {
                assert_eq!(first, "a.s");
                assert_eq!(second, "b.s");
                assert_eq!(addr, 0x700008);
            }
            other => panic!("expected data-overlap error, got {other:?}"),
        }
    }

    #[test]
    fn branch_to_data_is_diagnosed() {
        let a = unit("tbl: .words 1\n j tbl\n halt\n", "a.s");
        match link(&[a]) {
            Err(LinkError::BranchToData { symbol, file, line }) => {
                assert_eq!(symbol, "tbl");
                assert_eq!(file, "a.s");
                assert_eq!(line, 2);
            }
            other => panic!("expected branch-to-data error, got {other:?}"),
        }
    }

    #[test]
    fn explicit_entry_finds_unexported_unique_definition() {
        let a = unit("main:\n halt\n", "a.s");
        let b = unit("other:\n halt\n", "b.s");
        let p = link_with_entry(&[a, b], Some("other")).unwrap();
        assert_eq!(p.entry, p.addr_of(1));
        let a2 = unit("main:\n halt\n", "a.s");
        let b2 = unit("main:\n halt\n", "b.s");
        assert_eq!(
            link_with_entry(&[a2, b2], Some("main")),
            Err(LinkError::AmbiguousEntry { symbol: "main".into() })
        );
    }
}
