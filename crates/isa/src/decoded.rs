//! Pre-decoded programs: the decoded-instruction cache behind the fast
//! functional executor.
//!
//! [`crate::Machine::step`] re-derives an instruction's execution form on
//! every step — [`Inst::kind`] plus a nested opcode match, immediate
//! casts, and width lookups. For fast-forwarding hundreds of millions of
//! instructions that per-step decode dominates. [`DecodedProgram`] pays
//! the cost once, turning a [`Program`] into a dense `Vec<DecodedOp>`
//! indexed by instruction position, with each op split by *execution
//! form* so the dispatch loop in [`crate::Machine::run_decoded`] matches
//! on a single tag and goes straight to the arithmetic.
//!
//! Decoding is purely a re-packaging: every operand and target is taken
//! verbatim from the [`Inst`], and execution calls the same
//! [`crate::semantics`] evaluators as the per-step path, so the two
//! executors agree by construction (and are pinned to each other by
//! differential tests).

use crate::inst::{Inst, InstKind, Opcode};
use crate::program::{Program, INST_BYTES};
use crate::semantics::{load_width, store_width, LoadWidth, StoreWidth};

/// One instruction, pre-split by execution form.
///
/// Branch and jump targets are absolute byte addresses (exactly the
/// instruction's `imm`); immediates are pre-cast to the `u64` the
/// evaluators take.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodedOp {
    /// Register-register integer ALU/mul/div operation.
    IntRR {
        /// Operation.
        op: Opcode,
        /// Destination register.
        rd: u8,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
    },
    /// Register-immediate integer ALU operation.
    IntRI {
        /// Operation.
        op: Opcode,
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Immediate operand, pre-cast.
        imm: u64,
    },
    /// Load-immediate.
    Li {
        /// Destination register.
        rd: u8,
        /// The value.
        imm: u64,
    },
    /// Integer load (`ld`/`lw`/`lbu`).
    LoadInt {
        /// Access width and extension.
        width: LoadWidth,
        /// Destination register.
        rd: u8,
        /// Base address register.
        rs1: u8,
        /// Address offset, pre-cast.
        imm: u64,
    },
    /// FP load (`fld`).
    LoadFp {
        /// Destination FP register.
        rd: u8,
        /// Base address register.
        rs1: u8,
        /// Address offset, pre-cast.
        imm: u64,
    },
    /// Integer store (`st`/`sw`/`sb`).
    StoreInt {
        /// Access width.
        width: StoreWidth,
        /// Base address register.
        rs1: u8,
        /// Data register.
        rs2: u8,
        /// Address offset, pre-cast.
        imm: u64,
    },
    /// FP store (`fst`).
    StoreFp {
        /// Base address register.
        rs1: u8,
        /// Data FP register.
        rs2: u8,
        /// Address offset, pre-cast.
        imm: u64,
    },
    /// Conditional branch.
    Branch {
        /// Condition.
        op: Opcode,
        /// First compare register.
        rs1: u8,
        /// Second compare register.
        rs2: u8,
        /// Absolute byte target when taken.
        target: u64,
    },
    /// Unconditional jump-and-link.
    Jump {
        /// Link register.
        rd: u8,
        /// Absolute byte target.
        target: u64,
    },
    /// Indirect jump-and-link.
    JumpReg {
        /// Link register.
        rd: u8,
        /// Target base register.
        rs1: u8,
        /// Target offset, pre-cast.
        imm: u64,
    },
    /// FP arithmetic producing an FP result.
    FpRR {
        /// Operation.
        op: Opcode,
        /// Destination FP register.
        rd: u8,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
    },
    /// The int→FP conversion.
    FpFromInt {
        /// Destination FP register.
        rd: u8,
        /// Integer source.
        rs1: u8,
    },
    /// FP compares and the FP→int conversion (integer result).
    IntFromFp {
        /// Operation.
        op: Opcode,
        /// Destination integer register.
        rd: u8,
        /// First FP source.
        rs1: u8,
        /// Second FP source.
        rs2: u8,
    },
    /// No-operation.
    Nop,
    /// Stop the machine.
    Halt,
}

impl DecodedOp {
    /// Decodes one instruction into its execution form.
    pub fn decode(inst: &Inst) -> Self {
        use Opcode::*;
        match inst.kind() {
            InstKind::IntAlu | InstKind::IntMul | InstKind::IntDiv => match inst.op {
                Fcmplt | Fcmpeq | FcvtIF => {
                    DecodedOp::IntFromFp { op: inst.op, rd: inst.rd, rs1: inst.rs1, rs2: inst.rs2 }
                }
                Li => DecodedOp::Li { rd: inst.rd, imm: inst.imm as u64 },
                Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => DecodedOp::IntRI {
                    op: inst.op,
                    rd: inst.rd,
                    rs1: inst.rs1,
                    imm: inst.imm as u64,
                },
                _ => DecodedOp::IntRR { op: inst.op, rd: inst.rd, rs1: inst.rs1, rs2: inst.rs2 },
            },
            InstKind::Load => {
                if inst.op == Fld {
                    DecodedOp::LoadFp { rd: inst.rd, rs1: inst.rs1, imm: inst.imm as u64 }
                } else {
                    DecodedOp::LoadInt {
                        width: load_width(inst.op),
                        rd: inst.rd,
                        rs1: inst.rs1,
                        imm: inst.imm as u64,
                    }
                }
            }
            InstKind::Store => {
                if inst.op == Fst {
                    DecodedOp::StoreFp { rs1: inst.rs1, rs2: inst.rs2, imm: inst.imm as u64 }
                } else {
                    DecodedOp::StoreInt {
                        width: store_width(inst.op),
                        rs1: inst.rs1,
                        rs2: inst.rs2,
                        imm: inst.imm as u64,
                    }
                }
            }
            InstKind::Branch => DecodedOp::Branch {
                op: inst.op,
                rs1: inst.rs1,
                rs2: inst.rs2,
                target: inst.imm as u64,
            },
            InstKind::Jump => DecodedOp::Jump { rd: inst.rd, target: inst.imm as u64 },
            InstKind::JumpReg => {
                DecodedOp::JumpReg { rd: inst.rd, rs1: inst.rs1, imm: inst.imm as u64 }
            }
            InstKind::FpAlu | InstKind::FpDiv => match inst.op {
                FcvtFI => DecodedOp::FpFromInt { rd: inst.rd, rs1: inst.rs1 },
                _ => DecodedOp::FpRR { op: inst.op, rd: inst.rd, rs1: inst.rs1, rs2: inst.rs2 },
            },
            InstKind::Nop => DecodedOp::Nop,
            InstKind::Halt => DecodedOp::Halt,
        }
    }
}

/// The decoded-instruction cache for one [`Program`]: a dense op vector
/// indexed by instruction position, sharing the program's addressing
/// (byte PCs starting at the code base, [`INST_BYTES`] apart).
///
/// # Example
///
/// ```
/// use carf_isa::{Asm, DecodedProgram, Machine, x};
///
/// let mut asm = Asm::new();
/// asm.li(x(1), 21);
/// asm.add(x(1), x(1), x(1));
/// asm.halt();
/// let program = asm.finish()?;
///
/// let decoded = DecodedProgram::decode(&program);
/// let mut m = Machine::load(&program);
/// m.run_decoded(&decoded, 100)?;
/// assert_eq!(m.int_reg(x(1)), 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    ops: Vec<DecodedOp>,
    code_base: u64,
    entry: u64,
}

impl DecodedProgram {
    /// Decodes every instruction of `program`.
    pub fn decode(program: &Program) -> Self {
        Self {
            ops: program.insts.iter().map(DecodedOp::decode).collect(),
            code_base: program.code_base,
            entry: program.entry,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Byte address of instruction 0.
    pub fn code_base(&self) -> u64 {
        self.code_base
    }

    /// Byte address execution starts at.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// The decoded ops, indexed by instruction position.
    pub fn ops(&self) -> &[DecodedOp] {
        &self.ops
    }

    /// Byte address of instruction `index`.
    pub fn addr_of(&self, index: usize) -> u64 {
        self.code_base + (index as u64) * INST_BYTES
    }

    /// Instruction index of byte address `pc`, or `None` when `pc` is
    /// outside the code segment or misaligned (same contract as
    /// [`Program::index_of`]).
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        let off = pc.wrapping_sub(self.code_base);
        if !off.is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = off / INST_BYTES;
        (idx < self.ops.len() as u64).then_some(idx as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn every_opcode_decodes_to_a_distinct_form() {
        // Decode all 48 opcodes; the big match must not panic, and the
        // control/memory forms must land in the right variants.
        for op in Opcode::ALL {
            let inst = Inst { op, rd: 1, rs1: 2, rs2: 3, imm: 0x40_0008 };
            let d = DecodedOp::decode(&inst);
            match inst.kind() {
                InstKind::Branch => assert!(matches!(d, DecodedOp::Branch { .. }), "{op:?}"),
                InstKind::Jump => assert!(matches!(d, DecodedOp::Jump { .. }), "{op:?}"),
                InstKind::JumpReg => assert!(matches!(d, DecodedOp::JumpReg { .. }), "{op:?}"),
                InstKind::Load => assert!(
                    matches!(d, DecodedOp::LoadInt { .. } | DecodedOp::LoadFp { .. }),
                    "{op:?}"
                ),
                InstKind::Store => assert!(
                    matches!(d, DecodedOp::StoreInt { .. } | DecodedOp::StoreFp { .. }),
                    "{op:?}"
                ),
                InstKind::Nop => assert_eq!(d, DecodedOp::Nop),
                InstKind::Halt => assert_eq!(d, DecodedOp::Halt),
                _ => {}
            }
        }
    }

    #[test]
    fn addressing_matches_program() {
        let p = Program::from_insts(vec![Inst::nop(), Inst::nop(), Inst::halt()]);
        let d = DecodedProgram::decode(&p);
        assert_eq!(d.len(), 3);
        for i in 0..p.len() {
            assert_eq!(d.addr_of(i), p.addr_of(i));
            assert_eq!(d.index_of(p.addr_of(i)), p.index_of(p.addr_of(i)));
        }
        assert_eq!(d.index_of(p.code_base - 8), None);
        assert_eq!(d.index_of(p.code_base + 1), None);
        assert_eq!(d.index_of(p.addr_of(3)), None);
    }
}
