//! Executable program images.

use crate::inst::Inst;
use carf_mem::SparseMemory;

/// Size of one encoded instruction in bytes; program counters advance by
/// this much.
pub const INST_BYTES: u64 = 8;

/// Default base address of the code segment (a typical text-segment
/// address, so code pointers look like real 64-bit addresses).
pub const DEFAULT_CODE_BASE: u64 = 0x0000_0000_0040_0000;

/// A chunk of initialized data placed into memory before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Base byte address.
    pub addr: u64,
    /// Contents.
    pub bytes: Vec<u8>,
}

/// A fully linked program: instructions, entry point, and initial data.
///
/// # Example
///
/// ```
/// use carf_isa::{Asm, x};
///
/// let mut asm = Asm::new();
/// asm.li(x(1), 7);
/// asm.halt();
/// let p = asm.finish()?;
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.index_of(p.entry), Some(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The instruction stream.
    pub insts: Vec<Inst>,
    /// Byte address of instruction 0.
    pub code_base: u64,
    /// Byte address execution starts at.
    pub entry: u64,
    /// Initialized data image.
    pub data: Vec<DataSegment>,
}

impl Program {
    /// Wraps an instruction vector at the default code base with entry at
    /// the first instruction and no data.
    pub fn from_insts(insts: Vec<Inst>) -> Self {
        Program { insts, code_base: DEFAULT_CODE_BASE, entry: DEFAULT_CODE_BASE, data: Vec::new() }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Byte address of instruction `index`.
    pub fn addr_of(&self, index: usize) -> u64 {
        self.code_base + (index as u64) * INST_BYTES
    }

    /// Instruction index of byte address `pc`, or `None` if `pc` is outside
    /// the code segment or misaligned.
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        if pc < self.code_base {
            return None;
        }
        let off = pc - self.code_base;
        if !off.is_multiple_of(INST_BYTES) {
            return None;
        }
        let idx = (off / INST_BYTES) as usize;
        if idx < self.insts.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// The instruction at byte address `pc`, or `None` when out of range.
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        self.index_of(pc).map(|i| &self.insts[i])
    }

    /// Writes the initial data image into `mem`.
    pub fn load_data(&self, mem: &mut SparseMemory) {
        for seg in &self.data {
            mem.write_bytes(seg.addr, &seg.bytes);
        }
    }

    /// A multi-line disassembly listing (address, instruction).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{:#010x}: {inst}", self.addr_of(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode;

    fn prog() -> Program {
        Program::from_insts(vec![
            Inst::rri(Opcode::Li, 1, 0, 5),
            Inst::rrr(Opcode::Add, 2, 1, 1),
            Inst::halt(),
        ])
    }

    #[test]
    fn addressing_round_trips() {
        let p = prog();
        for i in 0..p.len() {
            assert_eq!(p.index_of(p.addr_of(i)), Some(i));
        }
    }

    #[test]
    fn out_of_range_and_misaligned_pcs() {
        let p = prog();
        assert_eq!(p.index_of(p.code_base - 8), None);
        assert_eq!(p.index_of(p.addr_of(3)), None); // one past the end
        assert_eq!(p.index_of(p.code_base + 1), None); // misaligned
    }

    #[test]
    fn fetch_returns_instructions() {
        let p = prog();
        assert_eq!(p.fetch(p.addr_of(1)), Some(&Inst::rrr(Opcode::Add, 2, 1, 1)));
        assert_eq!(p.fetch(0), None);
    }

    #[test]
    fn data_is_loaded() {
        let mut p = prog();
        p.data.push(DataSegment { addr: 0x8000, bytes: vec![1, 2, 3, 4] });
        let mut mem = SparseMemory::new();
        p.load_data(&mut mem);
        assert_eq!(mem.read_u32(0x8000), 0x0403_0201);
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let p = prog();
        let text = p.disassemble();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("halt"));
        assert!(text.contains("0x00400000"));
    }
}
