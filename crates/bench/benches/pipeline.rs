//! Criterion benchmarks of simulator throughput: cycles per second on a
//! representative kernel for each register-file organization.

use carf_core::{BaselineRegFile, CarfParams, ContentAwareRegFile};
use carf_sim::{SimConfig, Simulator};
use carf_workloads::int_suite;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_simulator(c: &mut Criterion) {
    let wl = int_suite().into_iter().find(|w| w.name == "hash_table").expect("registered");
    let program = wl.build(4);
    let mut group = c.benchmark_group("simulate_50k_insts");
    group.sample_size(10);
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut sim = Simulator::<BaselineRegFile>::new(SimConfig::paper_baseline(), &program);
            black_box(sim.run(50_000).expect("clean run"))
        })
    });
    group.bench_function("content_aware", |b| {
        b.iter(|| {
            let mut sim =
                Simulator::<ContentAwareRegFile>::new(SimConfig::paper_carf(CarfParams::paper_default()), &program);
            black_box(sim.run(50_000).expect("clean run"))
        })
    });
    group.bench_function("baseline_with_cosim", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::paper_baseline();
            cfg.cosim = true;
            let mut sim = Simulator::<BaselineRegFile>::new(cfg, &program);
            black_box(sim.run(50_000).expect("clean run"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
