//! Criterion microbenchmark pinning the scheduler hot loop in isolation:
//! the wakeup/select/complete machinery dominates these kernels, so a
//! regression in the event-driven scheduler shows up here before it is
//! visible in full experiment wall-clock.
//!
//! `pointer_chase` is the long-tail case (serial loads keep the IQ full of
//! stalled instructions — the worst case for a scan-based scheduler and
//! the best case for O(woken) wakeup); `hash_table` is the mixed case.

use carf_core::{BaselineRegFile, CarfParams, ContentAwareRegFile};
use carf_sim::{SimConfig, Simulator};
use carf_workloads::int_suite;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_hotloop(c: &mut Criterion) {
    let workloads = int_suite();
    let find = |name: &str| {
        workloads.iter().find(|w| w.name == name).unwrap_or_else(|| panic!("{name} registered"))
    };
    let pointer_chase = find("pointer_chase");
    let chase_program = pointer_chase.build(pointer_chase.size(carf_workloads::SizeClass::Test));
    let hash = find("hash_table");
    let hash_program = hash.build(hash.size(carf_workloads::SizeClass::Test));

    let mut group = c.benchmark_group("sim_hotloop");
    group.sample_size(10);
    group.bench_function("pointer_chase_baseline", |b| {
        b.iter(|| {
            let mut sim = Simulator::<BaselineRegFile>::new(SimConfig::paper_baseline(), &chase_program);
            black_box(sim.run(20_000).expect("clean run"))
        })
    });
    group.bench_function("pointer_chase_carf", |b| {
        b.iter(|| {
            let mut sim =
                Simulator::<ContentAwareRegFile>::new(SimConfig::paper_carf(CarfParams::paper_default()), &chase_program);
            black_box(sim.run(20_000).expect("clean run"))
        })
    });
    group.bench_function("hash_table_baseline", |b| {
        b.iter(|| {
            let mut sim = Simulator::<BaselineRegFile>::new(SimConfig::paper_baseline(), &hash_program);
            black_box(sim.run(20_000).expect("clean run"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hotloop);
criterion_main!(benches);
