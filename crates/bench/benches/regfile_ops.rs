//! Criterion micro-benchmarks of the register-file structures themselves:
//! classification, write/read paths, and the aging tick.

use carf_core::{
    classify, is_simple, BaselineRegFile, CarfParams, ContentAwareRegFile, IntRegFile, Policies,
    ShortIndexPolicy,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const HEAP: u64 = 0x0000_7f3a_8000_0000;

fn values() -> Vec<u64> {
    // The SPEC-like magnitude mixture: simple / short-able / long.
    (0..1024u64)
        .map(|i| match i % 4 {
            0 => i * 7,                                 // simple
            1 => (-(i as i64 * 3)) as u64,              // simple negative
            2 => HEAP + i * 64,                         // short (heap addresses)
            _ => i.wrapping_mul(0x9E37_79B9_7F4A_7C15), // long
        })
        .collect()
}

fn bench_classification(c: &mut Criterion) {
    let params = CarfParams::paper_default();
    let vals = values();
    c.bench_function("classify_1024_values", |b| {
        b.iter(|| {
            let mut counts = [0u64; 3];
            for v in &vals {
                let class = classify(&params, *v, false);
                counts[class as usize] += 1;
            }
            black_box(counts)
        })
    });
    c.bench_function("is_simple_1024_values", |b| {
        b.iter(|| vals.iter().filter(|v| is_simple(&params, **v)).count())
    });
}

fn bench_write_read(c: &mut Criterion) {
    let vals = values();
    c.bench_function("carf_write_read_release_64", |b| {
        let mut rf = ContentAwareRegFile::new(CarfParams::paper_default());
        rf.observe_address(HEAP);
        b.iter(|| {
            let mut acc = 0u64;
            for (tag, v) in vals.iter().take(64).enumerate() {
                rf.on_alloc(tag);
                rf.try_write(tag, *v, false).expect("48 longs cover 64 mixed writes");
                acc ^= rf.read(tag);
            }
            for tag in 0..64 {
                rf.release(tag);
            }
            black_box(acc)
        })
    });
    c.bench_function("baseline_write_read_release_64", |b| {
        let mut rf = BaselineRegFile::new(112);
        b.iter(|| {
            let mut acc = 0u64;
            for (tag, v) in vals.iter().take(64).enumerate() {
                rf.on_alloc(tag);
                rf.try_write(tag, *v, false).expect("baseline writes cannot fail");
                acc ^= rf.read(tag);
            }
            for tag in 0..64 {
                rf.release(tag);
            }
            black_box(acc)
        })
    });
}

fn bench_associative_policy(c: &mut Criterion) {
    // The associative ablation scans every Short slot per probe; this
    // pins the cost of the `short_high`-hoisted scan path.
    let vals = values();
    c.bench_function("carf_associative_write_read_release_64", |b| {
        let mut rf = ContentAwareRegFile::with_policies(
            CarfParams::paper_default(),
            Policies { short_index: ShortIndexPolicy::Associative, ..Policies::default() },
        );
        rf.observe_address(HEAP);
        b.iter(|| {
            let mut acc = 0u64;
            for (tag, v) in vals.iter().take(64).enumerate() {
                rf.on_alloc(tag);
                rf.try_write(tag, *v, false).expect("48 longs cover 64 mixed writes");
                acc ^= rf.read(tag);
            }
            for tag in 0..64 {
                rf.release(tag);
            }
            black_box(acc)
        })
    });
}

fn bench_aging(c: &mut Criterion) {
    c.bench_function("rob_interval_tick", |b| {
        let mut rf = ContentAwareRegFile::new(CarfParams::paper_default());
        for i in 0..8u64 {
            rf.observe_address(HEAP + (i << 17));
        }
        for tag in 0..48 {
            rf.on_alloc(tag);
            rf.try_write(tag, HEAP + (tag as u64) * 8, true).expect("short/long capacity");
        }
        b.iter(|| rf.rob_interval_tick())
    });
}

criterion_group!(benches, bench_classification, bench_write_read, bench_associative_policy, bench_aging);
criterion_main!(benches);
