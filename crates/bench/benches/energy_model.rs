//! Criterion benchmarks of the analytic energy model (it runs inside
//! experiment inner loops, so it should be effectively free).

use carf_energy::{RegFileGeometry, TechModel, PAPER_BASELINE, PAPER_UNLIMITED};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_model(c: &mut Criterion) {
    let model = TechModel::default_model();
    let geometries: Vec<RegFileGeometry> =
        (1..=32).map(|i| RegFileGeometry::new(i * 8, 64, 8, 6)).collect();
    c.bench_function("energy_area_time_32_geometries", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for g in &geometries {
                acc += model.read_energy(g) + model.write_energy(g);
                acc += model.area(g) + model.access_time(g);
            }
            black_box(acc)
        })
    });
    c.bench_function("paper_reference_ratio", |b| {
        b.iter(|| {
            black_box(model.read_energy(&PAPER_BASELINE) / model.read_energy(&PAPER_UNLIMITED))
        })
    });
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
