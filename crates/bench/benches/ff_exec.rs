//! Criterion microbenchmark for the functional fast-forward path: the
//! per-step decoding executor (`run_stepwise`) against the decoded-cache
//! dispatch loop (`run_decoded`, with decode done once outside the timed
//! region, as a sampling driver amortizes it) and against decode+run (the
//! cold-start cost a single fast-forward pays).
//!
//! Two kernels bound the spread: `pointer_chase` is load/branch-dominated
//! (decode overhead is a smaller share of step cost), `hash_table` is
//! ALU-dense (decode overhead dominates, the best case for the cache).

use carf_isa::{DecodedProgram, Machine};
use carf_workloads::{int_suite, SizeClass};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const BUDGET: u64 = 100_000;

fn bench_ff(c: &mut Criterion) {
    let workloads = int_suite();
    let find = |name: &str| {
        workloads.iter().find(|w| w.name == name).unwrap_or_else(|| panic!("{name} registered"))
    };

    let mut group = c.benchmark_group("ff_exec");
    group.sample_size(20);
    for name in ["pointer_chase", "hash_table"] {
        let w = find(name);
        let program = w.build(w.size(SizeClass::Quick));
        let decoded = DecodedProgram::decode(&program);

        group.bench_function(&format!("{name}_stepwise"), |b| {
            b.iter(|| {
                let mut m = Machine::load(&program);
                black_box(m.run_stepwise(&program, BUDGET).ok());
                black_box(m.retired())
            })
        });
        group.bench_function(&format!("{name}_decoded"), |b| {
            b.iter(|| {
                let mut m = Machine::load(&program);
                black_box(m.run_decoded(&decoded, BUDGET).ok());
                black_box(m.retired())
            })
        });
        group.bench_function(&format!("{name}_decode_plus_run"), |b| {
            b.iter(|| {
                let cold = DecodedProgram::decode(&program);
                let mut m = Machine::load(&program);
                black_box(m.run_decoded(&cold, BUDGET).ok());
                black_box(m.retired())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ff);
criterion_main!(benches);
