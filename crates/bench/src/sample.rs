//! SimPoint-style interval sampling: fast-forward functionally, simulate
//! a few intervals cycle-level, and estimate whole-run IPC from them.
//!
//! The run is split into fixed-size intervals of [`SampleSpec::interval`]
//! committed instructions. Every [`SampleSpec::period`]-th interval is
//! *measured*: the functional executor fast-forwards (via the decoded
//! cache, [`carf_isa::Machine::run_decoded`]) to [`SampleSpec::warmup`]
//! instructions before the interval, takes an architectural
//! [`carf_isa::Checkpoint`], and a cycle-level simulator seeded from it runs the
//! warm-up window (filling caches, the branch predictor, and the register
//! file's placement state) followed by the measured interval. Only the
//! measured window's statistics deltas are kept.
//!
//! The sampled IPC estimate is Σ committed / Σ cycles over the measured
//! intervals; the per-interval IPC spread gives a 95% confidence interval
//! (`1.96·sd/√K`). The detailed fraction is bounded by
//! `(warmup + interval) / (period · interval)` — 17.5% at the defaults —
//! so a sampled run does at most a fifth of the cycle-level work.

use carf_isa::{DecodedProgram, ExecError, ExecObserver, Machine, NullObserver, Program};
use carf_sim::{AnySimulator, SimConfig, SimStats, WarmEvent, WarmState};
use carf_workloads::Workload;

use crate::Budget;

/// Sampling parameters: interval geometry and warm-up depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Committed instructions per interval.
    pub interval: u64,
    /// Every `period`-th interval is measured cycle-level.
    pub period: u64,
    /// Detailed warm-up instructions before each measured interval.
    pub warmup: u64,
}

impl Default for SampleSpec {
    fn default() -> Self {
        // 5000-instruction intervals, every 8th measured, 2000-instruction
        // warm-up: at most (2000+5000)/40000 = 17.5% of instructions are
        // simulated cycle-level, with 5 (quick) to 25 (full) measured
        // intervals per workload at the standard budgets.
        Self { interval: 5_000, period: 8, warmup: 2_000 }
    }
}

impl SampleSpec {
    /// Parses an `--sample=I/P/W` value: interval, period, and warm-up as
    /// positive integers (e.g. `5000/8/2000`). An empty string yields the
    /// default spec.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed component.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec.is_empty() {
            return Ok(Self::default());
        }
        let parts: Vec<&str> = spec.split('/').collect();
        let [i, p, w] = parts.as_slice() else {
            return Err(format!(
                "`--sample` expects INTERVAL/PERIOD/WARMUP (e.g. 5000/8/2000), got `{spec}`"
            ));
        };
        let num = |name: &str, v: &str| {
            v.parse::<u64>()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or_else(|| format!("`--sample` {name} expects a positive integer, got `{v}`"))
        };
        let out = Self { interval: num("interval", i)?, period: num("period", p)?, warmup: num("warmup", w)? };
        if out.warmup >= out.interval * (out.period - 1).max(1) {
            return Err(format!(
                "`--sample` warm-up ({}) must be shorter than the gap between \
                 measured intervals ({})",
                out.warmup,
                out.interval * (out.period - 1).max(1)
            ));
        }
        Ok(out)
    }

    /// Upper bound on the fraction of instructions simulated cycle-level.
    pub fn detail_bound(&self) -> f64 {
        (self.warmup + self.interval) as f64 / (self.period * self.interval) as f64
    }

    /// A compact `I/P/W` tag for report headers.
    pub fn label(&self) -> String {
        format!("{}/{}/{}", self.interval, self.period, self.warmup)
    }
}

/// One measured interval's exact statistics window.
#[derive(Debug, Clone, Copy)]
pub struct IntervalSample {
    /// Interval index in the full run.
    pub index: u64,
    /// First instruction of the measured window (global retired count).
    pub start: u64,
    /// Instructions committed in the window (a short final interval
    /// commits fewer than the interval length).
    pub committed: u64,
    /// Cycles the window took.
    pub cycles: u64,
}

impl IntervalSample {
    /// The interval's IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// The outcome of one sampled run.
#[derive(Debug, Clone)]
pub struct SampledRun {
    /// Statistics aggregated over the measured windows only (warm-up
    /// excluded): `stats.ipc()` is the sampled IPC estimate, and every
    /// counter is the sum of exact before/after deltas, so downstream
    /// consumers (energy models, access-mix tables) work unchanged.
    /// Oracle demographics and occupancy histograms are not windowed.
    pub stats: SimStats,
    /// The measured intervals, in run order.
    pub intervals: Vec<IntervalSample>,
    /// Instructions the full run retires (functional count, budget-capped).
    pub total_insts: u64,
    /// Instructions simulated cycle-level (warm-up + measured).
    pub detailed_insts: u64,
}

impl SampledRun {
    /// The sampled IPC estimate: Σ committed / Σ cycles over measured
    /// intervals.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Unweighted mean of per-interval IPC.
    pub fn mean_interval_ipc(&self) -> f64 {
        crate::mean(self.intervals.iter().map(IntervalSample::ipc))
    }

    /// 95% confidence half-width on the mean interval IPC:
    /// `1.96 · sd / √K` (0.0 with fewer than two intervals).
    pub fn ci95(&self) -> f64 {
        let k = self.intervals.len();
        if k < 2 {
            return 0.0;
        }
        let mean = self.mean_interval_ipc();
        let var = self
            .intervals
            .iter()
            .map(|s| (s.ipc() - mean).powi(2))
            .sum::<f64>()
            / (k - 1) as f64;
        1.96 * var.sqrt() / (k as f64).sqrt()
    }

    /// Fraction of retired instructions that were simulated cycle-level.
    pub fn detail_fraction(&self) -> f64 {
        if self.total_insts == 0 {
            0.0
        } else {
            self.detailed_insts as f64 / self.total_insts as f64
        }
    }
}

/// Relative sampling error `|sampled - full| / full`, or `None` when the
/// comparison is meaningless — either input non-finite or a zero
/// reference. A checker must treat `None` as a loud failure, never as
/// "within tolerance": NaN compares false against every bound, so a naive
/// `err > bound` test silently passes exactly when the run is broken.
pub fn relative_error(sampled: f64, full: f64) -> Option<f64> {
    if !sampled.is_finite() || !full.is_finite() || full == 0.0 {
        return None;
    }
    let err = (sampled - full).abs() / full.abs();
    err.is_finite().then_some(err)
}

/// Formats a metric for a JSON record: four decimals when finite, `null`
/// otherwise. `{:.4}` on a NaN or infinity would print bare `NaN`/`inf`,
/// which is not JSON and corrupts every consumer of the merged file.
pub fn finite_json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

/// Advances the functional machine to `target` retired instructions (a
/// no-op when already there or halted), streaming the region's accesses
/// into `obs` for functional warming.
fn fast_forward(
    m: &mut Machine,
    decoded: &DecodedProgram,
    target: u64,
    obs: &mut impl ExecObserver,
) -> Result<(), String> {
    let needed = target.saturating_sub(m.retired());
    if needed == 0 || m.is_halted() {
        return Ok(());
    }
    match m.run_decoded_with(decoded, needed, obs) {
        Ok(_) => Ok(()),                          // program halted before target
        Err(ExecError::InstLimit(_)) => Ok(()),   // reached target
        Err(e) => Err(format!("fast-forward failed: {e}")),
    }
}

/// Streams the decoded executor's event channel into a persistent
/// [`WarmState`] — the functional-warming hookup.
///
/// Without warming, every measured interval starts from cold caches and
/// a cold branch predictor, and the detailed warm-up window (thousands
/// of instructions) cannot rebuild a working set that took hundreds of
/// thousands of instructions to form: sampled IPC comes out 20–60% low
/// on cache-resident kernels. The warm state is fed the *entire*
/// fast-forwarded stream (not just the stretch since the last window) so
/// large, sparsely revisited footprints accumulate the same way they do
/// in a straight-through run; each measured interval's simulator gets a
/// clone of it via [`AnySimulator::install_warm_state`].
struct WarmSink<'a>(&'a mut WarmState);

impl ExecObserver for WarmSink<'_> {
    fn retire(&mut self, pc: u64) {
        self.0.apply(WarmEvent::Fetch { pc });
    }

    fn load(&mut self, addr: u64) {
        self.0.apply(WarmEvent::Data { addr, is_write: false });
    }

    fn store(&mut self, addr: u64) {
        self.0.apply(WarmEvent::Data { addr, is_write: true });
    }

    fn cond_branch(&mut self, pc: u64, taken: bool) {
        self.0.apply(WarmEvent::CondBranch { pc, taken });
    }

    fn indirect_jump(&mut self, pc: u64, target: u64, is_return: bool) {
        self.0.apply(WarmEvent::IndirectJump { pc, target, is_return });
    }

    fn call(&mut self, return_addr: u64) {
        self.0.apply(WarmEvent::Call { return_addr });
    }
}

/// Adds the `after - before` window of every monotonic counter to `agg`.
fn add_window_delta(agg: &mut SimStats, before: &SimStats, after: &SimStats) {
    macro_rules! add {
        ($($field:ident).+) => {
            agg.$($field).+ += after.$($field).+ - before.$($field).+;
        };
        ($($($field:ident).+),+ $(,)?) => {
            $( add!($($field).+); )+
        };
    }
    add!(
        cycles, committed, loads, stores, branches, fp_ops, fetched, squashed,
        mispredicts, deadlock_recoveries, long_guard_stall_cycles,
        bypassed_operands, rf_operands, zero_operands, wb_long_retries,
        load_replays, mem_dep_violations,
        dispatch_stalls.rob, dispatch_stalls.pregs, dispatch_stalls.lsq,
        dispatch_stalls.iq, dispatch_stalls.checkpoints,
        operand_mix.only_simple, operand_mix.only_short, operand_mix.only_long,
        operand_mix.simple_short, operand_mix.simple_long, operand_mix.short_long,
        bpred.cond_predictions, bpred.cond_mispredicts,
        bpred.indirect_predictions, bpred.indirect_mispredicts,
        mem.il1.hits, mem.il1.misses, mem.il1.writebacks,
        mem.dl1.hits, mem.dl1.misses, mem.dl1.writebacks,
        mem.l2.hits, mem.l2.misses, mem.l2.writebacks,
        mem.memory_accesses,
        int_rf.reads.simple, int_rf.reads.short, int_rf.reads.long,
        int_rf.writes.simple, int_rf.writes.short, int_rf.writes.long,
        int_rf.total_reads, int_rf.total_writes, int_rf.long_write_stalls,
        int_rf.short_allocs, int_rf.short_alloc_rejects, int_rf.short_reclaims,
        int_rf.long_allocs, int_rf.long_releases,
        fp_rf.reads.simple, fp_rf.reads.short, fp_rf.reads.long,
        fp_rf.writes.simple, fp_rf.writes.short, fp_rf.writes.long,
        fp_rf.total_reads, fp_rf.total_writes, fp_rf.long_write_stalls,
        fp_rf.short_allocs, fp_rf.short_alloc_rejects, fp_rf.short_reclaims,
        fp_rf.long_allocs, fp_rf.long_releases,
        int_rf.capture_reuse_hits, fp_rf.capture_reuse_hits,
        dest_class_matches, dest_class_total, stl_forwards,
        rf_read_port_denials, int_fu_denials, fp_fu_denials, lsq_wait_events,
    );
    agg.lsq_peak = agg.lsq_peak.max(after.lsq_peak);
    agg.long_peak_live = agg.long_peak_live.max(after.long_peak_live);
}

/// Runs `program` under `config` with interval sampling and returns the
/// sampled estimate.
///
/// Each measured interval seeds a fresh simulator from a functional
/// checkpoint ([`AnySimulator::from_checkpoint`]), warms it for
/// [`SampleSpec::warmup`] instructions, then measures. Every simulated
/// window runs with whatever co-simulation setting `config` carries, so a
/// sampled run keeps the golden-model safety net.
///
/// # Errors
///
/// Returns a message on simulator errors (co-simulation mismatch,
/// watchdog, checkpoint refusal) — sampled numbers from a broken run are
/// worse than no numbers.
pub fn run_program_sampled(
    config: &SimConfig,
    program: &Program,
    spec: &SampleSpec,
    max_insts: u64,
) -> Result<SampledRun, String> {
    let decoded = DecodedProgram::decode(program);
    let mut m = Machine::load(program);
    let mut warm = WarmState::new(config);
    let mut agg = SimStats::default();
    let mut intervals = Vec::new();
    let mut detailed_insts = 0u64;
    let mut mean_live_sum = 0.0f64;
    let mut short_occ_sum = 0.0f64;

    let mut index = 0u64;
    loop {
        let start = index * spec.interval;
        if start >= max_insts || m.is_halted() {
            break;
        }
        if index.is_multiple_of(spec.period) {
            let end = (start + spec.interval).min(max_insts);
            let warm_start = start.saturating_sub(spec.warmup);
            fast_forward(&mut m, &decoded, warm_start, &mut WarmSink(&mut warm))?;
            if m.retired() < warm_start {
                break; // program ended before this interval
            }
            let ckpt = m.checkpoint(program);
            let mut sim = AnySimulator::from_checkpoint(config.clone(), program, &ckpt)
                .map_err(|e| format!("checkpoint restore failed: {e}"))?;
            sim.install_warm_state(&warm); // functionally warmed caches/bpred
            sim.run_exact(start).map_err(|e| format!("warm-up window failed: {e}"))?;
            let before = sim.stats().clone();
            sim.run_exact(end).map_err(|e| format!("measured window failed: {e}"))?;
            let after = sim.stats();
            let committed = after.committed - before.committed;
            if committed > 0 {
                add_window_delta(&mut agg, &before, after);
                mean_live_sum += after.long_mean_live;
                short_occ_sum += after.short_mean_occupancy;
                intervals.push(IntervalSample {
                    index,
                    start,
                    committed,
                    cycles: after.cycles - before.cycles,
                });
            }
            detailed_insts += sim.retired() - warm_start;
        }
        index += 1;
    }
    // Finish the functional run for the true instruction total (nothing
    // left to warm — no simulator runs after this).
    fast_forward(&mut m, &decoded, max_insts, &mut NullObserver)?;

    // Occupancy means are per-window simulator means; report their average
    // over the measured windows (each window weighs equally, like the IPC
    // confidence interval).
    let k = intervals.len().max(1) as f64;
    agg.long_mean_live = mean_live_sum / k;
    agg.short_mean_occupancy = short_occ_sum / k;

    Ok(SampledRun {
        stats: agg,
        intervals,
        total_insts: m.retired().min(max_insts),
        detailed_insts,
    })
}

/// [`run_program_sampled`] for a [`Workload`] at a [`Budget`]'s size,
/// using the budget's sample spec (or the default when unset).
///
/// # Panics
///
/// Panics on simulator errors, like [`crate::run_workload`].
pub fn run_workload_sampled(
    config: &SimConfig,
    workload: &Workload,
    budget: &Budget,
) -> SampledRun {
    let spec = budget.sample.unwrap_or_default();
    let program = workload.build(workload.size(budget.size));
    run_program_sampled(config, &program, &spec, budget.max_insts)
        .unwrap_or_else(|e| panic!("{} under {:?}: {e}", workload.name, config.regfile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use carf_workloads::SizeClass;

    #[test]
    fn spec_parsing() {
        assert_eq!(SampleSpec::parse("").unwrap(), SampleSpec::default());
        let s = SampleSpec::parse("1000/4/500").unwrap();
        assert_eq!((s.interval, s.period, s.warmup), (1000, 4, 500));
        assert!(SampleSpec::parse("1000/4").is_err());
        assert!(SampleSpec::parse("0/4/500").is_err());
        assert!(SampleSpec::parse("x/4/500").is_err());
        // Warm-up longer than the gap between measured intervals would
        // make windows overlap.
        assert!(SampleSpec::parse("1000/2/1000").is_err());
    }

    #[test]
    fn default_detail_bound_is_under_a_fifth() {
        assert!(SampleSpec::default().detail_bound() <= 0.20);
    }

    #[test]
    fn sampled_run_estimates_full_ipc() {
        let spec = SampleSpec { interval: 2_000, period: 4, warmup: 1_000 };
        let config = carf_sim::SimConfig::test_small();
        let w = &carf_workloads::int_suite()[0];
        let program = w.build(w.size(SizeClass::Test));
        let max = 40_000;

        let sampled = run_program_sampled(&config, &program, &spec, max).expect("sampled run");
        assert!(!sampled.intervals.is_empty());
        assert!(sampled.detailed_insts < sampled.total_insts);

        let mut full = AnySimulator::new(config, &program);
        let full_ipc = full.run(max).expect("full run").ipc;
        let err = (sampled.ipc() - full_ipc).abs() / full_ipc;
        // Tiny windows on a tiny budget: just require the estimate to be
        // in the right neighborhood; carf-sample --check enforces the
        // tight statistical bound at real budgets.
        assert!(
            err < 0.25,
            "sampled {:.3} vs full {full_ipc:.3} ({:.1}% off)",
            sampled.ipc(),
            err * 100.0
        );
    }

    /// One interval gives no spread to estimate from: the interval must be
    /// pinned to a zero-width CI, not NaN (sample variance divides by
    /// K-1).
    #[test]
    fn single_interval_ci_is_zero_not_nan() {
        let one = SampledRun {
            stats: SimStats::default(),
            intervals: vec![IntervalSample { index: 0, start: 0, committed: 100, cycles: 50 }],
            total_insts: 100,
            detailed_insts: 100,
        };
        assert_eq!(one.ci95(), 0.0);
        assert!(one.mean_interval_ipc().is_finite());
        let none = SampledRun { intervals: Vec::new(), ..one };
        assert_eq!(none.ci95(), 0.0);
        assert_eq!(none.mean_interval_ipc(), 0.0);
    }

    /// A zero-cycle window (possible when a measured window is degenerate)
    /// must report 0 IPC, and a run containing one must keep every derived
    /// figure finite.
    #[test]
    fn zero_cycle_windows_stay_finite() {
        let dead = IntervalSample { index: 0, start: 0, committed: 0, cycles: 0 };
        assert_eq!(dead.ipc(), 0.0);
        let run = SampledRun {
            stats: SimStats::default(),
            intervals: vec![
                dead,
                IntervalSample { index: 8, start: 40_000, committed: 5_000, cycles: 2_500 },
            ],
            total_insts: 0,
            detailed_insts: 0,
        };
        assert!(run.ipc().is_finite());
        assert!(run.mean_interval_ipc().is_finite());
        assert!(run.ci95().is_finite());
        assert_eq!(run.detail_fraction(), 0.0);
    }

    #[test]
    fn relative_error_rejects_degenerate_comparisons() {
        assert_eq!(relative_error(1.1, 1.0), Some(0.10000000000000009));
        assert_eq!(relative_error(2.0, 2.0), Some(0.0));
        assert_eq!(relative_error(f64::NAN, 1.0), None);
        assert_eq!(relative_error(1.0, f64::NAN), None);
        assert_eq!(relative_error(f64::INFINITY, 1.0), None);
        assert_eq!(relative_error(1.0, 0.0), None);
    }

    #[test]
    fn json_numbers_never_emit_bare_nan() {
        assert_eq!(finite_json_number(1.25), "1.2500");
        assert_eq!(finite_json_number(0.0), "0.0000");
        assert_eq!(finite_json_number(f64::NAN), "null");
        assert_eq!(finite_json_number(f64::INFINITY), "null");
        assert_eq!(finite_json_number(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn sampling_is_deterministic() {
        let spec = SampleSpec { interval: 1_000, period: 4, warmup: 500 };
        let config = carf_sim::SimConfig::test_small();
        let w = &carf_workloads::int_suite()[1];
        let program = w.build(w.size(SizeClass::Test));
        let a = run_program_sampled(&config, &program, &spec, 20_000).unwrap();
        let b = run_program_sampled(&config, &program, &spec, 20_000).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.intervals.len(), b.intervals.len());
        assert_eq!(a.total_insts, b.total_insts);
    }
}
