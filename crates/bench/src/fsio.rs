//! Crash- and concurrency-safe result-file I/O.
//!
//! Every file under `results/` is written by [`atomic_write`]: the bytes
//! land in a temporary file in the same directory and are renamed into
//! place, so a killed run can never leave a truncated JSON file behind for
//! a later merge to misparse. Read-merge-write cycles (the timing history,
//! the cache index) additionally take an advisory [`FileLock`] so parallel
//! experiment binaries cannot interleave lost updates.

use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Writes `bytes` to `path` atomically: the data goes to a uniquely named
/// temporary file in `path`'s directory, is flushed, and is renamed over
/// `path`. Readers observe either the old contents or the new, never a
/// prefix. Parent directories are created as needed.
///
/// # Errors
///
/// Any I/O error from creating, writing, or renaming the temporary file.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    std::fs::create_dir_all(&dir)?;
    // Unique within the process (counter) and across processes (pid), so
    // concurrent writers never clobber each other's temporary file.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nonce = SEQ.fetch_add(1, Ordering::Relaxed);
    let stem = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let tmp = dir.join(format!(".{stem}.tmp.{}.{nonce}", std::process::id()));
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// An advisory exclusive lock on `<path>.lock`, held for the guard's
/// lifetime. Used around read-merge-write cycles on shared result files so
/// concurrent experiment binaries serialize their updates instead of
/// losing them. The lock file itself is left in place (unlinking a locked
/// file would race fresh lockers on some platforms).
pub struct FileLock {
    file: File,
}

impl FileLock {
    /// Acquires the lock guarding `target` (blocking until available).
    /// The lock file is `<target>.lock` in the same directory.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or locking the lock file.
    pub fn acquire(target: &Path) -> std::io::Result<Self> {
        let lock_path = lock_path_for(target);
        if let Some(dir) = lock_path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let file = File::options().create(true).truncate(false).write(true).open(&lock_path)?;
        file.lock()?;
        Ok(Self { file })
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        let _ = self.file.unlock();
    }
}

/// The lock-file path guarding `target`: `<target>.lock`.
pub fn lock_path_for(target: &Path) -> PathBuf {
    let mut name = target.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".lock");
    target.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("carf-fsio-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn atomic_write_replaces_contents_and_leaves_no_temp_files() {
        let dir = temp_dir("atomic");
        let path = dir.join("out.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_creates_missing_directories() {
        let dir = temp_dir("mkdirs").join("a").join("b");
        let path = dir.join("deep.json");
        atomic_write(&path, b"x").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"x");
        let _ = std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap());
    }

    #[test]
    fn file_lock_serializes_read_modify_write_cycles() {
        let dir = temp_dir("lock");
        let target = dir.join("counter.json");
        atomic_write(&target, b"0").unwrap();
        let threads = 4;
        let rounds = 25;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..rounds {
                        let _guard = FileLock::acquire(&target).unwrap();
                        let n: u64 = std::fs::read_to_string(&target)
                            .unwrap()
                            .trim()
                            .parse()
                            .unwrap();
                        atomic_write(&target, (n + 1).to_string().as_bytes()).unwrap();
                    }
                });
            }
        });
        let total: u64 =
            std::fs::read_to_string(&target).unwrap().trim().parse().unwrap();
        assert_eq!(total, (threads * rounds) as u64, "no update may be lost");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_path_appends_suffix() {
        assert_eq!(
            lock_path_for(Path::new("/x/y/bench_timing.json")),
            Path::new("/x/y/bench_timing.json.lock")
        );
    }
}
