//! Experiment harness: reproduces every table and figure of the CARF
//! paper's evaluation.
//!
//! Each binary in `src/bin/` regenerates one artifact (`fig5_ipc_sweep`,
//! `table3_access_energy`, ...) and prints the measured series next to the
//! paper's reported numbers. All binaries accept `--full` for the
//! long-running configuration (the default is a quick run with the same
//! shape); results land on stdout in fixed-width tables.
//!
//! The building blocks here are deliberately small:
//!
//! * [`Budget`] — instruction budget / workload sizing from the CLI;
//! * [`run_workload`] — one (configuration × workload) timing simulation;
//! * [`SuiteResult`] / [`run_suite`] — per-suite aggregation (the paper
//!   reports INT and FP averages);
//! * [`carf_geometries`], [`rf_energy_carf`], and [`rf_energy_monolithic`]
//!   — the bridge from simulated
//!   access counts to the analytic energy model, exactly as the paper
//!   multiplies Table 3 per-access energies by measured access counts.

use carf_core::{CarfParams, PortReducedParams, ValueClass};
use carf_energy::{BankedOrganization, RegFileGeometry, TechModel, PAPER_BASELINE, PAPER_UNLIMITED};
use carf_sim::{RegFileKind, SimConfig, SimStats, AnySimulator};
use carf_workloads::{SizeClass, Suite, Workload};

pub mod cache;
pub mod cli;
pub mod corpus;
pub mod fingerprint;
pub mod fsio;
pub mod gate;
pub mod parallel;
pub mod sample;
pub mod serve;
pub mod statsio;

pub use cache::{
    run_custom_cached, run_matrix_cached, run_multi_cached, workload_identity, CacheStatus,
    MatrixOutcome, MultiOutcome, MultiPoint, MultiThreadRecord, ResultCache,
};
pub use parallel::{
    geomean_kips, peak_kips, results_dir, run_ordered, timing_record, write_merged_record,
    write_timing_json, PointTiming,
};

/// Per-run instruction budget, workload sizing, and harness parallelism.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Workload problem-size class.
    pub size: SizeClass,
    /// Committed-instruction cap per simulation.
    pub max_insts: u64,
    /// Oracle sampling period (cycles) when an experiment needs it.
    pub oracle_period: u64,
    /// Worker threads for the parallel experiment engine (1 = serial).
    pub jobs: usize,
    /// When set, [`run_workload`] estimates via interval sampling
    /// (checkpointed fast-forward) instead of simulating every instruction
    /// cycle-level.
    pub sample: Option<sample::SampleSpec>,
}

/// Parses a `CARF_JOBS`-style worker-count override: `Some(n)` for a
/// positive integer (surrounding whitespace allowed), `None` for anything
/// degenerate (empty, zero, negative, non-numeric, overflowing).
pub fn parse_jobs_override(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|n| *n >= 1)
}

/// The default worker count: the `CARF_JOBS` environment variable when set
/// (and a positive integer), else the machine's available parallelism.
/// A degenerate `CARF_JOBS` (zero, empty, non-numeric) is diagnosed once
/// per process and falls back to the available cores — experiments that
/// construct several [`Budget`]s must not repeat the warning per budget.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("CARF_JOBS") {
        if let Some(n) = parse_jobs_override(&v) {
            return n;
        }
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!(
                "warning: ignoring invalid CARF_JOBS={v:?} (want a positive integer); \
                 using available cores"
            );
        });
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Budget {
    /// Quick runs: a few hundred thousand instructions per point.
    pub fn quick() -> Self {
        Self {
            size: SizeClass::Quick,
            max_insts: 200_000,
            oracle_period: 16,
            jobs: default_jobs(),
            sample: None,
        }
    }

    /// Full runs: a million-plus instructions per point.
    pub fn full() -> Self {
        Self {
            size: SizeClass::Full,
            max_insts: 1_000_000,
            oracle_period: 8,
            jobs: default_jobs(),
            sample: None,
        }
    }

    /// Parses the process arguments. `--full` selects [`Budget::full`],
    /// `--quick` (the default) [`Budget::quick`]; `--jobs N` (or
    /// `--jobs=N`) overrides the worker count, which otherwise comes from
    /// [`default_jobs`]. Any other argument prints a usage message and
    /// exits with status 2.
    ///
    /// Binaries should prefer [`cli::budget_for`], which names the binary
    /// in the usage message; richer grammars build a [`cli::CliSpec`].
    pub fn from_args() -> Self {
        Self::parse_args(std::env::args().skip(1)).unwrap_or_else(|bad| {
            eprintln!("error: {bad}");
            eprintln!("usage: <experiment> [--quick | --full] [--jobs N] [--sample[=I/P/W]]");
            eprintln!("  --quick    quick budget: ~200k instructions per point (default)");
            eprintln!("  --full     full budget: ~1M instructions per point");
            eprintln!("  --jobs N   worker threads (default: CARF_JOBS or available cores)");
            eprintln!("  --sample   interval sampling (default spec 5000/8/2000:");
            eprintln!("             interval/period/warmup; override with --sample=I/P/W)");
            std::process::exit(2);
        })
    }

    /// [`Budget::from_args`] on an explicit argument list; `Err` carries
    /// a message describing the first bad argument.
    pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut full = false;
        let mut jobs: Option<usize> = None;
        let mut sample: Option<sample::SampleSpec> = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => full = true,
                "--quick" => full = false,
                "--sample" => sample = Some(sample::SampleSpec::default()),
                "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => jobs = Some(n),
                    _ => return Err("`--jobs` expects a positive integer".into()),
                },
                s => {
                    if let Some(v) = s.strip_prefix("--jobs=") {
                        match v.parse::<usize>() {
                            Ok(n) if n >= 1 => jobs = Some(n),
                            _ => return Err(format!("`{s}` expects a positive integer")),
                        }
                    } else if let Some(v) = s.strip_prefix("--sample=") {
                        sample = Some(sample::SampleSpec::parse(v)?);
                    } else {
                        return Err(format!("unrecognized argument `{arg}`"));
                    }
                }
            }
        }
        let mut budget = if full { Self::full() } else { Self::quick() };
        if let Some(n) = jobs {
            budget.jobs = n;
        }
        budget.sample = sample;
        Ok(budget)
    }

    /// A short human-readable tag for report headers.
    pub fn label(&self) -> &'static str {
        match self.size {
            SizeClass::Full => "full",
            SizeClass::Quick => "quick",
            SizeClass::Test => "test",
        }
    }
}

/// Runs one workload under one machine configuration and returns the
/// statistics.
///
/// With [`Budget::sample`] set, the run is estimated via checkpointed
/// interval sampling (see [`sample`]): the returned statistics are the
/// exact deltas of the measured windows, so IPC and access-mix consumers
/// work unchanged at a fraction of the cycle-level work.
///
/// # Panics
///
/// Panics on simulator errors (co-simulation mismatch, watchdog) — an
/// experiment must not silently produce numbers from a broken run.
pub fn run_workload(config: &SimConfig, workload: &Workload, budget: &Budget) -> SimStats {
    if budget.sample.is_some() {
        return sample::run_workload_sampled(config, workload, budget).stats;
    }
    let program = workload.build(workload.size(budget.size));
    let mut sim = AnySimulator::new(config.clone(), &program);
    sim.run(budget.max_insts)
        .unwrap_or_else(|e| panic!("{} under {:?}: {e}", workload.name, config.regfile));
    sim.stats().clone()
}

/// Aggregated results for one suite under one configuration.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Which suite.
    pub suite: Suite,
    /// Per-workload names and stats, in registry order.
    pub runs: Vec<(String, SimStats)>,
}

impl SuiteResult {
    /// Arithmetic mean of per-workload IPC.
    pub fn mean_ipc(&self) -> f64 {
        mean(self.runs.iter().map(|(_, s)| s.ipc()))
    }

    /// Mean of per-workload relative IPC against a reference run of the
    /// same suite (the paper's "relative IPC": 100% = unlimited machine).
    pub fn mean_relative_ipc(&self, reference: &SuiteResult) -> f64 {
        assert_eq!(self.runs.len(), reference.runs.len(), "suites must match");
        mean(
            self.runs
                .iter()
                .zip(reference.runs.iter())
                .map(|((_, a), (_, b))| a.ipc() / b.ipc()),
        )
    }

    /// Suite-wide bypass fraction (total operands, paper Table 2).
    pub fn bypass_fraction(&self) -> f64 {
        let byp: u64 = self.runs.iter().map(|(_, s)| s.bypassed_operands).sum();
        let rf: u64 = self.runs.iter().map(|(_, s)| s.rf_operands).sum();
        if byp + rf == 0 {
            0.0
        } else {
            byp as f64 / (byp + rf) as f64
        }
    }

    /// Summed register-file access counts by class over the suite.
    pub fn access_totals(&self) -> (ClassTotals, ClassTotals) {
        let mut reads = ClassTotals::default();
        let mut writes = ClassTotals::default();
        for (_, s) in &self.runs {
            reads.simple += s.int_rf.reads.simple;
            reads.short += s.int_rf.reads.short;
            reads.long += s.int_rf.reads.long;
            reads.total += s.int_rf.total_reads;
            writes.simple += s.int_rf.writes.simple;
            writes.short += s.int_rf.writes.short;
            writes.long += s.int_rf.writes.long;
            writes.total += s.int_rf.total_writes;
        }
        (reads, writes)
    }
}

/// Summed access counts for one direction.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassTotals {
    /// Simple-file-only accesses.
    pub simple: u64,
    /// Simple+Short accesses.
    pub short: u64,
    /// Simple+Long accesses.
    pub long: u64,
    /// All accesses (meaningful for the baseline too).
    pub total: u64,
}

impl ClassTotals {
    /// Fraction of classified accesses in `class`.
    pub fn fraction(&self, class: ValueClass) -> f64 {
        let sum = self.simple + self.short + self.long;
        if sum == 0 {
            return 0.0;
        }
        let n = match class {
            ValueClass::Simple => self.simple,
            ValueClass::Short => self.short,
            ValueClass::Long => self.long,
        };
        n as f64 / sum as f64
    }
}

fn suite_workloads(suite: Suite) -> Vec<Workload> {
    match suite {
        Suite::Int => carf_workloads::int_suite(),
        Suite::Fp => carf_workloads::fp_suite(),
    }
}

/// [`run_workload`] plus wall-clock accounting into the timing collector.
fn run_workload_timed(
    config: &SimConfig,
    suite: Suite,
    workload: &Workload,
    budget: &Budget,
) -> (String, SimStats) {
    let start = std::time::Instant::now();
    let stats = run_workload(config, workload, budget);
    parallel::record_point(
        format!("{suite:?}/{}", workload.name),
        start.elapsed().as_secs_f64(),
        stats.committed,
    );
    (workload.name.to_string(), stats)
}

/// Runs every workload of `suite` under `config`, dispatching the points
/// over [`Budget::jobs`] workers. Results are in registry order and
/// identical to a serial run (see [`parallel::run_ordered`]).
pub fn run_suite(config: &SimConfig, suite: Suite, budget: &Budget) -> SuiteResult {
    parallel::note_run_start();
    let workloads = suite_workloads(suite);
    let runs = parallel::run_ordered(&workloads, budget.jobs, |w| {
        run_workload_timed(config, suite, w, budget)
    });
    SuiteResult { suite, runs }
}

/// [`run_suite`] over an explicit workload list (e.g. corpus programs)
/// instead of a registry suite, with the same worker-pool dispatch.
pub fn run_workloads(
    config: &SimConfig,
    suite: Suite,
    workloads: &[Workload],
    budget: &Budget,
) -> SuiteResult {
    parallel::note_run_start();
    let runs = parallel::run_ordered(workloads, budget.jobs, |w| {
        run_workload_timed(config, suite, w, budget)
    });
    SuiteResult { suite, runs }
}

/// Runs several `(configuration, suite)` experiment points as **one** flat
/// work list over the worker pool, so a long suite under one configuration
/// can overlap with the next configuration's points. Returns one
/// [`SuiteResult`] per input point, in input order.
pub fn run_matrix(points: &[(SimConfig, Suite)], budget: &Budget) -> Vec<SuiteResult> {
    parallel::note_run_start();
    let mut flat: Vec<(usize, Suite, Workload)> = Vec::new();
    for (pi, (_, suite)) in points.iter().enumerate() {
        for w in suite_workloads(*suite) {
            flat.push((pi, *suite, w));
        }
    }
    let results = parallel::run_ordered(&flat, budget.jobs, |(pi, suite, w)| {
        run_workload_timed(&points[*pi].0, *suite, w, budget)
    });
    let mut out: Vec<SuiteResult> =
        points.iter().map(|(_, suite)| SuiteResult { suite: *suite, runs: Vec::new() }).collect();
    for ((pi, _, _), run) in flat.iter().zip(results) {
        out[*pi].runs.push(run);
    }
    out
}

/// The three content-aware sub-file geometries for `params`, with the
/// paper's port provisioning: every sub-file keeps the baseline's 8R/6W,
/// and the Short file carries one extra read port per write port for the
/// WR1 compares.
pub fn carf_geometries(params: &CarfParams) -> [RegFileGeometry; 3] {
    let (r, w) = (PAPER_BASELINE.read_ports, PAPER_BASELINE.write_ports);
    [
        RegFileGeometry::new(params.simple_entries, params.simple_width(), r, w),
        RegFileGeometry::new(params.short_entries, params.short_width(), r + w, w),
        RegFileGeometry::new(params.long_entries, params.long_width(), r, w),
    ]
}

/// Total register-file energy of a content-aware run: measured access
/// counts × per-access energies of each sub-file. Every access touches the
/// Simple file; short/long accesses additionally touch their sub-file —
/// mirroring the paper's RF1/RF2 and WR1/WR2 structure.
pub fn rf_energy_carf(
    model: &TechModel,
    params: &CarfParams,
    reads: &ClassTotals,
    writes: &ClassTotals,
) -> f64 {
    let [simple, short, long] = carf_geometries(params);
    let classified_reads = reads.simple + reads.short + reads.long;
    let classified_writes = writes.simple + writes.short + writes.long;
    classified_reads as f64 * model.read_energy(&simple)
        + reads.short as f64 * model.read_energy(&short)
        + reads.long as f64 * model.read_energy(&long)
        + classified_writes as f64 * model.write_energy(&simple)
        + writes.short as f64 * model.read_energy(&short) // WR1 probe reads the Short file
        + writes.long as f64 * model.write_energy(&long)
}

/// Total register-file energy of a monolithic run (baseline or unlimited).
pub fn rf_energy_monolithic(
    model: &TechModel,
    geometry: &RegFileGeometry,
    reads: &ClassTotals,
    writes: &ClassTotals,
) -> f64 {
    reads.total as f64 * model.read_energy(geometry)
        + writes.total as f64 * model.write_energy(geometry)
}

/// The compressed organization's three arrays: the narrow bank every tag
/// lives in (payload + class tag), the high-bits dictionary probed on
/// every write, and the full-width overflow bank holding incompressible
/// values whole.
pub fn compressed_geometries(params: &CarfParams) -> [RegFileGeometry; 3] {
    let (r, w) = (PAPER_BASELINE.read_ports, PAPER_BASELINE.write_ports);
    [
        RegFileGeometry::new(params.simple_entries, params.simple_width(), r, w),
        RegFileGeometry::new(params.short_entries, params.short_width(), r + w, w),
        RegFileGeometry::new(params.long_entries, 64, r, w),
    ]
}

/// Total register-file energy of a compressed run. Every access touches
/// the narrow bank; dictionary-compressed reads also read the dictionary,
/// overflowed values read/write the overflow bank, and — unlike CARF,
/// where only Short writes probe — *every* classified write probes the
/// dictionary (static compression trains on all results).
pub fn rf_energy_compressed(
    model: &TechModel,
    params: &CarfParams,
    reads: &ClassTotals,
    writes: &ClassTotals,
) -> f64 {
    let [narrow, dict, overflow] = compressed_geometries(params);
    let classified_reads = reads.simple + reads.short + reads.long;
    let classified_writes = writes.simple + writes.short + writes.long;
    classified_reads as f64 * model.read_energy(&narrow)
        + reads.short as f64 * model.read_energy(&dict)
        + reads.long as f64 * model.read_energy(&overflow)
        + classified_writes as f64 * model.write_energy(&narrow)
        + classified_writes as f64 * model.read_energy(&dict)
        + writes.long as f64 * model.write_energy(&overflow)
}

/// The port-reduced organization: a full-width main array with the
/// reduced read-port budget, plus (when configured) the small capture
/// buffer, which keeps the baseline's port provisioning so any issue slot
/// can source from it.
pub fn port_reduced_geometries(
    params: &PortReducedParams,
) -> (RegFileGeometry, Option<RegFileGeometry>) {
    let w = PAPER_BASELINE.write_ports;
    let main = RegFileGeometry::new(PAPER_BASELINE.entries, 64, params.read_ports, w);
    let capture = (params.capture_entries > 0).then(|| {
        RegFileGeometry::new(params.capture_entries, 64, PAPER_BASELINE.read_ports, w)
    });
    (main, capture)
}

/// Total register-file energy of a port-reduced run: capture-buffer hits
/// are served by the small buffer instead of the main array, every other
/// read pays the main array, and every writeback writes both (the buffer
/// captures the last writebacks).
pub fn rf_energy_port_reduced(
    model: &TechModel,
    params: &PortReducedParams,
    reads: &ClassTotals,
    writes: &ClassTotals,
    capture_hits: u64,
) -> f64 {
    let (main, capture) = port_reduced_geometries(params);
    let hits = capture_hits.min(reads.total);
    let mut energy = (reads.total - hits) as f64 * model.read_energy(&main)
        + writes.total as f64 * model.write_energy(&main);
    if let Some(cap) = capture {
        energy += hits as f64 * model.read_energy(&cap)
            + writes.total as f64 * model.write_energy(&cap);
    }
    energy
}

/// The banked-area/access-time view of the backend named by `kind`, for
/// the cross-backend comparison table (paper Figures 8/9 style).
pub fn organization_for(kind: &RegFileKind) -> BankedOrganization {
    match kind {
        RegFileKind::Baseline => BankedOrganization::monolithic("baseline", PAPER_BASELINE),
        RegFileKind::ContentAware(p, _) => {
            let [simple, short, long] = carf_geometries(p);
            BankedOrganization::new(
                "carf",
                vec![
                    ("simple".into(), simple),
                    ("short".into(), short),
                    ("long".into(), long),
                ],
            )
        }
        RegFileKind::Compressed(p) => {
            let [narrow, dict, overflow] = compressed_geometries(p);
            BankedOrganization::new(
                "compressed",
                vec![
                    ("narrow".into(), narrow),
                    ("dict".into(), dict),
                    ("overflow".into(), overflow),
                ],
            )
        }
        RegFileKind::PortReduced(p) => {
            let (main, cap) = port_reduced_geometries(p);
            let mut banks = vec![("main".to_string(), main)];
            if let Some(c) = cap {
                banks.push(("capture".into(), c));
            }
            BankedOrganization::new("ports", banks)
        }
    }
}

/// Total register-file energy of a run under `kind`, dispatching to the
/// backend's accounting.
pub fn rf_energy_for(
    model: &TechModel,
    kind: &RegFileKind,
    reads: &ClassTotals,
    writes: &ClassTotals,
    capture_hits: u64,
) -> f64 {
    match kind {
        RegFileKind::Baseline => rf_energy_monolithic(model, &PAPER_BASELINE, reads, writes),
        RegFileKind::ContentAware(p, _) => rf_energy_carf(model, p, reads, writes),
        RegFileKind::Compressed(p) => rf_energy_compressed(model, p, reads, writes),
        RegFileKind::PortReduced(p) => {
            rf_energy_port_reduced(model, p, reads, writes, capture_hits)
        }
    }
}

/// The unlimited comparator geometry (re-exported for binaries).
pub fn unlimited_geometry() -> RegFileGeometry {
    PAPER_UNLIMITED
}

/// The baseline geometry (re-exported for binaries).
pub fn baseline_geometry() -> RegFileGeometry {
    PAPER_BASELINE
}

/// Arithmetic mean of an iterator (0.0 when empty).
pub fn mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Prints a fixed-width table: a header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    // Normalize negative zero and float dust so tables print "0.0%".
    let v = if v.abs() < 5e-12 { 0.0 } else { v };
    format!("{:.1}%", v * 100.0)
}

/// The `d+n` sweep axis used throughout the paper's figures.
pub const DN_SWEEP: [u32; 7] = [8, 12, 16, 20, 24, 28, 32];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_handles_empty_and_values() {
        assert_eq!(mean([] as [f64; 0]), 0.0);
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn class_totals_fractions() {
        let t = ClassTotals { simple: 50, short: 30, long: 20, total: 100 };
        assert!((t.fraction(ValueClass::Simple) - 0.5).abs() < 1e-12);
        assert!((t.fraction(ValueClass::Long) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn geometries_match_paper_at_dn20() {
        let g = carf_geometries(&CarfParams::paper_default());
        assert_eq!((g[0].entries, g[0].bits), (112, 22));
        assert_eq!((g[1].entries, g[1].bits, g[1].read_ports), (8, 44, 14));
        assert_eq!((g[2].entries, g[2].bits), (48, 50));
    }

    #[test]
    fn carf_energy_is_cheaper_than_baseline_per_access_mix() {
        // Same access volume through CARF (all simple) must cost less than
        // through the monolithic baseline.
        let model = TechModel::default_model();
        let params = CarfParams::paper_default();
        let reads = ClassTotals { simple: 1000, short: 0, long: 0, total: 1000 };
        let writes = ClassTotals { simple: 600, short: 0, long: 0, total: 600 };
        let carf = rf_energy_carf(&model, &params, &reads, &writes);
        let base = rf_energy_monolithic(&model, &baseline_geometry(), &reads, &writes);
        assert!(carf < base * 0.6, "carf={carf:.0} base={base:.0}");
    }

    #[test]
    fn backend_zoo_areas_order_sensibly() {
        let model = TechModel::default_model();
        let base = organization_for(&RegFileKind::Baseline);
        let comp = organization_for(&RegFileKind::Compressed(CarfParams::paper_default()));
        let ports = organization_for(&RegFileKind::PortReduced(PortReducedParams::default()));
        // Narrow banks shrink the compressed file below the 64-bit
        // monolith; halving read ports shrinks every cell of the
        // port-reduced file.
        assert!(comp.area(&model) < base.area(&model));
        assert!(ports.area(&model) < base.area(&model));
        // The capture buffer is present and small.
        assert_eq!(ports.banks.len(), 2);
        assert!(ports.banks[1].1.entries == PortReducedParams::default().capture_entries);
        // Zero-depth capture folds away.
        let bare = organization_for(&RegFileKind::PortReduced(PortReducedParams {
            read_ports: 8,
            capture_entries: 0,
        }));
        assert_eq!(bare.banks.len(), 1);
    }

    #[test]
    fn port_reduced_energy_rewards_capture_hits() {
        let model = TechModel::default_model();
        let params = PortReducedParams::default();
        let reads = ClassTotals { total: 1000, ..ClassTotals::default() };
        let writes = ClassTotals { total: 600, ..ClassTotals::default() };
        let cold = rf_energy_port_reduced(&model, &params, &reads, &writes, 0);
        let warm = rf_energy_port_reduced(&model, &params, &reads, &writes, 400);
        assert!(warm < cold, "buffer-served reads must be cheaper than array reads");
        // Hits are clamped to the read volume: more "hits" than reads must
        // not go negative or beat the all-hits case.
        let capped = rf_energy_port_reduced(&model, &params, &reads, &writes, 5000);
        let all = rf_energy_port_reduced(&model, &params, &reads, &writes, 1000);
        assert_eq!(capped, all);
    }

    #[test]
    fn compressed_energy_is_cheaper_than_baseline_on_a_simple_mix() {
        let model = TechModel::default_model();
        let params = CarfParams::paper_default();
        let reads = ClassTotals { simple: 1000, short: 0, long: 0, total: 1000 };
        let writes = ClassTotals { simple: 600, short: 0, long: 0, total: 600 };
        let comp = rf_energy_compressed(&model, &params, &reads, &writes);
        let base = rf_energy_monolithic(&model, &baseline_geometry(), &reads, &writes);
        assert!(comp < base, "comp={comp:.0} base={base:.0}");
        // An all-overflow mix must cost more than the all-narrow mix: the
        // exception path is the expensive one.
        let long_reads = ClassTotals { simple: 0, short: 0, long: 1000, total: 1000 };
        let long_writes = ClassTotals { simple: 0, short: 0, long: 600, total: 600 };
        let overflowed = rf_energy_compressed(&model, &params, &long_reads, &long_writes);
        assert!(overflowed > comp);
    }

    #[test]
    fn budget_labels() {
        assert_eq!(Budget::quick().label(), "quick");
        assert_eq!(Budget::full().label(), "full");
    }

    #[test]
    fn jobs_override_accepts_only_positive_integers() {
        assert_eq!(parse_jobs_override("4"), Some(4));
        assert_eq!(parse_jobs_override("  12 \n"), Some(12));
        assert_eq!(parse_jobs_override("0"), None);
        assert_eq!(parse_jobs_override(""), None);
        assert_eq!(parse_jobs_override("-3"), None);
        assert_eq!(parse_jobs_override("eight"), None);
        assert_eq!(parse_jobs_override("99999999999999999999999"), None);
    }

    #[test]
    fn budget_arg_parsing() {
        let ok = |args: &[&str]| {
            Budget::parse_args(args.iter().map(|s| s.to_string())).expect("valid args")
        };
        assert_eq!(ok(&["--quick"]).label(), "quick");
        assert_eq!(ok(&["--full"]).label(), "full");
        assert_eq!(ok(&["--jobs", "3"]).jobs, 3);
        assert_eq!(ok(&["--jobs=5", "--full"]).jobs, 5);
        assert!(Budget::parse_args(["--jobs".to_string(), "0".to_string()]).is_err());
        assert!(Budget::parse_args(["--bogus".to_string()]).is_err());
    }
}
