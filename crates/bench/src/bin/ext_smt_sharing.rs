//! §6 SMT direction: can one Long file feed two threads?
//!
//! The paper observes that the 48-entry Long file is sized for *peaks*
//! while the mean demand is ≈12.7 live entries, and suggests sharing it
//! between SMT threads. We quantify that: each workload's sampled
//! Long-occupancy histogram is an empirical demand distribution; under an
//! independence assumption, a two-thread workload pair's combined demand
//! is the convolution of the two distributions. The overflow probability
//! `P(combined > K)` estimates how often a shared K-entry file would have
//! to stall one thread.

use carf_bench::{pct, print_table, run_workload};
use carf_core::CarfParams;
use carf_sim::SimConfig;
use carf_workloads::{all_workloads, Workload};

/// Normalizes a histogram into a probability distribution.
fn to_dist(hist: &[u64]) -> Vec<f64> {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return vec![1.0];
    }
    hist.iter().map(|h| *h as f64 / total as f64).collect()
}

/// Distribution of the sum of two independent demands.
fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, pa) in a.iter().enumerate() {
        for (j, pb) in b.iter().enumerate() {
            out[i + j] += pa * pb;
        }
    }
    out
}

/// `P(demand > k)`.
fn overflow(dist: &[f64], k: usize) -> f64 {
    dist.iter().skip(k + 1).sum()
}

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("§6 SMT Long-file sharing estimate ({} run)", budget.label());
    let cfg = SimConfig::paper_carf(CarfParams::paper_default());

    // A representative spread: pointer-heavy, hash-heavy, FP, mixed.
    let pick = ["pointer_chase", "hash_table", "sparse_update", "matvec", "tridiag"];
    let workloads: Vec<Workload> =
        all_workloads().into_iter().filter(|w| pick.contains(&w.name)).collect();
    let dists: Vec<(String, Vec<f64>, f64)> = workloads
        .iter()
        .map(|w| {
            let stats = run_workload(&cfg, w, &budget);
            let dist = to_dist(&stats.long_occupancy_hist);
            (w.name.to_string(), dist, stats.long_mean_live)
        })
        .collect();

    let mut rows = Vec::new();
    for (name, dist, mean) in &dists {
        rows.push(vec![
            name.clone(),
            format!("{mean:.1}"),
            pct(overflow(dist, 48)),
        ]);
    }
    print_table(
        "Single-thread Long demand (48 entries provisioned)",
        &["workload", "mean live", "P(demand > 48)"],
        &rows,
    );

    let mut rows = Vec::new();
    for i in 0..dists.len() {
        for j in (i + 1)..dists.len() {
            let combined = convolve(&dists[i].1, &dists[j].1);
            rows.push(vec![
                format!("{} + {}", dists[i].0, dists[j].0),
                pct(overflow(&combined, 48)),
                pct(overflow(&combined, 56)),
                pct(overflow(&combined, 64)),
            ]);
        }
    }
    print_table(
        "Two-thread shared-file overflow probability",
        &["pair", "K=48", "K=56", "K=64"],
        &rows,
    );
    println!("\nPaper §6: mean demand (~12.7) is far below the 48 provisioned for");
    println!("peaks, so a single Long file \"can feed more than one thread,");
    println!("especially if only one of them has high peak register usage\".");
}
