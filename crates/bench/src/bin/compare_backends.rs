//! `compare_backends`: the register-file backend zoo in one table.
//!
//! Runs the selected workload suites across all four backends (monolithic
//! baseline, content-aware, compressed, port-reduced) and emits a single
//! comparison table — per-suite IPC, register-file energy and area
//! relative to the baseline, and the stall attribution that explains the
//! differences (the port-reduced machine's conflicts surface as
//! issue-structural cycles and read-port denials). A merged record lands
//! in `results/backend_compare.json`.

use carf_bench::cache::cached_derived_f64;
use carf_bench::cli::{parse_suites, CliSpec, MachineSet, OptSpec};
use carf_bench::{
    organization_for, parallel, pct, print_table, rf_energy_for, run_matrix_cached, Budget,
    ClassTotals, SuiteResult,
};
use carf_energy::TechModel;
use carf_sim::{AnySimulator, SimConfig, TraceRecorder};
use carf_workloads::{all_workloads, Suite};

const SPEC: CliSpec = CliSpec {
    bin: "compare_backends",
    options: &[OptSpec {
        name: "--suite",
        value: Some("S"),
        help: "int, fp, or all (default all)",
    }],
    operands: None,
};

/// The kernel traced for stall attribution: its wide dependence fronts
/// contend for read ports, so the port-reduced machine's conflicts show
/// up in the issue-structural bucket.
const STALL_WORKLOAD: &str = "tridiag";

/// Per-machine aggregation over the selected suites.
struct MachineRow {
    label: &'static str,
    config: SimConfig,
    suites: Vec<(Suite, SuiteResult)>,
}

impl MachineRow {
    fn ipc(&self, suite: Suite) -> Option<f64> {
        self.suites.iter().find(|(s, _)| *s == suite).map(|(_, r)| r.mean_ipc())
    }

    fn totals(&self) -> (ClassTotals, ClassTotals, u64, u64) {
        let mut reads = ClassTotals::default();
        let mut writes = ClassTotals::default();
        let mut capture_hits = 0u64;
        let mut port_denials = 0u64;
        for (_, result) in &self.suites {
            let (r, w) = result.access_totals();
            reads.simple += r.simple;
            reads.short += r.short;
            reads.long += r.long;
            reads.total += r.total;
            writes.simple += w.simple;
            writes.short += w.short;
            writes.long += w.long;
            writes.total += w.total;
            for (_, s) in &result.runs {
                capture_hits += s.int_rf.capture_reuse_hits;
                port_denials += s.rf_read_port_denials;
            }
        }
        (reads, writes, capture_hits, port_denials)
    }
}

/// Issue-structural stall share of one traced run (the bucket where
/// read-port conflicts land), as a fraction of all cycles.
fn traced_issue_structural_share(config: &SimConfig, budget: &Budget) -> f64 {
    let workload = all_workloads()
        .into_iter()
        .find(|w| w.name == STALL_WORKLOAD)
        .expect("stall workload is registered");
    let program = workload.build(workload.size(budget.size));
    let mut sim =
        AnySimulator::with_tracer(config.clone(), &program, TraceRecorder::with_window(0, 0));
    sim.run(budget.max_insts)
        .unwrap_or_else(|e| panic!("{STALL_WORKLOAD} under {:?}: {e}", config.regfile));
    let recorder = sim.into_tracer();
    let report = recorder.stall_report();
    assert_eq!(report.bucket_sum(), recorder.cycles(), "stall attribution invariant");
    let issue = report
        .buckets()
        .iter()
        .find(|(name, _)| *name == "issue_structural")
        .map_or(0, |(_, n)| *n);
    if report.total_cycles == 0 {
        0.0
    } else {
        issue as f64 / report.total_cycles as f64
    }
}

fn main() {
    let parsed = SPEC.parse();
    let budget = parsed.budget;
    let suites = match parsed.option("--suite") {
        Some(v) => parse_suites(v).unwrap_or_else(|bad| SPEC.fail(&bad)),
        None => vec![Suite::Int, Suite::Fp],
    };
    let machines = MachineSet::All.configs();

    println!(
        "compare_backends: {} machine(s) x {} suite(s), budget={}, {} worker(s)",
        machines.len(),
        suites.len(),
        budget.label(),
        budget.jobs
    );

    // One flat (configuration x suite) matrix over the worker pool.
    let points: Vec<(SimConfig, Suite)> = machines
        .iter()
        .flat_map(|(_, c)| suites.iter().map(|s| (c.clone(), *s)))
        .collect();
    let results = run_matrix_cached(&points, &budget).results;

    let mut result_iter = results.into_iter();
    let rows: Vec<MachineRow> = machines
        .iter()
        .map(|(label, config)| MachineRow {
            label,
            config: config.clone(),
            suites: suites.iter().map(|s| (*s, result_iter.next().expect("matrix row"))).collect(),
        })
        .collect();

    let model = TechModel::default_model();
    let base = rows.first().expect("baseline row");
    let (base_reads, base_writes, base_hits, _) = base.totals();
    let base_energy =
        rf_energy_for(&model, &base.config.regfile, &base_reads, &base_writes, base_hits);
    let base_area = organization_for(&base.config.regfile).area(&model);
    let base_int_ipc = base.ipc(Suite::Int);

    let mut header = vec!["machine"];
    if suites.contains(&Suite::Int) {
        header.push("ipc(int)");
    }
    if suites.contains(&Suite::Fp) {
        header.push("ipc(fp)");
    }
    header.extend(["rel-ipc", "energy", "area", "issue-struct", "port-denials", "capture-hits"]);

    let mut table: Vec<Vec<String>> = Vec::new();
    let mut records: Vec<String> = Vec::new();
    for row in &rows {
        let (reads, writes, capture_hits, port_denials) = row.totals();
        let energy = rf_energy_for(&model, &row.config.regfile, &reads, &writes, capture_hits);
        let area = organization_for(&row.config.regfile).area(&model);
        // The traced stall-attribution run is a simulation too: cache it
        // as a derived scalar so a warm re-run does zero simulation.
        let (issue_share, _) = cached_derived_f64(
            "issue_structural_share/tridiag",
            &row.config,
            &budget,
            || traced_issue_structural_share(&row.config, &budget),
        );
        let rel_ipc = match (row.ipc(Suite::Int), base_int_ipc) {
            (Some(ipc), Some(base_ipc)) if base_ipc > 0.0 => ipc / base_ipc,
            _ => {
                // INT not selected: fall back to the FP suite ratio.
                let (a, b) = (row.ipc(Suite::Fp), base.ipc(Suite::Fp));
                match (a, b) {
                    (Some(x), Some(y)) if y > 0.0 => x / y,
                    _ => 1.0,
                }
            }
        };

        let mut cells = vec![row.label.to_string()];
        if suites.contains(&Suite::Int) {
            cells.push(format!("{:.3}", row.ipc(Suite::Int).unwrap_or(0.0)));
        }
        if suites.contains(&Suite::Fp) {
            cells.push(format!("{:.3}", row.ipc(Suite::Fp).unwrap_or(0.0)));
        }
        cells.push(pct(rel_ipc));
        cells.push(pct(energy / base_energy));
        cells.push(pct(area / base_area));
        cells.push(pct(issue_share));
        cells.push(port_denials.to_string());
        cells.push(capture_hits.to_string());
        table.push(cells);

        records.push(format!(
            "{{\"bin\":\"compare_backends\",\"machine\":\"{}\",\"budget\":\"{}\",\
             \"config\":\"{}\",\"ipc_int\":{:.4},\"ipc_fp\":{:.4},\"rel_ipc\":{:.4},\
             \"energy_rel\":{:.4},\"area_rel\":{:.4},\"issue_structural_share\":{:.4},\
             \"rf_read_port_denials\":{port_denials},\"capture_reuse_hits\":{capture_hits}}}",
            row.label,
            budget.label(),
            row.config.describe(),
            row.ipc(Suite::Int).unwrap_or(0.0),
            row.ipc(Suite::Fp).unwrap_or(0.0),
            rel_ipc,
            energy / base_energy,
            area / base_area,
            issue_share,
        ));
    }

    print_table(
        &format!("backend zoo ({} budget, energy/area relative to baseline)", budget.label()),
        &header,
        &table,
    );
    println!(
        "\nstall shares traced on `{STALL_WORKLOAD}`; port conflicts land in \
         the issue-struct bucket."
    );

    let mut path = None;
    for record in &records {
        path = Some(parallel::write_merged_record(
            "backend_compare.json",
            record,
            &["bin", "machine", "budget"],
        ));
    }
    if let Some(path) = path {
        println!("records -> {}", path.display());
    }
}
