//! §6 SMT direction, measured in timing (companion to the analytic
//! `ext_smt_sharing` estimate): pairs of workloads run on two pipelines
//! that *competitively share* one physical Long file, for shared sizes
//! 48 / 56 / 64. Reported per pair: each thread's IPC under sharing as a
//! fraction of its IPC running alone, and the guard-stall pressure.
//!
//! The paper's claim: "a smaller number of long registers can feed more
//! than one thread, especially if only one of them has high peak register
//! usage."

use carf_bench::{Budget, pct, print_table};
use carf_core::CarfParams;
use carf_sim::{SharedLongSmt, SimConfig, AnySimulator};
use carf_workloads::{all_workloads, Workload};

fn solo_ipc(cfg: &SimConfig, program: &carf_isa::Program, budget: &Budget) -> f64 {
    let mut sim = AnySimulator::new(cfg.clone(), program);
    // Same instruction quota as each SMT thread, so warm-up amortizes
    // identically and the ratio isolates the sharing effect.
    sim.run(budget.max_insts / 2).expect("solo run").ipc
}

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("§6 SMT shared-Long-file timing study ({} run)", budget.label());

    // The private Long file must be at least as large as any shared size
    // we sweep (it is windowed down dynamically).
    let params = CarfParams { long_entries: 64, ..CarfParams::paper_default() };
    let cfg = SimConfig::paper_carf(params);

    let pick = ["pointer_chase", "hash_table", "sparse_update", "matvec"];
    let workloads: Vec<Workload> =
        all_workloads().into_iter().filter(|w| pick.contains(&w.name)).collect();
    let programs: Vec<(String, carf_isa::Program, f64)> = workloads
        .iter()
        .map(|w| {
            let p = w.build(w.size(budget.size));
            let ipc = solo_ipc(&cfg, &p, &budget);
            (w.name.to_string(), p, ipc)
        })
        .collect();

    let mut rows = Vec::new();
    for i in 0..programs.len() {
        for j in (i + 1)..programs.len() {
            let mut cells = vec![format!("{} + {}", programs[i].0, programs[j].0)];
            for shared in [48usize, 56, 64] {
                let mut smt = SharedLongSmt::new(
                    vec![(cfg.clone(), &programs[i].1), (cfg.clone(), &programs[j].1)],
                    shared,
                )
                .expect("valid SMT configuration");
                let results = smt
                    .run(20_000_000, budget.max_insts / 2)
                    .expect("shared run");
                // Per-thread slowdown vs. running alone, averaged.
                let rel_a = results[0].ipc / programs[i].2;
                let rel_b = results[1].ipc / programs[j].2;
                cells.push(pct((rel_a + rel_b) / 2.0));
            }
            rows.push(cells);
        }
    }
    print_table(
        "Mean per-thread IPC vs running alone (higher = sharing is free)",
        &["pair", "shared K=48", "K=56", "K=64"],
        &rows,
    );
    println!("\nPaper §6: sharing is nearly free unless both threads have high peak");
    println!("Long usage — compare the pairs containing hash_table + sparse_update");
    println!("(both long-heavy) against everything else.");
}
