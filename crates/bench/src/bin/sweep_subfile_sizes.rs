//! §4 sensitivity studies: Short-file size (2/8/32 entries) and Long-file
//! size (40/48/56/112 entries), at `d+n = 20`.
//!
//! Paper findings: even 2 Short registers deliver 98+% of INT IPC (8 is
//! chosen); 48 Long registers match 112 within noise (40 costs ~0.6%);
//! FP wants 56 to reach 99.75%. Mean live Long count is far below the
//! peak (the paper reports ≈12.7), motivating the SMT direction.

use carf_bench::{pct, print_table, run_suite, Budget};
use carf_core::CarfParams;
use carf_sim::SimConfig;
use carf_workloads::Suite;

fn main() {
    let budget = Budget::from_args();
    println!("Sub-file size sensitivity at d+n = 20 ({} run)", budget.label());

    let unlimited_int = run_suite(&SimConfig::paper_unlimited(), Suite::Int, &budget);
    let unlimited_fp = run_suite(&SimConfig::paper_unlimited(), Suite::Fp, &budget);

    // Short-file sweep (n changes with M; d adjusts to keep d+n = 20).
    let mut rows = Vec::new();
    for m in [2usize, 8, 32] {
        let n = m.trailing_zeros();
        let params = CarfParams { d: 20 - n, short_entries: m, ..CarfParams::paper_default() };
        let cfg = SimConfig::paper_carf(params);
        let int = run_suite(&cfg, Suite::Int, &budget);
        let fp = run_suite(&cfg, Suite::Fp, &budget);
        rows.push(vec![
            format!("{m} short"),
            pct(int.mean_relative_ipc(&unlimited_int)),
            pct(fp.mean_relative_ipc(&unlimited_fp)),
        ]);
    }
    print_table("Short-file size (paper: ≥98% INT even at 2; 8 chosen)",
        &["config", "INT rel IPC", "FP rel IPC"], &rows);

    // Long-file sweep.
    let mut rows = Vec::new();
    for k in [40usize, 48, 56, 112] {
        let params = CarfParams { long_entries: k, ..CarfParams::paper_default() };
        let cfg = SimConfig::paper_carf(params);
        let int = run_suite(&cfg, Suite::Int, &budget);
        let fp = run_suite(&cfg, Suite::Fp, &budget);
        let mean_live = carf_bench::mean(
            int.runs.iter().chain(fp.runs.iter()).map(|(_, s)| s.long_mean_live),
        );
        let peak = int
            .runs
            .iter()
            .chain(fp.runs.iter())
            .map(|(_, s)| s.long_peak_live)
            .max()
            .unwrap_or(0);
        rows.push(vec![
            format!("{k} long"),
            pct(int.mean_relative_ipc(&unlimited_int)),
            pct(fp.mean_relative_ipc(&unlimited_fp)),
            format!("{mean_live:.1}"),
            format!("{peak}"),
        ]);
    }
    print_table(
        "Long-file size (paper: 48 ≈ 112; 40 costs ~0.6% INT; FP wants 56)",
        &["config", "INT rel IPC", "FP rel IPC", "mean live", "peak live"],
        &rows,
    );
    println!("\nPaper: mean live long count ≈ 12.7 — far below the 48 provisioned —");
    println!("because the Long file is sized for peaks (the SMT opportunity, §6).");
}
