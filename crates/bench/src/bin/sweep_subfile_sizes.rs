//! §4 sensitivity studies: Short-file size (2/8/32 entries) and Long-file
//! size (40/48/56/112 entries), at `d+n = 20`.
//!
//! Paper findings: even 2 Short registers deliver 98+% of INT IPC (8 is
//! chosen); 48 Long registers match 112 within noise (40 costs ~0.6%);
//! FP wants 56 to reach 99.75%. Mean live Long count is far below the
//! peak (the paper reports ≈12.7), motivating the SMT direction.

use carf_bench::{pct, print_table, run_matrix_cached, write_timing_json};
use carf_core::CarfParams;
use carf_sim::SimConfig;
use carf_workloads::Suite;

const SHORT_SIZES: [usize; 3] = [2, 8, 32];
const LONG_SIZES: [usize; 4] = [40, 48, 56, 112];

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Sub-file size sensitivity at d+n = 20 ({} run)", budget.label());

    // One flat matrix: the unlimited references, the Short-size sweep, and
    // the Long-size sweep, all dispatched together.
    let mut points = vec![
        (SimConfig::paper_unlimited(), Suite::Int),
        (SimConfig::paper_unlimited(), Suite::Fp),
    ];
    for m in SHORT_SIZES {
        let n = m.trailing_zeros();
        let params = CarfParams { d: 20 - n, short_entries: m, ..CarfParams::paper_default() };
        let cfg = SimConfig::paper_carf(params);
        points.push((cfg.clone(), Suite::Int));
        points.push((cfg, Suite::Fp));
    }
    for k in LONG_SIZES {
        let params = CarfParams { long_entries: k, ..CarfParams::paper_default() };
        let cfg = SimConfig::paper_carf(params);
        points.push((cfg.clone(), Suite::Int));
        points.push((cfg, Suite::Fp));
    }
    let results = run_matrix_cached(&points, &budget).results;
    let (unlimited_int, unlimited_fp) = (&results[0], &results[1]);

    // Short-file sweep (n changes with M; d adjusts to keep d+n = 20).
    let mut rows = Vec::new();
    for (i, m) in SHORT_SIZES.iter().enumerate() {
        let (int, fp) = (&results[2 + 2 * i], &results[3 + 2 * i]);
        rows.push(vec![
            format!("{m} short"),
            pct(int.mean_relative_ipc(unlimited_int)),
            pct(fp.mean_relative_ipc(unlimited_fp)),
        ]);
    }
    print_table("Short-file size (paper: ≥98% INT even at 2; 8 chosen)",
        &["config", "INT rel IPC", "FP rel IPC"], &rows);

    // Long-file sweep.
    let long_base = 2 + 2 * SHORT_SIZES.len();
    let mut rows = Vec::new();
    for (i, k) in LONG_SIZES.iter().enumerate() {
        let (int, fp) = (&results[long_base + 2 * i], &results[long_base + 1 + 2 * i]);
        let mean_live = carf_bench::mean(
            int.runs.iter().chain(fp.runs.iter()).map(|(_, s)| s.long_mean_live),
        );
        let peak = int
            .runs
            .iter()
            .chain(fp.runs.iter())
            .map(|(_, s)| s.long_peak_live)
            .max()
            .unwrap_or(0);
        rows.push(vec![
            format!("{k} long"),
            pct(int.mean_relative_ipc(unlimited_int)),
            pct(fp.mean_relative_ipc(unlimited_fp)),
            format!("{mean_live:.1}"),
            format!("{peak}"),
        ]);
    }
    print_table(
        "Long-file size (paper: 48 ≈ 112; 40 costs ~0.6% INT; FP wants 56)",
        &["config", "INT rel IPC", "FP rel IPC", "mean live", "peak live"],
        &rows,
    );
    println!("\nPaper: mean live long count ≈ 12.7 — far below the 48 provisioned —");
    println!("because the Long file is sized for peaks (the SMT opportunity, §6).");
    write_timing_json(&budget);
}
