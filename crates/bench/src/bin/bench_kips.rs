//! KIPS throughput harness: measures how fast the *simulator* runs, in
//! committed kilo-instructions per wall-second, one point per workload.
//!
//! This is the scheduler-rewrite scoreboard: run it on the pre-change tree
//! with `--snapshot BENCH_baseline.json`, again on the post-change tree
//! with `--snapshot BENCH_after.json`, and compare the geomean. The merged
//! history also lands in `results/bench_timing.json` like every other
//! experiment binary.
//!
//! ```text
//! bench_kips [--quick | --full] [--jobs N] [--suite int|fp|all] [--snapshot PATH]
//! ```
//!
//! Throughput points are simulated under the paper-baseline machine (the
//! headline configuration for every figure); `--jobs 1` gives the
//! interference-free numbers the PR acceptance criterion is stated over.

use carf_bench::cli::{parse_suites, CliSpec, OptSpec};
use carf_bench::parallel::{self, PointTiming};
use carf_bench::{fsio, gate, geomean_kips, peak_kips, print_table, run_suite, Budget};
use carf_sim::SimConfig;
use carf_workloads::Suite;
use std::path::{Path, PathBuf};

const SPEC: CliSpec = CliSpec {
    bin: "bench_kips",
    options: &[
        OptSpec {
            name: "--suite",
            value: Some("S"),
            help: "which suite to time: int (default), fp, or all",
        },
        OptSpec {
            name: "--snapshot",
            value: Some("PATH"),
            help: "also write the timing record to PATH as a snapshot",
        },
        OptSpec {
            name: "--gate",
            value: None,
            help: "perf-regression gate: compare against the committed baseline and exit nonzero on drift",
        },
        OptSpec {
            name: "--gate-baseline",
            value: Some("PATH"),
            help: "gate baseline snapshot (default <workspace>/BENCH_after.json)",
        },
        OptSpec {
            name: "--gate-threshold",
            value: Some("T"),
            help: "allowed fractional geomean-KIPS drop, 0..1 (default 0.5)",
        },
    ],
    operands: None,
};

struct Args {
    budget: Budget,
    suites: Vec<Suite>,
    snapshot: Option<PathBuf>,
    gate: bool,
    gate_baseline: PathBuf,
    gate_threshold: f64,
}

fn parse_args() -> Args {
    let parsed = SPEC.parse();
    let suites = match parsed.option("--suite") {
        Some(v) => parse_suites(v).unwrap_or_else(|bad| SPEC.fail(&bad)),
        None => vec![Suite::Int],
    };
    let snapshot = parsed.option("--snapshot").map(PathBuf::from);
    let gate_baseline = parsed
        .option("--gate-baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| parallel::workspace_root().join("BENCH_after.json"));
    let gate_threshold = match parsed.option("--gate-threshold") {
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|t| (0.0..1.0).contains(t))
            .unwrap_or_else(|| SPEC.fail("`--gate-threshold` expects a number in [0, 1)")),
        None => gate::DEFAULT_THRESHOLD,
    };
    Args {
        budget: parsed.budget,
        suites,
        snapshot,
        gate: parsed.option("--gate").is_some(),
        gate_baseline,
        gate_threshold,
    }
}

fn write_snapshot(path: &Path, label: &str, jobs: usize, total: f64, points: &[PointTiming]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"bin\": \"bench_kips\",\n  \"budget\": \"{label}\",\n  \"jobs\": {jobs},\n"
    ));
    s.push_str(&format!(
        "  \"total_secs\": {total:.3},\n  \"geomean_kips\": {:.3},\n  \"peak_kips\": {:.3},\n",
        geomean_kips(points),
        peak_kips(points)
    ));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"secs\": {:.3}, \"committed\": {}, \"kips\": {:.3}}}{sep}\n",
            p.name,
            p.secs,
            p.committed,
            p.kips()
        ));
    }
    s.push_str("  ]\n}\n");
    fsio::atomic_write(path, s.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write snapshot {}: {e}", path.display()));
    println!("snapshot -> {}", path.display());
}

fn main() {
    let args = parse_args();
    let budget = args.budget;
    if args.gate {
        if let Err(e) = gate::run_gate(&args.gate_baseline, args.gate_threshold, budget.jobs) {
            eprintln!("gate FAILED:\n{e}");
            std::process::exit(1);
        }
        println!("gate PASSED");
        return;
    }
    let config = SimConfig::paper_baseline();
    println!(
        "== simulator throughput ({} budget, jobs={}, paper-baseline machine) ==",
        budget.label(),
        budget.jobs
    );

    parallel::note_run_start();
    for suite in &args.suites {
        run_suite(&config, *suite, &budget);
    }
    let total = parallel::total_secs();
    let points = parallel::take_points();

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{}", p.committed),
                format!("{:.3}", p.secs),
                format!("{:.1}", p.kips()),
            ]
        })
        .collect();
    print_table("KIPS per workload", &["point", "committed", "secs", "KIPS"], &rows);
    println!(
        "\ngeomean {:.1} KIPS, peak {:.1} KIPS, wall {:.2}s",
        geomean_kips(&points),
        peak_kips(&points),
        total
    );

    let record = parallel::timing_record("bench_kips", budget.label(), budget.jobs, total, &points);
    let path = parallel::write_rotated_record(
        "bench_timing.json",
        &record,
        &["bin", "budget", "jobs"],
        parallel::TIMING_KEEP_RUNS,
    );
    println!("timing history -> {}", path.display());

    if let Some(snapshot) = &args.snapshot {
        write_snapshot(snapshot, budget.label(), budget.jobs, total, &points);
    }
}
