//! KIPS throughput harness: measures how fast the *simulator* runs, in
//! committed kilo-instructions per wall-second, one point per workload.
//!
//! This is the scheduler-rewrite scoreboard: run it on the pre-change tree
//! with `--snapshot BENCH_baseline.json`, again on the post-change tree
//! with `--snapshot BENCH_after.json`, and compare the geomean. The merged
//! history also lands in `results/bench_timing.json` like every other
//! experiment binary.
//!
//! ```text
//! bench_kips [--quick | --full] [--jobs N] [--suite int|fp|all] [--snapshot PATH]
//! ```
//!
//! Throughput points are simulated under the paper-baseline machine (the
//! headline configuration for every figure); `--jobs 1` gives the
//! interference-free numbers the PR acceptance criterion is stated over.

use carf_bench::cli::{parse_suites, CliSpec, OptSpec};
use carf_bench::parallel::{self, PointTiming};
use carf_bench::{geomean_kips, peak_kips, print_table, run_suite, Budget};
use carf_sim::SimConfig;
use carf_workloads::Suite;
use std::io::Write as _;
use std::path::PathBuf;

const SPEC: CliSpec = CliSpec {
    bin: "bench_kips",
    options: &[
        OptSpec {
            name: "--suite",
            value: Some("S"),
            help: "which suite to time: int (default), fp, or all",
        },
        OptSpec {
            name: "--snapshot",
            value: Some("PATH"),
            help: "also write the timing record to PATH as a snapshot",
        },
    ],
    operands: None,
};

struct Args {
    budget: Budget,
    suites: Vec<Suite>,
    snapshot: Option<PathBuf>,
}

fn parse_args() -> Args {
    let parsed = SPEC.parse();
    let suites = match parsed.option("--suite") {
        Some(v) => parse_suites(v).unwrap_or_else(|bad| SPEC.fail(&bad)),
        None => vec![Suite::Int],
    };
    let snapshot = parsed.option("--snapshot").map(PathBuf::from);
    Args { budget: parsed.budget, suites, snapshot }
}

fn write_snapshot(path: &PathBuf, label: &str, jobs: usize, total: f64, points: &[PointTiming]) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"bin\": \"bench_kips\",\n  \"budget\": \"{label}\",\n  \"jobs\": {jobs},\n"
    ));
    s.push_str(&format!(
        "  \"total_secs\": {total:.3},\n  \"geomean_kips\": {:.3},\n  \"peak_kips\": {:.3},\n",
        geomean_kips(points),
        peak_kips(points)
    ));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"secs\": {:.3}, \"committed\": {}, \"kips\": {:.3}}}{sep}\n",
            p.name,
            p.secs,
            p.committed,
            p.kips()
        ));
    }
    s.push_str("  ]\n}\n");
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut f = std::fs::File::create(path)
        .unwrap_or_else(|e| panic!("cannot create snapshot {}: {e}", path.display()));
    f.write_all(s.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write snapshot {}: {e}", path.display()));
    println!("snapshot -> {}", path.display());
}

fn main() {
    let args = parse_args();
    let budget = args.budget;
    let config = SimConfig::paper_baseline();
    println!(
        "== simulator throughput ({} budget, jobs={}, paper-baseline machine) ==",
        budget.label(),
        budget.jobs
    );

    parallel::note_run_start();
    for suite in &args.suites {
        run_suite(&config, *suite, &budget);
    }
    let total = parallel::total_secs();
    let points = parallel::take_points();

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{}", p.committed),
                format!("{:.3}", p.secs),
                format!("{:.1}", p.kips()),
            ]
        })
        .collect();
    print_table("KIPS per workload", &["point", "committed", "secs", "KIPS"], &rows);
    println!(
        "\ngeomean {:.1} KIPS, peak {:.1} KIPS, wall {:.2}s",
        geomean_kips(&points),
        peak_kips(&points),
        total
    );

    let record = parallel::timing_record("bench_kips", budget.label(), budget.jobs, total, &points);
    let path = parallel::write_rotated_record(
        "bench_timing.json",
        &record,
        &["bin", "budget", "jobs"],
        parallel::TIMING_KEEP_RUNS,
    );
    println!("timing history -> {}", path.display());

    if let Some(snapshot) = &args.snapshot {
        write_snapshot(snapshot, budget.label(), budget.jobs, total, &points);
    }
}
