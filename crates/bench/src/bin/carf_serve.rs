//! `carf-serve`: run the experiment job daemon.
//!
//! ```text
//! carf-serve [--addr HOST:PORT] [--no-cache]
//! ```
//!
//! Binds the address (default `127.0.0.1:7117`; use port 0 for an
//! ephemeral port — the bound address is printed either way), serves the
//! JSON-lines protocol documented in `carf_bench::serve`, and runs until
//! a client sends `{"cmd":"shutdown"}`. Results are served from and
//! stored into the content-addressed cache under `<results>/cache/`
//! unless `--no-cache` (or `CARF_CACHE=0`) bypasses it.

use carf_bench::serve::Server;
use carf_bench::ResultCache;

const DEFAULT_ADDR: &str = "127.0.0.1:7117";

fn usage() -> ! {
    eprintln!("usage: carf-serve [--addr HOST:PORT] [--no-cache]");
    eprintln!("  --addr HOST:PORT  bind address (default {DEFAULT_ADDR}; port 0 = ephemeral)");
    eprintln!("  --no-cache        bypass the content-addressed result cache");
    std::process::exit(2);
}

fn main() {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut use_cache = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) if !v.trim().is_empty() => addr = v,
                _ => usage(),
            },
            "--no-cache" => use_cache = false,
            s => {
                if let Some(v) = s.strip_prefix("--addr=") {
                    if v.trim().is_empty() {
                        usage();
                    }
                    addr = v.to_string();
                } else {
                    usage();
                }
            }
        }
    }

    let cache = if use_cache { ResultCache::from_env() } else { None };
    match &cache {
        Some(c) => println!("carf-serve: cache at {}", c.dir().display()),
        None => println!("carf-serve: cache disabled"),
    }
    let server = Server::spawn(&addr, cache).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    println!("carf-serve: listening on {}", server.addr());
    server.wait();
    println!("carf-serve: shutdown requested, exiting");
}
