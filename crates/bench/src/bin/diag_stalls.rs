//! Diagnostic: stall/replay breakdown for selected kernels under the
//! baseline and content-aware machines. Not a paper artifact — a tool for
//! understanding where cycles go when the two machines diverge.

use carf_core::CarfParams;
use carf_sim::{SimConfig, Simulator};
use carf_workloads::{all_workloads, SizeClass};

fn main() {
    for name in ["stencil3", "particle_push", "tridiag", "sort_kernel"] {
        let wl = all_workloads().into_iter().find(|w| w.name == name).unwrap();
        let program = wl.build_class(SizeClass::Quick);
        for (label, cfg) in [
            ("base", SimConfig::paper_baseline()),
            ("carf", SimConfig::paper_carf(CarfParams::paper_default())),
        ] {
            let mut sim = Simulator::new(cfg, &program);
            let r = sim.run(300_000).unwrap();
            let s = sim.stats();
            println!("{name:14} {label} ipc={:.3} replays={} mispred={} squashed={} rob_stall={} iq_stall={} preg_stall={} lsq_stall={} guard={}",
                r.ipc, s.load_replays, s.mispredicts, s.squashed,
                s.dispatch_stalls.rob, s.dispatch_stalls.iq, s.dispatch_stalls.pregs,
                s.dispatch_stalls.lsq, s.long_guard_stall_cycles);
        }
    }
}
