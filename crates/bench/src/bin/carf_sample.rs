//! Sampled-vs-full validation: runs every workload both ways — straight
//! cycle-level and via checkpointed interval sampling — and reports the
//! sampled IPC estimate with its error bar next to the full-run truth.
//!
//! ```text
//! carf-sample [--quick | --full] [--jobs N] [--sample[=I/P/W]]
//!             [--machine base|carf|both] [--suite int|fp|all] [--check TOL]
//! ```
//!
//! With `--check TOL` (a relative tolerance, e.g. `0.05`), the binary
//! exits nonzero when any workload's sampled IPC misses the full-run IPC
//! by more than `max(CI95, TOL × full)` — the statistical bound when the
//! intervals have spread, the loose floor when a homogeneous kernel's
//! intervals are all alike — or when a sampled run simulated more than the
//! spec's detail bound of instructions cycle-level. Per-workload results
//! land in `results/sample_quality.json`.

use carf_bench::cli::{parse_suites, CliSpec, MachineSet, OptSpec};
use carf_bench::sample::{
    finite_json_number, relative_error, run_program_sampled, SampledRun, SampleSpec,
};
use carf_bench::{parallel, print_table, Budget};
use carf_sim::{AnySimulator, SimConfig};
use carf_workloads::{Suite, Workload};

const SPEC: CliSpec = CliSpec {
    bin: "carf-sample",
    options: &[
        OptSpec {
            name: "--machine",
            value: Some("M"),
            help: "which machine: base, carf, or both (default both)",
        },
        OptSpec {
            name: "--suite",
            value: Some("S"),
            help: "which suite: int (default), fp, or all",
        },
        OptSpec {
            name: "--check",
            value: Some("TOL"),
            help: "fail (exit 1) when sampled IPC misses full IPC by more than max(CI95, TOL*full)",
        },
    ],
    operands: None,
};

struct Point {
    machine: &'static str,
    workload: String,
    full_ipc: f64,
    sampled: SampledRun,
}

fn run_point(
    machine: &'static str,
    config: &SimConfig,
    workload: &Workload,
    spec: &SampleSpec,
    budget: &Budget,
) -> Point {
    let program = workload.build(workload.size(budget.size));
    let mut sim = AnySimulator::new(config.clone(), &program);
    let full = sim
        .run(budget.max_insts)
        .unwrap_or_else(|e| panic!("{} full run under {machine}: {e}", workload.name));
    let sampled = run_program_sampled(config, &program, spec, budget.max_insts)
        .unwrap_or_else(|e| panic!("{} sampled run under {machine}: {e}", workload.name));
    Point { machine, workload: workload.name.to_string(), full_ipc: full.ipc, sampled }
}

fn quality_record(budget: &Budget, spec: &SampleSpec, points: &[Point]) -> String {
    let mut s = format!(
        "{{\"bin\":\"carf-sample\",\"budget\":\"{}\",\"spec\":\"{}\",\"points\":[",
        budget.label(),
        spec.label()
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"machine\":\"{}\",\"workload\":\"{}\",\"full_ipc\":{},\
             \"sampled_ipc\":{},\"ci95\":{},\"intervals\":{},\
             \"detail_fraction\":{}}}",
            p.machine,
            p.workload,
            finite_json_number(p.full_ipc),
            finite_json_number(p.sampled.ipc()),
            finite_json_number(p.sampled.ci95()),
            p.sampled.intervals.len(),
            finite_json_number(p.sampled.detail_fraction()),
        ));
    }
    s.push_str("]}");
    s
}

fn main() {
    let parsed = SPEC.parse();
    let budget = parsed.budget;
    let spec = budget.sample.unwrap_or_default();
    let machines = match parsed.option("--machine") {
        Some(v) => MachineSet::parse(v).unwrap_or_else(|bad| SPEC.fail(&bad)),
        None => MachineSet::Both,
    };
    let suites = match parsed.option("--suite") {
        Some(v) => parse_suites(v).unwrap_or_else(|bad| SPEC.fail(&bad)),
        None => vec![Suite::Int],
    };
    let check: Option<f64> = parsed.option("--check").map(|v| {
        v.parse::<f64>()
            .ok()
            .filter(|t| *t > 0.0)
            .unwrap_or_else(|| SPEC.fail("`--check` expects a positive relative tolerance"))
    });

    println!(
        "== sampled vs full IPC ({} budget, spec {}, detail bound {:.1}%) ==",
        budget.label(),
        spec.label(),
        spec.detail_bound() * 100.0
    );

    let mut work: Vec<(&'static str, SimConfig, Workload)> = Vec::new();
    for (label, config) in machines.configs() {
        for suite in &suites {
            let ws = match suite {
                Suite::Int => carf_workloads::int_suite(),
                Suite::Fp => carf_workloads::fp_suite(),
            };
            for w in ws {
                work.push((label, config.clone(), w));
            }
        }
    }
    parallel::note_run_start();
    let points = parallel::run_ordered(&work, budget.jobs, |(label, config, w)| {
        run_point(label, config, w, &spec, &budget)
    });

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for p in &points {
        let err = (p.sampled.ipc() - p.full_ipc).abs();
        let rel = relative_error(p.sampled.ipc(), p.full_ipc);
        let ci = p.sampled.ci95();
        rows.push(vec![
            format!("{}/{}", p.machine, p.workload),
            format!("{:.3}", p.full_ipc),
            format!("{:.3}", p.sampled.ipc()),
            format!("±{ci:.3}"),
            rel.map_or("n/a".to_string(), |r| format!("{:.1}%", r * 100.0)),
            format!("{}", p.sampled.intervals.len()),
            format!("{:.1}%", p.sampled.detail_fraction() * 100.0),
        ]);
        if let Some(tol) = check {
            // A non-finite error or bound means the run itself is broken;
            // `err > bound` with a NaN on either side would compare false
            // and let exactly those runs slip through, so check finiteness
            // explicitly first.
            let bound = ci.max(tol * p.full_ipc);
            if rel.is_none() || !ci.is_finite() || !bound.is_finite() {
                failures.push(format!(
                    "{}/{}: non-finite quality figures (sampled {}, full {}, ci {ci}) — \
                     the comparison is meaningless",
                    p.machine,
                    p.workload,
                    p.sampled.ipc(),
                    p.full_ipc
                ));
            } else if err > bound {
                failures.push(format!(
                    "{}/{}: sampled {:.3} vs full {:.3} (off by {err:.3}, bound {bound:.3})",
                    p.machine,
                    p.workload,
                    p.sampled.ipc(),
                    p.full_ipc
                ));
            }
            if p.sampled.detail_fraction() > spec.detail_bound() + 1e-9 {
                failures.push(format!(
                    "{}/{}: detail fraction {:.1}% exceeds the spec bound {:.1}%",
                    p.machine,
                    p.workload,
                    p.sampled.detail_fraction() * 100.0,
                    spec.detail_bound() * 100.0
                ));
            }
        }
    }
    print_table(
        "sampled vs full",
        &["point", "full IPC", "sampled", "CI95", "err", "K", "detail"],
        &rows,
    );

    let mean_detail = carf_bench::mean(points.iter().map(|p| p.sampled.detail_fraction()));
    let mean_err = carf_bench::mean(
        points.iter().map(|p| relative_error(p.sampled.ipc(), p.full_ipc).unwrap_or(0.0)),
    );
    println!(
        "\nmean |error| {:.2}%, mean detail fraction {:.1}%, wall {:.2}s",
        mean_err * 100.0,
        mean_detail * 100.0,
        parallel::total_secs()
    );

    let record = quality_record(&budget, &spec, &points);
    let path = parallel::write_rotated_record(
        "sample_quality.json",
        &record,
        &["bin", "budget", "spec"],
        parallel::TIMING_KEEP_RUNS,
    );
    println!("quality record -> {}", path.display());

    if !failures.is_empty() {
        eprintln!("\nsampling quality check FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if check.is_some() {
        println!("sampling quality check passed ({} points)", points.len());
    }
}
