//! §4 baseline port selection: the paper reduces 2×8 read / 8 write ports
//! to 8 read / 6 write at a combined ~0.4% IPC cost, and we sweep the same
//! axis.

use carf_bench::{pct, print_table, run_suite, Budget};
use carf_sim::SimConfig;
use carf_workloads::Suite;

fn main() {
    let budget = Budget::from_args();
    println!("Baseline register-file port sweep ({} run)", budget.label());

    let reference = {
        let mut cfg = SimConfig::paper_baseline();
        cfg.rf_read_ports = 16;
        cfg.rf_write_ports = 8;
        (
            run_suite(&cfg, Suite::Int, &budget),
            run_suite(&cfg, Suite::Fp, &budget),
        )
    };

    let mut rows = Vec::new();
    for (r, w, paper) in [
        (16u32, 8u32, "100% (reference)"),
        (8, 8, "-0.17%"),
        (8, 6, "-0.38% (chosen)"),
        (8, 4, "-"),
        (4, 6, "-"),
    ] {
        let mut cfg = SimConfig::paper_baseline();
        cfg.rf_read_ports = r;
        cfg.rf_write_ports = w;
        let int = run_suite(&cfg, Suite::Int, &budget);
        let fp = run_suite(&cfg, Suite::Fp, &budget);
        rows.push(vec![
            format!("{r}R/{w}W"),
            pct(int.mean_relative_ipc(&reference.0)),
            pct(fp.mean_relative_ipc(&reference.1)),
            paper.to_string(),
        ]);
    }
    print_table(
        "Relative IPC vs the 16R/8W file",
        &["ports", "INT", "FP", "paper (delta)"],
        &rows,
    );
    println!("\nPaper: halving read ports costs 0.17%, and 6 write ports another");
    println!("0.21% — justifying the 8R/6W baseline used everywhere else.");
}
