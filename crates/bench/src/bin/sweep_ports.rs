//! §4 baseline port selection: the paper reduces 2×8 read / 8 write ports
//! to 8 read / 6 write at a combined ~0.4% IPC cost, and we sweep the same
//! axis.

use carf_bench::{pct, print_table, run_matrix_cached, write_timing_json};
use carf_sim::SimConfig;
use carf_workloads::Suite;

const PORT_SWEEP: [(u32, u32, &str); 5] = [
    (16, 8, "100% (reference)"),
    (8, 8, "-0.17%"),
    (8, 6, "-0.38% (chosen)"),
    (8, 4, "-"),
    (4, 6, "-"),
];

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Baseline register-file port sweep ({} run)", budget.label());

    // The 16R/8W reference is the sweep's first point; everything runs as
    // one flat matrix over the worker pool.
    let mut points = Vec::new();
    for (r, w, _) in PORT_SWEEP {
        let mut cfg = SimConfig::paper_baseline();
        cfg.rf_read_ports = r;
        cfg.rf_write_ports = w;
        points.push((cfg.clone(), Suite::Int));
        points.push((cfg, Suite::Fp));
    }
    let results = run_matrix_cached(&points, &budget).results;
    let reference = (&results[0], &results[1]);

    let mut rows = Vec::new();
    for (i, (r, w, paper)) in PORT_SWEEP.iter().enumerate() {
        let (int, fp) = (&results[2 * i], &results[2 * i + 1]);
        rows.push(vec![
            format!("{r}R/{w}W"),
            pct(int.mean_relative_ipc(reference.0)),
            pct(fp.mean_relative_ipc(reference.1)),
            paper.to_string(),
        ]);
    }
    print_table(
        "Relative IPC vs the 16R/8W file",
        &["ports", "INT", "FP", "paper (delta)"],
        &rows,
    );
    println!("\nPaper: halving read ports costs 0.17%, and 6 write ports another");
    println!("0.21% — justifying the 8R/6W baseline used everywhere else.");
    write_timing_json(&budget);
}
