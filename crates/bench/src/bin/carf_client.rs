//! `carf-client`: submit/await/fetch against a running `carf-serve`.
//!
//! ```text
//! carf-client [--addr HOST:PORT] <ping|submit|fetch|shutdown>
//!             [--machine M] [--suite S] [--full] [--jobs N] [--max-insts K]
//! ```
//!
//! Builds the JSON request, streams the daemon's events to stdout, and
//! verifies the sequencing contract (strictly increasing `seq` from 0).
//! Exits 0 on a clean `done`/`pong`/`bye`, 1 on a protocol or transport
//! error.

use carf_bench::serve::{check_sequence, request_events};
use carf_bench::parallel::json_field;
use std::net::{SocketAddr, ToSocketAddrs};

const DEFAULT_ADDR: &str = "127.0.0.1:7117";

fn usage() -> ! {
    eprintln!(
        "usage: carf-client [--addr HOST:PORT] <ping|submit|fetch|shutdown> \
         [--machine M] [--suite S] [--full] [--jobs N] [--max-insts K]"
    );
    eprintln!("  --addr HOST:PORT  daemon address (default {DEFAULT_ADDR})");
    eprintln!("  --machine M       base, carf, both, compressed, ports, all (default both)");
    eprintln!("  --suite S         int, fp, all (default int)");
    eprintln!("  --full            full budget (default quick)");
    eprintln!("  --jobs N          daemon-side worker threads for this request (default 1)");
    eprintln!("  --max-insts K     override the per-point instruction cap");
    std::process::exit(2);
}

fn main() {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut cmd: Option<String> = None;
    let mut machine: Option<String> = None;
    let mut suite: Option<String> = None;
    let mut full = false;
    let mut jobs: Option<String> = None;
    let mut max_insts: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| match args.next() {
            Some(v) if !v.trim().is_empty() => v,
            _ => {
                eprintln!("error: `{name}` expects a value");
                usage()
            }
        };
        match arg.as_str() {
            "--addr" => addr = take("--addr"),
            "--machine" => machine = Some(take("--machine")),
            "--suite" => suite = Some(take("--suite")),
            "--jobs" => jobs = Some(take("--jobs")),
            "--max-insts" => max_insts = Some(take("--max-insts")),
            "--full" => full = true,
            "--quick" => full = false,
            "ping" | "submit" | "fetch" | "shutdown" if cmd.is_none() => {
                cmd = Some(arg);
            }
            _ => usage(),
        }
    }
    let Some(cmd) = cmd else { usage() };

    let mut request = format!("{{\"cmd\":\"{cmd}\"");
    if cmd == "submit" || cmd == "fetch" {
        if let Some(m) = &machine {
            request.push_str(&format!(",\"machines\":\"{m}\""));
        }
        if let Some(s) = &suite {
            request.push_str(&format!(",\"suite\":\"{s}\""));
        }
        request.push_str(&format!(",\"budget\":\"{}\"", if full { "full" } else { "quick" }));
        if let Some(j) = &jobs {
            request.push_str(&format!(",\"jobs\":{j}"));
        }
        if let Some(k) = &max_insts {
            request.push_str(&format!(",\"max_insts\":{k}"));
        }
    }
    request.push('}');

    let sock_addr: SocketAddr = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => {
            eprintln!("error: cannot resolve `{addr}`");
            std::process::exit(1);
        }
    };
    let events = request_events(&sock_addr, &request).unwrap_or_else(|e| {
        eprintln!("error: {addr}: {e}");
        std::process::exit(1);
    });
    for line in &events {
        println!("{line}");
    }
    if let Err(e) = check_sequence(&events) {
        eprintln!("error: sequencing contract violated: {e}");
        std::process::exit(1);
    }
    match events.last().and_then(|l| json_field(l, "event")).as_deref() {
        Some("done" | "pong" | "bye") => {}
        Some("error") => {
            eprintln!("error: daemon rejected the request");
            std::process::exit(1);
        }
        _ => {
            eprintln!("error: stream ended without a terminator event");
            std::process::exit(1);
        }
    }
}
