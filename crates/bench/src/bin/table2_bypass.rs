//! Table 2: percentage of source operands supplied by the bypass network
//! (no register-file access), for the baseline (one bypass level) and the
//! content-aware machine (extra bypass level covering the longer
//! writeback).

use carf_bench::{pct, print_table, run_suite};
use carf_core::CarfParams;
use carf_sim::SimConfig;
use carf_workloads::Suite;

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Table 2: percentage of bypassed operands ({} run)", budget.label());
    let base = SimConfig::paper_baseline();
    let carf = SimConfig::paper_carf(CarfParams::paper_default());

    let mut rows = Vec::new();
    for (suite, paper_base, paper_carf) in
        [(Suite::Int, "38.1%", "47.9%"), (Suite::Fp, "21.1%", "28.4%")]
    {
        let b = run_suite(&base, suite, &budget);
        let c = run_suite(&carf, suite, &budget);
        rows.push(vec![
            format!("SPEC {suite}"),
            pct(b.bypass_fraction()),
            paper_base.to_string(),
            pct(c.bypass_fraction()),
            paper_carf.to_string(),
        ]);
    }
    print_table(
        "Bypassed source operands",
        &["suite", "baseline", "baseline (paper)", "content-aware", "carf (paper)"],
        &rows,
    );
    println!("\nShape check: the content-aware machine bypasses more operands than");
    println!("the baseline (its extra level covers the two-stage writeback), and");
    println!("INT codes bypass more than FP codes.");
}
