//! §7 related-work comparison: the paper positions its 77% energy saving
//! (vs. the unlimited file) against port-reduction proposals — [5] Park,
//! Powell & Vijaykumar (67%, on a 180-entry 16R/8W unlimited file) and
//! [15] Kim & Mudge (60%, on a 512-entry unlimited file) — while noting
//! the approaches are orthogonal.
//!
//! We re-create that comparison inside one consistent model: the same
//! Rixner-style energy model prices (a) the paper's content-aware file,
//! (b) a port-reduced monolithic file, (c) a banked file (each bank
//! carries fewer ports, as in Cruz et al. / Tseng & Asanović), and (d)
//! the combination the paper calls orthogonal — a content-aware file whose
//! sub-files also shed ports.

use carf_bench::{carf_geometries, pct, print_table};
use carf_core::CarfParams;
use carf_energy::{RegFileGeometry, TechModel, PAPER_UNLIMITED};

fn main() {
    println!("§7 related-work energy comparison (single consistent model)");
    let model = TechModel::default_model();
    let unl = model.read_energy(&PAPER_UNLIMITED);
    let params = CarfParams::paper_default();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut add = |name: &str, energy: f64, paper_note: &str| {
        rows.push(vec![
            name.to_string(),
            pct(1.0 - energy / unl),
            paper_note.to_string(),
        ]);
    };

    // (a) The paper's baseline and content-aware organization. Weight the
    // per-access energies by the measured access mix at d+n = 20 (Fig. 6:
    // ~32% simple / 30% short / 38% long reads).
    let baseline = RegFileGeometry::new(112, 64, 8, 6);
    add("112x64 8R/6W baseline", model.read_energy(&baseline), "paper: ~51% saving");
    let [simple, short, long] = carf_geometries(&params);
    let carf = model.read_energy(&simple)
        + 0.30 * model.read_energy(&short)
        + 0.38 * model.read_energy(&long);
    add("content-aware (d+n=20, Fig.6 mix)", carf, "paper: 77% saving");

    // (b) Port reduction alone, as in [5]/[15]: keep the monolithic array,
    // halve the ports.
    add(
        "180x64 8R/4W port-reduced [5]-style",
        model.read_energy(&RegFileGeometry::new(180, 64, 8, 4)),
        "paper cites 67% saving",
    );
    add(
        "512x64 -> 512x64 8R/4W [15]-style",
        model.read_energy(&RegFileGeometry::new(512, 64, 8, 4))
            / model.read_energy(&RegFileGeometry::new(512, 64, 16, 8))
            * unl,
        "paper cites 60% saving (vs its own 512-entry unlimited)",
    );

    // (c) Banking: 4 banks of 28 entries, 4R/2W each (one access touches
    // one bank).
    add(
        "4x(28x64) banks, 4R/2W each",
        model.read_energy(&RegFileGeometry::new(28, 64, 4, 2)),
        "Cruz/Tseng-style banking",
    );

    // (d) The orthogonal combination the paper points out: content-aware
    // sub-files that also shed ports (4R/3W each).
    let half_ported = [
        RegFileGeometry::new(params.simple_entries, params.simple_width(), 4, 3),
        RegFileGeometry::new(params.short_entries, params.short_width(), 7, 3),
        RegFileGeometry::new(params.long_entries, params.long_width(), 4, 3),
    ];
    let combo = model.read_energy(&half_ported[0])
        + 0.30 * model.read_energy(&half_ported[1])
        + 0.38 * model.read_energy(&half_ported[2]);
    add("content-aware + halved ports", combo, "the paper's \"orthogonal\" claim");

    print_table(
        "Energy saving vs the unlimited 160x64 16R/8W file (per weighted access)",
        &["organization", "saving", "reference"],
        &rows,
    );
    println!("\nOrdering check (paper §7): content-aware (77%) beats the cited");
    println!("port-reduction results (67%, 60%), and composing both wins further.");
}
