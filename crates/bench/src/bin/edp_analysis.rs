//! Energy-delay analysis across the `d+n` sweep.
//!
//! The paper (§5): "Using this figure \[7\] in conjunction with Figure 5 can
//! determine the value of d+n which delivers the highest energy-delay
//! product." This binary does exactly that combination: per `d+n`, the
//! register-file energy (Figure 7's pipeline) times the suite delay
//! (1/IPC from Figure 5's pipeline), both normalized to the baseline.

use carf_bench::{
    baseline_geometry, pct, print_table, rf_energy_carf, rf_energy_monolithic, run_matrix_cached,
    write_timing_json, ClassTotals, DN_SWEEP,
};
use carf_core::CarfParams;
use carf_energy::TechModel;
use carf_sim::SimConfig;
use carf_workloads::Suite;

struct Point {
    rel_ipc: f64,
    energy: f64,
}

fn combined_totals(
    int: &carf_bench::SuiteResult,
    fp: &carf_bench::SuiteResult,
) -> (ClassTotals, ClassTotals) {
    let ((ri, wi), (rf, wf)) = (int.access_totals(), fp.access_totals());
    let sum = |a: ClassTotals, b: ClassTotals| ClassTotals {
        simple: a.simple + b.simple,
        short: a.short + b.short,
        long: a.long + b.long,
        total: a.total + b.total,
    };
    (sum(ri, rf), sum(wi, wf))
}

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Energy-delay analysis across d+n ({} run)", budget.label());
    let model = TechModel::default_model();

    // One flat matrix: the baseline plus the full d+n sweep, both suites.
    let mut matrix = vec![
        (SimConfig::paper_baseline(), Suite::Int),
        (SimConfig::paper_baseline(), Suite::Fp),
    ];
    for dn in DN_SWEEP {
        let cfg = SimConfig::paper_carf(CarfParams::with_dn(dn));
        matrix.push((cfg.clone(), Suite::Int));
        matrix.push((cfg, Suite::Fp));
    }
    let results = run_matrix_cached(&matrix, &budget).results;

    let (base_int, base_fp) = (&results[0], &results[1]);
    let (base_r, base_w) = combined_totals(base_int, base_fp);
    let base_energy = rf_energy_monolithic(&model, &baseline_geometry(), &base_r, &base_w);

    let mut points = Vec::new();
    for (i, dn) in DN_SWEEP.iter().enumerate() {
        let params = CarfParams::with_dn(*dn);
        let (int, fp) = (&results[2 + 2 * i], &results[3 + 2 * i]);
        let rel_ipc =
            0.5 * (int.mean_relative_ipc(base_int) + fp.mean_relative_ipc(base_fp));
        let (r, w) = combined_totals(int, fp);
        let energy = rf_energy_carf(&model, &params, &r, &w);
        points.push((*dn, Point { rel_ipc, energy }));
    }

    let mut rows = Vec::new();
    let mut best = (0u32, f64::INFINITY);
    for (dn, p) in &points {
        let rel_energy = p.energy / base_energy;
        let rel_delay = 1.0 / p.rel_ipc;
        let edp = rel_energy * rel_delay; // baseline = 1.0
        if edp < best.1 {
            best = (*dn, edp);
        }
        rows.push(vec![
            format!("{dn}"),
            pct(p.rel_ipc),
            pct(rel_energy),
            format!("{edp:.3}"),
        ]);
    }
    print_table(
        "Register-file energy-delay vs baseline (lower is better)",
        &["d+n", "rel IPC (vs base)", "rel RF energy", "rel ED product"],
        &rows,
    );
    println!("\nbest energy-delay at d+n = {} (paper selects d+n = 20, balancing", best.0);
    println!("the IPC plateau against energy that grows with the Simple width).");
    write_timing_json(&budget);
}
