//! Ablations of the design choices the paper discusses:
//!
//! * direct-indexed vs. fully associative Short file (§4: CAM gains little
//!   IPC for much energy);
//! * Short allocation from address computations only vs. from every result
//!   (§3.1: allocate-everything thrashes);
//! * the extra bypass level (§3.1: optional, small effect);
//! * the pseudo-deadlock guard threshold (§3.1: stall at the issue width).

use carf_bench::{mean, pct, print_table, run_suite, Budget};
use carf_core::{CarfParams, Policies, ShortAllocPolicy, ShortIndexPolicy};
use carf_sim::{SimConfig, SimStats};
use carf_workloads::Suite;

fn run_cfg(cfg: &SimConfig, budget: &Budget) -> (f64, Vec<SimStats>) {
    let int = run_suite(cfg, Suite::Int, budget);
    let fp = run_suite(cfg, Suite::Fp, budget);
    let stats: Vec<SimStats> =
        int.runs.into_iter().chain(fp.runs).map(|(_, s)| s).collect();
    (mean(stats.iter().map(|s| s.ipc())), stats)
}

fn run(policies: Policies, budget: &Budget) -> (f64, Vec<SimStats>) {
    let cfg = SimConfig::paper_carf_with(CarfParams::paper_default(), policies);
    run_cfg(&cfg, budget)
}

fn main() {
    let budget = Budget::from_args();
    println!("Design-choice ablations at d+n = 20 ({} run)", budget.label());

    let (ref_ipc, ref_stats) = run(Policies::default(), &budget);
    let short_writes: u64 = ref_stats.iter().map(|s| s.int_rf.writes.short).sum();

    let mut rows = vec![vec![
        "paper default".into(),
        "100.0%".into(),
        format!("{short_writes}"),
        "direct, addresses-only, extra bypass, guard=8".into(),
    ]];

    let variants: [(&str, Policies); 4] = [
        (
            "associative short",
            Policies { short_index: ShortIndexPolicy::Associative, ..Policies::default() },
        ),
        (
            "alloc on all results",
            Policies { short_alloc: ShortAllocPolicy::AllResults, ..Policies::default() },
        ),
        ("no extra bypass", Policies { extra_bypass: false, ..Policies::default() }),
        ("guard threshold 0", Policies { long_stall_threshold: 0, ..Policies::default() }),
    ];
    for (name, policies) in variants {
        let (ipc, stats) = run(policies, &budget);
        let sw: u64 = stats.iter().map(|s| s.int_rf.writes.short).sum();
        let note = match name {
            "associative short" => "paper: tiny IPC gain, large energy cost (CAM)",
            "alloc on all results" => "paper: thrashes the small Short file",
            "no extra bypass" => "paper: optional, little performance effect",
            _ => "paper: stall at issue width avoids pseudo-deadlock",
        };
        rows.push(vec![
            name.into(),
            pct(ipc / ref_ipc),
            format!("{sw}"),
            note.into(),
        ]);
    }
    print_table(
        "IPC relative to the paper's policies",
        &["variant", "rel IPC", "short writes", "note"],
        &rows,
    );

    // Memory-dependence policy (beyond the paper): the optimistic default
    // (loads run ahead of unresolved stores, squash on violation) vs a
    // fully conservative LSQ.
    {
        let mut cfg = SimConfig::paper_carf(CarfParams::paper_default());
        cfg.mem_dep = carf_sim::MemDepPolicy::Conservative;
        let (ipc, _) = run_cfg(&cfg, &budget);
        let violations: u64 = ref_stats.iter().map(|s| s.mem_dep_violations).sum();
        println!(
            "\nmemory-dependence ablation: a fully conservative LSQ reaches {} of\n\
             the optimistic default's IPC; the default squashed {violations}\n\
             violations across both suites.",
            pct(ipc / ref_ipc)
        );
    }

    // Short-file aging interval: the paper ticks once per ROB's worth of
    // commits; never freeing shows whether the aging scheme earns its keep.
    let mut rows = vec![];
    for (label, interval) in
        [("tick every 64 commits", 64u64), ("tick every 128 (paper)", 128), ("tick every 512", 512), ("never free shorts", 0)]
    {
        let mut cfg = SimConfig::paper_carf(CarfParams::paper_default());
        cfg.rob_interval_commits = interval;
        let (ipc, stats) = run_cfg(&cfg, &budget);
        let sw: u64 = stats.iter().map(|s| s.int_rf.writes.short).sum();
        let occupancy = mean(stats.iter().map(|s| s.short_mean_occupancy));
        rows.push(vec![
            label.into(),
            pct(ipc / ref_ipc),
            format!("{sw}"),
            format!("{occupancy:.1} / 8"),
        ]);
    }
    print_table(
        "Short-file aging interval",
        &["variant", "rel IPC", "short writes", "mean occupancy"],
        &rows,
    );

    // Guard-pressure detail: deadlock recoveries must stay at zero with the
    // paper's guard.
    let recoveries: u64 = ref_stats.iter().map(|s| s.deadlock_recoveries).sum();
    let guard_cycles: u64 = ref_stats.iter().map(|s| s.long_guard_stall_cycles).sum();
    println!("\nwith the paper's guard: {recoveries} pseudo-deadlock recoveries,");
    println!("{guard_cycles} guarded issue cycles across both suites.");
}
