//! Ablations of the design choices the paper discusses:
//!
//! * direct-indexed vs. fully associative Short file (§4: CAM gains little
//!   IPC for much energy);
//! * Short allocation from address computations only vs. from every result
//!   (§3.1: allocate-everything thrashes);
//! * the extra bypass level (§3.1: optional, small effect);
//! * the pseudo-deadlock guard threshold (§3.1: stall at the issue width).

use carf_bench::{mean, pct, print_table, run_matrix_cached, write_timing_json, SuiteResult};
use carf_core::{CarfParams, Policies, ShortAllocPolicy, ShortIndexPolicy};
use carf_sim::{SimConfig, SimStats};
use carf_workloads::Suite;

fn with_policies(policies: Policies) -> SimConfig {
    SimConfig::paper_carf_with(CarfParams::paper_default(), policies)
}

/// Collapse one config's Int+Fp suite results into (mean ipc, all stats).
fn collapse(int: &SuiteResult, fp: &SuiteResult) -> (f64, Vec<SimStats>) {
    let stats: Vec<SimStats> =
        int.runs.iter().chain(fp.runs.iter()).map(|(_, s)| s.clone()).collect();
    (mean(stats.iter().map(|s| s.ipc())), stats)
}

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Design-choice ablations at d+n = 20 ({} run)", budget.label());

    let variants: [(&str, Policies); 4] = [
        (
            "associative short",
            Policies { short_index: ShortIndexPolicy::Associative, ..Policies::default() },
        ),
        (
            "alloc on all results",
            Policies { short_alloc: ShortAllocPolicy::AllResults, ..Policies::default() },
        ),
        ("no extra bypass", Policies { extra_bypass: false, ..Policies::default() }),
        ("guard threshold 0", Policies { long_stall_threshold: 0, ..Policies::default() }),
    ];
    const AGING: [(&str, u64); 4] = [
        ("tick every 64 commits", 64),
        ("tick every 128 (paper)", 128),
        ("tick every 512", 512),
        ("never free shorts", 0),
    ];

    // One flat matrix over every ablated config: the reference, the four
    // policy variants, the conservative LSQ, and the aging-interval sweep.
    let mut configs = vec![with_policies(Policies::default())];
    for (_, policies) in &variants {
        configs.push(with_policies(*policies));
    }
    {
        let mut cfg = SimConfig::paper_carf(CarfParams::paper_default());
        cfg.mem_dep = carf_sim::MemDepPolicy::Conservative;
        configs.push(cfg);
    }
    for (_, interval) in AGING {
        let mut cfg = SimConfig::paper_carf(CarfParams::paper_default());
        cfg.rob_interval_commits = interval;
        configs.push(cfg);
    }
    let mut points = Vec::new();
    for cfg in &configs {
        points.push((cfg.clone(), Suite::Int));
        points.push((cfg.clone(), Suite::Fp));
    }
    let results = run_matrix_cached(&points, &budget).results;
    let by_config = |i: usize| collapse(&results[2 * i], &results[2 * i + 1]);

    let (ref_ipc, ref_stats) = by_config(0);
    let short_writes: u64 = ref_stats.iter().map(|s| s.int_rf.writes.short).sum();

    let mut rows = vec![vec![
        "paper default".into(),
        "100.0%".into(),
        format!("{short_writes}"),
        "direct, addresses-only, extra bypass, guard=8".into(),
    ]];

    for (vi, (name, _)) in variants.iter().enumerate() {
        let (ipc, stats) = by_config(1 + vi);
        let sw: u64 = stats.iter().map(|s| s.int_rf.writes.short).sum();
        let note = match *name {
            "associative short" => "paper: tiny IPC gain, large energy cost (CAM)",
            "alloc on all results" => "paper: thrashes the small Short file",
            "no extra bypass" => "paper: optional, little performance effect",
            _ => "paper: stall at issue width avoids pseudo-deadlock",
        };
        rows.push(vec![
            (*name).into(),
            pct(ipc / ref_ipc),
            format!("{sw}"),
            note.into(),
        ]);
    }
    print_table(
        "IPC relative to the paper's policies",
        &["variant", "rel IPC", "short writes", "note"],
        &rows,
    );

    // Memory-dependence policy (beyond the paper): the optimistic default
    // (loads run ahead of unresolved stores, squash on violation) vs a
    // fully conservative LSQ.
    {
        let (ipc, _) = by_config(5);
        let violations: u64 = ref_stats.iter().map(|s| s.mem_dep_violations).sum();
        println!(
            "\nmemory-dependence ablation: a fully conservative LSQ reaches {} of\n\
             the optimistic default's IPC; the default squashed {violations}\n\
             violations across both suites.",
            pct(ipc / ref_ipc)
        );
    }

    // Short-file aging interval: the paper ticks once per ROB's worth of
    // commits; never freeing shows whether the aging scheme earns its keep.
    let mut rows = vec![];
    for (ai, (label, _)) in AGING.iter().enumerate() {
        let (ipc, stats) = by_config(6 + ai);
        let sw: u64 = stats.iter().map(|s| s.int_rf.writes.short).sum();
        let occupancy = mean(stats.iter().map(|s| s.short_mean_occupancy));
        rows.push(vec![
            (*label).into(),
            pct(ipc / ref_ipc),
            format!("{sw}"),
            format!("{occupancy:.1} / 8"),
        ]);
    }
    print_table(
        "Short-file aging interval",
        &["variant", "rel IPC", "short writes", "mean occupancy"],
        &rows,
    );

    // Guard-pressure detail: deadlock recoveries must stay at zero with the
    // paper's guard.
    let recoveries: u64 = ref_stats.iter().map(|s| s.deadlock_recoveries).sum();
    let guard_cycles: u64 = ref_stats.iter().map(|s| s.long_guard_stall_cycles).sum();
    println!("\nwith the paper's guard: {recoveries} pseudo-deadlock recoveries,");
    println!("{guard_cycles} guarded issue cycles across both suites.");
    write_timing_json(&budget);
}
