//! `carf-trace`: pipeline observability CLI.
//!
//! Runs selected workloads under the baseline and/or content-aware
//! machines with a [`TraceRecorder`] installed, then reports per-cycle
//! stall attribution (buckets sum to total cycles by construction),
//! stage-latency histograms, and the CARF-specific counters (WR1
//! outcomes, Long-file writeback retries, issue-guard cycles). It also
//! exports a Chrome trace-event JSON per point (loadable in Perfetto or
//! `chrome://tracing`) and merges a counters record into
//! `results/trace_counters.json`.
//!
//! Replaces the old `diag_stalls` diagnostic, which ignored its arguments
//! and panicked on unknown workloads.

use carf_bench::cli::{CliSpec, MachineSet, OptSpec};
use carf_bench::{parallel, Budget};
use carf_sim::{SimConfig, AnySimulator, StageHistograms, StallReport, TraceRecorder};
use carf_workloads::{all_workloads, Workload};

/// Workloads traced when none are named: the four kernels where the
/// baseline and content-aware machines diverge the most.
const DEFAULT_WORKLOADS: [&str; 4] = ["stencil3", "particle_push", "tridiag", "sort_kernel"];

const SPEC: CliSpec = CliSpec {
    bin: "carf-trace",
    options: &[
        OptSpec {
            name: "--window",
            value: Some("N"),
            help: "Chrome-trace cycle window length (default 5000)",
        },
        OptSpec {
            name: "--machine",
            value: Some("M"),
            help: "trace the baseline, the content-aware machine, or both (default)",
        },
    ],
    operands: Some((
        "workload",
        "kernels to trace (default: stencil3 particle_push tridiag sort_kernel)",
    )),
};

struct TraceArgs {
    budget: Budget,
    window: u64,
    machine: MachineSet,
    workloads: Vec<Workload>,
}

fn parse_trace_args() -> TraceArgs {
    let parsed = SPEC.parse();
    let window = match parsed.option("--window") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n >= 1 => n,
            _ => SPEC.fail("`--window` expects a positive cycle count"),
        },
        None => 5_000,
    };
    let machine = match parsed.option("--machine") {
        Some(v) => MachineSet::parse(v).unwrap_or_else(|bad| SPEC.fail(&bad)),
        None => MachineSet::Both,
    };

    let registry = all_workloads();
    let names: Vec<String> = if parsed.operands.is_empty() {
        DEFAULT_WORKLOADS.iter().map(|s| s.to_string()).collect()
    } else {
        parsed.operands
    };
    let mut workloads = Vec::new();
    for name in &names {
        match registry.iter().find(|w| w.name == *name) {
            Some(w) => workloads.push(w.clone()),
            None => {
                eprintln!(
                    "valid workloads: {}",
                    registry.iter().map(|w| w.name).collect::<Vec<_>>().join(" ")
                );
                SPEC.fail(&format!("unknown workload `{name}`"));
            }
        }
    }

    TraceArgs { budget: parsed.budget, window, machine, workloads }
}

/// Everything one traced point produces.
struct PointOutput {
    workload: String,
    label: &'static str,
    config_tag: String,
    ipc: f64,
    cycles: u64,
    committed: u64,
    report: StallReport,
    histograms: StageHistograms,
    chrome_json: String,
    counters_json: String,
}

fn run_point(
    workload: &Workload,
    label: &'static str,
    config: &SimConfig,
    budget: &Budget,
    window: u64,
) -> Result<PointOutput, String> {
    let program = workload.build(workload.size(budget.size));
    let mut sim =
        AnySimulator::with_tracer(config.clone(), &program, TraceRecorder::with_window(0, window));
    let result = sim
        .run(budget.max_insts)
        .map_err(|e| format!("{} under {label}: {e}", workload.name))?;
    let recorder = sim.into_tracer();
    let report = recorder.stall_report();
    if report.bucket_sum() != recorder.cycles() {
        return Err(format!(
            "{} under {label}: stall buckets sum to {} but {} cycles ran \
             (attribution invariant broken)",
            workload.name,
            report.bucket_sum(),
            recorder.cycles()
        ));
    }
    Ok(PointOutput {
        workload: workload.name.to_string(),
        label,
        config_tag: config.describe(),
        ipc: result.ipc,
        cycles: result.cycles,
        committed: result.committed,
        report,
        histograms: recorder.histograms().clone(),
        chrome_json: recorder.chrome_trace_json(),
        counters_json: recorder.counters_json(),
    })
}

fn main() {
    let TraceArgs { budget, window, machine, workloads } = parse_trace_args();

    let configs = machine.configs();

    let points: Vec<(Workload, &'static str, SimConfig)> = workloads
        .iter()
        .flat_map(|w| configs.iter().map(|(l, c)| (w.clone(), *l, c.clone())))
        .collect();

    println!(
        "carf-trace: {} point(s), budget={}, window={} cycles, {} worker(s)",
        points.len(),
        budget.label(),
        window,
        budget.jobs
    );

    let results = parallel::run_ordered(&points, budget.jobs, |(w, label, cfg)| {
        run_point(w, label, cfg, &budget, window)
    });

    let mut failed = false;
    let traces_dir = parallel::results_dir().join("traces");
    let mut counters_path = None;
    for result in results {
        let point = match result {
            Ok(p) => p,
            Err(msg) => {
                eprintln!("error: {msg}");
                failed = true;
                continue;
            }
        };
        println!(
            "\n== {} [{}: {}] ==\nipc={:.3}  cycles={}  committed={}",
            point.workload, point.label, point.config_tag, point.ipc, point.cycles, point.committed
        );
        print!("{}", point.report);
        let h = &point.histograms;
        println!(
            "latency means (cycles): dispatch->issue {:.1}, issue->execute {:.1}, \
             execute->retire {:.1}, dispatch->retire {:.1}",
            h.dispatch_to_issue.mean(),
            h.issue_to_execute.mean(),
            h.execute_to_retire.mean(),
            h.dispatch_to_retire.mean()
        );

        if std::fs::create_dir_all(&traces_dir).is_ok() {
            let trace_path =
                traces_dir.join(format!("{}_{}.json", point.workload, point.label));
            match std::fs::write(&trace_path, &point.chrome_json) {
                Ok(()) => println!("chrome trace -> {}", trace_path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", trace_path.display()),
            }
        }

        // One merged record per (bin, workload, machine, budget).
        let record = format!(
            "{{\"bin\":\"carf-trace\",\"workload\":\"{}\",\"machine\":\"{}\",\
             \"budget\":\"{}\",{}",
            point.workload,
            point.label,
            budget.label(),
            &point.counters_json[1..]
        );
        counters_path = Some(parallel::write_merged_record(
            "trace_counters.json",
            &record,
            &["bin", "workload", "machine", "budget"],
        ));
    }
    if let Some(path) = counters_path {
        println!("\ncounters -> {}", path.display());
    }
    if failed {
        std::process::exit(1);
    }
}
