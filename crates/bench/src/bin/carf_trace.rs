//! `carf-trace`: pipeline observability CLI.
//!
//! Runs selected workloads under the baseline and/or content-aware
//! machines with a [`TraceRecorder`] installed, then reports per-cycle
//! stall attribution (buckets sum to total cycles by construction),
//! stage-latency histograms, and the CARF-specific counters (WR1
//! outcomes, Long-file writeback retries, issue-guard cycles). It also
//! exports a Chrome trace-event JSON per point (loadable in Perfetto or
//! `chrome://tracing`) and merges a counters record into
//! `results/trace_counters.json`.
//!
//! Replaces the old `diag_stalls` diagnostic, which ignored its arguments
//! and panicked on unknown workloads.

use carf_bench::{parallel, Budget};
use carf_core::CarfParams;
use carf_sim::{SimConfig, Simulator, StageHistograms, StallReport, TraceRecorder};
use carf_workloads::{all_workloads, Workload};

/// Workloads traced when none are named: the four kernels where the
/// baseline and content-aware machines diverge the most.
const DEFAULT_WORKLOADS: [&str; 4] = ["stencil3", "particle_push", "tridiag", "sort_kernel"];

/// Which machine configurations to trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Machine {
    Base,
    Carf,
    Both,
}

struct TraceArgs {
    budget: Budget,
    window: u64,
    machine: Machine,
    workloads: Vec<Workload>,
}

fn usage() -> ! {
    eprintln!(
        "usage: carf-trace [--quick | --full] [--jobs N] [--window N] \
         [--machine base|carf|both] [workload...]"
    );
    eprintln!("  --quick        quick budget: ~200k instructions per point (default)");
    eprintln!("  --full         full budget: ~1M instructions per point");
    eprintln!("  --jobs N       worker threads (default: CARF_JOBS or available cores)");
    eprintln!("  --window N     Chrome-trace cycle window length (default 5000)");
    eprintln!("  --machine M    trace the baseline, the content-aware machine, or both (default)");
    eprintln!("  workload...    kernels to trace (default: {})", DEFAULT_WORKLOADS.join(" "));
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage()
}

fn parse_machine(v: &str) -> Machine {
    match v {
        "base" | "baseline" => Machine::Base,
        "carf" => Machine::Carf,
        "both" => Machine::Both,
        other => fail(&format!("`--machine` expects base, carf, or both (got `{other}`)")),
    }
}

fn parse_window(v: &str) -> u64 {
    match v.parse::<u64>() {
        Ok(n) if n >= 1 => n,
        _ => fail("`--window` expects a positive cycle count"),
    }
}

fn parse_trace_args() -> TraceArgs {
    let mut budget_args: Vec<String> = Vec::new();
    let mut window: u64 = 5_000;
    let mut machine = Machine::Both;
    let mut names: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--window" => match args.next() {
                Some(v) => window = parse_window(&v),
                None => fail("`--window` expects a value"),
            },
            "--machine" => match args.next() {
                Some(v) => machine = parse_machine(&v),
                None => fail("`--machine` expects a value"),
            },
            "--quick" | "--full" => budget_args.push(arg),
            "--jobs" => {
                budget_args.push(arg);
                if let Some(v) = args.next() {
                    budget_args.push(v);
                }
            }
            s if s.starts_with("--window=") => window = parse_window(&s["--window=".len()..]),
            s if s.starts_with("--machine=") => machine = parse_machine(&s["--machine=".len()..]),
            s if s.starts_with("--jobs=") => budget_args.push(arg),
            s if s.starts_with('-') => fail(&format!("unrecognized argument `{s}`")),
            _ => names.push(arg),
        }
    }

    let budget = Budget::parse_args(budget_args).unwrap_or_else(|bad| fail(&bad));

    let registry = all_workloads();
    if names.is_empty() {
        names = DEFAULT_WORKLOADS.iter().map(|s| s.to_string()).collect();
    }
    let mut workloads = Vec::new();
    for name in &names {
        match registry.iter().find(|w| w.name == *name) {
            Some(w) => workloads.push(w.clone()),
            None => {
                eprintln!("error: unknown workload `{name}`");
                eprintln!(
                    "valid workloads: {}",
                    registry.iter().map(|w| w.name).collect::<Vec<_>>().join(" ")
                );
                std::process::exit(2);
            }
        }
    }

    TraceArgs { budget, window, machine, workloads }
}

/// Everything one traced point produces.
struct PointOutput {
    workload: String,
    label: &'static str,
    config_tag: String,
    ipc: f64,
    cycles: u64,
    committed: u64,
    report: StallReport,
    histograms: StageHistograms,
    chrome_json: String,
    counters_json: String,
}

fn run_point(
    workload: &Workload,
    label: &'static str,
    config: &SimConfig,
    budget: &Budget,
    window: u64,
) -> Result<PointOutput, String> {
    let program = workload.build(workload.size(budget.size));
    let mut sim =
        Simulator::with_tracer(config.clone(), &program, TraceRecorder::with_window(0, window));
    let result = sim
        .run(budget.max_insts)
        .map_err(|e| format!("{} under {label}: {e}", workload.name))?;
    let recorder = sim.into_tracer();
    let report = recorder.stall_report();
    if report.bucket_sum() != recorder.cycles() {
        return Err(format!(
            "{} under {label}: stall buckets sum to {} but {} cycles ran \
             (attribution invariant broken)",
            workload.name,
            report.bucket_sum(),
            recorder.cycles()
        ));
    }
    Ok(PointOutput {
        workload: workload.name.to_string(),
        label,
        config_tag: config.describe(),
        ipc: result.ipc,
        cycles: result.cycles,
        committed: result.committed,
        report,
        histograms: recorder.histograms().clone(),
        chrome_json: recorder.chrome_trace_json(),
        counters_json: recorder.counters_json(),
    })
}

fn main() {
    let TraceArgs { budget, window, machine, workloads } = parse_trace_args();

    let mut configs: Vec<(&'static str, SimConfig)> = Vec::new();
    if machine != Machine::Carf {
        configs.push(("base", SimConfig::paper_baseline()));
    }
    if machine != Machine::Base {
        configs.push(("carf", SimConfig::paper_carf(CarfParams::paper_default())));
    }

    let points: Vec<(Workload, &'static str, SimConfig)> = workloads
        .iter()
        .flat_map(|w| configs.iter().map(|(l, c)| (w.clone(), *l, c.clone())))
        .collect();

    println!(
        "carf-trace: {} point(s), budget={}, window={} cycles, {} worker(s)",
        points.len(),
        budget.label(),
        window,
        budget.jobs
    );

    let results = parallel::run_ordered(&points, budget.jobs, |(w, label, cfg)| {
        run_point(w, label, cfg, &budget, window)
    });

    let mut failed = false;
    let traces_dir = parallel::results_dir().join("traces");
    let mut counters_path = None;
    for result in results {
        let point = match result {
            Ok(p) => p,
            Err(msg) => {
                eprintln!("error: {msg}");
                failed = true;
                continue;
            }
        };
        println!(
            "\n== {} [{}: {}] ==\nipc={:.3}  cycles={}  committed={}",
            point.workload, point.label, point.config_tag, point.ipc, point.cycles, point.committed
        );
        print!("{}", point.report);
        let h = &point.histograms;
        println!(
            "latency means (cycles): dispatch->issue {:.1}, issue->execute {:.1}, \
             execute->retire {:.1}, dispatch->retire {:.1}",
            h.dispatch_to_issue.mean(),
            h.issue_to_execute.mean(),
            h.execute_to_retire.mean(),
            h.dispatch_to_retire.mean()
        );

        if std::fs::create_dir_all(&traces_dir).is_ok() {
            let trace_path =
                traces_dir.join(format!("{}_{}.json", point.workload, point.label));
            match std::fs::write(&trace_path, &point.chrome_json) {
                Ok(()) => println!("chrome trace -> {}", trace_path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", trace_path.display()),
            }
        }

        // One merged record per (bin, workload, machine, budget).
        let record = format!(
            "{{\"bin\":\"carf-trace\",\"workload\":\"{}\",\"machine\":\"{}\",\
             \"budget\":\"{}\",{}",
            point.workload,
            point.label,
            budget.label(),
            &point.counters_json[1..]
        );
        counters_path = Some(parallel::write_merged_record(
            "trace_counters.json",
            &record,
            &["bin", "workload", "machine", "budget"],
        ));
    }
    if let Some(path) = counters_path {
        println!("\ncounters -> {}", path.display());
    }
    if failed {
        std::process::exit(1);
    }
}
