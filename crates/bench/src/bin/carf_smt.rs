//! `carf-smt`: the multi-context scaling study over the backend zoo.
//!
//! Replaces the old `ext_smt_timing` pair study with the general
//! [`MultiSim`](carf_sim::MultiSim) sweep: 1/2/4 hardware contexts per
//! point, every register-file backend (baseline, content-aware,
//! compressed, port-reduced), shared-Long capacities 48/56/64, optional
//! shared L2 and fetch-slot arbitration. Backends without a Long file
//! ignore the capacity window and serve as control rows — identical
//! sharing pressure on the front end and the L2, none on the register
//! file.
//!
//! The paper's §6 claim under test: "a smaller number of long registers
//! can feed more than one thread, especially if only one of them has
//! high peak register usage." Per point the study reports each
//! context's IPC, the aggregate throughput, and the Long-guard stall
//! share; a merged record lands in `results/smt_scaling.json`.
//!
//! Every co-simulation is one content-addressed cache point (the key is
//! the ordered tuple of per-context config+workload fingerprints plus
//! the sharing policy), so a warm re-run does zero simulation and
//! reproduces the record byte-identically.

use carf_bench::cli::{CliSpec, MachineSet, OptSpec};
use carf_bench::{parallel, print_table, run_multi_cached, MultiPoint, MultiThreadRecord};
use carf_sim::{FetchArbitration, RegFileKind, SharingPolicy, SimConfig};
use carf_workloads::{all_workloads, Workload};

const SPEC: CliSpec = CliSpec {
    bin: "carf-smt",
    options: &[
        OptSpec {
            name: "--machine",
            value: Some("M"),
            help: "base, carf, both, compressed, ports, or all (default all)",
        },
        OptSpec {
            name: "--threads",
            value: Some("T"),
            help: "context count: 1, 2, 4, or all (default all)",
        },
        OptSpec {
            name: "--capacity",
            value: Some("K"),
            help: "shared Long capacity: 48, 56, 64, or all (default all)",
        },
        OptSpec {
            name: "--l2",
            value: Some("MODE"),
            help: "private (default) or shared: one L2 array behind the private L1s",
        },
        OptSpec {
            name: "--fetch",
            value: Some("P"),
            help: "free (default), rr:N, or icount:N fetch-slot arbitration",
        },
    ],
    operands: None,
};

/// The workload rotation: context `i` of every point runs `PICK[i % 4]`.
/// The first two are address-heavy (modest Long pressure), the last two
/// long-heavy — so the 2-context points mix one of each and the
/// 4-context points carry the full spread.
const PICK: [&str; 4] = ["pointer_chase", "sparse_update", "hash_table", "matvec"];

/// Shared capacities swept (all ≤ the 64-entry private file below).
const CAPACITIES: [usize; 3] = [48, 56, 64];

/// Context counts swept.
const THREADS: [usize; 3] = [1, 2, 4];

/// Shared-clock ceiling per co-simulation (generous: a quick-budget
/// 4-context point finishes in well under a million cycles).
const MAX_CYCLES: u64 = 50_000_000;

fn parse_fetch(v: &str) -> Result<FetchArbitration, String> {
    let slots = |s: &str, kind: &str| {
        s.parse::<usize>()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("`--fetch {kind}:N` expects a positive slot count (got `{s}`)"))
    };
    if v == "free" {
        Ok(FetchArbitration::Free)
    } else if let Some(s) = v.strip_prefix("rr:") {
        Ok(FetchArbitration::RoundRobin { slots: slots(s, "rr")? })
    } else if let Some(s) = v.strip_prefix("icount:") {
        Ok(FetchArbitration::ICount { slots: slots(s, "icount")? })
    } else {
        Err(format!("`--fetch` expects free, rr:N, or icount:N (got `{v}`)"))
    }
}

fn parse_sweep<T>(v: &str, name: &str, allowed: &[T]) -> Result<Vec<T>, String>
where
    T: Copy + std::fmt::Display + PartialEq + std::str::FromStr,
{
    if v == "all" {
        return Ok(allowed.to_vec());
    }
    if let Ok(n) = v.parse::<T>() {
        if let Some(t) = allowed.iter().find(|a| **a == n) {
            return Ok(vec![*t]);
        }
    }
    let opts: Vec<String> = allowed.iter().map(|a| a.to_string()).collect();
    Err(format!("`{name}` expects {}, or all (got `{v}`)", opts.join(", ")))
}

/// The swept machine configurations: the backend zoo with every
/// Long-file backend widened to 64 private entries, so each context's
/// file is at least as large as any shared capacity it is windowed to.
fn machines(set: MachineSet) -> Vec<(&'static str, SimConfig)> {
    set.configs()
        .into_iter()
        .map(|(label, mut cfg)| {
            match &mut cfg.regfile {
                RegFileKind::ContentAware(p, _) | RegFileKind::Compressed(p) => {
                    p.long_entries = 64;
                }
                RegFileKind::Baseline | RegFileKind::PortReduced(_) => {}
            }
            (label, cfg)
        })
        .collect()
}

fn workload(name: &str) -> Workload {
    all_workloads()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("workload {name} is registered"))
}

fn main() {
    let parsed = SPEC.parse();
    let budget = parsed.budget;
    let set = match parsed.option("--machine") {
        Some(v) => MachineSet::parse(v).unwrap_or_else(|bad| SPEC.fail(&bad)),
        None => MachineSet::All,
    };
    let threads = match parsed.option("--threads") {
        Some(v) => parse_sweep(v, "--threads", &THREADS).unwrap_or_else(|bad| SPEC.fail(&bad)),
        None => THREADS.to_vec(),
    };
    let capacities = match parsed.option("--capacity") {
        Some(v) => parse_sweep(v, "--capacity", &CAPACITIES).unwrap_or_else(|bad| SPEC.fail(&bad)),
        None => CAPACITIES.to_vec(),
    };
    let shared_l2 = match parsed.option("--l2") {
        None | Some("private") => false,
        Some("shared") => true,
        Some(v) => SPEC.fail(&format!("`--l2` expects private or shared (got `{v}`)")),
    };
    let fetch = match parsed.option("--fetch") {
        Some(v) => parse_fetch(v).unwrap_or_else(|bad| SPEC.fail(&bad)),
        None => FetchArbitration::Free,
    };
    let machines = machines(set);

    println!(
        "multi-context scaling: {} machine(s) x {:?} context(s) x K={:?}, \
         l2={}, fetch={}, budget={}, {} worker(s)",
        machines.len(),
        threads,
        capacities,
        if shared_l2 { "shared" } else { "private" },
        fetch.canonical(),
        budget.label(),
        budget.jobs
    );

    // One flat point list; results() comes back in the same order.
    let mut points: Vec<MultiPoint> = Vec::new();
    for (label, cfg) in &machines {
        for &n in &threads {
            for &cap in &capacities {
                let names: Vec<&str> = (0..n).map(|i| PICK[i % PICK.len()]).collect();
                points.push(MultiPoint {
                    label: format!("{label}/t{n}/K{cap}"),
                    contexts: names.iter().map(|w| (cfg.clone(), workload(w))).collect(),
                    policy: SharingPolicy {
                        shared_long_capacity: Some(cap),
                        shared_l2,
                        fetch,
                    },
                    max_cycles: MAX_CYCLES,
                    // Fixed total work per point: N contexts split the
                    // budget, so the 4-context points cost what the solo
                    // points cost and aggregate IPC is comparable.
                    per_thread_insts: budget.max_insts / n as u64,
                });
            }
        }
    }
    let outcome = run_multi_cached(&points, &budget);

    let total_ipc = |threads: &[MultiThreadRecord]| -> f64 {
        threads.iter().map(MultiThreadRecord::ipc).sum()
    };
    let stall_share = |threads: &[MultiThreadRecord]| -> f64 {
        threads.iter().map(MultiThreadRecord::stall_share).sum::<f64>() / threads.len() as f64
    };

    let mut header = vec!["machine".to_string(), "ctxs".to_string(), "workloads".to_string()];
    for &cap in &capacities {
        header.push(format!("K={cap} ipc-sum"));
        header.push(format!("K={cap} guard"));
    }
    let header: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut table: Vec<Vec<String>> = Vec::new();
    let mut records: Vec<String> = Vec::new();
    let mut point_iter = points.iter().zip(&outcome.results);
    for (label, _) in &machines {
        for &n in &threads {
            let names: Vec<&str> = (0..n).map(|i| PICK[i % PICK.len()]).collect();
            let mut cells =
                vec![(*label).to_string(), n.to_string(), names.join("+")];
            for &cap in &capacities {
                let (point, result) = point_iter.next().expect("one result per point");
                assert_eq!(point.label, format!("{label}/t{n}/K{cap}"), "sweep order");
                cells.push(format!("{:.3}", total_ipc(result)));
                cells.push(format!("{:.1}%", stall_share(result) * 100.0));

                let ipcs: Vec<String> =
                    result.iter().map(|r| format!("{:.4}", r.ipc())).collect();
                let stalls: Vec<String> =
                    result.iter().map(|r| r.long_guard_stall_cycles.to_string()).collect();
                records.push(format!(
                    "{{\"bin\":\"carf-smt\",\"machine\":\"{label}\",\"threads\":{n},\
                     \"capacity\":{cap},\"l2\":\"{}\",\"fetch\":\"{}\",\
                     \"budget\":\"{}\",\"workloads\":\"{}\",\
                     \"ipc\":[{}],\"ipc_total\":{:.4},\"guard_stalls\":[{}],\
                     \"guard_stall_share\":{:.4}}}",
                    if shared_l2 { "shared" } else { "private" },
                    fetch.canonical(),
                    budget.label(),
                    names.join("+"),
                    ipcs.join(","),
                    total_ipc(result),
                    stalls.join(","),
                    stall_share(result),
                ));
            }
            table.push(cells);
        }
    }

    print_table(
        &format!(
            "multi-context scaling ({} budget): aggregate IPC and mean Long-guard \
             stall share per shared capacity",
            budget.label()
        ),
        &header,
        &table,
    );
    println!(
        "\nPaper §6: for the content-aware rows, sharing is nearly free until the\n\
         co-runners' peak Long demand approaches K (watch the guard share climb as\n\
         K shrinks and the context count grows; base/ports rows are controls — the\n\
         capacity window has nothing to act on)."
    );

    let mut path = None;
    for record in &records {
        path = Some(parallel::write_merged_record(
            "smt_scaling.json",
            record,
            &["bin", "machine", "threads", "capacity", "l2", "fetch", "budget"],
        ));
    }
    if let Some(path) = path {
        println!("records -> {}", path.display());
    }
}
