//! Figure 7: total register-file energy (reads + writes) relative to the
//! unlimited-resource file, as a function of `d+n`, with the baseline for
//! comparison.
//!
//! Combines the measured access counts (Figure 6's data) with the
//! per-access energies (Table 3's data), exactly as the paper does.

use carf_bench::{Budget, 
    baseline_geometry, pct, print_table, rf_energy_carf, rf_energy_monolithic, run_suite,
    unlimited_geometry, ClassTotals, DN_SWEEP,
};
use carf_core::CarfParams;
use carf_energy::TechModel;
use carf_sim::SimConfig;
use carf_workloads::Suite;

fn totals(cfg: &SimConfig, budget: &Budget) -> (ClassTotals, ClassTotals) {
    let mut reads = ClassTotals::default();
    let mut writes = ClassTotals::default();
    for suite in [Suite::Int, Suite::Fp] {
        let (r, w) = run_suite(cfg, suite, budget).access_totals();
        reads.simple += r.simple;
        reads.short += r.short;
        reads.long += r.long;
        reads.total += r.total;
        writes.simple += w.simple;
        writes.short += w.short;
        writes.long += w.long;
        writes.total += w.total;
    }
    (reads, writes)
}

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Figure 7: relative register-file energy ({} run)", budget.label());
    let model = TechModel::default_model();

    // The unlimited machine defines 100%: its access volume priced at its
    // own per-access energy. We use the baseline machine's access counts
    // for both monolithic organizations (their pipelines are identical).
    let (base_reads, base_writes) = totals(&SimConfig::paper_baseline(), &budget);
    let unl_energy =
        rf_energy_monolithic(&model, &unlimited_geometry(), &base_reads, &base_writes);
    let base_energy =
        rf_energy_monolithic(&model, &baseline_geometry(), &base_reads, &base_writes);

    let mut rows = vec![vec![
        "baseline".to_string(),
        pct(base_energy / unl_energy),
        "~48.8%".to_string(),
        "100.0%".to_string(),
    ]];
    for dn in DN_SWEEP {
        let params = CarfParams::with_dn(dn);
        let (reads, writes) = totals(&SimConfig::paper_carf(params), &budget);
        let carf = rf_energy_carf(&model, &params, &reads, &writes);
        let paper = if dn == 20 { "~24%" } else { "-" };
        rows.push(vec![
            format!("carf d+n={dn}"),
            pct(carf / unl_energy),
            paper.to_string(),
            pct(carf / base_energy),
        ]);
    }
    print_table(
        "RF energy, reads + writes",
        &["config", "vs unlimited", "vs unlimited (paper)", "vs baseline"],
        &rows,
    );
    println!("\nPaper headline: the content-aware file halves the baseline's energy");
    println!("(roughly 77% savings against the unlimited file at d+n = 20).");
}
