//! Machine-width sensitivity (beyond the paper): how does the
//! content-aware file's IPC cost scale with issue width?
//!
//! The paper evaluates one 8-wide machine. The organization's costs (one
//! extra read stage, two-stage writeback) are pipeline-depth effects, so
//! narrower machines — with less ILP to lose — should pay less, and wider
//! ones more. This sweep quantifies that, supporting the paper's framing
//! that the technique targets wide-issue 64-bit processors.

use carf_bench::{mean, pct, print_table, run_matrix_cached, write_timing_json};
use carf_core::CarfParams;
use carf_sim::SimConfig;
use carf_workloads::Suite;

fn width_config(width: usize, base: SimConfig) -> SimConfig {
    SimConfig {
        fetch_width: width,
        issue_width: width,
        commit_width: width,
        int_units: width,
        fp_units: width,
        rf_read_ports: width as u32,
        rf_write_ports: (width * 3 / 4).max(1) as u32,
        ..base
    }
}

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Issue-width sensitivity of the content-aware organization ({} run)", budget.label());

    // One flat matrix: per width, base Int/Fp then carf Int/Fp.
    const WIDTHS: [usize; 4] = [2, 4, 8, 16];
    let mut points = Vec::new();
    for width in WIDTHS {
        let base = width_config(width, SimConfig::paper_baseline());
        let carf = width_config(width, SimConfig::paper_carf(CarfParams::paper_default()));
        points.push((base.clone(), Suite::Int));
        points.push((base, Suite::Fp));
        points.push((carf.clone(), Suite::Int));
        points.push((carf, Suite::Fp));
    }
    let results = run_matrix_cached(&points, &budget).results;

    let mut rows = Vec::new();
    for (i, width) in WIDTHS.iter().enumerate() {
        let (b_int, b_fp) = (&results[4 * i], &results[4 * i + 1]);
        let (c_int, c_fp) = (&results[4 * i + 2], &results[4 * i + 3]);
        rows.push(vec![
            format!("{width}-wide"),
            format!("{:.3}", mean(b_int.runs.iter().map(|(_, s)| s.ipc()))),
            pct(c_int.mean_relative_ipc(b_int)),
            pct(c_fp.mean_relative_ipc(b_fp)),
        ]);
    }
    print_table(
        "CARF IPC relative to a same-width baseline",
        &["machine", "base INT ipc", "INT rel", "FP rel"],
        &rows,
    );
    println!("\n(The paper's machine is the 8-wide row; 8R/6W-equivalent port scaling.)");
    write_timing_json(&budget);
}
