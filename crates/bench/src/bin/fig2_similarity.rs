//! Figure 2: distribution of `(64-d)`-similar live integer values for
//! d = 8, 12, 16.
//!
//! Same oracle as Figure 1, but live registers are grouped by their high
//! `64-d` bits, exposing *partial* value locality: the population collapses
//! into far fewer groups as `d` grows.

use carf_bench::{pct, print_table, run_suite};
use carf_core::analysis::{GroupAccumulator, GROUP_LABELS};
use carf_sim::{SimConfig, SimStats};
use carf_workloads::Suite;

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Figure 2: (64-d)-similar live value distribution ({} run)", budget.label());
    let mut cfg = SimConfig::paper_baseline();
    cfg.oracle_period = Some(budget.oracle_period);

    let mut runs: Vec<SimStats> = Vec::new();
    for suite in [Suite::Int, Suite::Fp] {
        runs.extend(run_suite(&cfg, suite, &budget).runs.into_iter().map(|(_, s)| s));
    }
    let merge = |pick: fn(&SimStats) -> &GroupAccumulator| {
        let mut acc = GroupAccumulator::new();
        for s in &runs {
            acc.merge(pick(s));
        }
        acc
    };
    let d8 = merge(|s| &s.oracle.sim_d8);
    let d12 = merge(|s| &s.oracle.sim_d12);
    let d16 = merge(|s| &s.oracle.sim_d16);

    // Attested paper anchors (Figure 2a prose): ~35% in group 1, ~9% in
    // group 2, ~10% in groups 3-4, ~35% in REST; REST shrinks as d grows
    // and the top four groups reach ~70% at d = 16.
    let paper_d8 = ["~35%", "~9%", "~10%", "-", "-", "~35%"];

    let rows: Vec<Vec<String>> = GROUP_LABELS
        .iter()
        .enumerate()
        .map(|(i, label)| {
            vec![
                label.to_string(),
                pct(d8.fractions()[i]),
                paper_d8[i].to_string(),
                pct(d12.fractions()[i]),
                pct(d16.fractions()[i]),
            ]
        })
        .collect();
    print_table(
        "Fraction of live registers per similarity group",
        &["group", "d=8", "d=8 (paper)", "d=12", "d=16"],
        &rows,
    );

    for (d, acc) in [(8usize, &d8), (12, &d12), (16, &d16)] {
        let f = acc.fractions();
        let top4 = f[0] + f[1] + f[2];
        println!("d={d:2}: top four groups capture {} (paper: ~70% at d=16); REST {}",
            pct(top4), pct(f[5]));
    }
}
