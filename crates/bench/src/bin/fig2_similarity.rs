//! Figure 2: distribution of `(64-d)`-similar live integer values for
//! d = 8, 12, 16.
//!
//! Same oracle as Figure 1, but live registers are grouped by their high
//! `64-d` bits, exposing *partial* value locality: the population collapses
//! into far fewer groups as `d` grows.
//!
//! With `--corpus` the real-program corpus runs through the same oracle
//! and the synthetic-vs-real delta (per `d`) lands in
//! `results/corpus_demographics.json`.

use carf_bench::cli::{CliSpec, OptSpec};
use carf_bench::{corpus, parallel, pct, print_table, run_suite, run_workloads, Budget};
use carf_core::analysis::{GroupAccumulator, GROUP_LABELS};
use carf_sim::{SimConfig, SimStats};
use carf_workloads::Suite;

const SPEC: CliSpec = CliSpec {
    bin: "fig2_similarity",
    options: &[
        OptSpec {
            name: "--corpus",
            value: None,
            help: "also run the real-program corpus; report the synthetic-vs-real delta",
        },
        OptSpec {
            name: "--corpus-dir",
            value: Some("DIR"),
            help: "corpus root (default: corpus/; implies --corpus)",
        },
    ],
    operands: None,
};

fn oracle_config(budget: &Budget) -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.oracle_period = Some(budget.oracle_period);
    cfg
}

fn merge(runs: &[SimStats], pick: fn(&SimStats) -> &GroupAccumulator) -> GroupAccumulator {
    let mut acc = GroupAccumulator::new();
    for s in runs {
        acc.merge(pick(s));
    }
    acc
}

fn json_fractions(f: &[f64]) -> String {
    let items: Vec<String> = f.iter().map(|x| format!("{x:.6}")).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let parsed = SPEC.parse();
    let budget = parsed.budget;
    println!("Figure 2: (64-d)-similar live value distribution ({} run)", budget.label());
    let cfg = oracle_config(&budget);

    let mut runs: Vec<SimStats> = Vec::new();
    for suite in [Suite::Int, Suite::Fp] {
        runs.extend(run_suite(&cfg, suite, &budget).runs.into_iter().map(|(_, s)| s));
    }
    let d8 = merge(&runs, |s| &s.oracle.sim_d8);
    let d12 = merge(&runs, |s| &s.oracle.sim_d12);
    let d16 = merge(&runs, |s| &s.oracle.sim_d16);

    // Attested paper anchors (Figure 2a prose): ~35% in group 1, ~9% in
    // group 2, ~10% in groups 3-4, ~35% in REST; REST shrinks as d grows
    // and the top four groups reach ~70% at d = 16.
    let paper_d8 = ["~35%", "~9%", "~10%", "-", "-", "~35%"];

    let rows: Vec<Vec<String>> = GROUP_LABELS
        .iter()
        .enumerate()
        .map(|(i, label)| {
            vec![
                label.to_string(),
                pct(d8.fractions()[i]),
                paper_d8[i].to_string(),
                pct(d12.fractions()[i]),
                pct(d16.fractions()[i]),
            ]
        })
        .collect();
    print_table(
        "Fraction of live registers per similarity group",
        &["group", "d=8", "d=8 (paper)", "d=12", "d=16"],
        &rows,
    );

    for (d, acc) in [(8usize, &d8), (12, &d12), (16, &d16)] {
        let f = acc.fractions();
        let top4 = f[0] + f[1] + f[2];
        println!("d={d:2}: top four groups capture {} (paper: ~70% at d=16); REST {}",
            pct(top4), pct(f[5]));
    }

    let Some(root) = corpus::corpus_root(&parsed) else { return };
    let workloads = match corpus::workloads(&root, Suite::Int) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let result = run_workloads(&cfg, Suite::Int, &workloads, &budget);
    let corpus_runs: Vec<SimStats> = result.runs.into_iter().map(|(_, s)| s).collect();
    let c8 = merge(&corpus_runs, |s| &s.oracle.sim_d8);
    let c12 = merge(&corpus_runs, |s| &s.oracle.sim_d12);
    let c16 = merge(&corpus_runs, |s| &s.oracle.sim_d16);

    println!();
    let rows: Vec<Vec<String>> = GROUP_LABELS
        .iter()
        .enumerate()
        .map(|(i, label)| {
            vec![
                label.to_string(),
                pct(d8.fractions()[i]),
                pct(c8.fractions()[i]),
                format!("{:+.1} pp", (c8.fractions()[i] - d8.fractions()[i]) * 100.0),
                pct(c16.fractions()[i]),
            ]
        })
        .collect();
    print_table(
        &format!("Synthetic vs corpus, d=8 ({} programs)", workloads.len()),
        &["group", "synthetic d=8", "corpus d=8", "delta", "corpus d=16"],
        &rows,
    );

    let mut fields = vec![
        format!("\"figure\": \"fig2\""),
        format!("\"budget\": \"{}\"", budget.label()),
        format!("\"programs\": {}", workloads.len()),
        format!("\"snapshots\": {}", c8.snapshots()),
    ];
    for (tag, synth, real) in [("d8", &d8, &c8), ("d12", &d12, &c12), ("d16", &d16, &c16)] {
        let (sf, cf) = (synth.fractions(), real.fractions());
        let delta: Vec<f64> = (0..sf.len()).map(|i| (cf[i] - sf[i]) * 100.0).collect();
        fields.push(format!("\"synthetic_{tag}\": {}", json_fractions(&sf)));
        fields.push(format!("\"corpus_{tag}\": {}", json_fractions(&cf)));
        fields.push(format!("\"delta_pp_{tag}\": {}", json_fractions(&delta)));
    }
    let record = format!("{{{}}}", fields.join(", "));
    let path =
        parallel::write_merged_record("corpus_demographics.json", &record, &["figure", "budget"]);
    println!("\ncorpus demographics -> {}", path.display());
}
