//! §6 supporting measurements for the proposed extensions:
//!
//! * value-type clustering — most instructions read operands of a single
//!   type (Table 4's corollary: >86%), so type-partitioned clusters would
//!   see little inter-cluster traffic;
//! * SMT sharing — the mean live Long count sits far below the provisioned
//!   48 (paper: ≈12.7), so one Long file could feed several threads (the
//!   claim `carf-smt` then measures in timing).

use carf_bench::cli::CliSpec;
use carf_bench::{mean, pct, print_table, run_matrix_cached};
use carf_core::CarfParams;
use carf_sim::SimConfig;
use carf_workloads::Suite;

const SPEC: CliSpec = CliSpec::budget_only("ext_clustering");

fn main() {
    let parsed = SPEC.parse();
    let budget = parsed.budget;
    println!("§6 extension measurements ({} run)", budget.label());
    let cfg = SimConfig::paper_carf(CarfParams::paper_default());

    // Both suites through the content-addressed cache: a warm re-run
    // serves every point from disk.
    let points = vec![(cfg.clone(), Suite::Int), (cfg, Suite::Fp)];
    let mut results = run_matrix_cached(&points, &budget).results.into_iter();
    let int = results.next().expect("int suite");
    let fp = results.next().expect("fp suite");

    let same_type = |r: &carf_bench::SuiteResult| {
        mean(r.runs.iter().map(|(_, s)| s.operand_mix.same_type_fraction()))
    };
    let rows = vec![
        vec![
            "same-type operand fraction (INT)".into(),
            pct(same_type(&int)),
            ">86%".into(),
        ],
        vec![
            "same-type operand fraction (FP)".into(),
            pct(same_type(&fp)),
            ">86%".into(),
        ],
        vec![
            "mean live Long registers".into(),
            format!(
                "{:.1}",
                mean(int.runs.iter().chain(fp.runs.iter()).map(|(_, s)| s.long_mean_live))
            ),
            "~12.7".into(),
        ],
        vec![
            "peak live Long registers".into(),
            format!(
                "{}",
                int.runs
                    .iter()
                    .chain(fp.runs.iter())
                    .map(|(_, s)| s.long_peak_live)
                    .max()
                    .unwrap_or(0)
            ),
            "≤48 (provisioned)".into(),
        ],
        vec![
            "mean Short-file occupancy".into(),
            format!(
                "{:.1} / 8",
                mean(int.runs.iter().chain(fp.runs.iter()).map(|(_, s)| s.short_mean_occupancy))
            ),
            "-".into(),
        ],
        vec![
            "result type matches a source type".into(),
            pct(mean(
                int.runs
                    .iter()
                    .chain(fp.runs.iter())
                    .map(|(_, s)| s.dest_class_match_fraction()),
            )),
            "\"typically\" (§6)".into(),
        ],
    ];
    print_table("Clustering / SMT headroom", &["metric", "measured", "paper"], &rows);
}
