//! §5 headline: the chosen configuration (d+n = 20, 8 Short, 48 Long)
//! against the baseline — IPC, energy, area, access time, and the
//! frequency-scaling speed-up estimate.

use carf_bench::{
    baseline_geometry, carf_geometries, pct, print_table, rf_energy_carf, rf_energy_monolithic,
    run_matrix_cached, unlimited_geometry, write_timing_json, ClassTotals,
};
use carf_core::CarfParams;
use carf_energy::TechModel;
use carf_sim::SimConfig;
use carf_workloads::Suite;

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Headline summary at d+n = 20 ({} run)", budget.label());
    let params = CarfParams::paper_default();
    let model = TechModel::default_model();

    let base_cfg = SimConfig::paper_baseline();
    let carf_cfg = SimConfig::paper_carf(params);

    // All four suite runs dispatch as one matrix over the worker pool.
    let results = run_matrix_cached(
        &[
            (base_cfg.clone(), Suite::Int),
            (base_cfg, Suite::Fp),
            (carf_cfg.clone(), Suite::Int),
            (carf_cfg, Suite::Fp),
        ],
        &budget,
    )
    .results;
    let (base_int, base_fp) = (&results[0], &results[1]);
    let (carf_int, carf_fp) = (&results[2], &results[3]);

    let int_delta = carf_int.mean_relative_ipc(base_int) - 1.0;
    let fp_delta = carf_fp.mean_relative_ipc(base_fp) - 1.0;

    // Energy: measured access counts priced by the model.
    let sum = |a: ClassTotals, b: ClassTotals| ClassTotals {
        simple: a.simple + b.simple,
        short: a.short + b.short,
        long: a.long + b.long,
        total: a.total + b.total,
    };
    let (bri, bwi) = base_int.access_totals();
    let (brf, bwf) = base_fp.access_totals();
    let (base_reads, base_writes) = (sum(bri, brf), sum(bwi, bwf));
    let (cri, cwi) = carf_int.access_totals();
    let (crf, cwf) = carf_fp.access_totals();
    let (carf_reads, carf_writes) = (sum(cri, crf), sum(cwi, cwf));

    let e_base =
        rf_energy_monolithic(&model, &baseline_geometry(), &base_reads, &base_writes);
    let e_unl =
        rf_energy_monolithic(&model, &unlimited_geometry(), &base_reads, &base_writes);
    let e_carf = rf_energy_carf(&model, &params, &carf_reads, &carf_writes);

    let a_base = model.area(&baseline_geometry());
    let a_carf: f64 = carf_geometries(&params).iter().map(|g| model.area(g)).sum();
    let t_base = model.access_time(&baseline_geometry());
    let t_carf = carf_geometries(&params)
        .iter()
        .map(|g| model.access_time(g))
        .fold(0.0f64, f64::max);

    let rows = vec![
        vec![
            "IPC delta (INT)".into(),
            format!("{:+.2}%", int_delta * 100.0),
            "-1.7%".into(),
        ],
        vec![
            "IPC delta (FP)".into(),
            format!("{:+.2}%", fp_delta * 100.0),
            "-0.3%".into(),
        ],
        vec!["RF energy vs baseline".into(), pct(e_carf / e_base), "~50%".into()],
        vec!["RF energy vs unlimited".into(), pct(e_carf / e_unl), "~23%".into()],
        vec!["RF area vs baseline".into(), pct(a_carf / a_base), "82.1%".into()],
        vec!["RF access time vs baseline".into(), pct(t_carf / t_base), "~85%".into()],
    ];
    print_table("Content-aware vs baseline", &["metric", "measured", "paper"], &rows);

    // Frequency-scaling estimate, as in the paper's §5: if the access-time
    // headroom converts into clock frequency, the IPC loss flips into a
    // speed-up.
    println!("\nFrequency-scaling estimate (paper: +5% clock → +3% perf; +10..15% → +8..13%):");
    let loss = (int_delta + fp_delta) / 2.0;
    for boost in [0.05, 0.10, 0.15] {
        let speedup = (1.0 + loss) * (1.0 + boost) - 1.0;
        println!("  clock +{:>4}: overall {:+.1}%", pct(boost), speedup * 100.0);
    }
    write_timing_json(&budget);
}
