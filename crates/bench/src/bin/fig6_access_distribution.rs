//! Figure 6: register-file READ and WRITE access distribution by value
//! type as a function of `d+n` (n fixed at 3, 8 Short / 48 Long).
//!
//! The paper's trend: growing `d+n` reclassifies long values as short or
//! simple — at `d+n = 24` over half of all accesses are short and long
//! accesses drop below 20%.

use carf_bench::{pct, print_table, run_suite, DN_SWEEP};
use carf_core::{CarfParams, ValueClass};
use carf_sim::SimConfig;
use carf_workloads::Suite;

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Figure 6: access distribution by value type ({} run)", budget.label());

    let mut read_rows = Vec::new();
    let mut write_rows = Vec::new();
    for dn in DN_SWEEP {
        let cfg = SimConfig::paper_carf(CarfParams::with_dn(dn));
        let int = run_suite(&cfg, Suite::Int, &budget);
        let fp = run_suite(&cfg, Suite::Fp, &budget);
        let mut reads = int.access_totals().0;
        let mut writes = int.access_totals().1;
        let (fr, fw) = fp.access_totals();
        reads.simple += fr.simple;
        reads.short += fr.short;
        reads.long += fr.long;
        writes.simple += fw.simple;
        writes.short += fw.short;
        writes.long += fw.long;
        read_rows.push(vec![
            format!("{dn}"),
            pct(reads.fraction(ValueClass::Simple)),
            pct(reads.fraction(ValueClass::Short)),
            pct(reads.fraction(ValueClass::Long)),
        ]);
        write_rows.push(vec![
            format!("{dn}"),
            pct(writes.fraction(ValueClass::Simple)),
            pct(writes.fraction(ValueClass::Short)),
            pct(writes.fraction(ValueClass::Long)),
        ]);
    }
    print_table("READ accesses by value type", &["d+n", "simple", "short", "long"], &read_rows);
    print_table("WRITE accesses by value type", &["d+n", "simple", "short", "long"], &write_rows);
    println!("\nPaper anchors: long fraction falls as d+n grows; at d+n = 24 short");
    println!("accesses exceed 50% of reads and long accesses sit below 20%.");
}
