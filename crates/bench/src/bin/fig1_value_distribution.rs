//! Figure 1: distribution of live integer register values by frequency
//! group, for the INT and FP suites.
//!
//! Reproduces the paper's oracle: every sampling period the live integer
//! physical-register values are grouped by exact value, groups are ranked
//! by population, and each live register is attributed to its group's rank
//! bucket.

use carf_bench::{pct, print_table, run_suite, Budget};
use carf_core::analysis::{GroupAccumulator, GROUP_LABELS};
use carf_sim::SimConfig;
use carf_workloads::Suite;

fn merged(suite: Suite, budget: &Budget) -> GroupAccumulator {
    let mut cfg = SimConfig::paper_baseline();
    cfg.oracle_period = Some(budget.oracle_period);
    let result = run_suite(&cfg, suite, budget);
    let mut acc = GroupAccumulator::new();
    for (_, stats) in &result.runs {
        acc.merge(&stats.oracle.values);
    }
    acc
}

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Figure 1: distribution of live integer data values ({} run)", budget.label());
    let int = merged(Suite::Int, &budget);
    let fp = merged(Suite::Fp, &budget);

    // The paper's attested anchors: a single value accounts for ~14% of all
    // live SPECint register values; the REST slice dominates both pies.
    let paper_int = ["~14%", "-", "-", "-", "-", "~55%"];
    let paper_fp = ["~13%", "-", "-", "-", "-", "~63%"];

    let rows: Vec<Vec<String>> = GROUP_LABELS
        .iter()
        .enumerate()
        .map(|(i, label)| {
            vec![
                label.to_string(),
                pct(int.fractions()[i]),
                paper_int[i].to_string(),
                pct(fp.fractions()[i]),
                paper_fp[i].to_string(),
            ]
        })
        .collect();
    print_table(
        "Fraction of live integer registers per frequency group",
        &["group", "INT (measured)", "INT (paper)", "FP (measured)", "FP (paper)"],
        &rows,
    );
    println!(
        "\nsnapshots: INT {}  FP {} (oracle period: every {} cycles)",
        int.snapshots(),
        fp.snapshots(),
        budget.oracle_period
    );
}
