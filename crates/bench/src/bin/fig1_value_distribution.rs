//! Figure 1: distribution of live integer register values by frequency
//! group, for the INT and FP suites.
//!
//! Reproduces the paper's oracle: every sampling period the live integer
//! physical-register values are grouped by exact value, groups are ranked
//! by population, and each live register is attributed to its group's rank
//! bucket.
//!
//! With `--corpus` the real-program corpus (see `carf_bench::corpus`) runs
//! through the same oracle, and the synthetic-vs-real delta lands in
//! `results/corpus_demographics.json`.

use carf_bench::cli::{CliSpec, OptSpec};
use carf_bench::{corpus, parallel, pct, print_table, run_suite, run_workloads, Budget};
use carf_core::analysis::{GroupAccumulator, GROUP_LABELS};
use carf_sim::SimConfig;
use carf_workloads::Suite;

const SPEC: CliSpec = CliSpec {
    bin: "fig1_value_distribution",
    options: &[
        OptSpec {
            name: "--corpus",
            value: None,
            help: "also run the real-program corpus; report the synthetic-vs-real delta",
        },
        OptSpec {
            name: "--corpus-dir",
            value: Some("DIR"),
            help: "corpus root (default: corpus/; implies --corpus)",
        },
    ],
    operands: None,
};

fn oracle_config(budget: &Budget) -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.oracle_period = Some(budget.oracle_period);
    cfg
}

fn merged(suite: Suite, budget: &Budget) -> GroupAccumulator {
    let result = run_suite(&oracle_config(budget), suite, budget);
    let mut acc = GroupAccumulator::new();
    for (_, stats) in &result.runs {
        acc.merge(&stats.oracle.values);
    }
    acc
}

fn json_fractions(f: &[f64]) -> String {
    let items: Vec<String> = f.iter().map(|x| format!("{x:.6}")).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let parsed = SPEC.parse();
    let budget = parsed.budget;
    println!("Figure 1: distribution of live integer data values ({} run)", budget.label());
    let int = merged(Suite::Int, &budget);
    let fp = merged(Suite::Fp, &budget);

    // The paper's attested anchors: a single value accounts for ~14% of all
    // live SPECint register values; the REST slice dominates both pies.
    let paper_int = ["~14%", "-", "-", "-", "-", "~55%"];
    let paper_fp = ["~13%", "-", "-", "-", "-", "~63%"];

    let rows: Vec<Vec<String>> = GROUP_LABELS
        .iter()
        .enumerate()
        .map(|(i, label)| {
            vec![
                label.to_string(),
                pct(int.fractions()[i]),
                paper_int[i].to_string(),
                pct(fp.fractions()[i]),
                paper_fp[i].to_string(),
            ]
        })
        .collect();
    print_table(
        "Fraction of live integer registers per frequency group",
        &["group", "INT (measured)", "INT (paper)", "FP (measured)", "FP (paper)"],
        &rows,
    );
    println!(
        "\nsnapshots: INT {}  FP {} (oracle period: every {} cycles)",
        int.snapshots(),
        fp.snapshots(),
        budget.oracle_period
    );

    let Some(root) = corpus::corpus_root(&parsed) else { return };
    let workloads = match corpus::workloads(&root, Suite::Int) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let result = run_workloads(&oracle_config(&budget), Suite::Int, &workloads, &budget);
    let mut real = GroupAccumulator::new();
    for (_, stats) in &result.runs {
        real.merge(&stats.oracle.values);
    }

    let (sf, cf) = (int.fractions(), real.fractions());
    let rows: Vec<Vec<String>> = GROUP_LABELS
        .iter()
        .enumerate()
        .map(|(i, label)| {
            vec![
                label.to_string(),
                pct(sf[i]),
                pct(cf[i]),
                format!("{:+.1} pp", (cf[i] - sf[i]) * 100.0),
            ]
        })
        .collect();
    print_table(
        &format!("Synthetic INT vs corpus ({} programs)", workloads.len()),
        &["group", "synthetic", "corpus", "delta"],
        &rows,
    );

    let delta: Vec<f64> = (0..sf.len()).map(|i| (cf[i] - sf[i]) * 100.0).collect();
    let record = format!(
        "{{\"figure\": \"fig1\", \"budget\": \"{}\", \"programs\": {}, \
         \"snapshots\": {}, \"synthetic_int\": {}, \"corpus\": {}, \
         \"delta_pp\": {}}}",
        budget.label(),
        workloads.len(),
        real.snapshots(),
        json_fractions(&sf),
        json_fractions(&cf),
        json_fractions(&delta),
    );
    let path =
        parallel::write_merged_record("corpus_demographics.json", &record, &["figure", "budget"]);
    println!("\ncorpus demographics -> {}", path.display());
}
