//! Table 4: distribution of operations by the value types of their integer
//! source operands, at `d+n = 20`.
//!
//! The paper's motivation for value-type clustering: over 86% of
//! instructions read operands of a single type.

use carf_bench::{pct, print_table, run_suite};
use carf_core::CarfParams;
use carf_sim::{OperandMix, SimConfig};
use carf_workloads::Suite;

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Table 4: operation distribution by source operand types ({} run)", budget.label());
    let cfg = SimConfig::paper_carf(CarfParams::paper_default());

    let mut mix = OperandMix::default();
    for suite in [Suite::Int, Suite::Fp] {
        for (_, stats) in run_suite(&cfg, suite, &budget).runs {
            let m = stats.operand_mix;
            mix.only_simple += m.only_simple;
            mix.only_short += m.only_short;
            mix.only_long += m.only_long;
            mix.simple_short += m.simple_short;
            mix.simple_long += m.simple_long;
            mix.short_long += m.short_long;
        }
    }

    let labels = [
        ("Only simple operands", "47.4%"),
        ("Only short operands", "21.7%"),
        ("Only long operands", "17.5%"),
        ("Combination of simple and short", "6.3%"),
        ("Combination of simple and long", "6.2%"),
        ("Combination of short and long", "1.0%"),
    ];
    let f = mix.fractions();
    let rows: Vec<Vec<String>> = labels
        .iter()
        .enumerate()
        .map(|(i, (label, paper))| vec![label.to_string(), pct(f[i]), paper.to_string()])
        .collect();
    print_table("Operand-type mix (d+n = 20)", &["category", "measured", "paper"], &rows);
    println!(
        "\nsame-type fraction: {} (paper: >86%) over {} instructions",
        pct(mix.same_type_fraction()),
        mix.total()
    );
}
