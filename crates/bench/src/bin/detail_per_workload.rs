//! Per-workload detail behind the suite averages: IPC under all three
//! machines, the relative IPC the paper's Figure 5 averages, and the
//! write-classification mix per kernel.

use carf_bench::{pct, print_table, run_workload};
use carf_core::{CarfParams, ValueClass};
use carf_sim::SimConfig;
use carf_workloads::all_workloads;

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Per-workload detail at d+n = 20 ({} run)", budget.label());

    let unlimited = SimConfig::paper_unlimited();
    let baseline = SimConfig::paper_baseline();
    let carf = SimConfig::paper_carf(CarfParams::paper_default());

    let mut rows = Vec::new();
    for wl in all_workloads() {
        let u = run_workload(&unlimited, &wl, &budget);
        let b = run_workload(&baseline, &wl, &budget);
        let c = run_workload(&carf, &wl, &budget);
        let writes = c.int_rf.writes;
        rows.push(vec![
            format!("{} ({})", wl.name, wl.suite),
            format!("{:.3}", u.ipc()),
            format!("{:.3}", b.ipc()),
            format!("{:.3}", c.ipc()),
            pct(c.ipc() / b.ipc()),
            pct(writes.fraction(ValueClass::Simple)),
            pct(writes.fraction(ValueClass::Short)),
            pct(writes.fraction(ValueClass::Long)),
            format!("{:.1}", c.long_mean_live),
            pct(c.bpred.cond_accuracy()),
        ]);
    }
    print_table(
        "IPC and write classification per kernel",
        &[
            "workload",
            "unl ipc",
            "base ipc",
            "carf ipc",
            "carf/base",
            "w.simple",
            "w.short",
            "w.long",
            "live L",
            "bpred",
        ],
        &rows,
    );
    println!("\nThe paper reports suite averages only; this is the spread underneath.");
}
