//! Figure 8: register-file area relative to the unlimited-resource file as
//! a function of `d+n` (model output).

use carf_bench::{baseline_geometry, carf_geometries, pct, print_table, unlimited_geometry, DN_SWEEP};
use carf_core::CarfParams;
use carf_energy::TechModel;

fn main() {
    println!("Figure 8: relative register-file area");
    let model = TechModel::default_model();
    let unl = model.area(&unlimited_geometry());
    let base = model.area(&baseline_geometry());

    let mut rows = vec![vec![
        "baseline".to_string(),
        pct(base / unl),
        "-".to_string(),
        "100.0%".to_string(),
    ]];
    for dn in DN_SWEEP {
        let params = CarfParams::with_dn(dn);
        let total: f64 = carf_geometries(&params).iter().map(|g| model.area(g)).sum();
        let paper = if dn == 20 { "82.1% of baseline" } else { "-" };
        rows.push(vec![
            format!("carf d+n={dn}"),
            pct(total / unl),
            paper.to_string(),
            pct(total / base),
        ]);
    }
    print_table(
        "Cell-array area",
        &["config", "vs unlimited", "paper", "vs baseline"],
        &rows,
    );
    println!("\nPaper headline: the content-aware organization occupies 82.1% of the");
    println!("baseline register file's area at d+n = 20 (an 18% reduction).");
}
