//! Figure 9: access time of each register file relative to the
//! unlimited-resource file as a function of `d+n` (model output).
//!
//! Every content-aware component must come in under the baseline; the
//! slowest one bounds the achievable clock — the paper reads ~15% headroom
//! off this figure.

use carf_bench::{baseline_geometry, carf_geometries, pct, print_table, unlimited_geometry, DN_SWEEP};
use carf_core::CarfParams;
use carf_energy::TechModel;

fn main() {
    println!("Figure 9: relative register-file access time");
    let model = TechModel::default_model();
    let unl = model.access_time(&unlimited_geometry());
    let base = model.access_time(&baseline_geometry());

    println!("\nbaseline: {} of unlimited", pct(base / unl));
    let mut rows = Vec::new();
    for dn in DN_SWEEP {
        let params = CarfParams::with_dn(dn);
        let [simple, short, long] = carf_geometries(&params);
        let (ts, tsh, tl) = (
            model.access_time(&simple),
            model.access_time(&short),
            model.access_time(&long),
        );
        let slowest = ts.max(tsh).max(tl);
        rows.push(vec![
            format!("{dn}"),
            pct(ts / unl),
            pct(tsh / unl),
            pct(tl / unl),
            pct(1.0 - slowest / base),
        ]);
    }
    print_table(
        "Access time vs unlimited (headroom vs baseline)",
        &["d+n", "simple", "short", "long", "clock headroom"],
        &rows,
    );
    println!("\nPaper headline: all three sub-files are faster than the baseline;");
    println!("the critical (simple) file leaves up to ~15% clock-frequency headroom.");
}
