//! Run an assembly file on the simulated machine.
//!
//! ```text
//! cargo run -p carf-bench --release --bin run_asm -- program.s [options]
//!
//! options:
//!   --carf           use the content-aware register file (default: baseline)
//!   --unlimited      use the unlimited-resource machine
//!   --dn <N>         content-aware d+n (default 20; implies --carf)
//!   --max <N>        instruction budget (default 10_000_000)
//!   --cosim          check every commit against the functional model
//!   --functional     skip the timing simulator; run the functional machine
//!   --disasm         print the disassembly before running
//!   --timeline <N>   print the pipeline timeline of the first N commits
//! ```

use carf_core::CarfParams;
use carf_isa::{parse_asm, Machine};
use carf_sim::{SimConfig, AnySimulator};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut carf = false;
    let mut unlimited = false;
    let mut dn: Option<u32> = None;
    let mut max_insts: u64 = 10_000_000;
    let mut cosim = false;
    let mut functional = false;
    let mut disasm = false;
    let mut timeline: usize = 0;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--carf" => carf = true,
            "--unlimited" => unlimited = true,
            "--dn" => {
                dn = Some(it.next().ok_or("--dn needs a value")?.parse()?);
            }
            "--max" => {
                max_insts = it.next().ok_or("--max needs a value")?.parse()?;
            }
            "--cosim" => cosim = true,
            "--functional" => functional = true,
            "--disasm" => disasm = true,
            "--timeline" => {
                timeline = it.next().ok_or("--timeline needs a value")?.parse()?;
            }
            other if !other.starts_with('-') => path = Some(other.to_string()),
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    let path = path.ok_or("usage: run_asm <file.s> [--carf|--unlimited] [--max N]")?;
    let source = std::fs::read_to_string(&path)?;
    let program = parse_asm(&source)?;
    if disasm {
        print!("{}", program.disassemble());
    }

    if functional {
        let mut m = Machine::load(&program);
        let retired = m.run(&program, max_insts)?;
        println!("functional: {retired} instructions retired");
        return Ok(());
    }

    let mut config = if let Some(dn) = dn {
        SimConfig::paper_carf(CarfParams::with_dn(dn))
    } else if carf {
        SimConfig::paper_carf(CarfParams::paper_default())
    } else if unlimited {
        SimConfig::paper_unlimited()
    } else {
        SimConfig::paper_baseline()
    };
    config.cosim = cosim;

    let mut sim = AnySimulator::new(config, &program);
    if timeline > 0 {
        sim.record_timeline(timeline);
    }
    let result = sim.run(max_insts)?;
    if timeline > 0 {
        println!("   seq  pc         Dispatch Issue  Exec   Commit");
        for t in sim.timeline() {
            println!("{t}");
        }
    }
    let stats = sim.stats();
    println!(
        "{} instructions, {} cycles, ipc {:.3}{}",
        result.committed,
        result.cycles,
        result.ipc,
        if result.halted { "" } else { " (budget reached)" }
    );
    println!(
        "branches: {:.1}% predicted | operands: {:.1}% bypassed | loads {} stores {}",
        stats.bpred.cond_accuracy() * 100.0,
        stats.bypass_fraction() * 100.0,
        stats.loads,
        stats.stores,
    );
    if stats.int_rf.writes.total() > 0 {
        println!(
            "value classes written: {} simple / {} short / {} long",
            stats.int_rf.writes.simple, stats.int_rf.writes.short, stats.int_rf.writes.long
        );
    }
    Ok(())
}
