//! Run one assembly program on the simulated machine.
//!
//! A thin, single-program front end over the `carf-as` pipeline: the
//! operand goes through [`carf_bench::corpus::discover`], so it may be a
//! lone `.s` file or a directory of translation units that link into one
//! program. For whole-corpus runs (and cached, multi-machine tables) use
//! `carf-as` instead.
//!
//! ```text
//! cargo run -p carf-bench --release --bin run_asm -- program.s [options]
//! ```

use carf_bench::cli::{CliSpec, OptSpec};
use carf_bench::corpus;
use carf_core::CarfParams;
use carf_isa::Machine;
use carf_sim::{AnySimulator, SimConfig};
use std::path::Path;

const SPEC: CliSpec = CliSpec {
    bin: "run_asm",
    options: &[
        OptSpec {
            name: "--carf",
            value: None,
            help: "use the content-aware register file (default: baseline)",
        },
        OptSpec { name: "--unlimited", value: None, help: "use the unlimited-resource machine" },
        OptSpec { name: "--dn", value: Some("N"), help: "content-aware d+n (implies --carf)" },
        OptSpec { name: "--max", value: Some("N"), help: "instruction budget (default 10_000_000)" },
        OptSpec { name: "--cosim", value: None, help: "check every commit against the functional model" },
        OptSpec {
            name: "--functional",
            value: None,
            help: "skip the timing simulator; run the functional machine",
        },
        OptSpec { name: "--disasm", value: None, help: "print the disassembly before running" },
        OptSpec {
            name: "--timeline",
            value: Some("N"),
            help: "print the pipeline timeline of the first N commits",
        },
    ],
    operands: Some(("file.s", "assembly file (or directory of translation units) to run")),
};

fn parsed_u64(parsed: &carf_bench::cli::ParsedCli, name: &str, default: u64) -> u64 {
    match parsed.option(name) {
        None => default,
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => SPEC.fail(&format!("`{name}` expects a positive integer")),
        },
    }
}

fn main() {
    let parsed = SPEC.parse();
    let path = match parsed.operands.as_slice() {
        [one] => one.clone(),
        _ => SPEC.fail("expected exactly one .s file or program directory"),
    };
    let max_insts = parsed_u64(&parsed, "--max", 10_000_000);
    let timeline = parsed_u64(&parsed, "--timeline", 0) as usize;

    let program = match corpus::discover(Path::new(&path), None) {
        Ok(ps) if ps.len() == 1 => ps.into_iter().next().unwrap().program,
        Ok(ps) => SPEC.fail(&format!(
            "`{path}` holds {} programs; run_asm runs one (use carf-as for a corpus)",
            ps.len()
        )),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if parsed.option("--disasm").is_some() {
        print!("{}", program.disassemble());
    }

    if parsed.option("--functional").is_some() {
        let mut m = Machine::load(&program);
        match m.run(&program, max_insts) {
            Ok(retired) => println!("functional: {retired} instructions retired"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut config = if let Some(v) = parsed.option("--dn") {
        match v.parse::<u32>() {
            Ok(dn) if dn > 0 => SimConfig::paper_carf(CarfParams::with_dn(dn)),
            _ => SPEC.fail("`--dn` expects a positive integer"),
        }
    } else if parsed.option("--carf").is_some() {
        SimConfig::paper_carf(CarfParams::paper_default())
    } else if parsed.option("--unlimited").is_some() {
        SimConfig::paper_unlimited()
    } else {
        SimConfig::paper_baseline()
    };
    config.cosim = parsed.option("--cosim").is_some();

    let mut sim = AnySimulator::new(config, &program);
    if timeline > 0 {
        sim.record_timeline(timeline);
    }
    let result = match sim.run(max_insts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if timeline > 0 {
        println!("   seq  pc         Dispatch Issue  Exec   Commit");
        for t in sim.timeline() {
            println!("{t}");
        }
    }
    let stats = sim.stats();
    println!(
        "{} instructions, {} cycles, ipc {:.3}{}",
        result.committed,
        result.cycles,
        result.ipc,
        if result.halted { "" } else { " (budget reached)" }
    );
    println!(
        "branches: {:.1}% predicted | operands: {:.1}% bypassed | loads {} stores {}",
        stats.bpred.cond_accuracy() * 100.0,
        stats.bypass_fraction() * 100.0,
        stats.loads,
        stats.stores,
    );
    if stats.int_rf.writes.total() > 0 {
        println!(
            "value classes written: {} simple / {} short / {} long",
            stats.int_rf.writes.simple, stats.int_rf.writes.short, stats.int_rf.writes.long
        );
    }
}
