//! Table 3: single-access energy of each register file, normalized to the
//! unlimited-resource file, as a function of `d+n`.
//!
//! Pure model output (no simulation): geometry per the paper's §3 formulas
//! fed into the Rixner-style energy model.

use carf_bench::{carf_geometries, pct, print_table, unlimited_geometry, DN_SWEEP};
use carf_core::CarfParams;
use carf_energy::{TechModel, PAPER_BASELINE};

fn main() {
    println!("Table 3: single-access energy relative to the unlimited file");
    let model = TechModel::default_model();
    let unl = model.read_energy(&unlimited_geometry());

    let mut rows = Vec::new();
    for dn in DN_SWEEP {
        let params = CarfParams::with_dn(dn);
        let [simple, short, long] = carf_geometries(&params);
        rows.push(vec![
            format!("{dn}"),
            pct(model.read_energy(&simple) / unl),
            pct(model.read_energy(&short) / unl),
            pct(model.read_energy(&long) / unl),
        ]);
    }
    print_table("Per-access energy (measured model)", &["d+n", "simple", "short", "long"], &rows);

    let base = model.read_energy(&PAPER_BASELINE) / unl;
    println!("\nbaseline (112x64b, 8R/6W): {} (paper: 48.8%)", pct(base));
    println!("Paper anchors at d+n=20: short 2.9%, long 16.9%; short falls and long");
    println!("falls with growing d+n while simple grows with its width.");
}
