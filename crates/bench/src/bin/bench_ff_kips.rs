//! Functional fast-forward throughput: committed kilo-instructions per
//! wall-second of the *functional* executor, stepwise vs. decoded-cache,
//! one pair of points per workload.
//!
//! This is the scoreboard for the decoded-instruction cache
//! ([`carf_isa::DecodedProgram`]): `stepwise/<w>` times the per-step
//! decode path ([`carf_isa::Machine::run_stepwise`]), `decoded/<w>` times
//! decode-once + tight dispatch ([`carf_isa::Machine::run_decoded`],
//! including the one-time decode). Fast-forward speed bounds how cheaply
//! sampled simulation (`carf-sample`) can skip between measured intervals,
//! so the speedup column is the number that matters.
//!
//! ```text
//! bench_ff_kips [--quick | --full] [--jobs N] [--suite int|fp|all]
//! ```
//!
//! Timings land in `results/bench_timing.json` under bin `bench_ff_kips`,
//! next to the cycle-level `bench_kips` records, so one file answers both
//! "how fast is the simulator" and "how fast is the fast-forward".

use carf_bench::cli::{parse_suites, CliSpec, OptSpec};
use carf_bench::parallel::{self, PointTiming};
use carf_bench::{geomean_kips, print_table, Budget};
use carf_isa::{DecodedProgram, ExecError, Machine};
use carf_workloads::{Suite, Workload};
use std::time::Instant;

const SPEC: CliSpec = CliSpec {
    bin: "bench_ff_kips",
    options: &[OptSpec {
        name: "--suite",
        value: Some("S"),
        help: "which suite to time: int (default), fp, or all",
    }],
    operands: None,
};

/// Runs `m` for up to `max_insts` instructions and returns the retired
/// count; both "halted" and "budget exhausted" are successful outcomes
/// here.
fn retired_or_die(result: Result<u64, ExecError>, name: &str) -> u64 {
    match result {
        Ok(done) => done,
        Err(ExecError::InstLimit(done)) => done,
        Err(e) => panic!("functional run of {name} failed: {e}"),
    }
}

fn time_pair(workload: &Workload, budget: &Budget) -> (PointTiming, PointTiming) {
    let program = workload.build(workload.size(budget.size));

    let start = Instant::now();
    let mut m = Machine::load(&program);
    let stepwise_done = retired_or_die(m.run_stepwise(&program, budget.max_insts), workload.name);
    let stepwise = PointTiming {
        name: format!("stepwise/{}", workload.name),
        secs: start.elapsed().as_secs_f64(),
        committed: stepwise_done,
    };

    let start = Instant::now();
    let decoded = DecodedProgram::decode(&program);
    let mut m = Machine::load(&program);
    let decoded_done = retired_or_die(m.run_decoded(&decoded, budget.max_insts), workload.name);
    let decoded = PointTiming {
        name: format!("decoded/{}", workload.name),
        secs: start.elapsed().as_secs_f64(),
        committed: decoded_done,
    };

    assert_eq!(
        stepwise_done, decoded_done,
        "executors retired different counts on {}",
        workload.name
    );
    (stepwise, decoded)
}

fn main() {
    let parsed = SPEC.parse();
    let budget = parsed.budget;
    let suites = match parsed.option("--suite") {
        Some(v) => parse_suites(v).unwrap_or_else(|bad| SPEC.fail(&bad)),
        None => vec![Suite::Int],
    };
    println!(
        "== functional fast-forward throughput ({} budget, {} insts/point) ==",
        budget.label(),
        budget.max_insts
    );

    let workloads: Vec<Workload> = suites
        .iter()
        .flat_map(|s| match s {
            Suite::Int => carf_workloads::int_suite(),
            Suite::Fp => carf_workloads::fp_suite(),
        })
        .collect();

    parallel::note_run_start();
    let pairs = parallel::run_ordered(&workloads, budget.jobs, |w| time_pair(w, &budget));
    let total = parallel::total_secs();

    let mut points: Vec<PointTiming> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (stepwise, decoded) in pairs {
        let name = stepwise.name.trim_start_matches("stepwise/").to_string();
        let speedup = if stepwise.secs > 0.0 && decoded.secs > 0.0 {
            decoded.kips() / stepwise.kips()
        } else {
            0.0
        };
        rows.push(vec![
            name,
            format!("{}", stepwise.committed),
            format!("{:.1}", stepwise.kips()),
            format!("{:.1}", decoded.kips()),
            format!("{speedup:.2}x"),
        ]);
        points.push(stepwise);
        points.push(decoded);
    }
    print_table(
        "fast-forward KIPS per workload",
        &["workload", "insts", "stepwise KIPS", "decoded KIPS", "speedup"],
        &rows,
    );

    let stepwise: Vec<PointTiming> =
        points.iter().filter(|p| p.name.starts_with("stepwise/")).cloned().collect();
    let decoded: Vec<PointTiming> =
        points.iter().filter(|p| p.name.starts_with("decoded/")).cloned().collect();
    println!(
        "\ngeomean: stepwise {:.1} KIPS, decoded {:.1} KIPS ({:.2}x), wall {total:.2}s",
        geomean_kips(&stepwise),
        geomean_kips(&decoded),
        geomean_kips(&decoded) / geomean_kips(&stepwise).max(f64::MIN_POSITIVE),
    );

    let record =
        parallel::timing_record("bench_ff_kips", budget.label(), budget.jobs, total, &points);
    let path = parallel::write_rotated_record(
        "bench_timing.json",
        &record,
        &["bin", "budget", "jobs"],
        parallel::TIMING_KEEP_RUNS,
    );
    println!("timing history -> {}", path.display());
}
