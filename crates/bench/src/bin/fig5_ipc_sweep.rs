//! Figure 5: average relative IPC as a function of `d+n`, for the INT and
//! FP suites, against the unlimited-resource machine (100%) and the
//! baseline.
//!
//! Configuration per the paper: 8 Short registers (n = 3), 48 Long, 112
//! Simple; `d+n` swept from 8 to 32.

use carf_bench::{pct, print_table, run_matrix_cached, write_timing_json, DN_SWEEP};
use carf_core::CarfParams;
use carf_sim::SimConfig;
use carf_workloads::Suite;

fn main() {
    let budget = carf_bench::cli::budget_for(env!("CARGO_BIN_NAME"));
    println!("Figure 5: relative IPC vs d+n ({} run)", budget.label());

    // One flat matrix: 2 reference configs + the 7-point sweep, for both
    // suites, dispatched together over the worker pool.
    let mut points = vec![
        (SimConfig::paper_unlimited(), Suite::Int),
        (SimConfig::paper_unlimited(), Suite::Fp),
        (SimConfig::paper_baseline(), Suite::Int),
        (SimConfig::paper_baseline(), Suite::Fp),
    ];
    for dn in DN_SWEEP {
        let cfg = SimConfig::paper_carf(CarfParams::with_dn(dn));
        points.push((cfg.clone(), Suite::Int));
        points.push((cfg, Suite::Fp));
    }
    let results = run_matrix_cached(&points, &budget).results;
    let (unlimited_int, unlimited_fp) = (&results[0], &results[1]);
    let (baseline_int, baseline_fp) = (&results[2], &results[3]);

    let mut rows = vec![vec![
        "baseline".to_string(),
        pct(baseline_int.mean_relative_ipc(unlimited_int)),
        pct(baseline_fp.mean_relative_ipc(unlimited_fp)),
        "~99%".to_string(),
        "~99.9%".to_string(),
    ]];
    for (i, dn) in DN_SWEEP.iter().enumerate() {
        let (int, fp) = (&results[4 + 2 * i], &results[5 + 2 * i]);
        let (paper_int, paper_fp) = paper_anchor(*dn);
        rows.push(vec![
            format!("carf d+n={dn}"),
            pct(int.mean_relative_ipc(unlimited_int)),
            pct(fp.mean_relative_ipc(unlimited_fp)),
            paper_int.to_string(),
            paper_fp.to_string(),
        ]);
    }
    print_table(
        "Average relative IPC (100% = unlimited machine)",
        &["config", "INT", "FP", "INT (paper)", "FP (paper)"],
        &rows,
    );
    println!(
        "\nShape check: INT should approach its plateau around d+n = 20 and");
    println!("FP should sit within a fraction of a percent of the baseline.");
    write_timing_json(&budget);
}

/// Paper Figure 5 anchors (read off the described curve: INT rises from
/// ~96% toward a ~98.3% plateau at d+n = 20; FP stays ≥99%).
fn paper_anchor(dn: u32) -> (&'static str, &'static str) {
    match dn {
        8 => ("~96%", "~99%"),
        12 => ("~97%", "~99.3%"),
        16 => ("~98%", "~99.5%"),
        20 => ("~98.3%", "~99.7%"),
        24 | 28 | 32 => ("~98.5%", "~99.7%"),
        _ => ("-", "-"),
    }
}
