//! Figure 5: average relative IPC as a function of `d+n`, for the INT and
//! FP suites, against the unlimited-resource machine (100%) and the
//! baseline.
//!
//! Configuration per the paper: 8 Short registers (n = 3), 48 Long, 112
//! Simple; `d+n` swept from 8 to 32.

use carf_bench::{pct, print_table, run_suite, Budget, DN_SWEEP};
use carf_core::CarfParams;
use carf_sim::SimConfig;
use carf_workloads::Suite;

fn main() {
    let budget = Budget::from_args();
    println!("Figure 5: relative IPC vs d+n ({} run)", budget.label());

    let unlimited_int = run_suite(&SimConfig::paper_unlimited(), Suite::Int, &budget);
    let unlimited_fp = run_suite(&SimConfig::paper_unlimited(), Suite::Fp, &budget);
    let baseline_int = run_suite(&SimConfig::paper_baseline(), Suite::Int, &budget);
    let baseline_fp = run_suite(&SimConfig::paper_baseline(), Suite::Fp, &budget);

    let mut rows = vec![vec![
        "baseline".to_string(),
        pct(baseline_int.mean_relative_ipc(&unlimited_int)),
        pct(baseline_fp.mean_relative_ipc(&unlimited_fp)),
        "~99%".to_string(),
        "~99.9%".to_string(),
    ]];
    for dn in DN_SWEEP {
        let cfg = SimConfig::paper_carf(CarfParams::with_dn(dn));
        let int = run_suite(&cfg, Suite::Int, &budget);
        let fp = run_suite(&cfg, Suite::Fp, &budget);
        let (paper_int, paper_fp) = paper_anchor(dn);
        rows.push(vec![
            format!("carf d+n={dn}"),
            pct(int.mean_relative_ipc(&unlimited_int)),
            pct(fp.mean_relative_ipc(&unlimited_fp)),
            paper_int.to_string(),
            paper_fp.to_string(),
        ]);
    }
    print_table(
        "Average relative IPC (100% = unlimited machine)",
        &["config", "INT", "FP", "INT (paper)", "FP (paper)"],
        &rows,
    );
    println!(
        "\nShape check: INT should approach its plateau around d+n = 20 and");
    println!("FP should sit within a fraction of a percent of the baseline.");
}

/// Paper Figure 5 anchors (read off the described curve: INT rises from
/// ~96% toward a ~98.3% plateau at d+n = 20; FP stays ≥99%).
fn paper_anchor(dn: u32) -> (&'static str, &'static str) {
    match dn {
        8 => ("~96%", "~99%"),
        12 => ("~97%", "~99.3%"),
        16 => ("~98%", "~99.5%"),
        20 => ("~98.3%", "~99.7%"),
        24 | 28 | 32 => ("~98.5%", "~99.7%"),
        _ => ("-", "-"),
    }
}
