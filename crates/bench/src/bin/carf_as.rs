//! Assemble, link, and run real programs from the corpus.
//!
//! ```text
//! carf-as [paths...] [--machine M] [--entry SYM] [--functional]
//!         [--disasm] [--max N] [--quick|--full] [--jobs N] [--sample]
//! ```
//!
//! Each path is a `.s` file or a directory following the corpus layout
//! (see `carf_bench::corpus`): subdirectories link as multi-unit
//! programs, loose files as single-unit programs; with no paths the
//! workspace `corpus/` is run. Timing runs go through the shared result
//! cache keyed on program *content*, so re-runs of unchanged sources do
//! zero simulation; per-program stats land in `results/corpus_runs.json`.

use carf_bench::cli::{CliSpec, MachineSet, OptSpec};
use carf_bench::{cache, corpus, parallel};
use carf_isa::Machine;
use carf_workloads::Suite;
use std::path::PathBuf;

const SPEC: CliSpec = CliSpec {
    bin: "carf-as",
    options: &[
        OptSpec {
            name: "--machine",
            value: Some("M"),
            help: "base, carf, both, compressed, ports, or all (default: base)",
        },
        OptSpec {
            name: "--entry",
            value: Some("SYM"),
            help: "entry symbol for linking (default: exported _start)",
        },
        OptSpec {
            name: "--functional",
            value: None,
            help: "run the functional executor instead of the timing simulator",
        },
        OptSpec { name: "--disasm", value: None, help: "print each linked program's disassembly" },
        OptSpec { name: "--max", value: Some("N"), help: "per-program instruction budget override" },
    ],
    operands: Some(("path", ".s files or program/corpus directories (default: corpus/)")),
};

fn main() {
    let parsed = SPEC.parse();
    let mut budget = parsed.budget;
    if let Some(v) = parsed.option("--max") {
        match v.parse::<u64>() {
            Ok(n) if n > 0 => budget.max_insts = n,
            _ => SPEC.fail("`--max` expects a positive integer"),
        }
    }
    let entry = parsed.option("--entry");
    let machines = match MachineSet::parse(parsed.option("--machine").unwrap_or("base")) {
        Ok(m) => m,
        Err(e) => SPEC.fail(&e),
    };

    let paths: Vec<PathBuf> = if parsed.operands.is_empty() {
        vec![corpus::default_corpus_dir()]
    } else {
        parsed.operands.iter().map(PathBuf::from).collect()
    };

    let mut programs: Vec<corpus::CorpusProgram> = Vec::new();
    for path in &paths {
        match corpus::discover(path, entry) {
            Ok(mut ps) => programs.append(&mut ps),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let units: usize = programs.iter().map(|p| p.files.len()).sum();
    println!("carf-as: linked {} program(s) from {units} translation unit(s)", programs.len());

    if parsed.option("--disasm").is_some() {
        for p in &programs {
            println!("; {} ({} insts)", p.name, p.program.len());
            print!("{}", p.program.disassemble());
        }
    }

    if parsed.option("--functional").is_some() {
        for p in &programs {
            let mut m = Machine::load(&p.program);
            match m.run(&p.program, budget.max_insts) {
                Ok(retired) => println!(
                    "{:<12} functional: {retired} retired{}",
                    p.name,
                    if m.is_halted() { "" } else { " (budget reached)" }
                ),
                Err(e) => {
                    eprintln!("error: {}: {e}", p.name);
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    // One experiment point per machine, carrying every program; the cache
    // addresses each (machine, program-content, budget) triple.
    let configs = machines.configs();
    let points: Vec<_> = configs
        .iter()
        .map(|(_, config)| {
            (config.clone(), Suite::Int, programs.iter().map(|p| p.to_workload(Suite::Int)).collect())
        })
        .collect();
    let outcome = cache::run_custom_cached(&points, &budget);

    for ((label, _), result) in configs.iter().zip(&outcome.results) {
        println!("\n[{label}] corpus, budget {}", budget.label());
        println!(
            "{:<12} {:>10} {:>10} {:>6}  {:>6} {:>6} {:>6}",
            "program", "committed", "cycles", "ipc", "simple", "short", "long"
        );
        for (name, stats) in &result.runs {
            let writes = &stats.int_rf.writes;
            // Per-class write counters are populated by content-aware
            // organizations only; the monolithic baseline shows dashes.
            let classes = if writes.total() > 0 {
                let total = writes.total() as f64;
                format!(
                    "{:>5.1}% {:>5.1}% {:>5.1}%",
                    writes.simple as f64 / total * 100.0,
                    writes.short as f64 / total * 100.0,
                    writes.long as f64 / total * 100.0,
                )
            } else {
                format!("{:>6} {:>6} {:>6}", "-", "-", "-")
            };
            println!(
                "{:<12} {:>10} {:>10} {:>6.3}  {classes}",
                name,
                stats.committed,
                stats.cycles,
                stats.ipc(),
            );
            let record = format!(
                "{{\"program\": \"{name}\", \"machine\": \"{label}\", \
                 \"budget\": \"{}\", \"committed\": {}, \"cycles\": {}, \
                 \"ipc\": {:.6}, \"simple\": {}, \"short\": {}, \"long\": {}}}",
                budget.label(),
                stats.committed,
                stats.cycles,
                stats.ipc(),
                writes.simple,
                writes.short,
                writes.long,
            );
            parallel::write_merged_record(
                "corpus_runs.json",
                &record,
                &["program", "machine", "budget"],
            );
        }
    }
}
