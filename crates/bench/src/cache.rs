//! Content-addressed result cache: compute each experiment point once,
//! serve it forever.
//!
//! Every simulation point — one `(SimConfig, workload, budget)` triple —
//! is addressed by a 128-bit FNV-1a fingerprint of a **canonical key
//! text**: every configuration field written explicitly in a fixed,
//! code-defined order (so a cosmetic struct-field reorder cannot change
//! the key), plus the workload identity, the budget's result-affecting
//! parts (size class, instruction cap, sampling spec — *not* the worker
//! count, which never changes results), and [`CACHE_SALT`]. Bump the salt
//! whenever simulator semantics change; every old entry then misses
//! instead of serving stale numbers.
//!
//! Entries live under `<results>/cache/<hh>/<key>.json` (sharded on the
//! first key byte), each written atomically by [`crate::fsio::atomic_write`]
//! and carrying the exact [`crate::statsio`] encoding, so a warm run
//! reproduces **byte-identical** downstream result records. A human-
//! readable `index.json` maps keys back to (config, point, budget) labels;
//! it is maintained under an advisory [`FileLock`] so concurrent bins
//! cannot lose each other's rows.
//!
//! Environment knobs:
//!
//! * `CARF_CACHE=0` (or `off`) — bypass the cache entirely;
//! * `CARF_CACHE_REQUIRE_WARM=1` — fail (exit 3) if any point has to be
//!   simulated: CI uses this to prove a warm re-run does zero simulation.

use crate::fsio::{atomic_write, FileLock};
use crate::parallel::{self, json_field};
use crate::sample::SampleSpec;
use crate::statsio::{stats_from_json, stats_to_json, STATS_CODEC_VERSION};
use crate::{Budget, SuiteResult};
use carf_mem::{CacheConfig, HierarchyConfig};
use carf_sim::{BpredConfig, MemDepPolicy, MultiSim, RegFileKind, SharingPolicy, SimConfig, SimStats};
use carf_workloads::{SizeClass, Suite, Workload};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Code-version salt folded into every key. Bump whenever simulator or
/// workload semantics change in a result-affecting way (the pinned
/// fingerprint suite in `tests/scheduler_equivalence.rs` is the tell),
/// so stale entries miss instead of serving outdated numbers.
pub const CACHE_SALT: &str = "carf-cache-v1";

fn write_cache_config(out: &mut String, tag: &str, c: &CacheConfig) {
    let CacheConfig { size_bytes, assoc, line_bytes, latency } = *c;
    let _ = write!(out, "{tag}={size_bytes}/{assoc}/{line_bytes}/{latency};");
}

fn write_regfile(out: &mut String, kind: &RegFileKind) {
    match kind {
        RegFileKind::Baseline => out.push_str("regfile=baseline;"),
        RegFileKind::ContentAware(p, pol) => {
            let carf_core::CarfParams { d, short_entries, long_entries, simple_entries } = *p;
            let carf_core::Policies { short_alloc, short_index, long_stall_threshold, extra_bypass } =
                *pol;
            let alloc = match short_alloc {
                carf_core::ShortAllocPolicy::AddressesOnly => "addr",
                carf_core::ShortAllocPolicy::AllResults => "all",
            };
            let index = match short_index {
                carf_core::ShortIndexPolicy::DirectIndexed => "direct",
                carf_core::ShortIndexPolicy::Associative => "assoc",
            };
            let _ = write!(
                out,
                "regfile=carf/{d}/{short_entries}/{long_entries}/{simple_entries}\
                 /{alloc}/{index}/{long_stall_threshold}/{extra_bypass};"
            );
        }
        RegFileKind::Compressed(p) => {
            let carf_core::CarfParams { d, short_entries, long_entries, simple_entries } = *p;
            let _ = write!(
                out,
                "regfile=compressed/{d}/{short_entries}/{long_entries}/{simple_entries};"
            );
        }
        RegFileKind::PortReduced(p) => {
            let carf_core::PortReducedParams { read_ports, capture_entries } = *p;
            let _ = write!(out, "regfile=ports/{read_ports}/{capture_entries};");
        }
    }
}

/// The canonical, field-order-independent text form of a machine
/// configuration. Every field is written explicitly in a fixed order
/// decided *here*, not by the struct layout — reordering `SimConfig`'s
/// declaration cannot change a cache key, while any new field is a
/// compile error in this function until the key learns about it.
pub fn canonical_config(config: &SimConfig) -> String {
    let SimConfig {
        fetch_width,
        issue_width,
        commit_width,
        frontend_depth,
        rob_size,
        lsq_size,
        iq_int,
        iq_fp,
        int_pregs,
        fp_pregs,
        rf_read_ports,
        rf_write_ports,
        checkpoints,
        int_units,
        fp_units,
        mul_latency,
        div_latency,
        fp_latency,
        fpdiv_latency,
        hierarchy,
        bpred,
        regfile,
        mem_dep,
        rob_interval_commits,
        oracle_period,
        cosim,
        watchdog_cycles,
    } = config;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "fetch={fetch_width};issue={issue_width};commit={commit_width};\
         frontend={frontend_depth};rob={rob_size};lsq={lsq_size};\
         iq_int={iq_int};iq_fp={iq_fp};int_pregs={int_pregs};fp_pregs={fp_pregs};\
         rf_r={rf_read_ports};rf_w={rf_write_ports};ckpt={checkpoints};\
         int_units={int_units};fp_units={fp_units};mul={mul_latency};\
         div={div_latency};fp={fp_latency};fpdiv={fpdiv_latency};"
    );
    let HierarchyConfig { il1, dl1, dl1_ports, l2, memory_latency } = hierarchy;
    write_cache_config(&mut out, "il1", il1);
    write_cache_config(&mut out, "dl1", dl1);
    let _ = write!(out, "dl1_ports={dl1_ports};");
    write_cache_config(&mut out, "l2", l2);
    let _ = write!(out, "mem_lat={memory_latency};");
    let BpredConfig { gshare_bits, btb_entries, ras_entries } = bpred;
    let _ = write!(out, "gshare={gshare_bits};btb={btb_entries};ras={ras_entries};");
    write_regfile(&mut out, regfile);
    let dep = match mem_dep {
        MemDepPolicy::Conservative => "conservative",
        MemDepPolicy::Optimistic => "optimistic",
    };
    let _ = write!(
        out,
        "mem_dep={dep};rob_interval={rob_interval_commits};\
         oracle={};cosim={cosim};watchdog={watchdog_cycles};",
        oracle_period.map_or_else(|| "none".to_string(), |p| p.to_string()),
    );
    out
}

fn size_label(size: SizeClass) -> &'static str {
    match size {
        SizeClass::Quick => "quick",
        SizeClass::Full => "full",
        SizeClass::Test => "test",
    }
}

/// The budget's result-affecting part in canonical text form. The worker
/// count is deliberately absent: [`parallel::run_ordered`] is
/// bit-identical at any `jobs`, so it must not split the cache.
fn canonical_budget(budget: &Budget) -> String {
    let sample = match &budget.sample {
        Some(SampleSpec { interval, period, warmup }) => format!("{interval}/{period}/{warmup}"),
        None => "none".into(),
    };
    format!(
        "size={};max_insts={};sample={sample};",
        size_label(budget.size),
        budget.max_insts
    )
}

fn fnv128(text: &str) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for b in text.as_bytes() {
        h ^= *b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The cache identity of a workload. Synthetic kernels are pure
/// `fn(size)` builders, so their name (plus the budget's size class,
/// which is already in the key) pins the program exactly. Fixed-program
/// workloads (assembled corpus kernels) are identified by **content**: the
/// [`carf_isa::program_fingerprint`] over the linked instruction text,
/// entry point, and data image rides along as a `#fingerprint` suffix, so
/// editing one instruction in a `.s` source — or linking with a different
/// entry symbol — changes the key even though the name is unchanged.
pub fn workload_identity(workload: &Workload) -> String {
    match workload.content_fingerprint() {
        Some(fp) => format!("{}#{fp:016x}", workload.name),
        None => workload.name.to_string(),
    }
}

/// The full canonical key text of one simulation point (hash pre-image;
/// exposed so tests can assert *why* two keys differ).
pub fn point_key_text(config: &SimConfig, suite: Suite, workload: &str, budget: &Budget) -> String {
    format!(
        "salt={CACHE_SALT};codec={STATS_CODEC_VERSION};point={suite:?}/{workload};{}{}",
        canonical_budget(budget),
        canonical_config(config),
    )
}

/// The content address of one simulation point.
pub fn point_key(config: &SimConfig, suite: Suite, workload: &str, budget: &Budget) -> u128 {
    fnv128(&point_key_text(config, suite, workload, budget))
}

/// The content address of a named derived scalar (e.g. a traced stall
/// share) of one `(config, budget)` pair.
pub fn derived_key(tag: &str, config: &SimConfig, budget: &Budget) -> u128 {
    fnv128(&format!(
        "salt={CACHE_SALT};derived={tag};{}{}",
        canonical_budget(budget),
        canonical_config(config),
    ))
}

/// Where one point came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the on-disk cache without simulating.
    Hit,
    /// Simulated (and stored for next time).
    Miss,
    /// The cache is disabled (`CARF_CACHE=0`); simulated, nothing stored.
    Bypass,
}

/// The on-disk content-addressed store under `<results>/cache/`.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// A cache rooted at an explicit directory (tests, the daemon).
    pub fn at(dir: PathBuf) -> Self {
        Self { dir }
    }

    /// The default cache under [`parallel::results_dir`]`/cache`, or
    /// `None` when `CARF_CACHE` is `0`/`off`/`false`.
    pub fn from_env() -> Option<Self> {
        if let Ok(v) = std::env::var("CARF_CACHE") {
            let v = v.trim().to_ascii_lowercase();
            if v == "0" || v == "off" || v == "false" {
                return None;
            }
        }
        Some(Self::at(parallel::results_dir().join("cache")))
    }

    /// The cache root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry file for `key`, sharded on the top byte so no single
    /// directory grows unboundedly.
    pub fn entry_path(&self, key: u128) -> PathBuf {
        let hex = format!("{key:032x}");
        self.dir.join(&hex[..2]).join(format!("{hex}.json"))
    }

    /// Looks up a simulation point. Any unreadable, mismatched, or
    /// stale-codec entry is a miss, never an error.
    pub fn load_point(&self, key: u128) -> Option<SimStats> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        if json_field(&text, "key")? != format!("{key:032x}") {
            return None;
        }
        stats_from_json(&json_field(&text, "stats")?).ok()
    }

    /// Stores a simulation point and records it in the index. Storage
    /// failures are reported to stderr but never abort an experiment —
    /// the simulation result in hand is still valid.
    pub fn store_point(
        &self,
        key: u128,
        point: &str,
        config: &SimConfig,
        budget: &Budget,
        stats: &SimStats,
    ) {
        let hex = format!("{key:032x}");
        let entry = format!(
            "{{\"key\":\"{hex}\",\"kind\":\"point\",\"point\":\"{point}\",\
             \"config\":\"{}\",\"budget\":\"{}\",\"salt\":\"{CACHE_SALT}\",\
             \"stats\":{}}}\n",
            config.describe(),
            budget.label(),
            stats_to_json(stats),
        );
        self.commit_entry(&hex, "point", point, config, budget, &entry);
    }

    /// Looks up a derived scalar (stored bit-exactly).
    pub fn load_derived(&self, key: u128) -> Option<f64> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        if json_field(&text, "key")? != format!("{key:032x}") {
            return None;
        }
        json_field(&text, "value_bits")?.parse::<u64>().ok().map(f64::from_bits)
    }

    /// Stores a derived scalar under its [`derived_key`].
    pub fn store_derived(
        &self,
        key: u128,
        tag: &str,
        config: &SimConfig,
        budget: &Budget,
        value: f64,
    ) {
        let hex = format!("{key:032x}");
        let entry = format!(
            "{{\"key\":\"{hex}\",\"kind\":\"derived\",\"point\":\"{tag}\",\
             \"config\":\"{}\",\"budget\":\"{}\",\"salt\":\"{CACHE_SALT}\",\
             \"value_bits\":{}}}\n",
            config.describe(),
            budget.label(),
            value.to_bits(),
        );
        self.commit_entry(&hex, "derived", tag, config, budget, &entry);
    }

    fn commit_entry(
        &self,
        hex: &str,
        kind: &str,
        point: &str,
        config: &SimConfig,
        budget: &Budget,
        entry: &str,
    ) {
        let key: u128 = u128::from_str_radix(hex, 16).expect("hex key");
        let path = self.entry_path(key);
        if let Err(e) = atomic_write(&path, entry.as_bytes()) {
            eprintln!("warning: cache store failed for {}: {e}", path.display());
            return;
        }
        let index_row = format!(
            "{{\"key\":\"{hex}\",\"kind\":\"{kind}\",\"point\":\"{point}\",\
             \"config\":\"{}\",\"budget\":\"{}\"}}",
            config.describe(),
            budget.label(),
        );
        if let Err(e) = self.merge_index(&index_row) {
            eprintln!("warning: cache index update failed: {e}");
        }
    }

    /// Merges one row into `index.json` (keyed by `key`) under the
    /// advisory lock, with an atomic rewrite.
    fn merge_index(&self, row: &str) -> std::io::Result<()> {
        let path = self.index_path();
        let _guard = FileLock::acquire(&path)?;
        let existing: Vec<String> = std::fs::read_to_string(&path)
            .unwrap_or_default()
            .lines()
            .map(|l| l.trim().trim_end_matches(',').to_string())
            .filter(|l| l.starts_with('{'))
            .collect();
        let rows = parallel::merge_json_records(&existing, row, &["key"]);
        let mut out = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(r);
            if i + 1 < rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        atomic_write(&path, out.as_bytes())
    }

    /// The human-readable key → (config, point, budget) listing.
    pub fn index_path(&self) -> PathBuf {
        self.dir.join("index.json")
    }
}

/// Whether `CARF_CACHE_REQUIRE_WARM` demands a fully warm run.
fn require_warm() -> bool {
    std::env::var("CARF_CACHE_REQUIRE_WARM").is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

fn fail_cold(simulated: usize) -> ! {
    eprintln!(
        "error: CARF_CACHE_REQUIRE_WARM is set but {simulated} point(s) required simulation \
         (the cache was cold or disabled)"
    );
    std::process::exit(3);
}

/// The result of a cached matrix run: the per-point suite results (input
/// order, exactly as [`crate::run_matrix`] returns) plus the cache ledger.
#[derive(Debug)]
pub struct MatrixOutcome {
    /// One [`SuiteResult`] per input point, in input order.
    pub results: Vec<SuiteResult>,
    /// Workload runs served from the cache.
    pub served: usize,
    /// Workload runs that had to be simulated.
    pub simulated: usize,
}

impl MatrixOutcome {
    /// One summary line for experiment headers and CI greps.
    pub fn summary(&self) -> String {
        format!("cache: served {}, simulated {}", self.served, self.simulated)
    }
}

/// [`crate::run_matrix`] behind the content-addressed cache: only the
/// points missing from the store are simulated (over the worker pool,
/// order-preserving); everything else is served from disk. With the cache
/// disabled every point simulates and nothing is stored.
///
/// Prints one `cache: served N, simulated M` summary line. With
/// `CARF_CACHE_REQUIRE_WARM` set, exits 3 if any point simulated.
pub fn run_matrix_cached(points: &[(SimConfig, Suite)], budget: &Budget) -> MatrixOutcome {
    let cache = ResultCache::from_env();
    let outcome = run_matrix_with_cache(points, budget, cache.as_ref());
    println!("{}", outcome.summary());
    if outcome.simulated > 0 && require_warm() {
        fail_cold(outcome.simulated);
    }
    outcome
}

/// [`run_matrix_cached`] against an explicit cache (`None` = bypass).
/// Does not print and does not enforce `CARF_CACHE_REQUIRE_WARM` — the
/// daemon and tests drive this directly.
pub fn run_matrix_with_cache(
    points: &[(SimConfig, Suite)],
    budget: &Budget,
    cache: Option<&ResultCache>,
) -> MatrixOutcome {
    let custom: Vec<(SimConfig, Suite, Vec<Workload>)> = points
        .iter()
        .map(|(config, suite)| (config.clone(), *suite, crate::suite_workloads(*suite)))
        .collect();
    run_custom_with_cache(&custom, budget, cache)
}

/// [`run_matrix_cached`] over explicit workload lists instead of the
/// registry suites — the corpus path, where each point carries its own
/// set of assembled programs. Prints the cache summary line and enforces
/// `CARF_CACHE_REQUIRE_WARM` like [`run_matrix_cached`].
pub fn run_custom_cached(
    points: &[(SimConfig, Suite, Vec<Workload>)],
    budget: &Budget,
) -> MatrixOutcome {
    let cache = ResultCache::from_env();
    let outcome = run_custom_with_cache(points, budget, cache.as_ref());
    println!("{}", outcome.summary());
    if outcome.simulated > 0 && require_warm() {
        fail_cold(outcome.simulated);
    }
    outcome
}

/// [`run_custom_cached`] against an explicit cache (`None` = bypass),
/// without printing or warm enforcement. Workloads are addressed by
/// [`workload_identity`], so fixed-program (corpus) points key on program
/// content, not just name.
pub fn run_custom_with_cache(
    points: &[(SimConfig, Suite, Vec<Workload>)],
    budget: &Budget,
    cache: Option<&ResultCache>,
) -> MatrixOutcome {
    parallel::note_run_start();
    let mut flat: Vec<(usize, Suite, &Workload)> = Vec::new();
    for (pi, (_, suite, workloads)) in points.iter().enumerate() {
        for w in workloads {
            flat.push((pi, *suite, w));
        }
    }

    // Partition into served and to-simulate without losing the flat order.
    let mut runs: Vec<Option<(String, SimStats)>> = Vec::with_capacity(flat.len());
    let mut cold: Vec<usize> = Vec::new();
    for (fi, (pi, suite, w)) in flat.iter().enumerate() {
        let hit = cache.and_then(|c| {
            c.load_point(point_key(&points[*pi].0, *suite, &workload_identity(w), budget))
        });
        match hit {
            Some(stats) => runs.push(Some((w.name.to_string(), stats))),
            None => {
                runs.push(None);
                cold.push(fi);
            }
        }
    }

    let simulated = cold.len();
    let served = flat.len() - simulated;
    let fresh = parallel::run_ordered(&cold, budget.jobs, |fi| {
        let (pi, suite, w) = &flat[*fi];
        crate::run_workload_timed(&points[*pi].0, *suite, w, budget)
    });
    for (fi, run) in cold.iter().zip(fresh) {
        let (pi, suite, w) = &flat[*fi];
        if let Some(c) = cache {
            c.store_point(
                point_key(&points[*pi].0, *suite, &workload_identity(w), budget),
                &format!("{suite:?}/{}", workload_identity(w)),
                &points[*pi].0,
                budget,
                &run.1,
            );
        }
        runs[*fi] = Some(run);
    }

    let mut results: Vec<SuiteResult> = points
        .iter()
        .map(|(_, suite, _)| SuiteResult { suite: *suite, runs: Vec::new() })
        .collect();
    for ((pi, _, _), run) in flat.iter().zip(runs) {
        results[*pi].runs.push(run.expect("every flat slot is filled"));
    }
    MatrixOutcome { results, served, simulated }
}

/// A cached named derived scalar: served bit-exactly from the store when
/// present, otherwise computed by `compute` and stored. Honors
/// `CARF_CACHE` and `CARF_CACHE_REQUIRE_WARM` like [`run_matrix_cached`].
/// Returns the value and its provenance.
pub fn cached_derived_f64(
    tag: &str,
    config: &SimConfig,
    budget: &Budget,
    compute: impl FnOnce() -> f64,
) -> (f64, CacheStatus) {
    let Some(cache) = ResultCache::from_env() else {
        if require_warm() {
            fail_cold(1);
        }
        return (compute(), CacheStatus::Bypass);
    };
    let key = derived_key(tag, config, budget);
    if let Some(v) = cache.load_derived(key) {
        return (v, CacheStatus::Hit);
    }
    if require_warm() {
        fail_cold(1);
    }
    let v = compute();
    cache.store_derived(key, tag, config, budget, v);
    (v, CacheStatus::Miss)
}

// ---------------------------------------------------------------------
// Multi-context points: one cache entry per co-simulation.
// ---------------------------------------------------------------------

/// Version tag for the packed multi-context entry encoding (the
/// `threads` field of a `"kind":"multi"` entry). Bump alongside any
/// change to [`MultiThreadRecord`]'s stored fields.
pub const MULTI_CODEC_VERSION: u32 = 1;

/// One multi-context co-simulation point: an **ordered** tuple of
/// per-context (configuration, workload) pairs under one
/// [`SharingPolicy`]. The order is part of the identity — context index
/// decides fetch-arbitration priority and the round-robin rotation, so
/// swapping two contexts is a different experiment.
#[derive(Debug)]
pub struct MultiPoint {
    /// Human-readable label for tables and the cache index.
    pub label: String,
    /// The contexts, in arbitration order.
    pub contexts: Vec<(SimConfig, Workload)>,
    /// How the contexts share physical resources.
    pub policy: SharingPolicy,
    /// Shared-clock cycle ceiling.
    pub max_cycles: u64,
    /// Per-context committed-instruction quota.
    pub per_thread_insts: u64,
}

/// The cached per-context outcome — exactly the fields IPC and the
/// guard-stall shares derive from, so a warm record is byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiThreadRecord {
    /// Instructions the context committed.
    pub committed: u64,
    /// The context's active cycles (already clamped to ≥ 1 by the
    /// simulator, so [`MultiThreadRecord::ipc`] reproduces the live
    /// value bit-for-bit).
    pub cycles: u64,
    /// Cycles issue stalled on the (possibly windowed) Long guard.
    pub long_guard_stall_cycles: u64,
}

impl MultiThreadRecord {
    /// IPC over the context's active cycles — the same division
    /// `MultiSim::results` performs, on the same integers.
    pub fn ipc(&self) -> f64 {
        self.committed as f64 / self.cycles as f64
    }

    /// Guard-stall cycles as a fraction of the context's active cycles.
    pub fn stall_share(&self) -> f64 {
        self.long_guard_stall_cycles as f64 / self.cycles as f64
    }

    fn pack(&self) -> String {
        format!("{}/{}/{}", self.committed, self.cycles, self.long_guard_stall_cycles)
    }

    fn unpack(text: &str) -> Option<Self> {
        let mut it = text.split('/');
        let committed = it.next()?.parse().ok()?;
        let cycles = it.next()?.parse().ok()?;
        let long_guard_stall_cycles = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(Self { committed, cycles, long_guard_stall_cycles })
    }
}

/// The canonical key text of one multi-context point: the sharing
/// policy, the run quotas, the budget, and the **ordered** tuple of
/// per-context fingerprints — each context's full [`canonical_config`]
/// plus its [`workload_identity`]. Any perturbation of any context (or
/// of their order) is a different key.
pub fn multi_key_text(point: &MultiPoint, budget: &Budget) -> String {
    let mut out = format!(
        "salt={CACHE_SALT};multicodec={MULTI_CODEC_VERSION};policy={};\
         max_cycles={};per_thread={};{}n={};",
        point.policy.canonical(),
        point.max_cycles,
        point.per_thread_insts,
        canonical_budget(budget),
        point.contexts.len(),
    );
    for (i, (config, workload)) in point.contexts.iter().enumerate() {
        let _ = write!(
            out,
            "ctx{i}={}|{}",
            workload_identity(workload),
            canonical_config(config)
        );
    }
    out
}

/// The content address of one multi-context point.
pub fn multi_key(point: &MultiPoint, budget: &Budget) -> u128 {
    fnv128(&multi_key_text(point, budget))
}

impl ResultCache {
    /// Looks up a multi-context point: the per-context records, in
    /// context order. Unreadable or malformed entries are misses.
    pub fn load_multi(&self, key: u128) -> Option<Vec<MultiThreadRecord>> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        if json_field(&text, "key")? != format!("{key:032x}") {
            return None;
        }
        let packed = json_field(&text, "threads")?;
        let threads: Option<Vec<MultiThreadRecord>> =
            packed.split(',').map(MultiThreadRecord::unpack).collect();
        threads.filter(|t| !t.is_empty())
    }

    /// Stores a multi-context point (indexed under the first context's
    /// configuration — the index is a human-readable ledger, not the
    /// identity; the key already covers every context).
    pub fn store_multi(
        &self,
        key: u128,
        point: &MultiPoint,
        budget: &Budget,
        threads: &[MultiThreadRecord],
    ) {
        let hex = format!("{key:032x}");
        let packed: Vec<String> = threads.iter().map(MultiThreadRecord::pack).collect();
        let config = &point.contexts.first().expect("a multi point has contexts").0;
        let entry = format!(
            "{{\"key\":\"{hex}\",\"kind\":\"multi\",\"point\":\"{}\",\
             \"policy\":\"{}\",\"config\":\"{}\",\"budget\":\"{}\",\
             \"salt\":\"{CACHE_SALT}\",\"threads\":\"{}\"}}\n",
            point.label,
            point.policy.canonical(),
            config.describe(),
            budget.label(),
            packed.join(","),
        );
        self.commit_entry(&hex, "multi", &point.label, config, budget, &entry);
    }
}

/// The result of a cached multi-context run: per-point, per-context
/// records (input order) plus the cache ledger.
#[derive(Debug)]
pub struct MultiOutcome {
    /// One record vector per input point, one record per context.
    pub results: Vec<Vec<MultiThreadRecord>>,
    /// Co-simulations served from the cache.
    pub served: usize,
    /// Co-simulations that had to run.
    pub simulated: usize,
}

impl MultiOutcome {
    /// One summary line for experiment headers and CI greps.
    pub fn summary(&self) -> String {
        format!("cache: served {}, simulated {}", self.served, self.simulated)
    }
}

/// Runs multi-context points behind the content-addressed cache: cold
/// points co-simulate over the worker pool (each co-simulation is one
/// work item — its contexts are lockstep-coupled and cannot split),
/// warm points are served from disk. Prints the `cache: served N,
/// simulated M` line; with `CARF_CACHE_REQUIRE_WARM` set, exits 3 if
/// any point simulated.
///
/// Interval sampling does not apply to lockstep co-simulation;
/// `budget.sample` is ignored here (it still participates in the key
/// through the canonical budget, like every budget field).
pub fn run_multi_cached(points: &[MultiPoint], budget: &Budget) -> MultiOutcome {
    let cache = ResultCache::from_env();
    let outcome = run_multi_with_cache(points, budget, cache.as_ref());
    println!("{}", outcome.summary());
    if outcome.simulated > 0 && require_warm() {
        fail_cold(outcome.simulated);
    }
    outcome
}

/// [`run_multi_cached`] against an explicit cache (`None` = bypass),
/// without printing or warm enforcement.
pub fn run_multi_with_cache(
    points: &[MultiPoint],
    budget: &Budget,
    cache: Option<&ResultCache>,
) -> MultiOutcome {
    parallel::note_run_start();
    let mut results: Vec<Option<Vec<MultiThreadRecord>>> = Vec::with_capacity(points.len());
    let mut cold: Vec<usize> = Vec::new();
    for (pi, point) in points.iter().enumerate() {
        match cache.and_then(|c| c.load_multi(multi_key(point, budget))) {
            Some(threads) if threads.len() == point.contexts.len() => {
                results.push(Some(threads));
            }
            _ => {
                results.push(None);
                cold.push(pi);
            }
        }
    }

    let simulated = cold.len();
    let served = points.len() - simulated;
    let fresh = parallel::run_ordered(&cold, budget.jobs, |pi| {
        let point = &points[*pi];
        let programs: Vec<_> = point
            .contexts
            .iter()
            .map(|(_, w)| w.build(w.size(budget.size)))
            .collect();
        let contexts: Vec<_> = point
            .contexts
            .iter()
            .zip(&programs)
            .map(|((config, _), program)| (config.clone(), program))
            .collect();
        let mut multi = MultiSim::new(contexts, point.policy)
            .unwrap_or_else(|e| panic!("{}: {e}", point.label));
        let run = multi
            .run(point.max_cycles, point.per_thread_insts)
            .unwrap_or_else(|e| panic!("{}: {e}", point.label));
        run.into_iter()
            .map(|r| MultiThreadRecord {
                committed: r.committed,
                cycles: r.cycles,
                long_guard_stall_cycles: r.long_guard_stall_cycles,
            })
            .collect::<Vec<_>>()
    });
    for (pi, threads) in cold.iter().zip(fresh) {
        if let Some(c) = cache {
            c.store_multi(multi_key(&points[*pi], budget), &points[*pi], budget, &threads);
        }
        results[*pi] = Some(threads);
    }

    MultiOutcome {
        results: results.into_iter().map(|r| r.expect("every point is filled")).collect(),
        served,
        simulated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carf_core::CarfParams;

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir()
            .join(format!("carf-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::at(dir)
    }

    #[test]
    fn key_covers_config_workload_and_budget() {
        let budget = Budget::quick();
        let base = point_key(&SimConfig::paper_baseline(), Suite::Int, "tridiag", &budget);
        // Same everything → same key.
        assert_eq!(
            base,
            point_key(&SimConfig::paper_baseline(), Suite::Int, "tridiag", &budget)
        );
        // Any semantic perturbation → different key.
        let mut cfg = SimConfig::paper_baseline();
        cfg.rob_size += 1;
        assert_ne!(base, point_key(&cfg, Suite::Int, "tridiag", &budget));
        assert_ne!(
            base,
            point_key(&SimConfig::paper_baseline(), Suite::Int, "hash_mix", &budget)
        );
        let mut b2 = budget;
        b2.max_insts += 1;
        assert_ne!(base, point_key(&SimConfig::paper_baseline(), Suite::Int, "tridiag", &b2));
        let mut b3 = budget;
        b3.sample = Some(SampleSpec::default());
        assert_ne!(base, point_key(&SimConfig::paper_baseline(), Suite::Int, "tridiag", &b3));
    }

    #[test]
    fn jobs_do_not_split_the_key() {
        let mut a = Budget::quick();
        a.jobs = 1;
        let mut b = Budget::quick();
        b.jobs = 16;
        let cfg = SimConfig::paper_carf(CarfParams::paper_default());
        assert_eq!(
            point_key(&cfg, Suite::Int, "tridiag", &a),
            point_key(&cfg, Suite::Int, "tridiag", &b)
        );
    }

    #[test]
    fn canonical_config_distinguishes_backends_and_policies() {
        let texts: Vec<String> = [
            SimConfig::paper_baseline(),
            SimConfig::paper_unlimited(),
            SimConfig::paper_carf(CarfParams::paper_default()),
            SimConfig::paper_compressed(CarfParams::paper_default()),
            SimConfig::paper_port_reduced(carf_core::PortReducedParams::default()),
        ]
        .iter()
        .map(canonical_config)
        .collect();
        for (i, a) in texts.iter().enumerate() {
            for b in texts.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        let mut pol = carf_core::Policies::default();
        pol.extra_bypass = !pol.extra_bypass;
        let tweaked =
            SimConfig::paper_carf_with(CarfParams::paper_default(), pol);
        assert_ne!(canonical_config(&tweaked), texts[2]);
    }

    #[test]
    fn store_and_load_round_trip() {
        let cache = temp_cache("roundtrip");
        let cfg = SimConfig::test_small();
        let budget = Budget::quick();
        let key = point_key(&cfg, Suite::Int, "tridiag", &budget);
        assert!(cache.load_point(key).is_none(), "cold cache misses");
        let stats = SimStats {
            cycles: 4242,
            committed: 9001,
            long_mean_live: 0.1 + 0.2,
            ..SimStats::default()
        };
        cache.store_point(key, "Int/tridiag", &cfg, &budget, &stats);
        let back = cache.load_point(key).expect("warm cache hits");
        assert_eq!(back, stats);
        assert_eq!(back.long_mean_live.to_bits(), stats.long_mean_live.to_bits());
        // The index knows the entry.
        let index = std::fs::read_to_string(cache.index_path()).unwrap();
        assert!(index.contains(&format!("{key:032x}")), "{index}");
        assert!(index.contains("Int/tridiag"));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn derived_values_round_trip_bit_exactly() {
        let cache = temp_cache("derived");
        let cfg = SimConfig::test_small();
        let budget = Budget::quick();
        let key = derived_key("stall_share", &cfg, &budget);
        assert!(cache.load_derived(key).is_none());
        let v = 0.123_456_789_f64;
        cache.store_derived(key, "stall_share", &cfg, &budget, v);
        assert_eq!(cache.load_derived(key).map(f64::to_bits), Some(v.to_bits()));
        // A different tag is a different address.
        assert_ne!(key, derived_key("other", &cfg, &budget));
        // Point keys and derived keys never collide on the same config.
        assert!(cache.load_point(key).is_none(), "derived entry is not a point");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn workload_identity_keys_fixed_programs_by_content() {
        // Synthetic kernels: identity is the bare name (golden keys in
        // tests/cache_keys.rs depend on this staying stable).
        let synthetic = &carf_workloads::int_suite()[0];
        assert_eq!(workload_identity(synthetic), synthetic.name);

        let a = Workload::from_program(
            "kernel",
            Suite::Int,
            "",
            carf_isa::parse_asm("li x1, 1\nhalt\n").unwrap(),
        );
        let b = Workload::from_program(
            "kernel",
            Suite::Int,
            "",
            carf_isa::parse_asm("li x1, 2\nhalt\n").unwrap(),
        );
        let (ia, ib) = (workload_identity(&a), workload_identity(&b));
        assert!(ia.starts_with("kernel#"), "{ia}");
        // Same name, one-immediate edit → different identity → different key.
        assert_ne!(ia, ib);
        let budget = Budget::quick();
        let cfg = SimConfig::paper_baseline();
        assert_ne!(
            point_key(&cfg, Suite::Int, &ia, &budget),
            point_key(&cfg, Suite::Int, &ib, &budget)
        );
    }

    #[test]
    fn entry_paths_are_sharded() {
        let cache = temp_cache("shard");
        let p = cache.entry_path(0xabcd_0000_0000_0000_0000_0000_0000_0001);
        let shard = p.parent().unwrap().file_name().unwrap().to_str().unwrap();
        assert_eq!(shard, "ab");
        assert!(p.file_name().unwrap().to_str().unwrap().ends_with(".json"));
    }

    fn multi_point(names: [&str; 2], policy: SharingPolicy) -> MultiPoint {
        let pick = |name: &str| {
            carf_workloads::all_workloads()
                .into_iter()
                .find(|w| w.name == name)
                .unwrap_or_else(|| panic!("workload {name}"))
        };
        let cfg = SimConfig::paper_carf(CarfParams::paper_default());
        MultiPoint {
            label: format!("{}+{}", names[0], names[1]),
            contexts: names.iter().map(|n| (cfg.clone(), pick(n))).collect(),
            policy,
            max_cycles: 2_000_000,
            per_thread_insts: 3_000,
        }
    }

    #[test]
    fn multi_key_covers_policy_order_and_every_context() {
        let budget = Budget::quick();
        let p = multi_point(["pointer_chase", "hash_table"], SharingPolicy::shared_long(48));
        let base = multi_key(&p, &budget);
        // Reconstructing the same point reproduces the key.
        assert_eq!(
            base,
            multi_key(
                &multi_point(["pointer_chase", "hash_table"], SharingPolicy::shared_long(48)),
                &budget
            )
        );
        // Policy, context order, any context's config, and quotas all
        // perturb the key.
        assert_ne!(
            base,
            multi_key(
                &multi_point(["pointer_chase", "hash_table"], SharingPolicy::shared_long(44)),
                &budget
            )
        );
        assert_ne!(
            base,
            multi_key(
                &multi_point(["hash_table", "pointer_chase"], SharingPolicy::shared_long(48)),
                &budget
            )
        );
        let mut tweaked = multi_point(["pointer_chase", "hash_table"], SharingPolicy::shared_long(48));
        tweaked.contexts[1].0.rob_size += 1;
        assert_ne!(base, multi_key(&tweaked, &budget));
        let mut quotas = multi_point(["pointer_chase", "hash_table"], SharingPolicy::shared_long(48));
        quotas.per_thread_insts += 1;
        assert_ne!(base, multi_key(&quotas, &budget));
    }

    #[test]
    fn multi_records_round_trip() {
        let cache = temp_cache("multi");
        let budget = Budget::quick();
        let point = multi_point(["pointer_chase", "hash_table"], SharingPolicy::shared_long(48));
        let key = multi_key(&point, &budget);
        assert!(cache.load_multi(key).is_none(), "cold cache misses");
        let threads = vec![
            MultiThreadRecord { committed: 3_000, cycles: 4_321, long_guard_stall_cycles: 17 },
            MultiThreadRecord { committed: 3_000, cycles: 5_000, long_guard_stall_cycles: 0 },
        ];
        cache.store_multi(key, &point, &budget, &threads);
        let back = cache.load_multi(key).expect("warm cache hits");
        assert_eq!(back, threads);
        // The derived IPC is the same division on the same integers.
        assert_eq!(back[0].ipc().to_bits(), (3_000f64 / 4_321f64).to_bits());
        let index = std::fs::read_to_string(cache.index_path()).unwrap();
        assert!(index.contains("pointer_chase+hash_table"), "{index}");
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn warm_multi_run_serves_identical_records_without_simulating() {
        let cache = temp_cache("multi-run");
        let mut budget = Budget::quick();
        budget.size = SizeClass::Test;
        budget.jobs = 1;
        let points = vec![multi_point(
            ["pointer_chase", "hash_table"],
            SharingPolicy::shared_long(48),
        )];
        let cold = run_multi_with_cache(&points, &budget, Some(&cache));
        assert_eq!((cold.served, cold.simulated), (0, 1));
        assert_eq!(cold.results[0].len(), 2);
        let warm = run_multi_with_cache(&points, &budget, Some(&cache));
        assert_eq!((warm.served, warm.simulated), (1, 0));
        assert_eq!(warm.results, cold.results);
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
