//! The real-program corpus: discover `.s` sources on disk, assemble and
//! link them into [`Program`]s, and adapt them to the suite machinery.
//!
//! The paper's premise is that *real program* value content is dominated
//! by narrow and duplicate values; every headline figure deserves a check
//! against programs that were not synthesized by the workload generators.
//! This module is the bridge: ported kernels live as plain assembly under
//! `corpus/`, and anything [`discover`] finds becomes a fixed-program
//! [`Workload`] (see [`Workload::from_program`]) that rides the standard
//! matrix/cache/sampling paths.
//!
//! # Layout convention
//!
//! [`discover`] accepts a file or a directory:
//!
//! * a `.s` **file** is one single-unit program, named after its stem;
//! * a **directory with `.s`-bearing subdirectories** is a *corpus*: each
//!   such subdirectory links as one multi-unit program (named after the
//!   subdirectory), and each loose `.s` file is a single-unit program;
//! * a **directory with no `.s`-bearing subdirectories** is a single
//!   program: all its `.s` files link together as translation units.
//!
//! So `carf-as corpus/` runs every kernel, while `carf-as
//! corpus/quicksort/` links and runs just that kernel. Within a program,
//! units link in filename order (deterministic layout); the entry is the
//! exported `_start` unless overridden.

use carf_isa::{link_with_entry, parse_object, LinkError, ObjectUnit, Program, SourceDiag};
use carf_workloads::{Suite, Workload};
use std::path::{Path, PathBuf};

/// One assembled and linked corpus program.
#[derive(Debug, Clone)]
pub struct CorpusProgram {
    /// Program name (file stem or directory name).
    pub name: String,
    /// The `.s` translation units, in link order.
    pub files: Vec<PathBuf>,
    /// The linked executable image.
    pub program: Program,
}

impl CorpusProgram {
    /// Adapts this program to a fixed-program [`Workload`] so it can join
    /// matrix runs and the result cache (which keys fixed programs by
    /// content fingerprint, not name).
    pub fn to_workload(&self, suite: Suite) -> Workload {
        // Workload names are `&'static str` across ~30 call sites; corpus
        // names are the only runtime-derived ones, so leak them (bounded
        // by the number of distinct programs per process).
        let name: &'static str = Box::leak(self.name.clone().into_boxed_str());
        Workload::from_program(name, suite, "corpus program", self.program.clone())
    }
}

/// A failure anywhere on the discover → parse → link path, carrying the
/// program or file involved.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem trouble on `path`.
    Io(PathBuf, std::io::Error),
    /// A source file failed to parse.
    Parse(SourceDiag),
    /// A program failed to link.
    Link {
        /// The program being linked.
        program: String,
        /// The linker's diagnostic.
        error: LinkError,
    },
    /// The path contained no `.s` sources at all.
    Empty(PathBuf),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            CorpusError::Parse(diag) => write!(f, "{diag}"),
            CorpusError::Link { program, error } => write!(f, "{program}: {error}"),
            CorpusError::Empty(path) => {
                write!(f, "{}: no .s sources found", path.display())
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// The default corpus root, `<workspace>/corpus`.
pub fn default_corpus_dir() -> PathBuf {
    crate::parallel::workspace_root().join("corpus")
}

/// Assembles and links the translation units of one program.
pub fn load_program(
    name: &str,
    files: &[PathBuf],
    entry: Option<&str>,
) -> Result<CorpusProgram, CorpusError> {
    let mut units: Vec<ObjectUnit> = Vec::with_capacity(files.len());
    for path in files {
        let source = std::fs::read_to_string(path)
            .map_err(|e| CorpusError::Io(path.clone(), e))?;
        let unit = parse_object(&source, &path.display().to_string())
            .map_err(CorpusError::Parse)?;
        units.push(unit);
    }
    let program = link_with_entry(&units, entry)
        .map_err(|error| CorpusError::Link { program: name.to_string(), error })?;
    Ok(CorpusProgram { name: name.to_string(), files: files.to_vec(), program })
}

fn sorted_entries(dir: &Path) -> Result<Vec<PathBuf>, CorpusError> {
    let rd = std::fs::read_dir(dir).map_err(|e| CorpusError::Io(dir.to_path_buf(), e))?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for e in rd {
        entries.push(e.map_err(|e| CorpusError::Io(dir.to_path_buf(), e))?.path());
    }
    entries.sort();
    Ok(entries)
}

fn is_asm(path: &Path) -> bool {
    path.is_file() && path.extension().is_some_and(|e| e == "s")
}

fn asm_files(dir: &Path) -> Result<Vec<PathBuf>, CorpusError> {
    Ok(sorted_entries(dir)?.into_iter().filter(|p| is_asm(p)).collect())
}

fn stem_name(path: &Path) -> String {
    path.file_stem().map_or_else(|| path.display().to_string(), |s| s.to_string_lossy().into_owned())
}

fn dir_name(path: &Path) -> String {
    path.file_name().map_or_else(|| path.display().to_string(), |s| s.to_string_lossy().into_owned())
}

/// Discovers, assembles, and links every program under `path` (see the
/// module docs for the layout convention). Programs come back sorted by
/// name — the discovery order is deterministic.
pub fn discover(path: &Path, entry: Option<&str>) -> Result<Vec<CorpusProgram>, CorpusError> {
    if is_asm(path) {
        return Ok(vec![load_program(&stem_name(path), &[path.to_path_buf()], entry)?]);
    }
    if !path.is_dir() {
        return Err(CorpusError::Empty(path.to_path_buf()));
    }

    // Partition the directory: subdirectories that hold `.s` units, and
    // loose `.s` files.
    let mut unit_dirs: Vec<(String, Vec<PathBuf>)> = Vec::new();
    let mut loose: Vec<PathBuf> = Vec::new();
    for e in sorted_entries(path)? {
        if e.is_dir() {
            let files = asm_files(&e)?;
            if !files.is_empty() {
                unit_dirs.push((dir_name(&e), files));
            }
        } else if is_asm(&e) {
            loose.push(e);
        }
    }

    let mut programs = Vec::new();
    if unit_dirs.is_empty() {
        // No program subdirectories: the directory itself is one program.
        if loose.is_empty() {
            return Err(CorpusError::Empty(path.to_path_buf()));
        }
        programs.push(load_program(&dir_name(path), &loose, entry)?);
    } else {
        for (name, files) in unit_dirs {
            programs.push(load_program(&name, &files, entry)?);
        }
        for file in loose {
            programs.push(load_program(&stem_name(&file), std::slice::from_ref(&file), entry)?);
        }
    }
    programs.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(programs)
}

/// Discovers the corpus under `dir` and adapts every program to a fixed
/// [`Workload`] on `suite`, in name order.
pub fn workloads(dir: &Path, suite: Suite) -> Result<Vec<Workload>, CorpusError> {
    Ok(discover(dir, None)?.iter().map(|p| p.to_workload(suite)).collect())
}

/// Interprets the shared `--corpus` / `--corpus-dir DIR` options of a
/// figure binary: `Some(root)` when corpus mode is requested (an explicit
/// directory implies it), `None` otherwise.
pub fn corpus_root(parsed: &crate::cli::ParsedCli) -> Option<PathBuf> {
    match parsed.option("--corpus-dir") {
        Some(dir) => Some(PathBuf::from(dir)),
        None => parsed.option("--corpus").map(|_| default_corpus_dir()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("carf-corpus-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const SINGLE: &str = "li x1, 5\nhalt\n";
    const MAIN: &str = ".globl _start\n_start:\n jal x31, f\n halt\n";
    const LIB: &str = ".globl f\nf:\n li x2, 9\n ret x31\n";

    #[test]
    fn single_file_is_one_program() {
        let dir = scratch("single");
        let f = dir.join("alpha.s");
        std::fs::write(&f, SINGLE).unwrap();
        let ps = discover(&f, None).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].name, "alpha");
        assert_eq!(ps[0].files.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flat_directory_links_as_one_program() {
        let dir = scratch("flat");
        std::fs::write(dir.join("main.s"), MAIN).unwrap();
        std::fs::write(dir.join("util.s"), LIB).unwrap();
        let ps = discover(&dir, None).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].files.len(), 2);
        // Filename order: main.s before util.s.
        assert!(ps[0].files[0].ends_with("main.s"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_directory_mixes_subdir_programs_and_loose_files() {
        let dir = scratch("mixed");
        std::fs::create_dir_all(dir.join("multi")).unwrap();
        std::fs::write(dir.join("multi/main.s"), MAIN).unwrap();
        std::fs::write(dir.join("multi/lib.s"), LIB).unwrap();
        std::fs::write(dir.join("solo.s"), SINGLE).unwrap();
        let ps = discover(&dir, None).unwrap();
        let names: Vec<&str> = ps.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["multi", "solo"]);
        assert_eq!(ps[0].files.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn link_errors_name_the_program() {
        let dir = scratch("linkerr");
        std::fs::write(dir.join("a.s"), ".globl f\nf:\n halt\n").unwrap();
        std::fs::write(dir.join("b.s"), ".globl f\nf:\n halt\n").unwrap();
        let e = discover(&dir, None).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("duplicate symbol `f`"), "{msg}");
        assert!(msg.contains("a.s") && msg.contains("b.s"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_paths_are_reported() {
        let dir = scratch("empty");
        assert!(matches!(discover(&dir, None), Err(CorpusError::Empty(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
