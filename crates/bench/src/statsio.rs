//! Exact, lossless [`SimStats`] serialization for the result cache and the
//! `carf-serve` wire protocol.
//!
//! The encoding is a single-line JSON object of dotted scalar fields.
//! Counters are plain integers; every `f64` is stored as its IEEE-754 bit
//! pattern (`f64::to_bits`) so a cached record deserializes **bit
//! identically** — a warm cache run must reproduce byte-identical result
//! files, so "close enough" decimal round-trips are not acceptable.
//!
//! Both directions destructure every struct exhaustively (no `..` rests):
//! adding a field to [`SimStats`] or any nested statistics type is a
//! compile error here until the codec learns about it, which is exactly
//! when the cache salt in [`crate::cache`] must be bumped.

use crate::parallel::json_field;
use carf_core::analysis::{GroupAccumulator, NUM_GROUPS};
use carf_core::{AccessStats, ClassCounts};
use carf_mem::{CacheStats, HierarchyStats};
use carf_sim::{BpredStats, DispatchStalls, OperandMix, OracleData, SimStats};
use std::fmt::Write as _;

/// Codec version: bumped whenever the field set or encoding changes, so a
/// stale cache entry misparses loudly instead of silently.
pub const STATS_CODEC_VERSION: u64 = 1;

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Self { out: String::from("{"), first: true }
    }

    fn raw(&mut self, key: &str, value: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        let _ = write!(self.out, "\"{key}\":{value}");
    }

    fn u64(&mut self, key: &str, v: u64) {
        self.raw(key, &v.to_string());
    }

    fn usize(&mut self, key: &str, v: usize) {
        self.raw(key, &v.to_string());
    }

    fn f64_bits(&mut self, key: &str, v: f64) {
        self.raw(key, &v.to_bits().to_string());
    }

    fn u64_array(&mut self, key: &str, vs: &[u64]) {
        let body =
            vs.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",");
        self.raw(key, &format!("[{body}]"));
    }

    fn class_counts(&mut self, prefix: &str, c: &ClassCounts) {
        let ClassCounts { simple, short, long } = *c;
        self.u64(&format!("{prefix}.simple"), simple);
        self.u64(&format!("{prefix}.short"), short);
        self.u64(&format!("{prefix}.long"), long);
    }

    fn access_stats(&mut self, prefix: &str, a: &AccessStats) {
        let AccessStats {
            reads,
            writes,
            total_reads,
            total_writes,
            long_write_stalls,
            short_allocs,
            short_alloc_rejects,
            short_reclaims,
            long_allocs,
            long_releases,
            capture_reuse_hits,
        } = a;
        self.class_counts(&format!("{prefix}.reads"), reads);
        self.class_counts(&format!("{prefix}.writes"), writes);
        self.u64(&format!("{prefix}.total_reads"), *total_reads);
        self.u64(&format!("{prefix}.total_writes"), *total_writes);
        self.u64(&format!("{prefix}.long_write_stalls"), *long_write_stalls);
        self.u64(&format!("{prefix}.short_allocs"), *short_allocs);
        self.u64(&format!("{prefix}.short_alloc_rejects"), *short_alloc_rejects);
        self.u64(&format!("{prefix}.short_reclaims"), *short_reclaims);
        self.u64(&format!("{prefix}.long_allocs"), *long_allocs);
        self.u64(&format!("{prefix}.long_releases"), *long_releases);
        self.u64(&format!("{prefix}.capture_reuse_hits"), *capture_reuse_hits);
    }

    fn cache_stats(&mut self, prefix: &str, c: &CacheStats) {
        let CacheStats { hits, misses, writebacks } = *c;
        self.u64(&format!("{prefix}.hits"), hits);
        self.u64(&format!("{prefix}.misses"), misses);
        self.u64(&format!("{prefix}.writebacks"), writebacks);
    }

    fn group(&mut self, key: &str, g: &GroupAccumulator) {
        let (totals, live_total, snapshots) = g.raw_parts();
        let mut flat: Vec<u64> = totals.to_vec();
        flat.push(live_total);
        flat.push(snapshots);
        self.u64_array(key, &flat);
    }
}

/// Serializes `stats` to the cache/wire encoding (one JSON object, one
/// line, no trailing newline).
pub fn stats_to_json(stats: &SimStats) -> String {
    let SimStats {
        cycles,
        committed,
        loads,
        stores,
        branches,
        fp_ops,
        fetched,
        squashed,
        mispredicts,
        deadlock_recoveries,
        long_guard_stall_cycles,
        bypassed_operands,
        rf_operands,
        zero_operands,
        wb_long_retries,
        load_replays,
        mem_dep_violations,
        dispatch_stalls,
        operand_mix,
        oracle,
        bpred,
        mem,
        int_rf,
        fp_rf,
        long_mean_live,
        long_peak_live,
        short_mean_occupancy,
        long_occupancy_hist,
        dest_class_matches,
        dest_class_total,
        stl_forwards,
        rf_read_port_denials,
        int_fu_denials,
        fp_fu_denials,
        lsq_wait_events,
        lsq_peak,
    } = stats;
    let mut w = Writer::new();
    w.u64("v", STATS_CODEC_VERSION);
    w.u64("cycles", *cycles);
    w.u64("committed", *committed);
    w.u64("loads", *loads);
    w.u64("stores", *stores);
    w.u64("branches", *branches);
    w.u64("fp_ops", *fp_ops);
    w.u64("fetched", *fetched);
    w.u64("squashed", *squashed);
    w.u64("mispredicts", *mispredicts);
    w.u64("deadlock_recoveries", *deadlock_recoveries);
    w.u64("long_guard_stall_cycles", *long_guard_stall_cycles);
    w.u64("bypassed_operands", *bypassed_operands);
    w.u64("rf_operands", *rf_operands);
    w.u64("zero_operands", *zero_operands);
    w.u64("wb_long_retries", *wb_long_retries);
    w.u64("load_replays", *load_replays);
    w.u64("mem_dep_violations", *mem_dep_violations);

    let DispatchStalls { rob, pregs, lsq, iq, checkpoints } = *dispatch_stalls;
    w.u64("dispatch_stalls.rob", rob);
    w.u64("dispatch_stalls.pregs", pregs);
    w.u64("dispatch_stalls.lsq", lsq);
    w.u64("dispatch_stalls.iq", iq);
    w.u64("dispatch_stalls.checkpoints", checkpoints);

    let OperandMix { only_simple, only_short, only_long, simple_short, simple_long, short_long } =
        *operand_mix;
    w.u64("operand_mix.only_simple", only_simple);
    w.u64("operand_mix.only_short", only_short);
    w.u64("operand_mix.only_long", only_long);
    w.u64("operand_mix.simple_short", simple_short);
    w.u64("operand_mix.simple_long", simple_long);
    w.u64("operand_mix.short_long", short_long);

    let OracleData { values, sim_d8, sim_d12, sim_d16, live_sum, snapshots } = oracle;
    w.group("oracle.values", values);
    w.group("oracle.sim_d8", sim_d8);
    w.group("oracle.sim_d12", sim_d12);
    w.group("oracle.sim_d16", sim_d16);
    w.u64("oracle.live_sum", *live_sum);
    w.u64("oracle.snapshots", *snapshots);

    let BpredStats {
        cond_predictions,
        cond_mispredicts,
        indirect_predictions,
        indirect_mispredicts,
    } = *bpred;
    w.u64("bpred.cond_predictions", cond_predictions);
    w.u64("bpred.cond_mispredicts", cond_mispredicts);
    w.u64("bpred.indirect_predictions", indirect_predictions);
    w.u64("bpred.indirect_mispredicts", indirect_mispredicts);

    let HierarchyStats { il1, dl1, l2, memory_accesses } = mem;
    w.cache_stats("mem.il1", il1);
    w.cache_stats("mem.dl1", dl1);
    w.cache_stats("mem.l2", l2);
    w.u64("mem.memory_accesses", *memory_accesses);

    w.access_stats("int_rf", int_rf);
    w.access_stats("fp_rf", fp_rf);

    w.f64_bits("long_mean_live_bits", *long_mean_live);
    w.usize("long_peak_live", *long_peak_live);
    w.f64_bits("short_mean_occupancy_bits", *short_mean_occupancy);
    w.u64_array("long_occupancy_hist", long_occupancy_hist);
    w.u64("dest_class_matches", *dest_class_matches);
    w.u64("dest_class_total", *dest_class_total);
    w.u64("stl_forwards", *stl_forwards);
    w.u64("rf_read_port_denials", *rf_read_port_denials);
    w.u64("int_fu_denials", *int_fu_denials);
    w.u64("fp_fu_denials", *fp_fu_denials);
    w.u64("lsq_wait_events", *lsq_wait_events);
    w.usize("lsq_peak", *lsq_peak);
    w.out.push('}');
    w.out
}

fn get_u64(rec: &str, key: &str) -> Result<u64, String> {
    json_field(rec, key)
        .ok_or_else(|| format!("missing field `{key}`"))?
        .parse::<u64>()
        .map_err(|e| format!("field `{key}`: {e}"))
}

fn get_usize(rec: &str, key: &str) -> Result<usize, String> {
    get_u64(rec, key).map(|v| v as usize)
}

fn get_f64_bits(rec: &str, key: &str) -> Result<f64, String> {
    get_u64(rec, key).map(f64::from_bits)
}

fn get_u64_array(rec: &str, key: &str) -> Result<Vec<u64>, String> {
    let raw = json_field(rec, key).ok_or_else(|| format!("missing field `{key}`"))?;
    let body = raw
        .trim()
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("field `{key}` is not an array: `{raw}`"))?;
    let body = body.trim();
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split(',')
        .map(|v| v.trim().parse::<u64>().map_err(|e| format!("field `{key}`: {e}")))
        .collect()
}

fn get_class_counts(rec: &str, prefix: &str) -> Result<ClassCounts, String> {
    Ok(ClassCounts {
        simple: get_u64(rec, &format!("{prefix}.simple"))?,
        short: get_u64(rec, &format!("{prefix}.short"))?,
        long: get_u64(rec, &format!("{prefix}.long"))?,
    })
}

fn get_access_stats(rec: &str, prefix: &str) -> Result<AccessStats, String> {
    Ok(AccessStats {
        reads: get_class_counts(rec, &format!("{prefix}.reads"))?,
        writes: get_class_counts(rec, &format!("{prefix}.writes"))?,
        total_reads: get_u64(rec, &format!("{prefix}.total_reads"))?,
        total_writes: get_u64(rec, &format!("{prefix}.total_writes"))?,
        long_write_stalls: get_u64(rec, &format!("{prefix}.long_write_stalls"))?,
        short_allocs: get_u64(rec, &format!("{prefix}.short_allocs"))?,
        short_alloc_rejects: get_u64(rec, &format!("{prefix}.short_alloc_rejects"))?,
        short_reclaims: get_u64(rec, &format!("{prefix}.short_reclaims"))?,
        long_allocs: get_u64(rec, &format!("{prefix}.long_allocs"))?,
        long_releases: get_u64(rec, &format!("{prefix}.long_releases"))?,
        capture_reuse_hits: get_u64(rec, &format!("{prefix}.capture_reuse_hits"))?,
    })
}

fn get_cache_stats(rec: &str, prefix: &str) -> Result<CacheStats, String> {
    Ok(CacheStats {
        hits: get_u64(rec, &format!("{prefix}.hits"))?,
        misses: get_u64(rec, &format!("{prefix}.misses"))?,
        writebacks: get_u64(rec, &format!("{prefix}.writebacks"))?,
    })
}

fn get_group(rec: &str, key: &str) -> Result<GroupAccumulator, String> {
    let flat = get_u64_array(rec, key)?;
    if flat.len() != NUM_GROUPS + 2 {
        return Err(format!(
            "field `{key}` expects {} elements, got {}",
            NUM_GROUPS + 2,
            flat.len()
        ));
    }
    let mut totals = [0u64; NUM_GROUPS];
    totals.copy_from_slice(&flat[..NUM_GROUPS]);
    Ok(GroupAccumulator::from_raw_parts(totals, flat[NUM_GROUPS], flat[NUM_GROUPS + 1]))
}

/// Deserializes a [`stats_to_json`] record.
///
/// # Errors
///
/// A message naming the first missing or malformed field; a wrong codec
/// version fails immediately (stale cache entries are treated as misses).
pub fn stats_from_json(rec: &str) -> Result<SimStats, String> {
    let v = get_u64(rec, "v")?;
    if v != STATS_CODEC_VERSION {
        return Err(format!("codec version {v}, expected {STATS_CODEC_VERSION}"));
    }
    Ok(SimStats {
        cycles: get_u64(rec, "cycles")?,
        committed: get_u64(rec, "committed")?,
        loads: get_u64(rec, "loads")?,
        stores: get_u64(rec, "stores")?,
        branches: get_u64(rec, "branches")?,
        fp_ops: get_u64(rec, "fp_ops")?,
        fetched: get_u64(rec, "fetched")?,
        squashed: get_u64(rec, "squashed")?,
        mispredicts: get_u64(rec, "mispredicts")?,
        deadlock_recoveries: get_u64(rec, "deadlock_recoveries")?,
        long_guard_stall_cycles: get_u64(rec, "long_guard_stall_cycles")?,
        bypassed_operands: get_u64(rec, "bypassed_operands")?,
        rf_operands: get_u64(rec, "rf_operands")?,
        zero_operands: get_u64(rec, "zero_operands")?,
        wb_long_retries: get_u64(rec, "wb_long_retries")?,
        load_replays: get_u64(rec, "load_replays")?,
        mem_dep_violations: get_u64(rec, "mem_dep_violations")?,
        dispatch_stalls: DispatchStalls {
            rob: get_u64(rec, "dispatch_stalls.rob")?,
            pregs: get_u64(rec, "dispatch_stalls.pregs")?,
            lsq: get_u64(rec, "dispatch_stalls.lsq")?,
            iq: get_u64(rec, "dispatch_stalls.iq")?,
            checkpoints: get_u64(rec, "dispatch_stalls.checkpoints")?,
        },
        operand_mix: OperandMix {
            only_simple: get_u64(rec, "operand_mix.only_simple")?,
            only_short: get_u64(rec, "operand_mix.only_short")?,
            only_long: get_u64(rec, "operand_mix.only_long")?,
            simple_short: get_u64(rec, "operand_mix.simple_short")?,
            simple_long: get_u64(rec, "operand_mix.simple_long")?,
            short_long: get_u64(rec, "operand_mix.short_long")?,
        },
        oracle: OracleData {
            values: get_group(rec, "oracle.values")?,
            sim_d8: get_group(rec, "oracle.sim_d8")?,
            sim_d12: get_group(rec, "oracle.sim_d12")?,
            sim_d16: get_group(rec, "oracle.sim_d16")?,
            live_sum: get_u64(rec, "oracle.live_sum")?,
            snapshots: get_u64(rec, "oracle.snapshots")?,
        },
        bpred: BpredStats {
            cond_predictions: get_u64(rec, "bpred.cond_predictions")?,
            cond_mispredicts: get_u64(rec, "bpred.cond_mispredicts")?,
            indirect_predictions: get_u64(rec, "bpred.indirect_predictions")?,
            indirect_mispredicts: get_u64(rec, "bpred.indirect_mispredicts")?,
        },
        mem: HierarchyStats {
            il1: get_cache_stats(rec, "mem.il1")?,
            dl1: get_cache_stats(rec, "mem.dl1")?,
            l2: get_cache_stats(rec, "mem.l2")?,
            memory_accesses: get_u64(rec, "mem.memory_accesses")?,
        },
        int_rf: get_access_stats(rec, "int_rf")?,
        fp_rf: get_access_stats(rec, "fp_rf")?,
        long_mean_live: get_f64_bits(rec, "long_mean_live_bits")?,
        long_peak_live: get_usize(rec, "long_peak_live")?,
        short_mean_occupancy: get_f64_bits(rec, "short_mean_occupancy_bits")?,
        long_occupancy_hist: get_u64_array(rec, "long_occupancy_hist")?,
        dest_class_matches: get_u64(rec, "dest_class_matches")?,
        dest_class_total: get_u64(rec, "dest_class_total")?,
        stl_forwards: get_u64(rec, "stl_forwards")?,
        rf_read_port_denials: get_u64(rec, "rf_read_port_denials")?,
        int_fu_denials: get_u64(rec, "int_fu_denials")?,
        fp_fu_denials: get_u64(rec, "fp_fu_denials")?,
        lsq_wait_events: get_u64(rec, "lsq_wait_events")?,
        lsq_peak: get_usize(rec, "lsq_peak")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_stats() -> SimStats {
        let mut s = SimStats {
            cycles: 123_456,
            committed: 200_000,
            loads: 41,
            stores: 17,
            branches: 99,
            fp_ops: 3,
            fetched: 250_000,
            squashed: 1_024,
            mispredicts: 77,
            long_mean_live: 13.625_481_9,
            long_peak_live: 48,
            short_mean_occupancy: 0.1 + 0.2, // deliberately non-representable
            long_occupancy_hist: vec![1, 0, 7, 49],
            lsq_peak: 63,
            ..SimStats::default()
        };
        s.dispatch_stalls.rob = 5;
        s.operand_mix.record(&[carf_core::ValueClass::Simple]);
        s.oracle.record(&[7, 7, 9]);
        s.bpred.cond_predictions = 1000;
        s.mem.dl1.hits = 500;
        s.mem.dl1.writebacks = 3;
        s.int_rf.reads.short = 42;
        s.int_rf.capture_reuse_hits = 9;
        s.fp_rf.total_writes = 2;
        s
    }

    #[test]
    fn round_trip_is_exact() {
        let s = busy_stats();
        let json = stats_to_json(&s);
        let back = stats_from_json(&json).expect("parse");
        assert_eq!(back, s);
        // Bit-exactness of the floats specifically.
        assert_eq!(back.short_mean_occupancy.to_bits(), s.short_mean_occupancy.to_bits());
        // And the encoding itself is stable under a second round trip.
        assert_eq!(stats_to_json(&back), json);
    }

    #[test]
    fn default_stats_round_trip() {
        let s = SimStats::default();
        assert_eq!(stats_from_json(&stats_to_json(&s)).unwrap(), s);
    }

    #[test]
    fn wrong_version_and_missing_fields_are_errors() {
        let s = SimStats::default();
        let json = stats_to_json(&s);
        let stale = json.replacen("\"v\":1", "\"v\":999", 1);
        assert!(stats_from_json(&stale).unwrap_err().contains("codec version"));
        let truncated = json.replacen("\"cycles\":0,", "", 1);
        assert!(stats_from_json(&truncated).unwrap_err().contains("cycles"));
        assert!(stats_from_json("{}").is_err());
    }

    #[test]
    fn oracle_groups_round_trip() {
        let mut s = SimStats::default();
        s.oracle.record(&[1, 1, 1, 2, 3]);
        s.oracle.record(&[5; 20]);
        let back = stats_from_json(&stats_to_json(&s)).unwrap();
        assert_eq!(back.oracle, s.oracle);
        assert_eq!(back.oracle.values.fractions(), s.oracle.values.fractions());
    }
}
