//! Parallel experiment execution engine.
//!
//! Every experiment point — one `(SimConfig, Workload, Budget)` triple —
//! is an independent simulation, so the harness dispatches points over a
//! `std::thread::scope` worker pool (std-only, no external crates). A
//! shared atomic work index hands out points; results are written into
//! per-point slots, so the returned vector is in input order and
//! **byte-identical to the serial run** regardless of worker count or
//! scheduling.
//!
//! The engine also collects wall-clock timing: per-point durations and
//! the total run time, written as machine-readable JSON by
//! [`write_timing_json`] (see `results/bench_timing.json`).

use crate::Budget;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maps `f` over `items` on up to `jobs` worker threads and returns the
/// results **in input order**. `jobs <= 1` (or a single item) degenerates
/// to the plain serial map — the parallel path produces exactly the same
/// output, it only changes wall-clock time.
///
/// # Panics
///
/// A panic in any worker propagates to the caller when the thread scope
/// joins (experiments must not silently drop points).
pub fn run_ordered<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed, so every slot is filled")
        })
        .collect()
}

/// Wall-clock timing of one experiment point.
#[derive(Debug, Clone)]
pub struct PointTiming {
    /// Point label (`suite/workload`).
    pub name: String,
    /// Simulation wall-clock seconds.
    pub secs: f64,
}

static POINTS: Mutex<Vec<PointTiming>> = Mutex::new(Vec::new());
static RUN_START: OnceLock<Instant> = OnceLock::new();

/// Marks the start of timed work (first call wins; later calls are no-ops).
pub fn note_run_start() {
    RUN_START.get_or_init(Instant::now);
}

/// Records one point's wall-clock duration.
pub fn record_point(name: String, secs: f64) {
    POINTS.lock().expect("timing collector poisoned").push(PointTiming { name, secs });
}

/// Seconds elapsed since [`note_run_start`] (0 when nothing ran).
pub fn total_secs() -> f64 {
    RUN_START.get().map_or(0.0, |t| t.elapsed().as_secs_f64())
}

/// Drains the recorded per-point timings.
pub fn take_points() -> Vec<PointTiming> {
    std::mem::take(&mut *POINTS.lock().expect("timing collector poisoned"))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The invoking binary's file stem (best effort; "unknown" as fallback).
pub fn bin_name() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "unknown".into())
}

/// Writes (merging) the run's timing record into
/// `results/bench_timing.json` and returns the path.
///
/// The file is a JSON array with one record per line, each of the form
/// `{"bin": ..., "budget": ..., "jobs": N, "total_secs": S, "points":
/// [{"name": ..., "secs": ...}, ...]}`. Records are keyed by
/// `(bin, budget, jobs)`: re-running the same configuration replaces its
/// record, so the file accumulates one row per distinct configuration.
pub fn write_timing_json(budget: &Budget) -> PathBuf {
    let bin = bin_name();
    let points = take_points();
    let total = total_secs();

    let mut record = format!(
        "{{\"bin\":\"{}\",\"budget\":\"{}\",\"jobs\":{},\"total_secs\":{:.3},\"points\":[",
        json_escape(&bin),
        budget.label(),
        budget.jobs,
        total
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            record.push(',');
        }
        record.push_str(&format!(
            "{{\"name\":\"{}\",\"secs\":{:.3}}}",
            json_escape(&p.name),
            p.secs
        ));
    }
    record.push_str("]}");

    let dir = PathBuf::from("results");
    let path = dir.join("bench_timing.json");
    let key = format!(
        "{{\"bin\":\"{}\",\"budget\":\"{}\",\"jobs\":{},",
        json_escape(&bin),
        budget.label(),
        budget.jobs
    );
    // Keep every record whose (bin, budget, jobs) key differs.
    let mut records: Vec<String> = std::fs::read_to_string(&path)
        .unwrap_or_default()
        .lines()
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .filter(|l| l.starts_with('{') && !l.starts_with(&key))
        .collect();
    records.push(record);

    if std::fs::create_dir_all(&dir).is_ok() {
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(f, "[");
            for (i, r) in records.iter().enumerate() {
                let sep = if i + 1 < records.len() { "," } else { "" };
                let _ = writeln!(f, "{r}{sep}");
            }
            let _ = writeln!(f, "]");
        }
    }
    println!(
        "timing: {} points in {:.2}s with {} worker(s) -> {}",
        points.len(),
        total,
        budget.jobs,
        path.display()
    );
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_match_serial_for_any_job_count() {
        let items: Vec<u64> = (0..100).collect();
        let serial = run_ordered(&items, 1, |v| v * v + 1);
        for jobs in [2, 3, 4, 16] {
            assert_eq!(run_ordered(&items, jobs, |v| v * v + 1), serial);
        }
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_ordered(&empty, 8, |v| *v).is_empty());
        assert_eq!(run_ordered(&[7u32], 8, |v| v + 1), vec![8]);
    }

    #[test]
    fn json_escaping_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
