//! Parallel experiment execution engine.
//!
//! Every experiment point — one `(SimConfig, Workload, Budget)` triple —
//! is an independent simulation, so the harness dispatches points over a
//! `std::thread::scope` worker pool (std-only, no external crates). A
//! shared atomic work index hands out points; results are written into
//! per-point slots, so the returned vector is in input order and
//! **byte-identical to the serial run** regardless of worker count or
//! scheduling.
//!
//! The engine also collects wall-clock timing: per-point durations and
//! the total run time, written as machine-readable JSON by
//! [`write_timing_json`] (see `results/bench_timing.json`).

use crate::fsio::{atomic_write, FileLock};
use crate::Budget;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maps `f` over `items` on up to `jobs` worker threads and returns the
/// results **in input order**. `jobs <= 1` (or a single item) degenerates
/// to the plain serial map — the parallel path produces exactly the same
/// output, it only changes wall-clock time.
///
/// # Panics
///
/// A panic in any worker propagates to the caller when the thread scope
/// joins (experiments must not silently drop points).
pub fn run_ordered<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed, so every slot is filled")
        })
        .collect()
}

/// Wall-clock timing of one experiment point.
#[derive(Debug, Clone)]
pub struct PointTiming {
    /// Point label (`suite/workload`).
    pub name: String,
    /// Simulation wall-clock seconds.
    pub secs: f64,
    /// Instructions committed by the simulation.
    pub committed: u64,
}

impl PointTiming {
    /// Committed kilo-instructions per wall-second (0 for a zero-length run).
    pub fn kips(&self) -> f64 {
        if self.secs > 0.0 {
            self.committed as f64 / 1000.0 / self.secs
        } else {
            0.0
        }
    }
}

static POINTS: Mutex<Vec<PointTiming>> = Mutex::new(Vec::new());
static RUN_START: OnceLock<Instant> = OnceLock::new();

/// Marks the start of timed work (first call wins; later calls are no-ops).
pub fn note_run_start() {
    RUN_START.get_or_init(Instant::now);
}

/// Records one point's wall-clock duration and committed-instruction count.
pub fn record_point(name: String, secs: f64, committed: u64) {
    POINTS
        .lock()
        .expect("timing collector poisoned")
        .push(PointTiming { name, secs, committed });
}

/// Geometric mean of per-point KIPS (0 when no point has a measurable rate).
pub fn geomean_kips(points: &[PointTiming]) -> f64 {
    let rates: Vec<f64> = points.iter().map(PointTiming::kips).filter(|k| *k > 0.0).collect();
    if rates.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = rates.iter().map(|k| k.ln()).sum();
    (log_sum / rates.len() as f64).exp()
}

/// Highest per-point KIPS (the peak committed-instruction rate).
pub fn peak_kips(points: &[PointTiming]) -> f64 {
    points.iter().map(PointTiming::kips).fold(0.0, f64::max)
}

/// Seconds elapsed since [`note_run_start`] (0 when nothing ran).
pub fn total_secs() -> f64 {
    RUN_START.get().map_or(0.0, |t| t.elapsed().as_secs_f64())
}

/// Drains the recorded per-point timings.
pub fn take_points() -> Vec<PointTiming> {
    std::mem::take(&mut *POINTS.lock().expect("timing collector poisoned"))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The invoking binary's file stem (best effort; "unknown" as fallback).
pub fn bin_name() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "unknown".into())
}

/// The directory result files are written to.
///
/// `CARF_RESULTS_DIR` overrides when set (and non-empty); otherwise this is
/// `<workspace root>/results`, anchored from this crate's manifest directory
/// at compile time so experiment binaries produce the same files no matter
/// which directory they are launched from.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARF_RESULTS_DIR") {
        if !dir.trim().is_empty() {
            return PathBuf::from(dir);
        }
    }
    workspace_root().join("results")
}

/// The workspace root, anchored from this crate's manifest directory at
/// compile time (committed artifacts like `BENCH_after.json` live here).
pub fn workspace_root() -> PathBuf {
    // crates/bench -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate manifest dir has a workspace root two levels up")
        .to_path_buf()
}

/// Scans the JSON string literal whose opening quote is at `record[start]`
/// and returns the content byte range (quotes stripped, escape sequences
/// preserved verbatim) plus the index of the closing quote. `None` when the
/// string never terminates. Quote and backslash are ASCII, so byte-wise
/// scanning is UTF-8 safe.
fn scan_string(record: &str, start: usize) -> Option<(usize, usize)> {
    let bytes = record.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some((start + 1, i)),
            b'\\' => i += 2,
            _ => i += 1,
        }
    }
    None
}

/// Returns the index just past the JSON value starting at `record[start]`,
/// skipping nested objects/arrays with full string awareness so separator
/// characters inside string values never end the scan early.
fn skip_value(record: &str, start: usize) -> Option<usize> {
    let bytes = record.as_bytes();
    match bytes.get(start)? {
        b'"' => scan_string(record, start).map(|(_, close)| close + 1),
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut i = start;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' | b'[' => {
                        depth += 1;
                        i += 1;
                    }
                    b'}' | b']' => {
                        depth -= 1;
                        i += 1;
                        if depth == 0 {
                            return Some(i);
                        }
                    }
                    b'"' => i = scan_string(record, i)?.1 + 1,
                    _ => i += 1,
                }
            }
            None
        }
        _ => {
            let rest = &record[start..];
            let len = rest
                .find(|c: char| c == ',' || c == '}' || c == ']' || c.is_whitespace())
                .unwrap_or(rest.len());
            Some(start + len)
        }
    }
}

/// Extracts the raw value of a top-level `"name": value` field from a
/// single-line JSON record (`None` when absent). String values are returned
/// without their quotes (escape sequences preserved); other values are
/// returned as their raw text. The scanner walks the top-level object
/// key-by-key, skipping nested objects, arrays, and string contents, so a
/// field name that appears inside a nested record (`"points":[{"name":…}]`)
/// or inside a string value never shadows — or stands in for — the
/// top-level field.
pub fn json_field(record: &str, name: &str) -> Option<String> {
    let bytes = record.as_bytes();
    let mut i = record.find('{')? + 1;
    loop {
        while i < bytes.len() && (bytes[i].is_ascii_whitespace() || bytes[i] == b',') {
            i += 1;
        }
        match bytes.get(i)? {
            b'}' => return None, // end of the top-level object: field absent
            b'"' => {
                let (key_start, key_end) = scan_string(record, i)?;
                i = key_end + 1;
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                if bytes.get(i) != Some(&b':') {
                    return None; // malformed row: treat the field as absent
                }
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i >= bytes.len() {
                    return None;
                }
                if &record[key_start..key_end] == name {
                    return if bytes[i] == b'"' {
                        scan_string(record, i).map(|(s, e)| record[s..e].to_string())
                    } else {
                        let end = skip_value(record, i)?;
                        let value = &record[i..end];
                        (!value.is_empty()).then(|| value.to_string())
                    };
                }
                i = skip_value(record, i)?;
            }
            _ => return None,
        }
    }
}

/// Merges `record` into `existing` one-record-per-line JSON rows: any row
/// whose `key_fields` values all equal the new record's is replaced; every
/// other row (including rows missing a key field) is kept. The new record
/// is appended last.
pub fn merge_json_records(
    existing: &[String],
    record: &str,
    key_fields: &[&str],
) -> Vec<String> {
    let new_key: Vec<Option<String>> =
        key_fields.iter().map(|f| json_field(record, f)).collect();
    let mut out: Vec<String> = existing
        .iter()
        .filter(|row| {
            let row_key: Vec<Option<String>> =
                key_fields.iter().map(|f| json_field(row, f)).collect();
            // Keep the row unless its key tuple is present and equal.
            row_key.iter().any(|v| v.is_none()) || row_key != new_key
        })
        .cloned()
        .collect();
    out.push(record.to_string());
    out
}

/// Merges `record` into `existing` rows keeping **history**: rows whose
/// `key_fields` values all equal the new record's are retained (newest
/// last) up to `keep - 1` of them, so with the appended record the file
/// holds at most the last `keep` runs per key tuple. Rows with a different
/// key — or missing a key field — are kept untouched. `keep == 1`
/// degenerates to [`merge_json_records`]'s replace semantics.
pub fn merge_json_records_rotating(
    existing: &[String],
    record: &str,
    key_fields: &[&str],
    keep: usize,
) -> Vec<String> {
    let keep = keep.max(1);
    let new_key: Vec<Option<String>> =
        key_fields.iter().map(|f| json_field(record, f)).collect();
    let matches_key = |row: &str| {
        let row_key: Vec<Option<String>> =
            key_fields.iter().map(|f| json_field(row, f)).collect();
        row_key.iter().all(|v| v.is_some()) && row_key == new_key
    };
    // Indices of same-key rows, oldest first; drop all but the newest keep-1.
    let same_key: Vec<usize> = existing
        .iter()
        .enumerate()
        .filter(|(_, row)| matches_key(row))
        .map(|(i, _)| i)
        .collect();
    let drop_oldest: usize = same_key.len().saturating_sub(keep - 1);
    let dropped: std::collections::HashSet<usize> =
        same_key.into_iter().take(drop_oldest).collect();
    let mut out: Vec<String> = existing
        .iter()
        .enumerate()
        .filter(|(i, _)| !dropped.contains(i))
        .map(|(_, row)| row.clone())
        .collect();
    out.push(record.to_string());
    out
}

fn read_record_lines(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap_or_default()
        .lines()
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .filter(|l| l.starts_with('{'))
        .collect()
}

fn write_record_lines(dir: &Path, path: &Path, records: &[String]) {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        out.push_str(r);
        out.push_str(sep);
        out.push('\n');
    }
    out.push_str("]\n");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = atomic_write(path, out.as_bytes());
    }
}

/// Reads `file_name` from [`results_dir`], merges `record` by `key_fields`
/// (see [`merge_json_records`]), rewrites the file as a JSON array with one
/// record per line, and returns the path. The read-merge-write cycle runs
/// under an advisory file lock and the rewrite is atomic (temp file +
/// rename), so concurrent experiment binaries cannot lose each other's
/// rows or leave a truncated file behind.
pub fn write_merged_record(file_name: &str, record: &str, key_fields: &[&str]) -> PathBuf {
    let dir = results_dir();
    let path = dir.join(file_name);
    let _ = std::fs::create_dir_all(&dir);
    let _guard = FileLock::acquire(&path);
    let existing = read_record_lines(&path);
    let records = merge_json_records(&existing, record, key_fields);
    write_record_lines(&dir, &path, &records);
    path
}

/// [`write_merged_record`] with rotation: keeps the last `keep` runs per
/// key tuple instead of replacing (see [`merge_json_records_rotating`]).
pub fn write_rotated_record(
    file_name: &str,
    record: &str,
    key_fields: &[&str],
    keep: usize,
) -> PathBuf {
    let dir = results_dir();
    let path = dir.join(file_name);
    let _ = std::fs::create_dir_all(&dir);
    let _guard = FileLock::acquire(&path);
    let existing = read_record_lines(&path);
    let records = merge_json_records_rotating(&existing, record, key_fields, keep);
    write_record_lines(&dir, &path, &records);
    path
}

/// Writes (merging) the run's timing record into
/// `<results dir>/bench_timing.json` (see [`results_dir`]) and returns the
/// path.
///
/// The file is a JSON array with one record per line, each of the form
/// `{"bin": ..., "budget": ..., "jobs": N, "total_secs": S,
/// "geomean_kips": G, "peak_kips": P, "points": [{"name": ..., "secs": ...,
/// "committed": ..., "kips": ...}, ...]}`. Records are keyed by
/// `(bin, budget, jobs)` **field values** and rotated: re-running the same
/// configuration keeps at most the last [`TIMING_KEEP_RUNS`] records for
/// its key, so the file holds a short history per configuration without
/// growing unboundedly.
pub fn write_timing_json(budget: &Budget) -> PathBuf {
    let bin = bin_name();
    let points = take_points();
    let total = total_secs();
    let record = timing_record(&bin, budget.label(), budget.jobs, total, &points);

    let path = write_rotated_record(
        "bench_timing.json",
        &record,
        &["bin", "budget", "jobs"],
        TIMING_KEEP_RUNS,
    );
    println!(
        "timing: {} points in {:.2}s with {} worker(s), geomean {:.1} KIPS -> {}",
        points.len(),
        total,
        budget.jobs,
        geomean_kips(&points),
        path.display()
    );
    path
}

/// How many timing records `bench_timing.json` keeps per (bin, budget,
/// jobs) key before the oldest rotates out.
pub const TIMING_KEEP_RUNS: usize = 3;

/// Formats one `bench_timing.json` record (exposed for the snapshot
/// harness, which writes the same shape to a standalone file).
pub fn timing_record(
    bin: &str,
    budget_label: &str,
    jobs: usize,
    total_secs: f64,
    points: &[PointTiming],
) -> String {
    let mut record = format!(
        "{{\"bin\":\"{}\",\"budget\":\"{}\",\"jobs\":{},\"total_secs\":{:.3},\
         \"geomean_kips\":{:.3},\"peak_kips\":{:.3},\"points\":[",
        json_escape(bin),
        json_escape(budget_label),
        jobs,
        total_secs,
        geomean_kips(points),
        peak_kips(points),
    );
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            record.push(',');
        }
        record.push_str(&format!(
            "{{\"name\":\"{}\",\"secs\":{:.3},\"committed\":{},\"kips\":{:.3}}}",
            json_escape(&p.name),
            p.secs,
            p.committed,
            p.kips()
        ));
    }
    record.push_str("]}");
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_match_serial_for_any_job_count() {
        let items: Vec<u64> = (0..100).collect();
        let serial = run_ordered(&items, 1, |v| v * v + 1);
        for jobs in [2, 3, 4, 16] {
            assert_eq!(run_ordered(&items, jobs, |v| v * v + 1), serial);
        }
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_ordered(&empty, 8, |v| *v).is_empty());
        assert_eq!(run_ordered(&[7u32], 8, |v| v + 1), vec![8]);
    }

    #[test]
    fn json_escaping_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn json_field_extracts_strings_and_scalars() {
        let rec = r#"{"bin":"fig5_ipc_sweep","budget":"quick","jobs":8,"total_secs":1.234}"#;
        assert_eq!(json_field(rec, "bin").as_deref(), Some("fig5_ipc_sweep"));
        assert_eq!(json_field(rec, "budget").as_deref(), Some("quick"));
        assert_eq!(json_field(rec, "jobs").as_deref(), Some("8"));
        assert_eq!(json_field(rec, "total_secs").as_deref(), Some("1.234"));
        assert_eq!(json_field(rec, "missing"), None);
        // Escaped quotes inside a string value don't end the scan early.
        let tricky = r#"{"bin":"a\"b","jobs":2}"#;
        assert_eq!(json_field(tricky, "bin").as_deref(), Some(r#"a\"b"#));
        assert_eq!(json_field(tricky, "jobs").as_deref(), Some("2"));
    }

    #[test]
    fn json_field_is_not_fooled_by_value_prefixes() {
        // The old prefix-matching merge treated "quick" and "quick2" (or
        // jobs 1 vs 16, had the order differed) as the same key. Field
        // comparison must not.
        let a = r#"{"bin":"x","budget":"quick","jobs":1}"#;
        let b = r#"{"bin":"x","budget":"quick","jobs":16}"#;
        assert_ne!(json_field(a, "jobs"), json_field(b, "jobs"));
    }

    #[test]
    fn json_field_matches_only_top_level_keys() {
        // A timing record nests `name`/`secs`/`kips` fields inside the
        // `points` array. The scanner must neither report a nested field as
        // the top-level one nor let a nested occurrence shadow a top-level
        // field that comes after it.
        let rec = r#"{"points":[{"bin":"inner","name":"Int/a"}],"bin":"outer"}"#;
        assert_eq!(json_field(rec, "bin").as_deref(), Some("outer"));
        assert_eq!(json_field(rec, "name"), None, "nested-only field is absent");
        assert_eq!(json_field(rec, "secs"), None);
        // A field name spelled out inside a string value is not a field.
        let tricky = r#"{"note":"see \"bin\" below, jobs: 9","bin":"real","jobs":2}"#;
        assert_eq!(json_field(tricky, "bin").as_deref(), Some("real"));
        assert_eq!(json_field(tricky, "jobs").as_deref(), Some("2"));
    }

    #[test]
    fn json_field_survives_separator_characters_in_values() {
        // Key-field values carrying JSON separator characters (`,` `}` `]`
        // `:`) must come back intact and must not derail the scan for the
        // fields after them.
        let rec = r#"{"budget":"quick,odd}we:ird]","spec":"5000/8/2000","jobs":4}"#;
        assert_eq!(json_field(rec, "budget").as_deref(), Some("quick,odd}we:ird]"));
        assert_eq!(json_field(rec, "spec").as_deref(), Some("5000/8/2000"));
        assert_eq!(json_field(rec, "jobs").as_deref(), Some("4"));
        // Unterminated string: the row is malformed, every field absent.
        assert_eq!(json_field(r#"{"bin":"unterminated"#, "bin"), None);
    }

    #[test]
    fn merge_keys_on_top_level_fields_despite_separator_values() {
        // Two rows whose `budget` values differ only by separator-bearing
        // text are distinct keys; a nested `bin` must not match the key.
        let existing = vec![
            r#"{"bin":"a","budget":"quick,v2","run":1}"#.to_string(),
            r#"{"bin":"a","budget":"quick","run":2}"#.to_string(),
            r#"{"points":[{"bin":"a","budget":"quick"}],"bin":"b","budget":"quick","run":3}"#
                .to_string(),
        ];
        let rec = r#"{"bin":"a","budget":"quick","run":4}"#;
        let merged = merge_json_records(&existing, rec, &["bin", "budget"]);
        assert_eq!(merged.len(), 3, "{merged:?}");
        assert!(merged.iter().any(|r| r.contains("\"run\":1")), "quick,v2 key kept");
        assert!(!merged.iter().any(|r| r.contains("\"run\":2")), "(a, quick) replaced");
        assert!(merged.iter().any(|r| r.contains("\"run\":3")), "nested key ignored");
        assert_eq!(merged.last().map(String::as_str), Some(rec));
    }

    #[test]
    fn rotation_at_exactly_the_limit_keeps_the_cap_not_one_more() {
        // A file already holding exactly TIMING_KEEP_RUNS rows for a key is
        // the boundary case: merging one more must drop exactly the oldest
        // (never keep keep+1, never drop the newest).
        let rows: Vec<String> = (1..=TIMING_KEEP_RUNS)
            .map(|run| format!("{{\"bin\":\"a\",\"jobs\":1,\"run\":{run}}}"))
            .collect();
        let rec = r#"{"bin":"a","jobs":1,"run":99}"#;
        let merged = merge_json_records_rotating(&rows, rec, &["bin", "jobs"], TIMING_KEEP_RUNS);
        assert_eq!(merged.len(), TIMING_KEEP_RUNS, "{merged:?}");
        assert!(!merged.iter().any(|r| r.contains("\"run\":1")), "oldest rotated out");
        assert!(merged.iter().any(|r| r.contains("\"run\":2")));
        assert_eq!(merged.last().map(String::as_str), Some(rec), "newest kept last");

        // A legacy over-full file (more than the cap) shrinks back to the
        // cap in one merge rather than lingering above it.
        let overfull: Vec<String> = (1..=TIMING_KEEP_RUNS + 2)
            .map(|run| format!("{{\"bin\":\"a\",\"jobs\":1,\"run\":{run}}}"))
            .collect();
        let merged = merge_json_records_rotating(&overfull, rec, &["bin", "jobs"], TIMING_KEEP_RUNS);
        assert_eq!(merged.len(), TIMING_KEEP_RUNS, "{merged:?}");
        assert_eq!(merged.last().map(String::as_str), Some(rec));
    }

    #[test]
    fn merge_replaces_only_matching_key_tuple() {
        let existing = vec![
            r#"{"bin":"a","budget":"quick","jobs":4,"total_secs":1.0}"#.to_string(),
            r#"{"bin":"a","budget":"full","jobs":4,"total_secs":9.0}"#.to_string(),
            r#"{"bin":"b","budget":"quick","jobs":4,"total_secs":2.0}"#.to_string(),
        ];
        let rerun = r#"{"bin":"a","budget":"quick","jobs":4,"total_secs":1.5}"#;
        let merged = merge_json_records(&existing, rerun, &["bin", "budget", "jobs"]);
        assert_eq!(merged.len(), 3, "{merged:?}");
        // The stale (a, quick, 4) record is gone; the other two survive.
        assert!(!merged.iter().any(|r| r.contains("\"total_secs\":1.0")));
        assert!(merged.iter().any(|r| r.contains("\"budget\":\"full\"")));
        assert!(merged.iter().any(|r| r.contains("\"bin\":\"b\"")));
        assert_eq!(merged.last().map(String::as_str), Some(rerun));
    }

    #[test]
    fn rotation_keeps_the_last_three_runs_per_key() {
        // Golden test for the bench_timing.json rotation: runs 1..=4 of the
        // same (bin, budget, jobs) key must leave exactly runs 2, 3, 4 (in
        // that order), while a different key's row is untouched.
        let other = r#"{"bin":"other","budget":"quick","jobs":1,"run":0}"#.to_string();
        let mut rows = vec![other.clone()];
        for run in 1..=4 {
            let rec = format!("{{\"bin\":\"a\",\"budget\":\"quick\",\"jobs\":1,\"run\":{run}}}");
            rows = merge_json_records_rotating(
                &rows,
                &rec,
                &["bin", "budget", "jobs"],
                TIMING_KEEP_RUNS,
            );
        }
        let expected = vec![
            other,
            r#"{"bin":"a","budget":"quick","jobs":1,"run":2}"#.to_string(),
            r#"{"bin":"a","budget":"quick","jobs":1,"run":3}"#.to_string(),
            r#"{"bin":"a","budget":"quick","jobs":1,"run":4}"#.to_string(),
        ];
        assert_eq!(rows, expected);
    }

    #[test]
    fn rotation_keeps_rows_missing_a_key_field() {
        let existing = vec![r#"{"note":"hand-written row"}"#.to_string()];
        let merged = merge_json_records_rotating(
            &existing,
            r#"{"bin":"a","jobs":1}"#,
            &["bin", "jobs"],
            1,
        );
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0], existing[0]);
    }

    #[test]
    fn rotation_with_keep_one_replaces_like_plain_merge() {
        let existing = vec![r#"{"bin":"a","jobs":1,"run":1}"#.to_string()];
        let rec = r#"{"bin":"a","jobs":1,"run":2}"#;
        let rotated = merge_json_records_rotating(&existing, rec, &["bin", "jobs"], 1);
        let merged = merge_json_records(&existing, rec, &["bin", "jobs"]);
        assert_eq!(rotated, merged);
        assert_eq!(rotated, vec![rec.to_string()]);
    }

    #[test]
    fn kips_is_committed_per_millisecond() {
        let p = PointTiming { name: "x".into(), secs: 2.0, committed: 500_000 };
        assert!((p.kips() - 250.0).abs() < 1e-9);
        let zero = PointTiming { name: "z".into(), secs: 0.0, committed: 10 };
        assert_eq!(zero.kips(), 0.0);
    }

    #[test]
    fn geomean_and_peak_kips() {
        let points = vec![
            PointTiming { name: "a".into(), secs: 1.0, committed: 100_000 }, // 100 KIPS
            PointTiming { name: "b".into(), secs: 1.0, committed: 400_000 }, // 400 KIPS
            PointTiming { name: "z".into(), secs: 0.0, committed: 1 },       // excluded
        ];
        assert!((geomean_kips(&points) - 200.0).abs() < 1e-9);
        assert!((peak_kips(&points) - 400.0).abs() < 1e-9);
        assert_eq!(geomean_kips(&[]), 0.0);
        assert_eq!(peak_kips(&[]), 0.0);
    }

    #[test]
    fn timing_record_shape_is_stable() {
        let points = vec![PointTiming { name: "Int/a".into(), secs: 0.5, committed: 200_000 }];
        let rec = timing_record("bench_kips", "quick", 1, 0.5, &points);
        assert_eq!(
            rec,
            "{\"bin\":\"bench_kips\",\"budget\":\"quick\",\"jobs\":1,\
             \"total_secs\":0.500,\"geomean_kips\":400.000,\"peak_kips\":400.000,\
             \"points\":[{\"name\":\"Int/a\",\"secs\":0.500,\"committed\":200000,\
             \"kips\":400.000}]}"
        );
        assert_eq!(json_field(&rec, "geomean_kips").as_deref(), Some("400.000"));
    }

    #[test]
    fn merge_keeps_rows_missing_a_key_field() {
        let existing = vec![r#"{"note":"hand-written row"}"#.to_string()];
        let merged =
            merge_json_records(&existing, r#"{"bin":"a","jobs":1}"#, &["bin", "jobs"]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0], existing[0]);
    }

    #[test]
    fn results_dir_is_anchored_at_the_workspace_root() {
        // Regression for the cwd-relative `results/` bug: unless overridden,
        // the directory must be absolute and live next to this crate's
        // workspace, not under whatever directory the binary ran from.
        if std::env::var("CARF_RESULTS_DIR").map_or(true, |v| v.trim().is_empty()) {
            let dir = results_dir();
            assert!(dir.is_absolute(), "{}", dir.display());
            assert_eq!(dir.file_name().and_then(|n| n.to_str()), Some("results"));
            assert!(dir.parent().unwrap().join("crates/bench/Cargo.toml").exists());
        }
    }
}
