//! The perf-regression gate behind `bench_kips --gate`.
//!
//! Two checks, one exit code:
//!
//! 1. **Throughput**: the geomean KIPS of the Int suite under the
//!    paper-baseline machine, measured now, must not fall more than
//!    `threshold` below the committed `BENCH_after.json` snapshot's
//!    geomean. The default threshold is deliberately loose — CI machines
//!    vary widely — so only a real slowdown (an accidental `O(n²)` in the
//!    scheduler, a debug assert left in a hot loop) trips it.
//! 2. **Fingerprints**: the 42-point pinned sweep
//!    ([`crate::fingerprint`]) must be bit-identical. This is exact:
//!    machine speed cannot move it, only a semantic change can.
//!
//! The gate compares against a *snapshot file* rather than re-measuring a
//! baseline build so it runs in one tree, one command, in CI.

use crate::fingerprint;
use crate::parallel::{self, json_field};
use crate::Budget;
use carf_sim::SimConfig;
use carf_workloads::Suite;
use std::path::Path;

/// The default allowed fractional geomean-KIPS drop (0.5 = halving).
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// A parsed `BENCH_after.json`-shaped snapshot baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Budget label the snapshot was taken under (`quick`/`full`).
    pub budget: String,
    /// The snapshot's geomean KIPS.
    pub geomean_kips: f64,
}

/// Parses the committed snapshot (multi-line JSON as written by
/// `bench_kips --snapshot`).
///
/// # Errors
///
/// A message naming the missing or malformed field.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let budget =
        json_field(text, "budget").ok_or_else(|| "baseline has no `budget` field".to_string())?;
    let geomean_kips = json_field(text, "geomean_kips")
        .ok_or_else(|| "baseline has no `geomean_kips` field".to_string())?
        .parse::<f64>()
        .map_err(|e| format!("baseline `geomean_kips`: {e}"))?;
    if !(geomean_kips.is_finite() && geomean_kips > 0.0) {
        return Err(format!("baseline geomean_kips must be positive, got {geomean_kips}"));
    }
    Ok(Baseline { budget, geomean_kips })
}

/// The throughput verdict: `Ok` describes the pass, `Err` the failure.
/// Pure comparison logic, separated so the injected-regression tests can
/// drive it without re-measuring.
pub fn evaluate_throughput(
    baseline_geomean: f64,
    measured_geomean: f64,
    threshold: f64,
) -> Result<String, String> {
    let floor = baseline_geomean * (1.0 - threshold);
    let ratio = measured_geomean / baseline_geomean;
    if measured_geomean >= floor {
        Ok(format!(
            "throughput OK: geomean {measured_geomean:.1} KIPS vs baseline \
             {baseline_geomean:.1} ({:.0}% , floor {floor:.1})",
            ratio * 100.0
        ))
    } else {
        Err(format!(
            "throughput REGRESSED: geomean {measured_geomean:.1} KIPS is below the \
             floor {floor:.1} ({:.0}% of baseline {baseline_geomean:.1}, \
             threshold {threshold})",
            ratio * 100.0
        ))
    }
}

/// Measures the gate's throughput number: geomean KIPS of the Int suite
/// under the paper-baseline machine at `budget`. Drains the global timing
/// collector before and after so the measurement is isolated.
pub fn measure_geomean_kips(budget: &Budget) -> f64 {
    let _ = parallel::take_points();
    crate::run_suite(&SimConfig::paper_baseline(), Suite::Int, budget);
    parallel::geomean_kips(&parallel::take_points())
}

fn budget_for_label(label: &str) -> Result<Budget, String> {
    match label {
        "quick" => Ok(Budget::quick()),
        "full" => Ok(Budget::full()),
        other => Err(format!("baseline budget `{other}` is not quick/full")),
    }
}

/// Runs the full gate: loads the baseline, re-measures throughput under
/// the same budget, and runs the pinned fingerprint sweep. Prints a line
/// per check; `Err` carries the combined failure text for the caller to
/// print and exit nonzero on.
pub fn run_gate(baseline_path: &Path, threshold: f64, jobs: usize) -> Result<(), String> {
    if !(0.0..1.0).contains(&threshold) {
        return Err(format!("gate threshold must be in [0, 1), got {threshold}"));
    }
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {}: {e}", baseline_path.display()))?;
    let baseline = parse_baseline(&text)?;
    let mut budget = budget_for_label(&baseline.budget)?;
    budget.jobs = jobs;
    println!(
        "gate: baseline {} ({} budget, geomean {:.1} KIPS), threshold {threshold}",
        baseline_path.display(),
        baseline.budget,
        baseline.geomean_kips
    );

    let mut failures = Vec::new();
    let measured = measure_geomean_kips(&budget);
    match evaluate_throughput(baseline.geomean_kips, measured, threshold) {
        Ok(line) => println!("gate: {line}"),
        Err(line) => {
            println!("gate: {line}");
            failures.push(line);
        }
    }

    match fingerprint::check_pinned(&fingerprint::sweep(jobs, false)) {
        Ok(()) => println!(
            "gate: fingerprints OK: all {} pinned points bit-identical",
            fingerprint::PINNED.len()
        ),
        Err(e) => {
            let line = format!("fingerprints DRIFTED: {e}");
            println!("gate: {line}");
            failures.push(line);
        }
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_parses_the_snapshot_shape() {
        // The exact multi-line shape bench_kips --snapshot writes.
        let text = "{\n  \"bin\": \"bench_kips\",\n  \"budget\": \"quick\",\n  \
                    \"jobs\": 1,\n  \"total_secs\": 0.362,\n  \
                    \"geomean_kips\": 4527.417,\n  \"peak_kips\": 5917.139,\n  \
                    \"points\": [\n    {\"name\": \"Int/a\", \"secs\": 0.040, \
                    \"committed\": 200003, \"kips\": 5051.541}\n  ]\n}\n";
        let b = parse_baseline(text).unwrap();
        assert_eq!(b.budget, "quick");
        assert!((b.geomean_kips - 4527.417).abs() < 1e-9);
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"budget\":\"quick\"}").is_err());
        assert!(parse_baseline("{\"budget\":\"quick\",\"geomean_kips\":0}").is_err());
        assert!(parse_baseline("{\"budget\":\"quick\",\"geomean_kips\":-3}").is_err());
    }

    #[test]
    fn throughput_gate_passes_at_and_above_the_floor() {
        assert!(evaluate_throughput(1000.0, 1000.0, 0.5).is_ok());
        assert!(evaluate_throughput(1000.0, 500.0, 0.5).is_ok(), "floor is inclusive");
        assert!(evaluate_throughput(1000.0, 2000.0, 0.5).is_ok(), "faster never fails");
    }

    #[test]
    fn throughput_gate_fails_on_injected_regression() {
        // The committed baseline claims 1000 KIPS; the tree now measures
        // 400 — below the 50% floor. The gate must refuse.
        let err = evaluate_throughput(1000.0, 400.0, 0.5).unwrap_err();
        assert!(err.contains("REGRESSED"), "{err}");
        assert!(err.contains("40%"), "{err}");
    }

    #[test]
    fn tight_threshold_catches_small_drift() {
        assert!(evaluate_throughput(1000.0, 989.0, 0.01).is_err());
        assert!(evaluate_throughput(1000.0, 991.0, 0.01).is_ok());
    }

    #[test]
    fn gate_rejects_bad_threshold_and_missing_baseline() {
        assert!(run_gate(Path::new("/nonexistent"), 1.5, 1).unwrap_err().contains("threshold"));
        let err = run_gate(Path::new("/nonexistent/BENCH.json"), 0.5, 1).unwrap_err();
        assert!(err.contains("cannot read baseline"), "{err}");
    }
}
