//! The pinned 42-point fingerprint suite, as a library.
//!
//! The scheduler-equivalence table — every workload × {baseline,
//! unlimited, carf} machine at a fixed instruction cap, folded to one
//! FNV-1a word per point — started life inside
//! `tests/scheduler_equivalence.rs`. The perf-regression gate
//! ([`crate::gate`], `bench_kips --gate`) needs the same sweep at release
//! speed, so the table and its machinery live here and the test asserts
//! through this module.
//!
//! Any intentional timing-model change re-pins via the ignored
//! `print_pinned_table` test; an *unintentional* drift fails both the
//! tier-1 test suite and the gate.

use carf_core::CarfParams;
use carf_sim::{
    AnySimulator, FetchArbitration, MultiSim, SharingPolicy, SimConfig, SimStats, TraceRecorder,
    Tracer,
};
use carf_workloads::{all_workloads, SizeClass, Workload};

/// Committed-instruction cap per point: small enough to keep 3 configs ×
/// 14 workloads × {traced, untraced} × {jobs 1, 4} fast in debug builds,
/// large enough that every pipeline mechanism (squash, replay, port
/// conflicts, both IQs) is exercised.
pub const PINNED_MAX_INSTS: u64 = 15_000;

/// The three machines of the pinned sweep.
pub fn pinned_configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("baseline", SimConfig::paper_baseline()),
        ("unlimited", SimConfig::paper_unlimited()),
        ("carf", SimConfig::paper_carf(CarfParams::paper_default())),
    ]
}

/// The counters a scheduling change could plausibly move, folded to one
/// FNV-1a word. `cycles` rides alongside in the pinned table so a drift
/// is immediately interpretable.
pub fn stats_hash(s: &SimStats) -> u64 {
    let fields = [
        s.cycles,
        s.committed,
        s.loads,
        s.stores,
        s.branches,
        s.fetched,
        s.squashed,
        s.mispredicts,
        s.bypassed_operands,
        s.rf_operands,
        s.zero_operands,
        s.load_replays,
        s.int_rf.total_reads,
        s.int_rf.total_writes,
        s.fp_rf.total_reads,
        s.fp_rf.total_writes,
        s.stl_forwards,
    ];
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in fields {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs one pinned point (optionally traced, with the tracer's own
/// invariants asserted).
///
/// # Panics
///
/// On simulator errors or tracer-invariant violations.
pub fn run_point(cfg: &SimConfig, workload: &Workload, traced: bool) -> SimStats {
    let program = workload.build_class(SizeClass::Test);
    if traced {
        let mut sim = AnySimulator::with_tracer(cfg.clone(), &program, TraceRecorder::new());
        sim.run(PINNED_MAX_INSTS).unwrap_or_else(|e| panic!("{} traced: {e}", workload.name));
        let stats = sim.stats().clone();
        let recorder = sim.into_tracer();
        assert_eq!(recorder.cycles(), stats.cycles, "{}: one Cycle event per cycle", workload.name);
        assert_eq!(
            recorder.stall_report().bucket_sum(),
            stats.cycles,
            "{}: stall buckets must sum to total cycles",
            workload.name
        );
        stats
    } else {
        let mut sim = AnySimulator::new(cfg.clone(), &program);
        sim.run(PINNED_MAX_INSTS).unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        sim.stats().clone()
    }
}

/// All 42 points as one flat list, in (config, workload-registry) order.
pub fn points() -> Vec<(&'static str, SimConfig, Workload)> {
    let mut out = Vec::new();
    for (cfg_name, cfg) in pinned_configs() {
        for w in all_workloads() {
            out.push((cfg_name, cfg.clone(), w));
        }
    }
    out
}

/// Runs the full sweep over `jobs` workers and returns
/// `(config/workload, cycles, hash)` per point, in pinned-table order.
pub fn sweep(jobs: usize, traced: bool) -> Vec<(String, u64, u64)> {
    let pts = points();
    let stats = crate::run_ordered(&pts, jobs, |(_, cfg, w)| run_point(cfg, w, traced));
    pts.iter()
        .zip(&stats)
        .map(|((cfg_name, _, w), s)| (format!("{cfg_name}/{}", w.name), s.cycles, stats_hash(s)))
        .collect()
}

/// Captured from the pre-rewrite scan-based scheduler; regenerate only for
/// intentional timing-model changes (`cargo test -p carf-bench --test
/// scheduler_equivalence -- --ignored --nocapture print_pinned_table`).
pub const PINNED: &[(&str, u64, u64)] = &[
    // (config/workload, cycles, fnv1a-of-fingerprint)
    ("baseline/pointer_chase", 8546, 0xacb864d444d34a26),
    ("baseline/hash_table", 16046, 0xdc406d114049a2e5),
    ("baseline/sort_kernel", 5709, 0xee1172b592aef1b0),
    ("baseline/string_match", 10809, 0xbcf6b76a2a6eeb08),
    ("baseline/graph_walk", 13221, 0xd4bcfc5db1c5bf19),
    ("baseline/state_machine", 17803, 0x23d410ef65a379c7),
    ("baseline/compress_loop", 8898, 0x44f124f0fb612078),
    ("baseline/sparse_update", 18496, 0xd558b85929560c05),
    ("baseline/matvec", 13402, 0xe8977c5e9aad301a),
    ("baseline/stencil3", 9497, 0x3861d8ddbb727407),
    ("baseline/dot_products", 13253, 0xaacac4c3ed3db2d8),
    ("baseline/particle_push", 4474, 0x43b199f369710192),
    ("baseline/tridiag", 16227, 0xd584e6ba90dddf3a),
    ("baseline/table_interp", 7063, 0x960f0aaf266c018b),
    ("unlimited/pointer_chase", 7782, 0xd5fa2d9c4b2407bd),
    ("unlimited/hash_table", 12659, 0x29546bc79d43c0f2),
    ("unlimited/sort_kernel", 5486, 0x8c1401e3c30c3b06),
    ("unlimited/string_match", 10809, 0xbcf6b76a2a6eeb08),
    ("unlimited/graph_walk", 11808, 0xd4abd23abb6b6689),
    ("unlimited/state_machine", 17803, 0x23d410ef65a379c7),
    ("unlimited/compress_loop", 8898, 0xa3b223235e40b506),
    ("unlimited/sparse_update", 14299, 0xd5d19c0c353474b7),
    ("unlimited/matvec", 13402, 0xe8977c5e9aad301a),
    ("unlimited/stencil3", 9497, 0x3861d8ddbb727407),
    ("unlimited/dot_products", 13253, 0xaacac4c3ed3db2d8),
    ("unlimited/particle_push", 4474, 0x43b199f369710192),
    ("unlimited/tridiag", 16227, 0xd584e6ba90dddf3a),
    ("unlimited/table_interp", 7063, 0x960f0aaf266c018b),
    ("carf/pointer_chase", 8618, 0xffbd652de94a7549),
    ("carf/hash_table", 16308, 0xb4faf80266ecfd53),
    ("carf/sort_kernel", 5897, 0x0dab35b9a055ca0a),
    ("carf/string_match", 11008, 0x5cbd67b77177b3f5),
    ("carf/graph_walk", 13549, 0x4711f23321afa90a),
    ("carf/state_machine", 17805, 0xb00d2df8fc8d5cb7),
    ("carf/compress_loop", 9258, 0xdc03346f80ed62bc),
    ("carf/sparse_update", 18808, 0xdaa9ca5d8a986c1b),
    ("carf/matvec", 13552, 0x6f40950c8b32ed32),
    ("carf/stencil3", 9644, 0xafa89f78c9eaec3a),
    ("carf/dot_products", 13364, 0xb30b022a2d78903e),
    ("carf/particle_push", 4502, 0x21c65c207495dd56),
    ("carf/tridiag", 16845, 0xb6a8640000fa7937),
    ("carf/table_interp", 7102, 0x291875a27d907087),
];

/// Compares a [`sweep`] result against [`PINNED`]. The error lists every
/// drifted point (name, got, pinned), so a gate failure is immediately
/// actionable.
pub fn check_pinned(got: &[(String, u64, u64)]) -> Result<(), String> {
    check_rows(got, PINNED)
}

/// Compares a [`multi_sweep`] result against [`MULTI_PINNED`].
pub fn check_multi_pinned(got: &[(String, u64, u64)]) -> Result<(), String> {
    check_rows(got, MULTI_PINNED)
}

fn check_rows(got: &[(String, u64, u64)], pinned: &[(&str, u64, u64)]) -> Result<(), String> {
    if got.len() != pinned.len() {
        return Err(format!(
            "point count drifted from the pinned table: got {}, pinned {}",
            got.len(),
            pinned.len()
        ));
    }
    let mut drift = Vec::new();
    for ((name, cycles, hash), (p_name, p_cycles, p_hash)) in got.iter().zip(pinned) {
        if name != p_name {
            return Err(format!("point order drifted: got `{name}`, pinned `{p_name}`"));
        }
        if (cycles, hash) != (p_cycles, p_hash) {
            drift.push(format!(
                "  {name}: got cycles={cycles} hash={hash:#018x}, \
                 pinned cycles={p_cycles} hash={p_hash:#018x}"
            ));
        }
    }
    if drift.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} of {} pinned fingerprints drifted:\n{}",
            drift.len(),
            pinned.len(),
            drift.join("\n")
        ))
    }
}

// ---------------------------------------------------------------------
// Multi-context pinning: the shared-resource layer, frozen.
// ---------------------------------------------------------------------

/// One pinned multi-context scenario: a label, the ordered contexts,
/// and the sharing policy.
pub type MultiPointSpec = (&'static str, Vec<(SimConfig, Workload)>, SharingPolicy);

/// The pinned multi-context scenarios. Two shapes cover the layer's
/// moving parts:
///
/// * `smt4` — four content-aware contexts competitively sharing a
///   44-entry Long window (under the 48 private entries, so the window
///   binds) with 2-slot ICOUNT fetch: capacity windowing, the
///   incremental live counter, and selection-based arbitration;
/// * `l2x2` — a heterogeneous baseline+carf pair behind one shared L2
///   with single-slot round-robin fetch: the shared hierarchy seam and
///   rotation-based arbitration across *different* backends.
#[must_use]
pub fn multi_points() -> Vec<MultiPointSpec> {
    let pick = |name: &str| {
        all_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("workload {name} is registered"))
    };
    let carf = SimConfig::paper_carf(CarfParams::paper_default());
    vec![
        (
            "smt4",
            ["pointer_chase", "sparse_update", "hash_table", "matvec"]
                .iter()
                .map(|n| (carf.clone(), pick(n)))
                .collect(),
            SharingPolicy {
                shared_long_capacity: Some(44),
                shared_l2: false,
                fetch: FetchArbitration::ICount { slots: 2 },
            },
        ),
        (
            "l2x2",
            vec![
                (SimConfig::paper_baseline(), pick("pointer_chase")),
                (carf, pick("hash_table")),
            ],
            SharingPolicy {
                shared_long_capacity: None,
                shared_l2: true,
                fetch: FetchArbitration::RoundRobin { slots: 1 },
            },
        ),
    ]
}

fn multi_rows<T: Tracer>(
    name: &str,
    contexts: &[(SimConfig, Workload)],
    multi: &mut MultiSim<T>,
) -> Vec<(String, u64, u64)> {
    let results = multi
        .run(10_000_000, PINNED_MAX_INSTS)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    contexts
        .iter()
        .enumerate()
        .map(|(i, (_, w))| {
            (
                format!("{name}/{i}:{}", w.name),
                results[i].cycles,
                stats_hash(multi.ctx(i).stats()),
            )
        })
        .collect()
}

/// Runs one pinned multi-context scenario (optionally traced) and
/// returns one `(scenario/ctx:workload, active-cycles, hash)` row per
/// context. Tracing must not perturb timing, so traced and untraced
/// sweeps check against the same [`MULTI_PINNED`] rows.
///
/// # Panics
///
/// On configuration or simulator errors.
pub fn run_multi_point(
    name: &str,
    contexts: &[(SimConfig, Workload)],
    policy: SharingPolicy,
    traced: bool,
) -> Vec<(String, u64, u64)> {
    let programs: Vec<_> =
        contexts.iter().map(|(_, w)| w.build_class(SizeClass::Test)).collect();
    let ctxs: Vec<(SimConfig, &carf_isa::Program)> =
        contexts.iter().map(|(c, _)| c.clone()).zip(programs.iter()).collect();
    if traced {
        let mut multi = MultiSim::with_tracers(ctxs, policy, TraceRecorder::new)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        multi_rows(name, contexts, &mut multi)
    } else {
        let mut multi =
            MultiSim::new(ctxs, policy).unwrap_or_else(|e| panic!("{name}: {e}"));
        multi_rows(name, contexts, &mut multi)
    }
}

/// Runs every pinned multi-context scenario over `jobs` workers and
/// returns the rows in [`multi_points`] order.
pub fn multi_sweep(jobs: usize, traced: bool) -> Vec<(String, u64, u64)> {
    let scenarios = multi_points();
    crate::run_ordered(&scenarios, jobs, |(name, contexts, policy)| {
        run_multi_point(name, contexts, *policy, traced)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Captured at the introduction of the multi-context layer; regenerate
/// only for intentional timing-model changes (`cargo test -p carf-bench
/// --test scheduler_equivalence -- --ignored --nocapture
/// print_multi_pinned_table`).
pub const MULTI_PINNED: &[(&str, u64, u64)] = &[
    // (scenario/ctx:workload, active-cycles, fnv1a-of-fingerprint)
    ("smt4/0:pointer_chase", 35661, 0xf4e07a309b132169),
    ("smt4/1:sparse_update", 41375, 0xec202aff9d86f49f),
    ("smt4/2:hash_table", 38496, 0xa77768322abea0ca),
    ("smt4/3:matvec", 26523, 0xd80de611d2099a0b),
    ("l2x2/0:pointer_chase", 8378, 0x2ecda20a70ca2d71),
    ("l2x2/1:hash_table", 14078, 0x39466f25723ac459),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_hash_is_stable_and_sensitive() {
        let mut s = SimStats { cycles: 100, committed: 50, ..SimStats::default() };
        let h = stats_hash(&s);
        assert_eq!(h, stats_hash(&s.clone()), "pure function of the counters");
        s.stl_forwards += 1;
        assert_ne!(h, stats_hash(&s));
    }

    #[test]
    fn check_pinned_reports_every_drifted_point() {
        let mut got: Vec<(String, u64, u64)> =
            PINNED.iter().map(|(n, c, h)| (n.to_string(), *c, *h)).collect();
        assert_eq!(check_pinned(&got), Ok(()));
        got[3].1 += 1;
        got[7].2 ^= 1;
        let err = check_pinned(&got).unwrap_err();
        assert!(err.contains("2 of 42"), "{err}");
        assert!(err.contains(&got[3].0), "{err}");
        assert!(err.contains(&got[7].0), "{err}");
        got.truncate(10);
        assert!(check_pinned(&got).unwrap_err().contains("point count"), "short sweep");
    }

    #[test]
    fn pinned_table_covers_three_configs_times_all_workloads() {
        assert_eq!(PINNED.len(), 3 * all_workloads().len());
        assert_eq!(points().len(), PINNED.len());
    }
}
