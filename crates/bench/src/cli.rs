//! Shared command-line parsing for the experiment binaries.
//!
//! Every binary takes the common budget flags (`--quick`, `--full`,
//! `--jobs N`); a few add extra options (`--suite`, `--machine`,
//! `--window`, `--snapshot`) or positional operands. [`CliSpec`]
//! centralizes the scan so each binary declares only what is specific to
//! it and inherits, for free:
//!
//! * both option spellings (`--opt value` and `--opt=value`);
//! * strict rejection of unrecognized flags and stray operands;
//! * a generated usage message (also served by `-h`/`--help`) listing the
//!   budget flags ahead of the binary's own options;
//! * the fold of the budget flags into a [`Budget`] via
//!   [`Budget::parse_args`].
//!
//! Binaries with no extra options call [`budget_for`]; the richer ones
//! (`bench_kips`, `carf-trace`) build a [`CliSpec`] and interpret the
//! returned occurrences.

use crate::Budget;
use carf_core::{CarfParams, PortReducedParams};
use carf_sim::SimConfig;
use carf_workloads::Suite;

/// Which machine configurations an experiment should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MachineSet {
    /// The conventional monolithic baseline only.
    Base,
    /// The content-aware machine only.
    Carf,
    /// Both, baseline first.
    #[default]
    Both,
    /// The compressed (dictionary + overflow) machine only.
    Compressed,
    /// The read-port-reduced machine only.
    PortReduced,
    /// The whole backend zoo: baseline, carf, compressed, port-reduced.
    All,
}

impl MachineSet {
    /// Parses a `--machine` value: `base` (or `baseline`), `carf`, `both`,
    /// `compressed`, `ports` (or `port-reduced`), `all`.
    pub fn parse(v: &str) -> Result<Self, String> {
        match v {
            "base" | "baseline" => Ok(Self::Base),
            "carf" => Ok(Self::Carf),
            "both" => Ok(Self::Both),
            "compressed" => Ok(Self::Compressed),
            "ports" | "port-reduced" => Ok(Self::PortReduced),
            "all" => Ok(Self::All),
            other => Err(format!(
                "`--machine` expects base, carf, both, compressed, ports, or all \
                 (got `{other}`)"
            )),
        }
    }

    /// `true` when the baseline machine is in the set.
    pub fn includes_base(self) -> bool {
        matches!(self, Self::Base | Self::Both | Self::All)
    }

    /// `true` when the content-aware machine is in the set.
    pub fn includes_carf(self) -> bool {
        matches!(self, Self::Carf | Self::Both | Self::All)
    }

    /// The labeled configurations in the set, with the content-aware
    /// machine at the paper-default geometry. New register-file backends
    /// plug in here: add a [`carf_sim::RegFileKind`] arm and extend this
    /// set (the pipeline is generic over the backend already).
    pub fn configs(self) -> Vec<(&'static str, SimConfig)> {
        let mut configs = Vec::new();
        if self.includes_base() {
            configs.push(("base", SimConfig::paper_baseline()));
        }
        if self.includes_carf() {
            configs.push(("carf", SimConfig::paper_carf(CarfParams::paper_default())));
        }
        if matches!(self, Self::Compressed | Self::All) {
            configs.push(("compressed", SimConfig::paper_compressed(CarfParams::paper_default())));
        }
        if matches!(self, Self::PortReduced | Self::All) {
            configs.push(("ports", SimConfig::paper_port_reduced(PortReducedParams::default())));
        }
        configs
    }
}

/// Parses a `--suite` value: `int`, `fp`, or `all` (both, INT first).
pub fn parse_suites(v: &str) -> Result<Vec<Suite>, String> {
    match v {
        "int" => Ok(vec![Suite::Int]),
        "fp" => Ok(vec![Suite::Fp]),
        "all" => Ok(vec![Suite::Int, Suite::Fp]),
        other => Err(format!("`--suite` expects int, fp, or all (got `{other}`)")),
    }
}

/// One extra (non-budget) option a binary accepts.
pub struct OptSpec {
    /// Option name including the dashes, e.g. `"--suite"`.
    pub name: &'static str,
    /// Value metavar for the usage line (`Some("S")`), or `None` for a
    /// bare flag.
    pub value: Option<&'static str>,
    /// One usage line of help text.
    pub help: &'static str,
}

/// A binary's command-line grammar: the common budget flags plus its own
/// options and (optionally) positional operands.
pub struct CliSpec {
    /// Binary name for the usage line.
    pub bin: &'static str,
    /// Extra options beyond `--quick`/`--full`/`--jobs`.
    pub options: &'static [OptSpec],
    /// Positional operands: `Some((metavar, help))` to accept them,
    /// `None` to reject any.
    pub operands: Option<(&'static str, &'static str)>,
}

/// The scan result: the folded budget, each extra-option occurrence in
/// argument order, and the positional operands.
#[derive(Debug)]
pub struct ParsedCli {
    /// Budget folded from `--quick`/`--full`/`--jobs`.
    pub budget: Budget,
    /// `(name, value)` per extra-option occurrence; flags carry `""`.
    pub options: Vec<(&'static str, String)>,
    /// Positional operands, in order.
    pub operands: Vec<String>,
}

impl ParsedCli {
    /// The value of `name`'s last occurrence (options are
    /// last-one-wins, like the budget flags).
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// A scan outcome that is not a parsed command line.
#[derive(Debug, PartialEq, Eq)]
pub enum CliError {
    /// `-h`/`--help` was given.
    Help,
    /// A bad argument, with the message to print.
    Bad(String),
}

impl CliSpec {
    /// A grammar with no extra options and no operands — just the budget
    /// flags.
    pub const fn budget_only(bin: &'static str) -> Self {
        Self { bin, options: &[], operands: None }
    }

    /// The generated usage message (multi-line, trailing newline).
    pub fn usage(&self) -> String {
        let mut heads: Vec<String> = vec![
            "--quick".into(),
            "--full".into(),
            "--jobs N".into(),
            "--sample[=I/P/W]".into(),
        ];
        let mut helps: Vec<&str> = vec![
            "quick budget: ~200k instructions per point (default)",
            "full budget: ~1M instructions per point",
            "worker threads (default: CARF_JOBS or available cores)",
            "interval sampling: interval/period/warmup (default 5000/8/2000)",
        ];
        let mut line =
            format!("usage: {} [--quick | --full] [--jobs N] [--sample[=I/P/W]]", self.bin);
        for opt in self.options {
            match opt.value {
                Some(metavar) => {
                    line.push_str(&format!(" [{} {metavar}]", opt.name));
                    heads.push(format!("{} {metavar}", opt.name));
                }
                None => {
                    line.push_str(&format!(" [{}]", opt.name));
                    heads.push(opt.name.to_string());
                }
            }
            helps.push(opt.help);
        }
        if let Some((metavar, help)) = self.operands {
            line.push_str(&format!(" [{metavar}...]"));
            heads.push(format!("{metavar}..."));
            helps.push(help);
        }
        let width = heads.iter().map(String::len).max().unwrap_or(0);
        let mut out = line;
        out.push('\n');
        for (head, help) in heads.iter().zip(helps) {
            out.push_str(&format!("  {head:width$}  {help}\n"));
        }
        out
    }

    /// Prints `msg` and the usage message, then exits with status 2.
    pub fn fail(&self, msg: &str) -> ! {
        eprintln!("error: {msg}");
        eprint!("{}", self.usage());
        std::process::exit(2);
    }

    /// Scans the process arguments; `--help` prints usage and exits 0,
    /// bad arguments print usage and exit 2.
    pub fn parse(&self) -> ParsedCli {
        match self.parse_from(std::env::args().skip(1)) {
            Ok(parsed) => parsed,
            Err(CliError::Help) => {
                print!("{}", self.usage());
                std::process::exit(0);
            }
            Err(CliError::Bad(msg)) => self.fail(&msg),
        }
    }

    /// [`CliSpec::parse`] on an explicit argument list, without exiting.
    pub fn parse_from<I: IntoIterator<Item = String>>(&self, args: I) -> Result<ParsedCli, CliError> {
        let bad = |msg: String| Err(CliError::Bad(msg));
        let mut budget_args: Vec<String> = Vec::new();
        let mut options: Vec<(&'static str, String)> = Vec::new();
        let mut operands: Vec<String> = Vec::new();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "-h" | "--help" => return Err(CliError::Help),
                "--quick" | "--full" | "--sample" => budget_args.push(arg),
                "--jobs" => {
                    budget_args.push(arg);
                    match args.next() {
                        Some(v) => budget_args.push(v),
                        None => return bad("`--jobs` expects a positive integer".into()),
                    }
                }
                s if s.starts_with("--jobs=") || s.starts_with("--sample=") => {
                    budget_args.push(arg.clone());
                }
                s if s.starts_with("--") => {
                    let (name, inline) = match s.find('=') {
                        Some(eq) => (&s[..eq], Some(s[eq + 1..].to_string())),
                        None => (s, None),
                    };
                    let Some(spec) = self.options.iter().find(|o| o.name == name) else {
                        return bad(format!("unrecognized argument `{name}`"));
                    };
                    let value = if spec.value.is_some() {
                        match inline.or_else(|| args.next()) {
                            Some(v) if !v.trim().is_empty() => v,
                            _ => return bad(format!("`{name}` expects a value")),
                        }
                    } else {
                        if inline.is_some() {
                            return bad(format!("`{name}` takes no value"));
                        }
                        String::new()
                    };
                    options.push((spec.name, value));
                }
                s if s.starts_with('-') && s.len() > 1 => {
                    return bad(format!("unrecognized argument `{s}`"));
                }
                _ => {
                    if self.operands.is_none() {
                        return bad(format!("unexpected operand `{arg}`"));
                    }
                    operands.push(arg);
                }
            }
        }
        let budget = Budget::parse_args(budget_args).map_err(CliError::Bad)?;
        Ok(ParsedCli { budget, options, operands })
    }
}

/// The [`Budget`] for a binary with no extra options — strict-arg parsing
/// with a usage message naming the binary. `bin` is usually
/// `env!("CARGO_BIN_NAME")`.
pub fn budget_for(bin: &'static str) -> Budget {
    CliSpec::budget_only(bin).parse().budget
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    const SPEC: CliSpec = CliSpec {
        bin: "demo",
        options: &[
            OptSpec { name: "--suite", value: Some("S"), help: "which suite" },
            OptSpec { name: "--verbose", value: None, help: "more output" },
        ],
        operands: Some(("workload", "kernels to run")),
    };

    #[test]
    fn budget_flags_fold_and_extras_split() {
        let p = SPEC.parse_from(strings(&["--full", "--suite", "fp", "--jobs=3", "w1"])).unwrap();
        assert_eq!(p.budget.label(), "full");
        assert_eq!(p.budget.jobs, 3);
        assert_eq!(p.option("--suite"), Some("fp"));
        assert_eq!(p.operands, vec!["w1"]);
    }

    #[test]
    fn both_option_spellings_and_last_one_wins() {
        let p = SPEC.parse_from(strings(&["--suite=int", "--suite", "all"])).unwrap();
        assert_eq!(p.option("--suite"), Some("all"));
        assert_eq!(p.options.len(), 2);
    }

    #[test]
    fn flags_take_no_value() {
        let p = SPEC.parse_from(strings(&["--verbose"])).unwrap();
        assert_eq!(p.option("--verbose"), Some(""));
        assert!(matches!(
            SPEC.parse_from(strings(&["--verbose=yes"])),
            Err(CliError::Bad(_))
        ));
    }

    #[test]
    fn strictness() {
        assert!(matches!(SPEC.parse_from(strings(&["--bogus"])), Err(CliError::Bad(_))));
        assert!(matches!(SPEC.parse_from(strings(&["--suite"])), Err(CliError::Bad(_))));
        assert!(matches!(SPEC.parse_from(strings(&["--suite", " "])), Err(CliError::Bad(_))));
        assert!(matches!(SPEC.parse_from(strings(&["--jobs", "0"])), Err(CliError::Bad(_))));
        assert!(matches!(SPEC.parse_from(strings(&["--help"])), Err(CliError::Help)));
        let no_operands = CliSpec::budget_only("demo2");
        assert!(matches!(no_operands.parse_from(strings(&["stray"])), Err(CliError::Bad(_))));
    }

    #[test]
    fn usage_names_the_binary_and_every_option() {
        let usage = SPEC.usage();
        assert!(usage
            .starts_with("usage: demo [--quick | --full] [--jobs N] [--sample[=I/P/W]] [--suite S]"));
        for needle in
            ["--quick", "--full", "--jobs N", "--sample[=I/P/W]", "--suite S", "--verbose", "workload..."]
        {
            assert!(usage.contains(needle), "usage missing {needle}:\n{usage}");
        }
    }

    #[test]
    fn machine_sets() {
        assert_eq!(MachineSet::parse("baseline"), Ok(MachineSet::Base));
        assert_eq!(MachineSet::parse("carf"), Ok(MachineSet::Carf));
        assert!(MachineSet::parse("neither").is_err());
        let both = MachineSet::Both.configs();
        assert_eq!(both.len(), 2);
        assert_eq!(both[0].0, "base");
        assert_eq!(both[1].0, "carf");
        assert_eq!(MachineSet::Carf.configs().len(), 1);
        assert!(MachineSet::Base.includes_base() && !MachineSet::Base.includes_carf());
        assert_eq!(MachineSet::parse("ports"), Ok(MachineSet::PortReduced));
        assert_eq!(MachineSet::parse("port-reduced"), Ok(MachineSet::PortReduced));
        assert_eq!(MachineSet::parse("compressed"), Ok(MachineSet::Compressed));
        let all = MachineSet::All.configs();
        assert_eq!(
            all.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
            ["base", "carf", "compressed", "ports"]
        );
        assert_eq!(MachineSet::Compressed.configs()[0].0, "compressed");
        assert!(!MachineSet::Compressed.includes_base());
        assert!(!MachineSet::PortReduced.includes_carf());
    }

    #[test]
    fn suite_sets() {
        assert_eq!(parse_suites("int").unwrap(), vec![Suite::Int]);
        assert_eq!(parse_suites("all").unwrap(), vec![Suite::Int, Suite::Fp]);
        assert!(parse_suites("dsp").is_err());
    }
}
