//! `carf-serve`: the experiment job daemon.
//!
//! A std-only TCP + JSON-lines service (no external dependencies):
//! clients submit experiment requests, the daemon shards the matrix
//! points across a worker pool (reusing [`crate::run_ordered`], so the
//! results are bit-identical to a direct [`crate::run_matrix`] run at any
//! worker count) and streams one event per point as it completes. Points
//! already in the content-addressed cache ([`crate::cache`]) are answered
//! instantly without simulating; fresh points are stored on completion,
//! so the daemon *is* the compute-once/serve-many tier.
//!
//! ## Protocol
//!
//! One JSON object per line in each direction. Requests:
//!
//! ```text
//! {"cmd":"ping"}
//! {"cmd":"submit","machines":"all","suite":"int","budget":"quick","jobs":4}
//! {"cmd":"fetch","machines":"base","suite":"int","budget":"quick"}
//! {"cmd":"shutdown"}
//! ```
//!
//! `machines`/`suite` take the same values as the `--machine`/`--suite`
//! CLI flags; `budget` is `quick`/`full`; optional `max_insts` overrides
//! the instruction cap and `jobs` the worker count (default 1). `submit`
//! simulates what the cache is missing; `fetch` never simulates — misses
//! are reported as `miss` events.
//!
//! Every response event carries a strictly increasing per-connection
//! `seq`, assigned under the connection's single writer lock — a client
//! observing `seq` gaps or reordering has found a bug. With `jobs` = 1,
//! `point` events additionally arrive in matrix order; with more workers
//! completion order is scheduling-dependent (each event's `index` says
//! where it belongs). `point` events embed the full exact
//! [`crate::statsio`] stats record, so a client can reconstruct results
//! bit-for-bit.

use crate::cache::{point_key, ResultCache};
use crate::cli::{parse_suites, MachineSet};
use crate::parallel::json_field;
use crate::statsio::stats_to_json;
use crate::Budget;
use carf_sim::SimConfig;
use carf_workloads::{Suite, Workload};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Protocol version, echoed in `pong` so clients can detect skew.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parsed experiment request (the matrix spec shared by `submit` and
/// `fetch`).
#[derive(Debug, Clone)]
pub struct ExperimentRequest {
    /// Machine configurations to run.
    pub machines: MachineSet,
    /// Suites to run.
    pub suites: Vec<Suite>,
    /// Budget (size/cap/sampling + worker count).
    pub budget: Budget,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Command {
    /// Liveness check.
    Ping,
    /// Run the matrix: serve cached points, simulate the rest.
    Submit(ExperimentRequest),
    /// Cache-only: serve hits, report misses, never simulate.
    Fetch(ExperimentRequest),
    /// Stop accepting connections.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A message describing the missing or malformed field.
pub fn parse_request(line: &str) -> Result<Command, String> {
    let cmd = json_field(line, "cmd").ok_or_else(|| "request has no `cmd` field".to_string())?;
    match cmd.as_str() {
        "ping" => Ok(Command::Ping),
        "shutdown" => Ok(Command::Shutdown),
        "submit" | "fetch" => {
            let machines = match json_field(line, "machines") {
                Some(v) => MachineSet::parse(&v)?,
                None => MachineSet::Both,
            };
            let suites = match json_field(line, "suite") {
                Some(v) => parse_suites(&v)?,
                None => vec![Suite::Int],
            };
            let mut budget = match json_field(line, "budget").as_deref() {
                None | Some("quick") => Budget::quick(),
                Some("full") => Budget::full(),
                Some(other) => return Err(format!("budget `{other}` is not quick/full")),
            };
            budget.jobs = match json_field(line, "jobs") {
                Some(v) => v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("`jobs` expects a positive integer, got `{v}`"))?,
                None => 1,
            };
            if let Some(v) = json_field(line, "max_insts") {
                budget.max_insts = v
                    .parse::<u64>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("`max_insts` expects a positive integer, got `{v}`"))?;
            }
            let req = ExperimentRequest { machines, suites, budget };
            Ok(if cmd == "submit" { Command::Submit(req) } else { Command::Fetch(req) })
        }
        other => Err(format!("unknown cmd `{other}` (ping/submit/fetch/shutdown)")),
    }
}

/// One matrix point in daemon flat order (machine-major, then suite,
/// then workload-registry order — the same order [`crate::run_matrix`]
/// flattens to for the equivalent point list).
pub struct FlatPoint {
    /// Machine label (`base`, `carf`, ...).
    pub machine: &'static str,
    /// The machine configuration.
    pub config: SimConfig,
    /// The suite this workload belongs to.
    pub suite: Suite,
    /// The workload.
    pub workload: Workload,
}

/// Expands a request into its flat point list.
pub fn flatten_request(req: &ExperimentRequest) -> Vec<FlatPoint> {
    let mut out = Vec::new();
    for (machine, config) in req.machines.configs() {
        for suite in &req.suites {
            for workload in crate::suite_workloads(*suite) {
                out.push(FlatPoint { machine, config: config.clone(), suite: *suite, workload });
            }
        }
    }
    out
}

/// The per-connection event writer: one lock serializes formatting,
/// `seq` assignment, and the socket write, so events can never interleave
/// or go out backwards.
struct EventWriter {
    inner: Mutex<(BufWriter<TcpStream>, u64)>,
}

impl EventWriter {
    fn new(stream: TcpStream) -> Self {
        Self { inner: Mutex::new((BufWriter::new(stream), 0)) }
    }

    /// Emits `{"seq":N,"event":"<event>"<extra>}`; `extra` is either
    /// empty or starts with a comma.
    fn emit(&self, event: &str, extra: &str) -> std::io::Result<()> {
        let mut guard = self.inner.lock().expect("event writer poisoned");
        let (writer, seq) = &mut *guard;
        let line = format!("{{\"seq\":{seq},\"event\":\"{event}\"{extra}}}\n");
        *seq += 1;
        writer.write_all(line.as_bytes())?;
        writer.flush()
    }
}

fn handle_matrix(
    writer: &EventWriter,
    req: &ExperimentRequest,
    cache: Option<&ResultCache>,
    simulate: bool,
) -> std::io::Result<()> {
    let flat = flatten_request(req);
    writer.emit("accepted", &format!(",\"points\":{}", flat.len()))?;
    let served = AtomicUsize::new(0);
    let simulated = AtomicUsize::new(0);
    let misses = AtomicUsize::new(0);

    let indexed: Vec<usize> = (0..flat.len()).collect();
    let jobs = if simulate { req.budget.jobs } else { 1 };
    let errors = crate::run_ordered(&indexed, jobs, |i| -> std::io::Result<()> {
        let p = &flat[*i];
        let key = point_key(&p.config, p.suite, p.workload.name, &req.budget);
        let head = format!(
            ",\"index\":{i},\"machine\":\"{}\",\"point\":\"{:?}/{}\",\"key\":\"{key:032x}\"",
            p.machine, p.suite, p.workload.name
        );
        if let Some(stats) = cache.and_then(|c| c.load_point(key)) {
            served.fetch_add(1, Ordering::Relaxed);
            return writer
                .emit("point", &format!("{head},\"source\":\"cache\",\"stats\":{}", stats_to_json(&stats)));
        }
        if !simulate {
            misses.fetch_add(1, Ordering::Relaxed);
            return writer.emit("miss", &head);
        }
        let stats = crate::run_workload(&p.config, &p.workload, &req.budget);
        if let Some(c) = cache {
            c.store_point(
                key,
                &format!("{:?}/{}", p.suite, p.workload.name),
                &p.config,
                &req.budget,
                &stats,
            );
        }
        simulated.fetch_add(1, Ordering::Relaxed);
        writer.emit("point", &format!("{head},\"source\":\"sim\",\"stats\":{}", stats_to_json(&stats)))
    });
    for e in errors {
        e?;
    }
    writer.emit(
        "done",
        &format!(
            ",\"points\":{},\"served\":{},\"simulated\":{},\"missing\":{}",
            flat.len(),
            served.load(Ordering::Relaxed),
            simulated.load(Ordering::Relaxed),
            misses.load(Ordering::Relaxed),
        ),
    )
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn handle_connection(stream: TcpStream, cache: Option<Arc<ResultCache>>, stop: Arc<AtomicBool>) {
    let peer = stream.peer_addr().ok();
    // An accepted socket's local address IS the listening address — kept
    // so a wire `shutdown` can poke the accept loop awake (it only checks
    // the stop flag after accepting a connection).
    let listen_addr = stream.local_addr().ok();
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let writer = EventWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let result = match parse_request(&line) {
            Ok(Command::Ping) => {
                writer.emit("pong", &format!(",\"protocol\":{PROTOCOL_VERSION}"))
            }
            Ok(Command::Shutdown) => {
                let _ = writer.emit("bye", "");
                stop.store(true, Ordering::SeqCst);
                if let Some(addr) = listen_addr {
                    let _ = TcpStream::connect(addr); // unblock accept()
                }
                return;
            }
            Ok(Command::Submit(req)) => {
                handle_matrix(&writer, &req, cache.as_deref(), true)
            }
            Ok(Command::Fetch(req)) => {
                handle_matrix(&writer, &req, cache.as_deref(), false)
            }
            Err(msg) => writer.emit("error", &format!(",\"message\":\"{}\"", json_escape(&msg))),
        };
        if result.is_err() {
            break; // client went away mid-stream
        }
    }
    let _ = peer;
}

/// A running daemon, bound and accepting.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting in a background thread, one handler thread per
    /// connection. `cache` is the content-addressed store to serve from
    /// and fill (`None` = simulate everything, store nothing).
    ///
    /// # Errors
    ///
    /// Any socket bind error.
    pub fn spawn(addr: &str, cache: Option<ResultCache>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let cache = cache.map(Arc::new);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let cache = cache.clone();
                let stop = Arc::clone(&accept_stop);
                std::thread::spawn(move || handle_connection(stream, cache, stop));
            }
        });
        Ok(Self { addr, stop, accept_thread })
    }

    /// The bound address (port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client sends `shutdown`.
    pub fn wait(self) {
        let _ = self.accept_thread.join();
    }

    /// Stops the daemon from the hosting process: sets the stop flag and
    /// pokes the accept loop awake, then joins it.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock accept()
        let _ = self.accept_thread.join();
    }
}

/// Client side: sends one request line and collects response events until
/// the stream's `done`/`bye`/`pong`/`error` terminator (or EOF). Returns
/// the raw event lines in arrival order.
///
/// # Errors
///
/// Any socket error.
pub fn request_events(addr: &SocketAddr, request_line: &str) -> std::io::Result<Vec<String>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request_line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let reader = BufReader::new(stream);
    let mut events = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event = json_field(&line, "event");
        events.push(line);
        if matches!(event.as_deref(), Some("done" | "bye" | "pong" | "error")) {
            break;
        }
    }
    Ok(events)
}

/// Asserts the per-connection ordering contract on a collected event
/// stream: `seq` fields strictly increase from 0. Returns the parsed
/// sequence numbers.
///
/// # Errors
///
/// A message naming the first out-of-order event.
pub fn check_sequence(events: &[String]) -> Result<Vec<u64>, String> {
    let mut seqs = Vec::with_capacity(events.len());
    for (i, line) in events.iter().enumerate() {
        let seq = json_field(line, "seq")
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("event {i} has no numeric seq: {line}"))?;
        if seq != i as u64 {
            return Err(format!("event {i} carries seq {seq} (expected {i}): {line}"));
        }
        seqs.push(seq);
    }
    Ok(seqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing_covers_the_grammar() {
        assert!(matches!(parse_request(r#"{"cmd":"ping"}"#), Ok(Command::Ping)));
        assert!(matches!(parse_request(r#"{"cmd":"shutdown"}"#), Ok(Command::Shutdown)));
        let submit = parse_request(
            r#"{"cmd":"submit","machines":"all","suite":"fp","budget":"full","jobs":3,"max_insts":777}"#,
        );
        match submit {
            Ok(Command::Submit(req)) => {
                assert_eq!(req.machines, MachineSet::All);
                assert_eq!(req.suites, vec![Suite::Fp]);
                assert_eq!(req.budget.label(), "full");
                assert_eq!(req.budget.jobs, 3);
                assert_eq!(req.budget.max_insts, 777);
            }
            other => panic!("expected submit, got {other:?}"),
        }
        // Defaults: both machines, Int suite, quick budget, one worker.
        match parse_request(r#"{"cmd":"fetch"}"#) {
            Ok(Command::Fetch(req)) => {
                assert_eq!(req.machines, MachineSet::Both);
                assert_eq!(req.suites, vec![Suite::Int]);
                assert_eq!(req.budget.label(), "quick");
                assert_eq!(req.budget.jobs, 1);
            }
            other => panic!("expected fetch, got {other:?}"),
        }
    }

    #[test]
    fn request_parsing_rejects_garbage() {
        assert!(parse_request("{}").is_err());
        assert!(parse_request(r#"{"cmd":"dance"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"submit","machines":"warp"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"submit","budget":"leisurely"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"submit","jobs":"0"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"submit","max_insts":"none"}"#).is_err());
    }

    #[test]
    fn flatten_is_machine_major_then_suite() {
        let req = ExperimentRequest {
            machines: MachineSet::Both,
            suites: vec![Suite::Int, Suite::Fp],
            budget: Budget::quick(),
        };
        let flat = flatten_request(&req);
        let per_suite: usize = [Suite::Int, Suite::Fp]
            .iter()
            .map(|s| crate::suite_workloads(*s).len())
            .sum();
        assert_eq!(flat.len(), 2 * per_suite);
        assert_eq!(flat[0].machine, "base");
        assert_eq!(flat[0].suite, Suite::Int);
        assert_eq!(flat.last().unwrap().machine, "carf");
        assert_eq!(flat.last().unwrap().suite, Suite::Fp);
    }

    #[test]
    fn sequence_checker_spots_gaps() {
        let good = vec![
            r#"{"seq":0,"event":"accepted"}"#.to_string(),
            r#"{"seq":1,"event":"done"}"#.to_string(),
        ];
        assert_eq!(check_sequence(&good).unwrap(), vec![0, 1]);
        let gap = vec![
            r#"{"seq":0,"event":"accepted"}"#.to_string(),
            r#"{"seq":2,"event":"done"}"#.to_string(),
        ];
        assert!(check_sequence(&gap).is_err());
        let missing = vec![r#"{"event":"accepted"}"#.to_string()];
        assert!(check_sequence(&missing).is_err());
    }
}
