//! Property-based co-simulation: arbitrary terminating programs through
//! the timing pipeline must match the functional machine exactly.

use carf_core::{CarfParams, Policies, PortReducedParams};
use carf_sim::{RegFileKind, SimConfig, AnySimulator};
use carf_workloads::{random_program, RandomProgramParams};
use proptest::prelude::*;

fn cfg_for(kind: u8) -> SimConfig {
    let mut cfg = SimConfig::test_small();
    cfg.cosim = true;
    match kind % 5 {
        0 => {}
        1 => {
            cfg.regfile = RegFileKind::ContentAware(
                CarfParams { simple_entries: 64, ..CarfParams::paper_default() },
                Policies::default(),
            );
        }
        2 => {
            cfg.regfile = RegFileKind::ContentAware(
                CarfParams { simple_entries: 64, ..CarfParams::with_dn(12) },
                Policies { extra_bypass: false, ..Policies::default() },
            );
        }
        3 => {
            cfg.regfile = RegFileKind::Compressed(CarfParams {
                simple_entries: 64,
                ..CarfParams::paper_default()
            });
        }
        _ => {
            // A tight port budget with a shallow capture buffer, so both
            // the arbitration and the reuse path are exercised.
            cfg.regfile = RegFileKind::PortReduced(PortReducedParams {
                read_ports: 2,
                capture_entries: 4,
            });
        }
    }
    cfg
}

proptest! {
    // Each case is a full simulation; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_cosim_clean(
        seed in any::<u64>(),
        kind in any::<u8>(),
        body_len in 20usize..70,
        iterations in 5u64..40,
    ) {
        let program = random_program(&RandomProgramParams {
            seed,
            body_len,
            iterations,
            ..Default::default()
        });
        let mut sim = AnySimulator::new(cfg_for(kind), &program);
        let result = sim.run(5_000_000)
            .unwrap_or_else(|e| panic!("seed {seed} kind {kind}: {e}"));
        prop_assert!(result.halted);
        prop_assert!(result.committed > iterations * body_len as u64 / 2);
    }

    /// The parallel engine runs one simulation per worker thread; results
    /// must not depend on the worker count. Run each backend once on the
    /// calling thread (jobs=1) and four times concurrently (jobs=4) and
    /// demand bit-identical architectural state and retire counts.
    #[test]
    fn all_backends_are_bit_identical_across_job_counts(
        seed in any::<u64>(),
        body_len in 20usize..50,
    ) {
        let program = random_program(&RandomProgramParams {
            seed,
            body_len,
            iterations: 8,
            ..Default::default()
        });
        for kind in 0u8..5 {
            let cfg = cfg_for(kind);
            let run = |cfg: SimConfig| {
                let mut sim = AnySimulator::new(cfg, &program);
                sim.run(5_000_000)
                    .unwrap_or_else(|e| panic!("seed {seed} kind {kind}: {e}"));
                (sim.arch_checkpoint().fingerprint(), sim.retired())
            };
            let solo = run(cfg.clone());
            let parallel: Vec<_> = std::thread::scope(|s| {
                let handles: Vec<_> =
                    (0..4).map(|_| s.spawn(|| run(cfg.clone()))).collect();
                handles.into_iter().map(|h| h.join().expect("worker")).collect()
            });
            for (fp, retired) in parallel {
                prop_assert_eq!(fp, solo.0, "seed {} kind {}", seed, kind);
                prop_assert_eq!(retired, solo.1, "seed {} kind {}", seed, kind);
            }
        }
    }

    #[test]
    fn ipc_is_invariant_across_reruns(seed in any::<u64>()) {
        let program = random_program(&RandomProgramParams {
            seed,
            body_len: 30,
            iterations: 10,
            ..Default::default()
        });
        let run = || {
            let mut sim = AnySimulator::new(cfg_for(1), &program);
            sim.run(1_000_000).expect("clean run")
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.committed, b.committed);
    }
}

mod lsq_model {
    //! Model-based check of the load/store queue: forwarding decisions
    //! must agree with a naive reference that replays the store history.

    use carf_sim::{LoadDecision, LoadStoreQueue};
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct Op {
        is_load: bool,
        addr: u64,
        size: u8,
        data: u64,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        (any::<bool>(), 0u64..64, prop_oneof![Just(1u8), Just(4), Just(8)], any::<u64>())
            .prop_map(|(is_load, slot, size, data)| Op {
                is_load,
                addr: slot, // byte-granular within a small window
                size,
                data,
            })
    }

    /// Reference: the value a load must see given all older stores with
    /// known addresses/data, or `None` when it must not forward (memory
    /// or wait — decided by the queue's own rules).
    fn reference_bytes(older: &[Op], load: &Op) -> Option<u64> {
        // Walk youngest-first; the queue forwards only on full containment
        // by a single store.
        for st in older.iter().rev() {
            if st.is_load {
                continue;
            }
            let (ls, le) = (load.addr, load.addr + u64::from(load.size));
            let (ss, se) = (st.addr, st.addr + u64::from(st.size));
            if le <= ss || se <= ls {
                continue;
            }
            if ls >= ss && le <= se {
                let shift = (ls - ss) * 8;
                let bits = u64::from(load.size) * 8;
                let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
                return Some((st.data >> shift) & mask);
            }
            return None; // partial overlap: the queue must Wait
        }
        None // no overlap: the queue must go to Memory
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn forwarding_matches_the_reference(ops in proptest::collection::vec(arb_op(), 1..24)) {
            let mut lsq = LoadStoreQueue::new(64);
            // Install everything with known addresses and data.
            for (i, op) in ops.iter().enumerate() {
                let seq = (i + 1) as u64;
                lsq.try_push(seq, op.is_load, op.size).unwrap();
                lsq.set_addr(seq, op.addr);
                if !op.is_load {
                    lsq.set_store_data(seq, op.data);
                }
            }
            for (i, op) in ops.iter().enumerate() {
                if !op.is_load {
                    continue;
                }
                let seq = (i + 1) as u64;
                let decision = lsq.load_decision(seq);
                match reference_bytes(&ops[..i], op) {
                    Some(expected) => {
                        prop_assert_eq!(decision, LoadDecision::Forward(expected), "load {}", seq);
                    }
                    None => {
                        prop_assert_ne!(
                            std::mem::discriminant(&decision),
                            std::mem::discriminant(&LoadDecision::Forward(0)),
                            "load {} must not forward", seq
                        );
                    }
                }
            }
        }

        #[test]
        fn squash_then_refill_is_consistent(
            ops in proptest::collection::vec(arb_op(), 2..20),
            cut in 1u64..10,
        ) {
            let mut lsq = LoadStoreQueue::new(64);
            for (i, op) in ops.iter().enumerate() {
                let seq = (i + 1) as u64;
                lsq.try_push(seq, op.is_load, op.size).unwrap();
                lsq.set_addr(seq, op.addr);
                if !op.is_load {
                    lsq.set_store_data(seq, op.data);
                }
            }
            let keep = cut.min(ops.len() as u64);
            lsq.squash_after(keep);
            prop_assert_eq!(lsq.len(), keep as usize);
            // Survivors keep their state; refilled entries behave normally.
            let next = keep + 1;
            lsq.try_push(next, true, 8).unwrap();
            lsq.set_addr(next, 0);
            let _ = lsq.load_decision(next); // must not panic
        }
    }
}
