//! Directed timing validation: known instruction patterns must take the
//! cycle counts the microarchitecture specifies (within pipeline fill
//! slack). These tests pin down the simulator's timing model so that
//! experiment results cannot drift silently.

use carf_core::CarfParams;
use carf_isa::{x, Asm, Program};
use carf_mem::HierarchyConfig;
use carf_sim::{SimConfig, AnySimulator};

/// A machine with no cold-start noise: tiny caches so warm-up is cheap,
/// no co-simulation overhead on timing (cosim does not change timing, but
/// keep runs lean).
fn cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.hierarchy = HierarchyConfig::tiny();
    cfg.cosim = true;
    cfg
}

fn cycles(config: &SimConfig, program: &Program) -> u64 {
    let mut sim = AnySimulator::new(config.clone(), program);
    let r = sim.run(10_000_000).expect("clean run");
    assert!(r.halted);
    r.cycles
}

/// Cycles per iteration of the steady-state loop body, measured by
/// differencing two run lengths (cold-start and fill cancel out).
fn per_iteration(config: &SimConfig, build: impl Fn(u64) -> Program) -> f64 {
    let short = cycles(config, &build(200));
    let long = cycles(config, &build(1200));
    (long - short) as f64 / 1000.0
}

/// A loop whose body is a serial chain of `n` dependent adds.
fn dependent_chain(n: usize) -> impl Fn(u64) -> Program {
    move |iters| {
        let mut asm = Asm::new();
        asm.li(x(2), iters);
        asm.label("loop");
        for _ in 0..n {
            asm.add(x(1), x(1), x(2));
        }
        asm.addi(x(2), x(2), -1);
        asm.bne(x(2), x(0), "loop");
        asm.halt();
        asm.finish().expect("assembles")
    }
}

#[test]
fn dependent_alu_chain_runs_at_one_cycle_per_op() {
    // 12 dependent adds per iteration: the chain dominates, so ~12
    // cycles/iteration (+ the loop-control overhead hidden under it).
    let per_iter = per_iteration(&cfg(), dependent_chain(12));
    assert!(
        (11.0..=14.0).contains(&per_iter),
        "dependent chain: {per_iter:.2} cycles/iter, expected ~12"
    );
}

#[test]
fn independent_alu_ops_fill_the_issue_width() {
    // 16 independent adds per iteration on an 8-wide machine with 8 int
    // units: at least 4 IPC must be sustained (loop control and realistic
    // inefficiencies allowed).
    let build = |iters: u64| {
        let mut asm = Asm::new();
        asm.li(x(20), iters);
        for i in 1..=8u8 {
            asm.li(x(i), u64::from(i));
        }
        asm.label("loop");
        for i in 1..=8u8 {
            asm.add(x(i + 9), x(i), x(i)); // 8 independent
            asm.add(x(i), x(i), x(i)); // 8 more, one per source
        }
        asm.addi(x(20), x(20), -1);
        asm.bne(x(20), x(0), "loop");
        asm.halt();
        asm.finish().expect("assembles")
    };
    let per_iter = per_iteration(&cfg(), build);
    let ipc = 18.0 / per_iter;
    assert!(ipc > 4.0, "independent ops: {ipc:.2} IPC, expected > 4");
}

#[test]
fn multiply_latency_is_respected() {
    // Dependent multiply chain: mul latency is 3, so ~3 cycles per mul.
    let build = |iters: u64| {
        let mut asm = Asm::new();
        asm.li(x(2), iters);
        asm.li(x(1), 3);
        asm.label("loop");
        for _ in 0..4 {
            asm.mul(x(1), x(1), x(1));
        }
        asm.addi(x(2), x(2), -1);
        asm.bne(x(2), x(0), "loop");
        asm.halt();
        asm.finish().expect("assembles")
    };
    let per_iter = per_iteration(&cfg(), build);
    assert!(
        (11.0..=15.0).contains(&per_iter),
        "mul chain: {per_iter:.2} cycles/iter, expected ~12 (4 muls x 3)"
    );
}

#[test]
fn load_use_chains_cost_the_l1_round_trip() {
    // Pointer chase through a self-pointing cell: each step is
    // AGU (1) + L1 hit (1) and the next load waits for the data: with
    // load-hit speculation the steady state is ~3 cycles per step.
    let build = |iters: u64| {
        let mut asm = Asm::new();
        // A single cell that points to itself (self-pointer written at
        // runtime), then chased in a tight loop.
        let cell = asm.alloc_u64s(&[0]);
        asm.li(x(1), cell);
        asm.st(x(1), x(1), 0);
        asm.li(x(2), iters);
        asm.label("loop");
        asm.ld(x(1), x(1), 0);
        asm.addi(x(2), x(2), -1);
        asm.bne(x(2), x(0), "loop");
        asm.halt();
        asm.finish().expect("assembles")
    };
    let per_iter = per_iteration(&cfg(), build);
    assert!(
        (2.0..=4.5).contains(&per_iter),
        "load-use chain: {per_iter:.2} cycles/iter, expected ~3"
    );
}

#[test]
fn carf_read_stage_does_not_slow_dependent_alu_chains() {
    // The content-aware file adds a register-read stage, but bypassed
    // dependent chains must still run back-to-back: the chain test may
    // cost at most a fraction more than the baseline.
    let base = per_iteration(&cfg(), dependent_chain(12));
    let mut carf_cfg = cfg();
    carf_cfg.regfile = carf_sim::RegFileKind::ContentAware(
        CarfParams::paper_default(),
        carf_core::Policies::default(),
    );
    let carf = per_iteration(&carf_cfg, dependent_chain(12));
    assert!(
        carf <= base * 1.15,
        "carf dependent chain {carf:.2} vs baseline {base:.2} cycles/iter"
    );
}

#[test]
fn mispredicted_branches_cost_a_pipeline_refill() {
    // An unpredictable branch per iteration vs a perfectly biased one:
    // the difference per iteration approximates the mispredict penalty
    // times the mispredict rate (~0.5 here).
    let build = |flip: bool| {
        move |iters: u64| {
            let mut asm = Asm::new();
            asm.li(x(2), iters);
            asm.li(x(5), 6364136223846793005);
            asm.li(x(6), 1442695040888963407);
            asm.li(x(4), 0x1234_5678);
            asm.label("loop");
            asm.mul(x(4), x(4), x(5));
            asm.add(x(4), x(4), x(6));
            if flip {
                asm.srli(x(7), x(4), 61); // pseudo-random bit
            } else {
                asm.li(x(7), 1); // always the same direction
            }
            asm.andi(x(7), x(7), 1);
            asm.beq(x(7), x(0), "skip");
            asm.addi(x(3), x(3), 1);
            asm.label("skip");
            asm.addi(x(2), x(2), -1);
            asm.bne(x(2), x(0), "loop");
            asm.halt();
            asm.finish().expect("assembles")
        }
    };
    let predictable = per_iteration(&cfg(), build(false));
    let random = per_iteration(&cfg(), build(true));
    let extra = random - predictable;
    // ~50% mispredict rate; the penalty is the front-end refill (several
    // cycles). Anything clearly positive and bounded is correct.
    assert!(
        (1.0..=12.0).contains(&extra),
        "mispredict cost: {extra:.2} extra cycles/iter over {predictable:.2}"
    );
}

#[test]
fn dl1_ports_bound_memory_throughput() {
    // 4 independent loads per iteration but only 2 D-cache ports: at
    // least 2 cycles per iteration just for the loads.
    let build = |iters: u64| {
        let mut asm = Asm::new();
        let buf = asm.alloc_u64s(&[1, 2, 3, 4, 5, 6, 7, 8]);
        asm.li(x(1), buf);
        asm.li(x(2), iters);
        asm.label("loop");
        asm.ld(x(3), x(1), 0);
        asm.ld(x(4), x(1), 8);
        asm.ld(x(5), x(1), 16);
        asm.ld(x(6), x(1), 24);
        asm.addi(x(2), x(2), -1);
        asm.bne(x(2), x(0), "loop");
        asm.halt();
        asm.finish().expect("assembles")
    };
    let per_iter = per_iteration(&cfg(), build);
    assert!(per_iter >= 1.9, "4 loads over 2 ports: {per_iter:.2} cycles/iter, expected >= 2");
}

#[test]
fn unpipelined_divides_serialize_on_their_unit() {
    // A loop-carried divide chain: ~div_latency (+1 for the repair add)
    // per iteration. The chain must be loop-carried — with an invariant
    // dividend the 8 integer units overlap iterations and the throughput
    // is FU-bound instead (which a broken latency model would also show).
    let build = |iters: u64| {
        let mut asm = Asm::new();
        asm.li(x(2), iters);
        asm.li(x(1), u64::MAX >> 1);
        asm.li(x(3), 3);
        asm.li(x(9), 0x4000_0000_0000_0000);
        asm.label("loop");
        asm.div(x(1), x(1), x(3)); // loop-carried
        asm.add(x(1), x(1), x(9)); // keep the dividend large
        asm.addi(x(2), x(2), -1);
        asm.bne(x(2), x(0), "loop");
        asm.halt();
        asm.finish().expect("assembles")
    };
    let per_iter = per_iteration(&cfg(), build);
    assert!(
        (20.0..=25.0).contains(&per_iter),
        "loop-carried divide: {per_iter:.2} cycles/iter, expected ~21"
    );
}
