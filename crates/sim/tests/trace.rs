//! Tracer integration tests on real simulations: the Chrome trace export
//! must be well-formed JSON with monotone timestamps, and the stall
//! attribution must account for every simulated cycle.

use carf_sim::{SimConfig, AnySimulator, TraceRecorder};
use carf_workloads::{random_program, RandomProgramParams};

fn traced_run(config: SimConfig) -> TraceRecorder {
    let program = random_program(&RandomProgramParams {
        seed: 0xBEEF,
        body_len: 60,
        iterations: 200,
        include_fp: true,
        include_mem: true,
        include_branches: true,
    });
    let mut sim = AnySimulator::with_tracer(config, &program, TraceRecorder::new());
    sim.run(500_000).expect("clean run");
    sim.into_tracer()
}

/// A minimal structural JSON checker: verifies balanced braces/brackets
/// outside strings and that strings close. It accepts a superset of JSON,
/// but catches the failure modes of hand-rolled serialization (unbalanced
/// nesting, unterminated or unescaped strings).
fn assert_balanced_json(json: &str) {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            } else {
                assert!(c as u32 >= 0x20, "raw control character inside a JSON string");
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth_obj += 1,
            '}' => {
                depth_obj -= 1;
                assert!(depth_obj >= 0, "unbalanced braces");
            }
            '[' => depth_arr += 1,
            ']' => {
                depth_arr -= 1;
                assert!(depth_arr >= 0, "unbalanced brackets");
            }
            _ => {}
        }
    }
    assert!(!in_string, "unterminated string");
    assert_eq!(depth_obj, 0, "unbalanced braces");
    assert_eq!(depth_arr, 0, "unbalanced brackets");
}

/// Extracts every `"ts":<n>` value, in order of appearance.
fn timestamps(json: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"ts\":") {
        rest = &rest[pos + 5..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        out.push(rest[..end].parse::<u64>().expect("numeric ts"));
    }
    out
}

#[test]
fn chrome_trace_is_valid_and_monotone() {
    for config in [
        SimConfig::paper_baseline(),
        SimConfig::paper_carf(carf_core::CarfParams::paper_default()),
    ] {
        let recorder = traced_run(config);
        let json = recorder.chrome_trace_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert_balanced_json(&json);

        let ts = timestamps(&json);
        assert!(ts.len() > 100, "expected a populated trace, got {} events", ts.len());
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "trace timestamps must be monotonically non-decreasing"
        );
        // Slices, counters, and metadata are all present.
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
    }
}

#[test]
fn stall_buckets_sum_to_total_cycles() {
    for config in [
        SimConfig::paper_baseline(),
        SimConfig::paper_carf(carf_core::CarfParams::paper_default()),
    ] {
        let recorder = traced_run(config);
        let report = recorder.stall_report();
        assert!(recorder.cycles() > 0);
        assert_eq!(report.total_cycles, recorder.cycles());
        assert_eq!(
            report.bucket_sum(),
            recorder.cycles(),
            "every cycle must land in exactly one bucket:\n{report}"
        );
        // A real run commits most cycles; the commit bucket dominates.
        let commit = report.buckets().iter().find(|(n, _)| *n == "commit").unwrap().1;
        assert!(commit > 0, "commit bucket empty on a committing run");
    }
}

#[test]
fn counters_json_is_valid_and_reflects_the_run() {
    let recorder = traced_run(SimConfig::paper_carf(carf_core::CarfParams::paper_default()));
    let json = recorder.counters_json();
    assert_balanced_json(&json);
    assert!(json.contains("\"cycles\":"));
    assert!(json.contains("\"wr1\":{"));
    assert!(json.contains("\"stall_cycles\":{"));
    // The CARF machine classifies integer results at WR1: the outcomes
    // must be populated on this integer-heavy workload.
    let c = recorder.counters();
    assert!(c.wr1_simple + c.wr1_short + c.wr1_long > 0, "no WR1 outcomes recorded");
    assert!(c.retired > 0 && c.dispatched >= c.retired);
}
