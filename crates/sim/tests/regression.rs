//! Pinned-statistics regression tests: a fixed seeded workload must
//! produce exactly the same counters run over run. These guard the
//! simulator's hot-loop buffer reuse (write-back, wakeup, scheduler scan,
//! squash recovery) — a scratch buffer that leaks state across cycles or
//! across a squash shows up here as a drifted counter.

use carf_sim::{SimConfig, SimStats, AnySimulator, TraceRecorder};
use carf_workloads::{random_program, RandomProgramParams};

/// A branchy, memory-heavy seeded workload: mispredict squashes and load
/// replays exercise the recovery paths where stale scratch state would be
/// most damaging.
fn pinned_run(config: &SimConfig) -> SimStats {
    let program = random_program(&RandomProgramParams {
        seed: 0xCAFE,
        body_len: 80,
        iterations: 400,
        include_fp: true,
        include_mem: true,
        include_branches: true,
    });
    let mut sim = AnySimulator::new(config.clone(), &program);
    let r = sim.run(1_000_000).expect("clean run");
    assert!(r.halted, "pinned workload must run to completion");
    sim.stats().clone()
}

fn fingerprint(s: &SimStats) -> Vec<(&'static str, u64)> {
    vec![
        ("cycles", s.cycles),
        ("committed", s.committed),
        ("loads", s.loads),
        ("stores", s.stores),
        ("branches", s.branches),
        ("fetched", s.fetched),
        ("squashed", s.squashed),
        ("mispredicts", s.mispredicts),
        ("bypassed_operands", s.bypassed_operands),
        ("rf_operands", s.rf_operands),
        ("zero_operands", s.zero_operands),
        ("load_replays", s.load_replays),
        ("int_rf_reads", s.int_rf.total_reads),
        ("int_rf_writes", s.int_rf.total_writes),
        ("fp_rf_reads", s.fp_rf.total_reads),
        ("fp_rf_writes", s.fp_rf.total_writes),
        ("stl_forwards", s.stl_forwards),
    ]
}

fn assert_fingerprint(config: &SimConfig, expected: &[(&str, u64)]) {
    let stats = pinned_run(config);
    let got = fingerprint(&stats);
    for ((name, want), (_, have)) in expected.iter().zip(&got) {
        assert_eq!(
            have, want,
            "{name} drifted on the pinned workload (got {have}, pinned {want});\n\
             full fingerprint: {got:?}"
        );
    }
}

#[test]
fn baseline_stats_are_pinned() {
    let mut cfg = SimConfig::paper_baseline();
    cfg.cosim = true;
    // Pinned against the pre-refactor simulator; regenerate only for
    // intentional timing-model changes (print `fingerprint(&pinned_run(..))`).
    assert_fingerprint(
        &cfg,
        &[
            ("cycles", 14752),
            ("committed", 29222),
            ("loads", 1607),
            ("stores", 201),
            ("branches", 2800),
            ("fetched", 30334),
            ("squashed", 691),
            ("mispredicts", 41),
            ("bypassed_operands", 26225),
            ("rf_operands", 23215),
            ("zero_operands", 403),
            ("load_replays", 0),
            ("int_rf_reads", 17729),
            ("int_rf_writes", 23583),
            ("fp_rf_reads", 5486),
            ("fp_rf_writes", 2822),
            ("stl_forwards", 0),
        ],
    );
}

#[test]
fn carf_stats_are_pinned() {
    let mut cfg = SimConfig::paper_carf(carf_core::CarfParams::paper_default());
    cfg.cosim = true;
    cfg.oracle_period = Some(16);
    assert_fingerprint(
        &cfg,
        &[
            ("cycles", 14767),
            ("committed", 29222),
            ("loads", 1607),
            ("stores", 201),
            ("branches", 2800),
            ("fetched", 30334),
            ("squashed", 754),
            ("mispredicts", 41),
            ("bypassed_operands", 28623),
            ("rf_operands", 20811),
            ("zero_operands", 403),
            ("load_replays", 0),
            ("int_rf_reads", 15334),
            ("int_rf_writes", 23581),
            ("fp_rf_reads", 5477),
            ("fp_rf_writes", 2822),
            ("stl_forwards", 0),
        ],
    );
}

/// Installing a tracer must observe the pipeline, never perturb it: the
/// traced run's statistics must be bit-identical to the pinned untraced
/// fingerprints, and the stall attribution must account for every cycle.
#[test]
fn traced_run_matches_pinned_fingerprint() {
    let program = random_program(&RandomProgramParams {
        seed: 0xCAFE,
        body_len: 80,
        iterations: 400,
        include_fp: true,
        include_mem: true,
        include_branches: true,
    });
    for (untraced_cfg, pinned_cycles) in [
        (SimConfig::paper_baseline(), 14752u64),
        (SimConfig::paper_carf(carf_core::CarfParams::paper_default()), 14767),
    ] {
        let mut cfg = untraced_cfg;
        cfg.cosim = true;
        let untraced = pinned_run(&cfg);

        let mut sim = AnySimulator::with_tracer(cfg.clone(), &program, TraceRecorder::new());
        let r = sim.run(1_000_000).expect("clean traced run");
        assert!(r.halted);
        let traced_fp = fingerprint(sim.stats());
        assert_eq!(
            traced_fp,
            fingerprint(&untraced),
            "tracing perturbed the simulation under {:?}",
            cfg.regfile
        );
        assert_eq!(untraced.cycles, pinned_cycles, "pinned cycle count drifted");

        let recorder = sim.into_tracer();
        let report = recorder.stall_report();
        assert_eq!(recorder.cycles(), untraced.cycles, "one Cycle event per cycle");
        assert_eq!(
            report.bucket_sum(),
            untraced.cycles,
            "stall buckets must sum to total cycles:\n{report}"
        );
        assert_eq!(recorder.counters().retired, untraced.committed);
        assert_eq!(recorder.counters().fetched, untraced.fetched);
        assert_eq!(recorder.counters().squashed, untraced.squashed);
    }
}

/// The bpred-hostile branch storm: near-random branch outcomes keep the
/// front end squashing, so the recovery path (`squash_younger_than`) runs
/// constantly. Pinned so the suffix-bounded recovery rewrite is provably
/// behaviour-preserving, with sanity bounds proving the kernel really is
/// hostile (a healthy mispredict rate, not a predictable loop).
fn branch_storm_run() -> SimStats {
    let wl = carf_workloads::extended_suite()
        .into_iter()
        .find(|w| w.name == "branch_storm")
        .expect("branch_storm registered");
    let program = wl.build(8); // 2000 iterations
    let mut cfg = SimConfig::paper_baseline();
    cfg.cosim = true;
    let mut sim = AnySimulator::new(cfg, &program);
    let r = sim.run(1_000_000).expect("clean run");
    assert!(r.halted, "branch storm must run to completion");
    sim.stats().clone()
}

#[test]
fn squash_storm_stats_are_pinned() {
    let stats = branch_storm_run();
    assert!(
        stats.mispredicts * 4 > stats.branches,
        "branch_storm must be bpred-hostile: {} mispredicts / {} branches",
        stats.mispredicts,
        stats.branches
    );
    assert!(
        stats.squashed * 4 > stats.committed,
        "mispredict recovery must dominate: {} squashed / {} committed",
        stats.squashed,
        stats.committed
    );
    let got = fingerprint(&stats);
    let expected: &[(&str, u64)] = &[
        ("cycles", 32983),
        ("committed", 28014),
        ("loads", 0),
        ("stores", 1),
        ("branches", 6000),
        ("fetched", 107626),
        ("squashed", 55537),
        ("mispredicts", 2944),
        ("bypassed_operands", 35563),
        ("rf_operands", 17550),
        ("zero_operands", 9834),
        ("load_replays", 0),
        ("int_rf_reads", 17550),
        ("int_rf_writes", 30442),
        ("fp_rf_reads", 0),
        ("fp_rf_writes", 0),
        ("stl_forwards", 0),
    ];
    for ((name, want), (_, have)) in expected.iter().zip(&got) {
        assert_eq!(
            have, want,
            "{name} drifted on the squash storm (got {have}, pinned {want});\n\
             full fingerprint: {got:?}"
        );
    }
}

#[test]
#[ignore = "prints the current fingerprints for re-pinning"]
fn print_fingerprints() {
    let mut base = SimConfig::paper_baseline();
    base.cosim = true;
    println!("baseline: {:?}", fingerprint(&pinned_run(&base)));
    let mut carf = SimConfig::paper_carf(carf_core::CarfParams::paper_default());
    carf.cosim = true;
    carf.oracle_period = Some(16);
    println!("carf: {:?}", fingerprint(&pinned_run(&carf)));
    println!("branch_storm: {:?}", fingerprint(&branch_storm_run()));
}
