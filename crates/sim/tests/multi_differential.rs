//! Differential fuzzing of the multi-context layer: arbitrary
//! terminating programs co-simulated under shared-resource policies must
//! produce **bit-identical architectural state** to (a) the same
//! programs run on N independent simulators and (b) the functional
//! executor. Sharing may change *when* things happen (that is its job),
//! never *what* the program computes.
//!
//! The proptest stub derives its RNG seed deterministically from the
//! test name, so every run fuzzes the same program set — the CI smoke
//! (`scripts/check.sh`) relies on that to keep the gate reproducible.

use carf_core::{CarfParams, Policies, PortReducedParams};
use carf_isa::{Machine, Program};
use carf_sim::{
    AnySimulator, FetchArbitration, MultiSim, RegFileKind, SharingPolicy, SimConfig,
};
use carf_workloads::{random_program, RandomProgramParams};
use proptest::prelude::*;

/// All four register-file backends, in fixed order: every 4-context
/// co-simulation below runs one of each, so each fuzz case covers the
/// whole zoo (heterogeneous contexts on one clock).
fn backend_zoo() -> Vec<SimConfig> {
    let mut configs = Vec::new();
    for kind in 0u8..4 {
        let mut cfg = SimConfig::test_small();
        cfg.cosim = true;
        match kind {
            0 => {}
            1 => {
                cfg.regfile = RegFileKind::ContentAware(
                    CarfParams { simple_entries: 64, ..CarfParams::paper_default() },
                    Policies::default(),
                );
            }
            2 => {
                cfg.regfile = RegFileKind::Compressed(CarfParams {
                    simple_entries: 64,
                    ..CarfParams::paper_default()
                });
            }
            _ => {
                cfg.regfile = RegFileKind::PortReduced(PortReducedParams {
                    read_ports: 2,
                    capture_entries: 4,
                });
            }
        }
        configs.push(cfg);
    }
    configs
}

fn program_for(seed: u64, body_len: usize, iterations: u64) -> Program {
    random_program(&RandomProgramParams { seed, body_len, iterations, ..Default::default() })
}

/// The tightest coupling every backend accepts: a shared 44-entry Long
/// window (under the 48-entry private files, so it actually binds),
/// one shared L2, and 2-slot ICOUNT fetch.
fn shared_everything() -> SharingPolicy {
    SharingPolicy {
        shared_long_capacity: Some(44),
        shared_l2: true,
        fetch: FetchArbitration::ICount { slots: 2 },
    }
}

fn policy_for(kind: u8) -> SharingPolicy {
    match kind % 5 {
        0 => SharingPolicy::isolated(),
        1 => SharingPolicy::shared_long(44),
        2 => SharingPolicy::shared_l2(),
        3 => SharingPolicy {
            fetch: FetchArbitration::RoundRobin { slots: 1 },
            ..SharingPolicy::isolated()
        },
        _ => shared_everything(),
    }
}

/// Runs `programs[i]` on `configs[i]` as one co-simulation to
/// completion; returns per-context (arch fingerprint, retired).
fn run_shared(
    configs: &[SimConfig],
    programs: &[Program],
    policy: SharingPolicy,
) -> Vec<(u64, u64)> {
    let contexts: Vec<(SimConfig, &Program)> =
        configs.iter().cloned().zip(programs.iter()).collect();
    let mut multi = MultiSim::new(contexts, policy).expect("valid co-simulation");
    // Run to halt (no instruction quota): under a quota, arbitration
    // changes which cycle crosses it and therefore the overshoot — only
    // completed programs are architecturally comparable.
    multi.run(5_000_000, u64::MAX).expect("co-simulation completes");
    assert!(multi.all_done(), "every random program terminates");
    (0..programs.len())
        .map(|i| (multi.ctx(i).arch_checkpoint().fingerprint(), multi.ctx(i).retired()))
        .collect()
}

/// The same programs on N fully independent simulators.
fn run_isolated(configs: &[SimConfig], programs: &[Program]) -> Vec<(u64, u64)> {
    configs
        .iter()
        .zip(programs)
        .map(|(cfg, program)| {
            let mut sim = AnySimulator::new(cfg.clone(), program);
            let result = sim.run(u64::MAX).expect("isolated run completes");
            assert!(result.halted);
            (sim.arch_checkpoint().fingerprint(), sim.retired())
        })
        .collect()
}

/// The same programs on the functional golden model.
fn run_functional(programs: &[Program]) -> Vec<u64> {
    programs
        .iter()
        .map(|program| {
            let mut m = Machine::load(program);
            m.run(program, 50_000_000).expect("functional run completes");
            assert!(m.is_halted());
            m.checkpoint(program).fingerprint()
        })
        .collect()
}

proptest! {
    // 16 cases x 4 contexts = 64 random programs through the full
    // backend zoo under maximum sharing, each checked three ways.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// shared == isolated == functional, for every context of every case.
    #[test]
    fn shared_isolated_and_functional_states_agree(
        seed in any::<u64>(),
        body_len in 20usize..50,
        iterations in 5u64..25,
    ) {
        let configs = backend_zoo();
        let programs: Vec<Program> = (0..configs.len() as u64)
            .map(|i| program_for(seed.wrapping_add(i), body_len, iterations))
            .collect();

        let shared = run_shared(&configs, &programs, shared_everything());
        let isolated = run_isolated(&configs, &programs);
        let functional = run_functional(&programs);

        for (i, ((s, iso), f)) in shared.iter().zip(&isolated).zip(&functional).enumerate() {
            prop_assert_eq!(s.0, iso.0, "seed {} ctx {}: shared vs isolated state", seed, i);
            prop_assert_eq!(s.1, iso.1, "seed {} ctx {}: shared vs isolated retired", seed, i);
            prop_assert_eq!(s.0, *f, "seed {} ctx {}: shared vs functional state", seed, i);
        }
    }

    /// Every sharing-policy shape (isolated, shared-Long, shared-L2,
    /// starved round-robin, shared-everything) leaves architectural
    /// state untouched.
    #[test]
    fn no_policy_perturbs_architectural_state(
        seed in any::<u64>(),
        policy_kind in 0u8..5,
        body_len in 20usize..40,
    ) {
        let configs = backend_zoo();
        let programs: Vec<Program> = (0..configs.len() as u64)
            .map(|i| program_for(seed.wrapping_add(i), body_len, 8))
            .collect();
        let shared = run_shared(&configs, &programs, policy_for(policy_kind));
        let isolated = run_isolated(&configs, &programs);
        for (i, (s, iso)) in shared.iter().zip(&isolated).enumerate() {
            prop_assert_eq!(
                s, iso,
                "seed {} policy {} ctx {}", seed, policy_for(policy_kind).canonical(), i
            );
        }
    }

    /// Co-simulation is worker-count independent: the same co-simulation
    /// on the calling thread (jobs=1) and four times concurrently
    /// (jobs=4) must be bit-identical — MultiSim holds no hidden global
    /// state (the shared-L2 handle is per-instance).
    #[test]
    fn co_simulation_is_bit_identical_across_job_counts(
        seed in any::<u64>(),
        body_len in 20usize..40,
    ) {
        let configs = backend_zoo();
        let programs: Vec<Program> = (0..configs.len() as u64)
            .map(|i| program_for(seed.wrapping_add(i), body_len, 8))
            .collect();
        let solo = run_shared(&configs, &programs, shared_everything());
        let concurrent: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| run_shared(&configs, &programs, shared_everything())))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).collect()
        });
        for run in concurrent {
            prop_assert_eq!(&run, &solo, "seed {}", seed);
        }
    }
}
