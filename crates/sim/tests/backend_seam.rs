//! The register-file backend seam: [`AnySimulator`] must construct the
//! backend named by the configuration, the defaulted [`IntRegFile`] hooks
//! must behave per contract on both backends (no-ops on the baseline,
//! real introspection on the content-aware file), and the enum facade
//! must agree bit-for-bit with direct monomorphized construction.

use carf_core::{
    BaselineRegFile, CarfParams, CompressedRegFile, ContentAwareRegFile, PortReducedParams,
    PortReducedRegFile, ValueClass,
};
// `SharedLongSmt` is deprecated (a thin wrapper over `MultiSim`); this
// file keeps one test against it so the compatibility shim stays covered.
#[allow(deprecated)]
use carf_sim::SharedLongSmt;
use carf_sim::{AnySimulator, SimConfig, SimStats, Simulator};
use carf_workloads::{random_program, RandomProgramParams};
use carf_isa::Program;

fn pinned_program() -> Program {
    random_program(&RandomProgramParams {
        seed: 0x5EAD,
        body_len: 60,
        iterations: 300,
        include_fp: true,
        include_mem: true,
        include_branches: true,
    })
}

fn run_any(config: SimConfig, program: &Program) -> (AnySimulator, SimStats) {
    let mut sim = AnySimulator::new(config, program);
    let r = sim.run(1_000_000).expect("clean run");
    assert!(r.halted);
    let stats = sim.stats().clone();
    (sim, stats)
}

#[test]
fn any_simulator_selects_the_configured_backend() {
    let program = pinned_program();
    let (base, _) = run_any(SimConfig::paper_baseline(), &program);
    let (carf, _) = run_any(SimConfig::paper_carf(CarfParams::paper_default()), &program);
    let (comp, _) = run_any(SimConfig::paper_compressed(CarfParams::paper_default()), &program);
    let (ports, _) = run_any(SimConfig::paper_port_reduced(PortReducedParams::default()), &program);
    assert!(matches!(base, AnySimulator::Baseline(_)));
    assert!(matches!(carf, AnySimulator::ContentAware(_)));
    assert!(matches!(comp, AnySimulator::Compressed(_)));
    assert!(matches!(ports, AnySimulator::PortReduced(_)));
}

#[test]
fn enum_facade_matches_direct_monomorphized_construction() {
    let program = pinned_program();
    let (_, via_enum) = run_any(SimConfig::paper_baseline(), &program);
    let mut direct = Simulator::<BaselineRegFile>::new(SimConfig::paper_baseline(), &program);
    direct.run(1_000_000).expect("clean run");
    assert_eq!(format!("{via_enum:?}"), format!("{:?}", direct.stats()));

    let carf_cfg = SimConfig::paper_carf(CarfParams::paper_default());
    let (_, via_enum) = run_any(carf_cfg.clone(), &program);
    let mut direct = Simulator::<ContentAwareRegFile>::new(carf_cfg, &program);
    direct.run(1_000_000).expect("clean run");
    assert_eq!(format!("{via_enum:?}"), format!("{:?}", direct.stats()));

    let comp_cfg = SimConfig::paper_compressed(CarfParams::paper_default());
    let (_, via_enum) = run_any(comp_cfg.clone(), &program);
    let mut direct = Simulator::<CompressedRegFile>::new(comp_cfg, &program);
    direct.run(1_000_000).expect("clean run");
    assert_eq!(format!("{via_enum:?}"), format!("{:?}", direct.stats()));

    let port_cfg = SimConfig::paper_port_reduced(PortReducedParams::default());
    let (_, via_enum) = run_any(port_cfg.clone(), &program);
    let mut direct = Simulator::<PortReducedRegFile>::new(port_cfg, &program);
    direct.run(1_000_000).expect("clean run");
    assert_eq!(format!("{via_enum:?}"), format!("{:?}", direct.stats()));
}

/// The compressed organization must expose its structure through the same
/// capability hooks the content-aware file uses, and the port-reduced
/// organization must surface its port budget, capture reuse, and the
/// arbitration denials it causes.
#[test]
fn backend_zoo_hooks_and_counters_behave() {
    let program = pinned_program();

    let (comp, comp_stats) =
        run_any(SimConfig::paper_compressed(CarfParams::paper_default()), &program);
    let rf = comp.int_regfile();
    assert!(rf.carf_params().is_some(), "compressed file reuses the CARF geometry");
    assert!(rf.carf_policies().is_none(), "but has no CARF policy knobs");
    assert!(rf.read_port_limit().is_none(), "no private port budget");
    let occ = rf.occupancy_report().expect("occupancy report");
    assert!(occ.long_peak_live > 0, "pinned workload must exercise the overflow bank");
    assert_eq!(rf.classify_value(5, false), Some(ValueClass::Simple));
    assert!(comp_stats.int_rf.total_writes > 0);

    // Two read ports on a 4-wide machine: arbitration must actually deny,
    // and the capture buffer must serve some reads port-free.
    let squeezed = SimConfig::paper_port_reduced(PortReducedParams {
        read_ports: 2,
        capture_entries: 8,
    });
    let (ports, port_stats) = run_any(squeezed, &program);
    let rf = ports.int_regfile();
    assert_eq!(rf.read_port_limit(), Some(2));
    assert!(rf.carf_params().is_none());
    assert!(rf.classify_value(5, false).is_none(), "untyped storage never classifies");
    assert!(
        port_stats.int_rf.capture_reuse_hits > 0,
        "the capture buffer must serve some operands port-free"
    );

    // A budget equal to the machine default must deny exactly as often as
    // the baseline's own metering; halving it must deny more and cost
    // cycles.
    let roomy = SimConfig::paper_port_reduced(PortReducedParams {
        read_ports: 8,
        capture_entries: 0,
    });
    let (_, roomy_stats) = run_any(roomy, &program);
    let (_, base_stats) = run_any(SimConfig::paper_baseline(), &program);
    assert_eq!(roomy_stats.rf_read_port_denials, base_stats.rf_read_port_denials);
    assert_eq!(roomy_stats.int_rf.capture_reuse_hits, 0, "zero-depth buffer never hits");
    assert!(
        port_stats.rf_read_port_denials > roomy_stats.rf_read_port_denials,
        "a 2-port budget must deny more than the 8-port machine \
         ({} <= {})",
        port_stats.rf_read_port_denials,
        roomy_stats.rf_read_port_denials
    );
    assert!(port_stats.cycles > roomy_stats.cycles, "port starvation must cost cycles");
}

#[test]
fn baseline_defaulted_hooks_are_noops() {
    let program = pinned_program();
    let (mut sim, stats) = run_any(SimConfig::paper_baseline(), &program);
    let rf = sim.int_regfile();
    assert!(rf.carf_params().is_none());
    assert!(rf.carf_policies().is_none());
    assert_eq!(rf.long_live_count(), 0);
    assert_eq!(rf.mean_short_occupancy(), 0.0);
    assert!(rf.occupancy_report().is_none());
    assert!(rf.classify_value(3, false).is_none());
    assert!(rf.classify_value(u64::MAX, true).is_none());
    // The monolithic file has no Long sub-file: capacity limiting must be
    // inert, leaving a rerun under a tiny "limit" bit-identical.
    sim.int_regfile_mut().set_long_capacity_limit(1);
    let (_, relimited) = run_any(SimConfig::paper_baseline(), &program);
    assert_eq!(format!("{stats:?}"), format!("{relimited:?}"));
}

#[test]
fn content_aware_hooks_expose_the_real_organization() {
    let program = pinned_program();
    let params = CarfParams::paper_default();
    let (sim, stats) = run_any(SimConfig::paper_carf(params), &program);
    let rf = sim.int_regfile();

    let got = rf.carf_params().expect("carf params");
    assert_eq!(got.long_entries, params.long_entries);
    assert_eq!(got.short_entries, params.short_entries);
    let policies = rf.carf_policies().expect("carf policies");
    assert_eq!(policies.long_stall_threshold, 8);

    let occ = rf.occupancy_report().expect("occupancy report");
    assert!(occ.long_peak_live > 0, "pinned workload must exercise the Long file");
    assert!(occ.long_mean_live > 0.0);
    assert_eq!(rf.mean_short_occupancy(), occ.short_mean_occupancy);
    // The histogram is the distribution behind the mean: it must cover
    // the sampled cycles up to the recorded peak.
    assert!(occ.long_occupancy_hist.len() > occ.long_peak_live);

    // WR1-style outcome classification: in-range values are Simple, wide
    // ones are not.
    assert_eq!(rf.classify_value(5, false), Some(ValueClass::Simple));
    let wide = rf.classify_value(0xDEAD_BEEF_1234_5678, false).expect("classified");
    assert_ne!(wide, ValueClass::Simple);

    assert!(stats.int_rf.total_writes > 0);
}

#[test]
#[should_panic]
fn carf_backend_rejects_a_baseline_config() {
    let program = pinned_program();
    let _ = Simulator::<ContentAwareRegFile>::new(SimConfig::paper_baseline(), &program);
}

#[test]
#[should_panic]
fn baseline_backend_rejects_a_carf_config() {
    let program = pinned_program();
    let _ = Simulator::<BaselineRegFile>::new(
        SimConfig::paper_carf(CarfParams::paper_default()),
        &program,
    );
}

/// Regression for the removal of concrete-type access: the shared-Long SMT experiment only
/// works if `set_long_capacity_limit` / `long_live_count` reach the
/// concrete file through the trait hooks. The co-simulation must be
/// deterministic, and an aggressive shared capacity must actually bite
/// (more Long-guard stalls than private files).
#[test]
#[allow(deprecated)]
fn smt_shared_long_capacity_still_bites_through_the_hooks() {
    let mk = |seed: u64| {
        random_program(&RandomProgramParams {
            seed,
            body_len: 60,
            iterations: 200,
            include_fp: false,
            include_mem: true,
            include_branches: true,
        })
    };
    let (a, b) = (mk(0xA11CE), mk(0xB0B));
    let cfg = SimConfig::paper_carf(CarfParams::paper_default());

    let run = |capacity: usize| {
        let mut smt =
            SharedLongSmt::new(vec![(cfg.clone(), &a), (cfg.clone(), &b)], capacity).unwrap();
        smt.run(2_000_000, 100_000).expect("clean smt run")
    };

    let full = run(48);
    let full_again = run(48);
    for (x, y) in full.iter().zip(&full_again) {
        assert_eq!(x.committed, y.committed, "SMT run must be deterministic");
        assert_eq!(x.cycles, y.cycles);
        assert_eq!(x.long_guard_stall_cycles, y.long_guard_stall_cycles);
    }

    let squeezed = run(40);
    let stalls = |r: &[carf_sim::SmtThreadResult]| -> u64 {
        r.iter().map(|t| t.long_guard_stall_cycles).sum()
    };
    assert!(
        stalls(&squeezed) >= stalls(&full),
        "a smaller shared Long file must not reduce guard stalls \
         (squeezed {} < full {})",
        stalls(&squeezed),
        stalls(&full)
    );
    for t in &squeezed {
        assert!(t.committed > 0, "both threads must make progress under pressure");
    }
}
