//! The cycle-level out-of-order pipeline.
//!
//! An 8-wide superscalar with fetch (gshare + BTB + RAS), decode, rename
//! (RAT + free lists), dispatch into ROB / issue queues / LSQ, oldest-first
//! wakeup-select issue, one or two register-read stages (per the register
//! file organization), execute on a functional-unit pool, a memory stage
//! with store-to-load forwarding and a configurable dependence policy
//! (optimistic with violation squash by default), a one- or two-stage
//! writeback with port arbitration (and the content-aware file's
//! Long-allocation stall), and in-order commit with golden-model
//! co-simulation.
//!
//! Branch recovery rebuilds the rename map by walking the ROB from the
//! committed map (equivalent to checkpoint restoration); the number of
//! simultaneously unresolved branches is still bounded by
//! [`SimConfig::checkpoints`], modeling the hardware checkpoint budget.

use std::collections::{BTreeMap, VecDeque};

use carf_core::{BaselineRegFile, ContentAwareRegFile, IntRegFile};
use carf_isa::semantics::{
    eval_branch, eval_fp_alu, eval_fp_to_int, eval_int_alu, eval_int_to_fp, extend_load,
    load_width, store_bytes, store_width, LoadWidth,
};
use carf_isa::{Inst, InstKind, Machine, Opcode, Program, StepOutcome, INST_BYTES};
use carf_mem::{MemoryHierarchy, PortMeter, SparseMemory};

use crate::bpred::{BranchPredictor, CondPrediction};
use crate::config::{RegFileKind, SimConfig};
use crate::fu::FuPool;
use crate::lsq::{LoadDecision, LoadStoreQueue, MemDepPolicy};
use crate::rename::{Preg, RenameTables};
use crate::stats::SimStats;
use crate::trace::{DispatchStallCause, NopTracer, SquashReason, StallCause, TraceEvent, Tracer};

/// Sentinel for "not scheduled yet".
const NEVER: u64 = u64::MAX;

/// How many consecutive failed Long allocations at writeback trigger the
/// pseudo-deadlock recovery flush.
const LONG_RECOVERY_PATIENCE: u32 = 16;

/// A bucketed timing wheel: O(1) event scheduling and per-cycle drain.
///
/// Events within the ring horizon land in a power-of-two slot array; the
/// rare event beyond it (only possible with latencies past the horizon)
/// spills to a `BTreeMap`. As long as every event for a given cycle lands
/// in the ring — true for all supported memory/FU latencies — a cycle's
/// events drain in exact insertion order, matching the event-map scheduler
/// this replaces.
#[derive(Debug)]
struct TimingWheel {
    slots: Vec<Vec<u64>>,
    mask: u64,
    overflow: BTreeMap<u64, Vec<u64>>,
}

impl TimingWheel {
    fn new(len: usize) -> Self {
        debug_assert!(len.is_power_of_two());
        Self {
            slots: (0..len).map(|_| Vec::new()).collect(),
            mask: len as u64 - 1,
            overflow: BTreeMap::new(),
        }
    }

    /// Schedules `seq` for cycle `when` (`when >= now`; a slot is reused
    /// only after its cycle has drained, so the ring never wraps onto a
    /// live slot within the horizon).
    fn schedule(&mut self, now: u64, when: u64, seq: u64) {
        debug_assert!(when >= now, "scheduling into the past: {when} < {now}");
        if when - now < self.slots.len() as u64 {
            self.slots[(when & self.mask) as usize].push(seq);
        } else {
            self.overflow.entry(when).or_default().push(seq);
        }
    }

    /// Appends every event scheduled for `now` to `out` (ring slot first,
    /// then any overflow spill) and clears them. Slot capacity is kept, so
    /// the steady-state hot loop is allocation-free.
    fn drain_into(&mut self, now: u64, out: &mut Vec<u64>) {
        let slot = &mut self.slots[(now & self.mask) as usize];
        out.append(slot);
        if !self.overflow.is_empty() {
            if let Some(mut spill) = self.overflow.remove(&now) {
                out.append(&mut spill);
            }
        }
    }
}

/// Ring horizon for completion/wakeup events: comfortably past the worst
/// memory round trip (L1 + L2 + DRAM ≈ 105 cycles) and the slowest FU.
const WHEEL_SLOTS: usize = 512;

/// Ring horizon for operand-capture events (at most `read_stages` ahead).
const CAPTURE_SLOTS: usize = 8;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A committed instruction disagreed with the functional golden model.
    CosimMismatch {
        /// Sequence number of the offending instruction.
        seq: u64,
        /// Its PC.
        pc: u64,
        /// What differed.
        detail: String,
    },
    /// No instruction committed for the watchdog period — a simulator
    /// deadlock.
    Watchdog {
        /// Cycle at which the watchdog fired.
        cycle: u64,
    },
    /// The fetch unit left the code segment with nothing in flight to
    /// redirect it (a runaway program).
    RunawayFetch {
        /// The wild PC.
        pc: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CosimMismatch { seq, pc, detail } => {
                write!(f, "co-simulation mismatch at seq {seq}, pc {pc:#x}: {detail}")
            }
            SimError::Watchdog { cycle } => write!(f, "no commit progress by cycle {cycle}"),
            SimError::RunawayFetch { pc } => write!(f, "runaway fetch at pc {pc:#x}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Instructions committed.
    pub committed: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// `true` when the program executed `halt` (vs. hitting the budget).
    pub halted: bool,
    /// Committed instructions per cycle.
    pub ipc: f64,
}

/// Stage-by-stage timing of one committed instruction (see
/// [`Simulator::timeline`]).
#[derive(Debug, Clone)]
pub struct InstTimeline {
    /// Program-order sequence number.
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// Disassembly.
    pub text: String,
    /// Cycle the instruction entered the ROB.
    pub dispatched: u64,
    /// Cycle it was selected for execution (0 for no-exec ops).
    pub issued: u64,
    /// Cycle its result was produced (0 for no-result ops).
    pub executed: u64,
    /// Cycle it retired.
    pub committed: u64,
}

impl std::fmt::Display for InstTimeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>6} {:#010x} D{:<6} I{:<6} E{:<6} C{:<6} {}",
            self.seq, self.pc, self.dispatched, self.issued, self.executed, self.committed,
            self.text
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    None,
    Zero,
    Int(Preg),
    Fp(Preg),
}

#[derive(Debug, Clone, Copy)]
struct Dest {
    is_int: bool,
    arch: u8,
    new: Preg,
    old: Preg,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// In an issue queue (or, for nop/halt, nothing to do — see
    /// `Completed`).
    Waiting,
    /// Selected; operand capture scheduled.
    Issued,
    /// Operands captured; execution completion scheduled.
    Captured,
    /// A load waiting for disambiguation or a cache port.
    WaitDisambig,
    /// A load with its access in flight.
    WaitData,
    /// Result computed, waiting in the writeback queue.
    WbPending,
    /// Writeback granted; committable once `wb_done_at` passes.
    WbGranted,
    /// Ready to commit.
    Completed,
}

#[derive(Debug, Clone)]
struct Slot {
    seq: u64,
    pc: u64,
    inst: Inst,
    kind: InstKind,
    pred_next: u64,
    dest: Option<Dest>,
    srcs: [Src; 2],
    src_from_rf: [bool; 2],
    src_vals: [u64; 2],
    state: SlotState,
    wb_done_at: u64,
    actual_next: u64,
    mem_addr: Option<u64>,
    load_data: u64,
    result: u64,
    branch_unresolved: bool,
    wb_fail_cycles: u32,
    cond_pred: Option<CondPrediction>,
    dispatched_at: u64,
    issued_at: u64,
    executed_at: u64,
}

impl Slot {
    fn is_mem(&self) -> bool {
        matches!(self.kind, InstKind::Load | InstKind::Store)
    }
}

#[derive(Debug, Clone, Copy)]
struct PregState {
    value: u64,
    cap_avail_at: u64,
    in_rf_at: u64,
    valid: bool,
}

impl PregState {
    fn reset() -> Self {
        Self { value: 0, cap_avail_at: NEVER, in_rf_at: NEVER, valid: false }
    }

    fn architectural_zero() -> Self {
        Self { value: 0, cap_avail_at: 0, in_rf_at: 0, valid: true }
    }
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    inst: Inst,
    pc: u64,
    pred_next: u64,
    ready_at: u64,
    cond_pred: Option<CondPrediction>,
}

/// The machine.
///
/// Generic over a [`Tracer`]; the default [`NopTracer`] compiles every
/// tracing hook away (see the `trace` module), so plain
/// `Simulator::new` is exactly the untraced machine.
///
/// # Example
///
/// ```
/// use carf_isa::{Asm, x};
/// use carf_sim::{SimConfig, Simulator};
///
/// let mut asm = Asm::new();
/// asm.li(x(1), 10);
/// asm.label("loop");
/// asm.addi(x(1), x(1), -1);
/// asm.bne(x(1), x(0), "loop");
/// asm.halt();
/// let program = asm.finish()?;
///
/// let mut sim = Simulator::new(SimConfig::test_small(), &program);
/// let result = sim.run(1_000_000)?;
/// assert!(result.halted);
/// assert!(result.ipc > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulator<T: Tracer = NopTracer> {
    config: SimConfig,
    program: Program,
    now: u64,
    seq_counter: u64,
    halted: bool,
    // Front end.
    fetch_pc: u64,
    fetch_resume_at: u64,
    fetch_wild: bool,
    fetch_q: VecDeque<Fetched>,
    bpred: BranchPredictor,
    // Rename and in-flight structures.
    rename: RenameTables,
    unresolved_branches: usize,
    rob: VecDeque<Slot>,
    int_iq_len: usize,
    fp_iq_len: usize,
    lsq: LoadStoreQueue,
    // Register files and the bypass scoreboard.
    int_rf: Box<dyn IntRegFile>,
    fp_rf: BaselineRegFile,
    int_pregs: Vec<PregState>,
    fp_pregs: Vec<PregState>,
    // Execution machinery.
    int_fus: FuPool,
    fp_fus: FuPool,
    int_read_ports: PortMeter,
    int_write_ports: PortMeter,
    fp_read_ports: PortMeter,
    fp_write_ports: PortMeter,
    // Event-driven scheduling: timing wheels make per-cycle event cost
    // proportional to the events that fire, and per-preg consumer lists
    // make wakeup O(woken) instead of a full issue-queue rescan.
    capture_wheel: TimingWheel,
    completion_wheel: TimingWheel,
    wake_wheel: TimingWheel,
    int_consumers: Vec<Vec<u64>>,
    fp_consumers: Vec<Vec<u64>>,
    pending_loads: Vec<u64>,
    wb_pending: Vec<u64>,
    // Reusable scratch buffers: the per-cycle stages below swap through
    // these instead of allocating, so the steady-state hot loop is
    // allocation-free.
    seq_scratch: Vec<u64>,
    issue_cand: Vec<u64>,
    event_scratch: Vec<u64>,
    oracle_scratch: Vec<u64>,
    // Memory.
    hier: MemoryHierarchy,
    mem: SparseMemory,
    // Commit.
    commit_int_rat: [Preg; 32],
    commit_fp_rat: [Preg; 32],
    rob_interval_count: u64,
    last_commit_cycle: u64,
    golden: Option<Machine>,
    // Derived configuration.
    read_stages: u64,
    wb_stages: u64,
    full_bypass: bool,
    timeline: Vec<InstTimeline>,
    timeline_limit: usize,
    stats: SimStats,
    tracer: T,
}

impl Simulator {
    /// Builds an untraced machine around `program` (the program's data
    /// image is loaded into simulated memory).
    pub fn new(config: SimConfig, program: &Program) -> Self {
        Self::with_tracer(config, program, NopTracer)
    }
}

impl<T: Tracer> Simulator<T> {
    /// Builds a machine that reports pipeline events to `tracer`.
    pub fn with_tracer(config: SimConfig, program: &Program, tracer: T) -> Self {
        let int_rf: Box<dyn IntRegFile> = match &config.regfile {
            RegFileKind::Baseline => Box::new(BaselineRegFile::new(config.int_pregs)),
            RegFileKind::ContentAware(params, policies) => {
                let mut p = *params;
                p.simple_entries = config.int_pregs;
                Box::new(ContentAwareRegFile::with_policies(p, *policies))
            }
        };
        let read_stages = u64::from(int_rf.read_stages());
        let wb_stages = u64::from(int_rf.writeback_stages());
        let full_bypass = int_rf.writeback_stages() == 1 || int_rf.extra_bypass_level();

        let mut rename = RenameTables::new(config.int_pregs, config.fp_pregs);
        rename.set_checkpoint_limit(config.checkpoints);

        let mut mem = SparseMemory::new();
        program.load_data(&mut mem);

        let mut sim = Self {
            now: 0,
            seq_counter: 0,
            halted: false,
            fetch_pc: program.entry,
            fetch_resume_at: 0,
            fetch_wild: false,
            fetch_q: VecDeque::new(),
            bpred: BranchPredictor::new(&config.bpred),
            rename,
            unresolved_branches: 0,
            rob: VecDeque::new(),
            int_iq_len: 0,
            fp_iq_len: 0,
            lsq: LoadStoreQueue::new(config.lsq_size),
            int_rf,
            fp_rf: BaselineRegFile::new(config.fp_pregs),
            int_pregs: vec![PregState::reset(); config.int_pregs],
            fp_pregs: vec![PregState::reset(); config.fp_pregs],
            int_fus: FuPool::new(config.int_units),
            fp_fus: FuPool::new(config.fp_units),
            int_read_ports: PortMeter::new(config.rf_read_ports),
            int_write_ports: PortMeter::new(config.rf_write_ports),
            fp_read_ports: PortMeter::new(config.rf_read_ports),
            fp_write_ports: PortMeter::new(config.rf_write_ports),
            capture_wheel: TimingWheel::new(CAPTURE_SLOTS),
            completion_wheel: TimingWheel::new(WHEEL_SLOTS),
            wake_wheel: TimingWheel::new(WHEEL_SLOTS),
            int_consumers: vec![Vec::new(); config.int_pregs],
            fp_consumers: vec![Vec::new(); config.fp_pregs],
            pending_loads: Vec::new(),
            wb_pending: Vec::new(),
            seq_scratch: Vec::new(),
            issue_cand: Vec::new(),
            event_scratch: Vec::new(),
            oracle_scratch: Vec::new(),
            hier: MemoryHierarchy::new(config.hierarchy),
            mem,
            commit_int_rat: std::array::from_fn(|i| i as Preg),
            commit_fp_rat: std::array::from_fn(|i| i as Preg),
            rob_interval_count: 0,
            last_commit_cycle: 0,
            golden: config.cosim.then(|| Machine::load(program)),
            read_stages,
            wb_stages,
            full_bypass,
            timeline: Vec::new(),
            timeline_limit: 0,
            stats: SimStats::default(),
            tracer,
            program: program.clone(),
            config,
        };
        // The 32 initial architectural registers hold zero and are readable
        // from the register files.
        for p in 0..32usize {
            sim.int_rf.on_alloc(p);
            sim.int_rf
                .try_write(p, 0, false)
                .expect("initializing an architectural register cannot fail");
            sim.int_pregs[p] = PregState::architectural_zero();
            sim.fp_rf.on_alloc(p);
            sim.fp_rf.try_write(p, 0, false).expect("fp init write cannot fail");
            sim.fp_pregs[p] = PregState::architectural_zero();
        }
        // Initialization writes are bookkeeping, not workload accesses.
        sim.int_rf.stats_mut().reset();
        sim.fp_rf.stats_mut().reset();
        sim
    }

    /// The accumulated statistics (finalized by [`Simulator::run`]).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The installed tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Mutable access to the installed tracer.
    pub fn tracer_mut(&mut self) -> &mut T {
        &mut self.tracer
    }

    /// Consumes the machine and returns the tracer (to read out reports
    /// after a run).
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Records the pipeline timeline of the first `limit` committed
    /// instructions (dispatch/issue/execute/commit cycles). Call before
    /// [`Simulator::run`]; retrieve with [`Simulator::timeline`].
    pub fn record_timeline(&mut self, limit: usize) {
        self.timeline_limit = limit;
        self.timeline.reserve(limit);
    }

    /// The recorded per-instruction timelines, in commit order.
    pub fn timeline(&self) -> &[InstTimeline] {
        &self.timeline
    }

    /// The integer register file (for inspection in tests and experiments).
    pub fn int_regfile(&self) -> &dyn IntRegFile {
        self.int_rf.as_ref()
    }

    /// Mutable access to the integer register file (experiment harnesses,
    /// e.g. the SMT shared-Long-file study).
    pub fn int_regfile_mut(&mut self) -> &mut dyn IntRegFile {
        self.int_rf.as_mut()
    }

    /// `true` once `halt` has committed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Advances the machine one cycle (no-op once halted). External
    /// harnesses use this to interleave several machines on one clock;
    /// [`Simulator::run`] is the usual driver.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on co-simulation divergence, watchdog
    /// expiry, or runaway fetch.
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        self.cycle()?;
        if self.now.saturating_sub(self.last_commit_cycle) > self.config.watchdog_cycles {
            return Err(SimError::Watchdog { cycle: self.now });
        }
        // Keep aggregate statistics current for harnesses that read them
        // between steps.
        self.finalize_stats();
        Ok(())
    }

    /// Runs until `halt` commits or `max_insts` instructions commit.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on co-simulation divergence, watchdog expiry,
    /// or runaway fetch.
    pub fn run(&mut self, max_insts: u64) -> Result<SimResult, SimError> {
        while !self.halted && self.stats.committed < max_insts {
            self.cycle()?;
            if self.now.saturating_sub(self.last_commit_cycle) > self.config.watchdog_cycles {
                return Err(SimError::Watchdog { cycle: self.now });
            }
        }
        self.finalize_stats();
        Ok(SimResult {
            committed: self.stats.committed,
            cycles: self.stats.cycles,
            halted: self.halted,
            ipc: self.stats.ipc(),
        })
    }

    fn finalize_stats(&mut self) {
        self.stats.bpred = *self.bpred.stats();
        self.stats.mem = self.hier.stats();
        self.stats.int_rf = *self.int_rf.stats();
        self.stats.fp_rf = *self.fp_rf.stats();
        self.stats.stl_forwards = self.lsq.forwards();
        self.stats.int_fu_denials = self.int_fus.denials();
        self.stats.fp_fu_denials = self.fp_fus.denials();
        self.stats.lsq_wait_events = self.lsq.wait_events();
        self.stats.lsq_peak = self.lsq.peak_len();
        if let Some(carf) = self.carf() {
            let (mean, peak, short, hist) = (
                carf.long_file().mean_live(),
                carf.long_file().peak_live(),
                carf.mean_short_occupancy(),
                carf.long_file().occupancy_histogram().to_vec(),
            );
            self.stats.long_mean_live = mean;
            self.stats.long_peak_live = peak;
            self.stats.short_mean_occupancy = short;
            self.stats.long_occupancy_hist = hist;
        }
    }

    fn carf(&self) -> Option<&ContentAwareRegFile> {
        self.int_rf.as_any().downcast_ref::<ContentAwareRegFile>()
    }

    /// ROB lookup with an O(1) fast path. Sequence numbers increase by one
    /// per dispatch, so with no squash between `front` and `seq` the
    /// offset from the head IS the position. A squash burns the numbers of
    /// its victims (the counter never rewinds), which only shifts younger
    /// entries left: `rob[i].seq >= front + i` always, so the true
    /// position is never right of the probe, and a prefix binary search
    /// covers the post-squash case.
    fn slot_index(&self, seq: u64) -> Option<usize> {
        let front = self.rob.front()?.seq;
        if seq < front {
            return None;
        }
        let probe = ((seq - front) as usize).min(self.rob.len() - 1);
        let probe_seq = self.rob[probe].seq;
        if probe_seq == seq {
            return Some(probe);
        }
        if probe_seq < seq {
            // Only possible when the probe clamped to the back: `seq` is
            // younger than everything live (it was squashed).
            return None;
        }
        let (mut lo, mut hi) = (0usize, probe);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.rob[mid].seq < seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < probe && self.rob[lo].seq == seq).then_some(lo)
    }

    // ----- per-cycle machinery ------------------------------------------

    fn cycle(&mut self) -> Result<(), SimError> {
        self.now += 1;
        self.stats.cycles = self.now;
        self.hier.begin_cycle();
        self.int_read_ports.begin_cycle();
        self.int_write_ports.begin_cycle();
        self.fp_read_ports.begin_cycle();
        self.fp_write_ports.begin_cycle();

        let committed_before = self.stats.committed;
        self.commit()?;
        if T::ENABLED {
            // Exactly one Cycle event per simulated cycle (including the
            // halting one), so attribution buckets sum to total cycles.
            let commits = self.stats.committed - committed_before;
            let cause = self.classify_cycle(commits);
            self.tracer.event(TraceEvent::Cycle {
                cycle: self.now,
                commits,
                cause,
                rob: self.rob.len() as u32,
                iq: (self.int_iq_len + self.fp_iq_len) as u32,
                lsq: self.lsq.len() as u32,
            });
        }
        if self.halted {
            return Ok(());
        }
        self.writeback();
        self.exec_complete();
        self.capture_operands();
        self.memory_stage();
        self.issue();
        self.dispatch();
        self.fetch()?;
        self.sample();
        Ok(())
    }

    /// Charges the just-finished commit stage's cycle to one
    /// [`StallCause`] bucket, based on what is blocking the ROB head.
    /// Called once per cycle, so the buckets sum to total cycles.
    fn classify_cycle(&self, commits: u64) -> StallCause {
        if commits > 0 {
            return StallCause::Commit;
        }
        let Some(head) = self.rob.front() else {
            return StallCause::FrontendEmpty;
        };
        match head.state {
            SlotState::Waiting => {
                let capture = self.now + self.read_stages;
                let ready =
                    head.srcs.iter().all(|src| self.can_capture(*src, capture).is_some());
                if ready {
                    StallCause::IssueStructural
                } else {
                    StallCause::DataDependency
                }
            }
            SlotState::Issued | SlotState::Captured => StallCause::Execute,
            SlotState::WaitDisambig => StallCause::MemDisambig,
            SlotState::WaitData => StallCause::MemData,
            SlotState::WbPending => {
                if head.wb_fail_cycles > 0 {
                    StallCause::LongWriteback
                } else {
                    StallCause::WritebackPort
                }
            }
            SlotState::WbGranted => StallCause::WritebackLatency,
            SlotState::Completed => {
                if head.kind == InstKind::Store {
                    StallCause::StoreCommitPort
                } else {
                    StallCause::Other
                }
            }
        }
    }

    // ----- commit --------------------------------------------------------

    fn commit(&mut self) -> Result<(), SimError> {
        for _ in 0..self.config.commit_width {
            let ready = match self.rob.front() {
                Some(slot) => match slot.state {
                    SlotState::Completed => true,
                    SlotState::WbGranted => self.now >= slot.wb_done_at,
                    _ => false,
                },
                None => false,
            };
            if !ready {
                break;
            }
            // Stores drain to memory at commit and need a cache port.
            let (is_store, addr) = {
                let slot = self.rob.front().expect("checked above");
                (slot.kind == InstKind::Store, slot.mem_addr)
            };
            if is_store {
                if !self.hier.try_dl1_port() {
                    break;
                }
                let slot = self.rob.front().expect("checked above");
                let addr = addr.expect("committing store without an address");
                self.hier.data_access(addr, true);
                let data = slot.src_vals[1];
                match store_bytes(store_width(slot.inst.op)) {
                    8 => self.mem.write_u64(addr, data),
                    4 => self.mem.write_u32(addr, data as u32),
                    _ => self.mem.write_u8(addr, data as u8),
                }
            }

            let slot = self.rob.pop_front().expect("checked above");
            self.check_golden(&slot)?;
            self.retire_bookkeeping(&slot);
            if slot.kind == InstKind::Halt {
                self.halted = true;
                return Ok(());
            }
        }
        Ok(())
    }

    fn retire_bookkeeping(&mut self, slot: &Slot) {
        self.stats.committed += 1;
        self.last_commit_cycle = self.now;
        if T::ENABLED {
            self.tracer.event(TraceEvent::Retire {
                cycle: self.now,
                seq: slot.seq,
                pc: slot.pc,
            });
        }
        if self.timeline.len() < self.timeline_limit {
            self.timeline.push(InstTimeline {
                seq: slot.seq,
                pc: slot.pc,
                text: slot.inst.to_string(),
                dispatched: slot.dispatched_at,
                issued: slot.issued_at,
                executed: slot.executed_at,
                committed: self.now,
            });
        }
        match slot.kind {
            InstKind::Load => self.stats.loads += 1,
            InstKind::Store => self.stats.stores += 1,
            InstKind::Branch => self.stats.branches += 1,
            InstKind::FpAlu | InstKind::FpDiv => self.stats.fp_ops += 1,
            _ => {}
        }
        // Table 4: the value types of this instruction's integer register
        // operands (known by now — producers committed earlier). At most
        // two sources, so a fixed array suffices.
        let mut class_buf = [carf_core::ValueClass::Simple; 2];
        let mut n_classes = 0usize;
        for src in slot.srcs {
            if let Src::Int(p) = src {
                if let Some(c) = self.int_rf.class_of(p as usize) {
                    class_buf[n_classes] = c;
                    n_classes += 1;
                }
            }
        }
        let classes = &class_buf[..n_classes];
        self.stats.operand_mix.record(classes);
        // §6 clustering measurement: does the result's type match a source?
        if let Some(dest) = slot.dest {
            if dest.is_int && !classes.is_empty() {
                if let Some(dc) = self.int_rf.class_of(dest.new as usize) {
                    self.stats.dest_class_total += 1;
                    if classes.contains(&dc) {
                        self.stats.dest_class_matches += 1;
                    }
                }
            }
        }

        if slot.is_mem() {
            self.lsq.pop_commit(slot.seq);
        }
        if let Some(dest) = slot.dest {
            if dest.is_int {
                self.commit_int_rat[dest.arch as usize] = dest.new;
                self.int_rf.release(dest.old as usize);
                self.rename.free_int(dest.old);
                self.int_pregs[dest.old as usize] = PregState::reset();
            } else {
                self.commit_fp_rat[dest.arch as usize] = dest.new;
                self.fp_rf.release(dest.old as usize);
                self.rename.free_fp(dest.old);
                self.fp_pregs[dest.old as usize] = PregState::reset();
            }
        }
        // ROB-interval boundary: drive the Short file's reference-bit
        // aging (paper §3.1: "when the entire ROB is consumed").
        if self.config.rob_interval_commits > 0 {
            self.rob_interval_count += 1;
            if self.rob_interval_count >= self.config.rob_interval_commits {
                self.rob_interval_count = 0;
                self.int_rf.rob_interval_tick();
            }
        }
    }

    fn check_golden(&mut self, slot: &Slot) -> Result<(), SimError> {
        let Some(golden) = self.golden.as_mut() else { return Ok(()) };
        let mismatch = |detail: String| SimError::CosimMismatch {
            seq: slot.seq,
            pc: slot.pc,
            detail,
        };
        let outcome = golden
            .step(&self.program)
            .map_err(|e| mismatch(format!("golden model error: {e}")))?;
        let retired = match outcome {
            StepOutcome::Retired(r) => r,
            StepOutcome::Halted => return Err(mismatch("golden model already halted".into())),
        };
        if retired.pc != slot.pc {
            return Err(mismatch(format!(
                "control flow diverged: golden pc {:#x}",
                retired.pc
            )));
        }
        match (slot.dest, retired.int_write, retired.fp_write) {
            (Some(d), Some((r, v)), None) if d.is_int => {
                if r.index() != d.arch as usize || v != slot.result {
                    return Err(mismatch(format!(
                        "int dest x{} = {:#x}, golden x{} = {v:#x}",
                        d.arch, slot.result, r.index()
                    )));
                }
            }
            (Some(d), None, Some((r, v))) if !d.is_int => {
                if r.index() != d.arch as usize || v.to_bits() != slot.result {
                    return Err(mismatch(format!(
                        "fp dest f{} = {:#x}, golden f{} = {:#x}",
                        d.arch,
                        slot.result,
                        r.index(),
                        v.to_bits()
                    )));
                }
            }
            (None, None, None) => {}
            other => {
                return Err(mismatch(format!("write shape mismatch: {other:?}")));
            }
        }
        if slot.is_mem() && retired.mem_addr != slot.mem_addr {
            return Err(mismatch(format!(
                "memory address {:?}, golden {:?}",
                slot.mem_addr, retired.mem_addr
            )));
        }
        Ok(())
    }

    // ----- writeback -----------------------------------------------------

    fn writeback(&mut self) {
        self.wb_pending.sort_unstable();
        // Swap the pending list into the scratch buffer and refill
        // `wb_pending` with whatever must retry; both allocations persist
        // across cycles.
        std::mem::swap(&mut self.wb_pending, &mut self.seq_scratch);
        let mut recovery: Option<u64> = None;
        for wi in 0..self.seq_scratch.len() {
            let seq = self.seq_scratch[wi];
            let Some(idx) = self.slot_index(seq) else { continue };
            if self.rob[idx].state != SlotState::WbPending {
                continue;
            }
            let dest = self.rob[idx].dest.expect("writeback without a destination");
            let result = self.rob[idx].result;
            if dest.is_int {
                if !self.int_write_ports.try_acquire() {
                    self.wb_pending.push(seq);
                    continue;
                }
                match self.int_rf.try_write(dest.new as usize, result, false) {
                    Ok(class) => {
                        let done = self.now + self.wb_stages;
                        self.rob[idx].state = SlotState::WbGranted;
                        self.rob[idx].wb_done_at = done;
                        self.int_pregs[dest.new as usize].in_rf_at = done;
                        // The register-file path opens: consumers may issue
                        // once their capture cycle reaches `done`.
                        let at = self.now.max(done.saturating_sub(self.read_stages));
                        self.wake_consumers(true, dest.new, at);
                        if T::ENABLED {
                            // `class` is the WR1 type-determination outcome.
                            self.tracer.event(TraceEvent::Writeback {
                                cycle: self.now,
                                seq,
                                class,
                            });
                        }
                    }
                    Err(_) => {
                        self.stats.wb_long_retries += 1;
                        self.rob[idx].wb_fail_cycles += 1;
                        if self.rob[idx].wb_fail_cycles >= LONG_RECOVERY_PATIENCE
                            && recovery.is_none()
                        {
                            recovery = Some(seq);
                        }
                        self.wb_pending.push(seq);
                        if T::ENABLED {
                            self.tracer.event(TraceEvent::WritebackRetry { cycle: self.now, seq });
                        }
                    }
                }
            } else {
                if !self.fp_write_ports.try_acquire() {
                    self.wb_pending.push(seq);
                    continue;
                }
                self.fp_rf
                    .try_write(dest.new as usize, result, false)
                    .expect("baseline fp write cannot fail");
                let done = self.now + 1; // the FP file keeps a 1-stage writeback
                self.rob[idx].state = SlotState::WbGranted;
                self.rob[idx].wb_done_at = done;
                self.fp_pregs[dest.new as usize].in_rf_at = done;
                let at = self.now.max(done.saturating_sub(self.read_stages));
                self.wake_consumers(false, dest.new, at);
                if T::ENABLED {
                    self.tracer.event(TraceEvent::Writeback { cycle: self.now, seq, class: None });
                }
            }
        }
        self.seq_scratch.clear();

        // Pseudo-deadlock recovery: the Long file stayed full long enough
        // that commit cannot drain it (younger completed instructions hold
        // every entry). Flush everything younger than the starving write.
        if let Some(seq) = recovery {
            if self.slot_index(seq).is_some_and(|i| i + 1 < self.rob.len()) {
                self.stats.deadlock_recoveries += 1;
                let redirect = self.next_pc_of(seq);
                self.squash_younger_than(seq, SquashReason::LongRecovery);
                self.redirect_fetch(redirect);
            }
        }
    }

    fn next_pc_of(&self, seq: u64) -> u64 {
        let idx = self.slot_index(seq).expect("sequence must be in the ROB");
        let slot = &self.rob[idx];
        if slot.inst.is_control() {
            slot.actual_next
        } else {
            slot.pc + INST_BYTES
        }
    }

    // ----- wakeup --------------------------------------------------------

    /// Fires the wakeup list of a physical register whose availability
    /// improved: every still-waiting consumer becomes an issue candidate at
    /// cycle `at` (the first cycle the improvement can matter). Consumers
    /// that issued or were squashed are dropped; the rest stay parked for
    /// the register's next event (e.g. the bypass window closing and the
    /// register-file path opening later).
    fn wake_consumers(&mut self, is_int: bool, preg: Preg, at: u64) {
        let list = if is_int {
            &mut self.int_consumers[preg as usize]
        } else {
            &mut self.fp_consumers[preg as usize]
        };
        if list.is_empty() {
            return;
        }
        let mut list = std::mem::take(list);
        let mut keep = 0usize;
        for i in 0..list.len() {
            let seq = list[i];
            let waiting = self
                .slot_index(seq)
                .is_some_and(|idx| self.rob[idx].state == SlotState::Waiting);
            if waiting {
                self.wake_wheel.schedule(self.now, at, seq);
                list[keep] = seq;
                keep += 1;
            }
        }
        list.truncate(keep);
        let slot = if is_int {
            &mut self.int_consumers[preg as usize]
        } else {
            &mut self.fp_consumers[preg as usize]
        };
        debug_assert!(slot.is_empty());
        *slot = list;
    }

    /// The earliest cycle `>= from` at which `src` could be captured
    /// (issue at `t` captures at `t + read_stages`), given the operand's
    /// current availability. `None` means no capture is schedulable from
    /// what is known now — the consumer parks on the producer's wakeup
    /// list and a future event (speculative wakeup, load resolution,
    /// completion, or writeback grant) reschedules it.
    fn operand_next_cycle(&self, src: Src, from: u64) -> Option<u64> {
        let st = match src {
            Src::None | Src::Zero => return Some(from),
            Src::Int(p) => &self.int_pregs[p as usize],
            Src::Fp(p) => &self.fp_pregs[p as usize],
        };
        let mut best: Option<u64> = None;
        if st.in_rf_at != NEVER {
            best = Some(from.max(st.in_rf_at.saturating_sub(self.read_stages)));
        }
        if st.cap_avail_at != NEVER {
            let t = from.max(st.cap_avail_at.saturating_sub(self.read_stages));
            // The bypass network holds a value for two cycles past its
            // availability (see `can_capture`); if the earliest capture
            // already misses that window, later ones miss it too.
            let feasible = self.full_bypass
                || t + self.read_stages < st.cap_avail_at.saturating_add(2);
            if feasible {
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        }
        best
    }

    /// Schedules the next issue evaluation of a waiting instruction at the
    /// earliest cycle (`>= from`) all of its operands could be captured.
    /// If any operand has no schedulable capture, the instruction is not
    /// queued at all — it is parked on that operand's wakeup list.
    fn requeue_waiting(&mut self, seq: u64, srcs: [Src; 2], from: u64) {
        let mut when = from;
        for src in srcs {
            match self.operand_next_cycle(src, from) {
                Some(t) => when = when.max(t),
                None => return,
            }
        }
        self.wake_wheel.schedule(self.now, when, seq);
    }

    // ----- execute -------------------------------------------------------

    fn exec_complete(&mut self) {
        let mut seqs = std::mem::take(&mut self.event_scratch);
        debug_assert!(seqs.is_empty());
        self.completion_wheel.drain_into(self.now, &mut seqs);
        for &seq in &seqs {
            // Squashed events (a mid-list branch resolution may flush
            // younger entries) are skipped lazily.
            let Some(idx) = self.slot_index(seq) else { continue };
            match self.rob[idx].state {
                SlotState::Captured => self.finish_execution(seq),
                SlotState::WaitData => self.finish_load(seq),
                _ => {}
            }
        }
        seqs.clear();
        self.event_scratch = seqs;
    }

    fn finish_execution(&mut self, seq: u64) {
        let idx = self.slot_index(seq).expect("slot vanished mid-execution");
        let slot = &self.rob[idx];
        let (a, b) = (slot.src_vals[0], slot.src_vals[1]);
        let inst = slot.inst;
        let pc = slot.pc;
        let kind = slot.kind;
        let pred_next = slot.pred_next;

        match kind {
            InstKind::Load | InstKind::Store => {
                let addr = a.wrapping_add(inst.imm as u64);
                self.rob[idx].mem_addr = Some(addr);
                self.lsq.set_addr(seq, addr);
                // The Short file learns computed addresses here, in
                // parallel with the AGU (paper §3.1).
                self.int_rf.observe_address(addr);
                if kind == InstKind::Store {
                    self.lsq.set_store_data(seq, b);
                    self.rob[idx].state = SlotState::Completed;
                    if T::ENABLED {
                        // Address generation done: the store is executed.
                        self.tracer.event(TraceEvent::Execute { cycle: self.now, seq });
                    }
                    // Optimistic disambiguation: a younger load may already
                    // have read stale data for this address — squash from it.
                    if self.config.mem_dep == MemDepPolicy::Optimistic {
                        let size = self.lsq.get(seq).expect("store queued").size;
                        if let Some(victim) = self.lsq.store_violation(seq, addr, size) {
                            self.stats.mem_dep_violations += 1;
                            let target = {
                                let v = self
                                    .slot_index(victim)
                                    .expect("violating load is in flight");
                                self.rob[v].pc
                            };
                            self.squash_younger_than(victim - 1, SquashReason::MemOrder);
                            self.redirect_fetch(target);
                        }
                    }
                } else {
                    self.rob[idx].state = SlotState::WaitDisambig;
                    self.pending_loads.push(seq);
                }
                return;
            }
            _ => {}
        }

        let result: Option<u64> = match kind {
            InstKind::IntAlu | InstKind::IntMul | InstKind::IntDiv => Some(match inst.op {
                Opcode::Fcmplt | Opcode::Fcmpeq | Opcode::FcvtIF => {
                    eval_fp_to_int(inst.op, f64::from_bits(a), f64::from_bits(b))
                }
                Opcode::Li => inst.imm as u64,
                Opcode::Addi
                | Opcode::Andi
                | Opcode::Ori
                | Opcode::Xori
                | Opcode::Slli
                | Opcode::Srli
                | Opcode::Srai
                | Opcode::Slti => eval_int_alu(inst.op, a, inst.imm as u64),
                _ => eval_int_alu(inst.op, a, b),
            }),
            InstKind::FpAlu | InstKind::FpDiv => Some(match inst.op {
                Opcode::FcvtFI => eval_int_to_fp(a).to_bits(),
                _ => eval_fp_alu(inst.op, f64::from_bits(a), f64::from_bits(b)).to_bits(),
            }),
            InstKind::Jump | InstKind::JumpReg => Some(pc + INST_BYTES),
            InstKind::Branch => None,
            InstKind::Nop | InstKind::Halt | InstKind::Load | InstKind::Store => None,
        };

        // Control resolution (may squash everything younger).
        let mut squash_to: Option<u64> = None;
        match kind {
            InstKind::Branch => {
                let taken = eval_branch(inst.op, a, b);
                let actual = if taken { inst.imm as u64 } else { pc + INST_BYTES };
                let mispredicted = actual != pred_next;
                let pred = self.rob[idx]
                    .cond_pred
                    .expect("conditional branch without a prediction token");
                self.bpred.resolve_cond(pred, taken);
                self.rob[idx].actual_next = actual;
                self.rob[idx].branch_unresolved = false;
                self.unresolved_branches = self.unresolved_branches.saturating_sub(1);
                if mispredicted {
                    squash_to = Some(actual);
                }
            }
            InstKind::JumpReg => {
                let actual = a.wrapping_add(inst.imm as u64);
                let mispredicted = actual != pred_next;
                self.bpred.resolve_indirect(pc, actual, mispredicted);
                self.rob[idx].actual_next = actual;
                self.rob[idx].branch_unresolved = false;
                self.unresolved_branches = self.unresolved_branches.saturating_sub(1);
                if mispredicted {
                    squash_to = Some(actual);
                }
            }
            InstKind::Jump => {
                self.rob[idx].actual_next = inst.imm as u64;
            }
            _ => {}
        }

        match result {
            Some(value) => self.complete_with_result(seq, value),
            None => {
                let idx = self.slot_index(seq).expect("slot vanished");
                self.rob[idx].state = SlotState::Completed;
                self.rob[idx].executed_at = self.now;
                if T::ENABLED {
                    self.tracer.event(TraceEvent::Execute { cycle: self.now, seq });
                }
            }
        }

        if let Some(target) = squash_to {
            self.stats.mispredicts += 1;
            self.squash_younger_than(seq, SquashReason::Mispredict);
            self.redirect_fetch(target);
        }
    }

    /// Publishes a computed result: updates the bypass scoreboard and
    /// queues the register write (or completes, for `x0` destinations).
    fn complete_with_result(&mut self, seq: u64, value: u64) {
        let idx = self.slot_index(seq).expect("slot vanished");
        self.rob[idx].result = value;
        self.rob[idx].executed_at = self.now;
        if T::ENABLED {
            self.tracer.event(TraceEvent::Execute { cycle: self.now, seq });
        }
        match self.rob[idx].dest {
            Some(dest) => {
                let bank = if dest.is_int { &mut self.int_pregs } else { &mut self.fp_pregs };
                let st = &mut bank[dest.new as usize];
                st.value = value;
                st.cap_avail_at = self.now;
                st.valid = true;
                self.rob[idx].state = SlotState::WbPending;
                self.wb_pending.push(seq);
                // The value is on the bypass network this cycle; waiting
                // consumers can be selected from this cycle's issue stage.
                self.wake_consumers(dest.is_int, dest.new, self.now);
            }
            None => {
                self.rob[idx].state = SlotState::Completed;
            }
        }
    }

    fn finish_load(&mut self, seq: u64) {
        let idx = self.slot_index(seq).expect("slot vanished");
        let value = self.rob[idx].load_data;
        self.complete_with_result(seq, value);
    }

    // ----- memory stage --------------------------------------------------

    fn memory_stage(&mut self) {
        // Same swap-through-scratch pattern as writeback: loads that cannot
        // start go straight back into `pending_loads`.
        std::mem::swap(&mut self.pending_loads, &mut self.seq_scratch);
        for pi in 0..self.seq_scratch.len() {
            let seq = self.seq_scratch[pi];
            let Some(idx) = self.slot_index(seq) else { continue };
            if self.rob[idx].state != SlotState::WaitDisambig {
                continue;
            }
            let inst = self.rob[idx].inst;
            let addr = self.rob[idx].mem_addr.expect("load in memory stage without address");
            match self.lsq.load_decision_with(seq, self.config.mem_dep) {
                LoadDecision::Forward(raw) => {
                    let v = extend_load(load_width(inst.op), raw);
                    self.rob[idx].load_data = v;
                    self.rob[idx].state = SlotState::WaitData;
                    self.lsq.mark_performed(seq);
                    self.completion_wheel.schedule(self.now, self.now + 1, seq);
                }
                LoadDecision::Memory => {
                    if self.hier.try_dl1_port() {
                        let latency = u64::from(self.hier.data_access(addr, false));
                        let width = load_width(inst.op);
                        let raw = match width {
                            LoadWidth::U64 | LoadWidth::F64 => self.mem.read_u64(addr),
                            LoadWidth::I32 => u64::from(self.mem.read_u32(addr)),
                            LoadWidth::U8 => u64::from(self.mem.read_u8(addr)),
                        };
                        self.rob[idx].load_data = extend_load(width, raw);
                        self.rob[idx].state = SlotState::WaitData;
                        self.lsq.mark_performed(seq);
                        let done = self.now + latency;
                        self.completion_wheel.schedule(self.now, done, seq);
                        // Load-resolution wakeup: the return time is now
                        // known, so dependents may schedule against it.
                        if let Some(dest) = self.rob[idx].dest {
                            let bank = if dest.is_int {
                                &mut self.int_pregs
                            } else {
                                &mut self.fp_pregs
                            };
                            bank[dest.new as usize].cap_avail_at = done;
                            let at = self.now.max(done.saturating_sub(self.read_stages));
                            self.wake_consumers(dest.is_int, dest.new, at);
                        }
                    } else {
                        self.pending_loads.push(seq);
                    }
                }
                LoadDecision::Wait => self.pending_loads.push(seq),
            }
        }
        self.seq_scratch.clear();
        // Any load that could not start this cycle has missed its hit
        // speculation: cancel the optimistic wakeup until it is granted.
        for pi in 0..self.pending_loads.len() {
            if let Some(idx) = self.slot_index(self.pending_loads[pi]) {
                if let Some(dest) = self.rob[idx].dest {
                    let bank =
                        if dest.is_int { &mut self.int_pregs } else { &mut self.fp_pregs };
                    bank[dest.new as usize].cap_avail_at = NEVER;
                }
            }
        }
    }

    // ----- operand capture -----------------------------------------------

    fn capture_operands(&mut self) {
        let mut seqs = std::mem::take(&mut self.event_scratch);
        debug_assert!(seqs.is_empty());
        self.capture_wheel.drain_into(self.now, &mut seqs);
        for &seq in &seqs {
            let Some(idx) = self.slot_index(seq) else { continue };
            if self.rob[idx].state != SlotState::Issued {
                continue;
            }
            let srcs = self.rob[idx].srcs;
            let from_rf = self.rob[idx].src_from_rf;
            // Load-hit misspeculation replay: a bypassed operand whose
            // producer has not actually delivered goes back to the issue
            // queue (the select/read effort is wasted, as in hardware).
            let misspeculated = srcs.iter().zip(from_rf.iter()).any(|(src, rf)| {
                !rf && match *src {
                    Src::Int(p) => !self.int_pregs[p as usize].valid,
                    Src::Fp(p) => !self.fp_pregs[p as usize].valid,
                    _ => false,
                }
            });
            if misspeculated {
                self.rob[idx].state = SlotState::Waiting;
                self.stats.load_replays += 1;
                let kind = self.rob[idx].kind;
                // Revoke this instruction's own speculative wakeup — its
                // completion time is unknown again, and leaving the stale
                // estimate would let *its* consumers issue-and-replay every
                // cycle (a replay storm).
                if let Some(dest) = self.rob[idx].dest {
                    let bank =
                        if dest.is_int { &mut self.int_pregs } else { &mut self.fp_pregs };
                    bank[dest.new as usize].cap_avail_at = NEVER;
                }
                if matches!(kind, InstKind::FpAlu | InstKind::FpDiv) {
                    self.fp_iq_len += 1;
                } else {
                    self.int_iq_len += 1;
                }
                // Back in the queue: re-park on every still-unwritten
                // operand (the issue may have dropped this entry from the
                // wakeup lists) and re-evaluate from this cycle's issue
                // stage, exactly when the scan-based scheduler would next
                // have seen it.
                self.register_consumers(seq, srcs);
                self.requeue_waiting(seq, srcs, self.now);
                continue;
            }
            let mut vals = [0u64; 2];
            for (i, src) in srcs.iter().enumerate() {
                vals[i] = match *src {
                    Src::None => 0,
                    Src::Zero => {
                        self.stats.zero_operands += 1;
                        0
                    }
                    Src::Int(p) => {
                        if from_rf[i] {
                            self.stats.rf_operands += 1;
                            self.int_rf.read(p as usize)
                        } else {
                            self.stats.bypassed_operands += 1;
                            debug_assert!(self.int_pregs[p as usize].valid);
                            self.int_pregs[p as usize].value
                        }
                    }
                    Src::Fp(p) => {
                        if from_rf[i] {
                            self.stats.rf_operands += 1;
                            self.fp_rf.read(p as usize)
                        } else {
                            self.stats.bypassed_operands += 1;
                            debug_assert!(self.fp_pregs[p as usize].valid);
                            self.fp_pregs[p as usize].value
                        }
                    }
                };
            }
            self.rob[idx].src_vals = vals;
            self.rob[idx].state = SlotState::Captured;
            let latency = self.exec_latency(self.rob[idx].kind);
            self.completion_wheel.schedule(self.now, self.now + latency, seq);
        }
        seqs.clear();
        self.event_scratch = seqs;
    }

    /// Parks a waiting instruction on the wakeup list of every source
    /// register that has not yet been granted its register-file write:
    /// such a register's availability can still change (speculative
    /// wakeup, revocation, completion, writeback), and each change fires
    /// the list. A source already granted (`in_rf_at` finite) is frozen —
    /// `requeue_waiting` computes its exact readiness, no parking needed.
    fn register_consumers(&mut self, seq: u64, srcs: [Src; 2]) {
        for src in srcs {
            match src {
                Src::Int(p) if self.int_pregs[p as usize].in_rf_at == NEVER => {
                    self.int_consumers[p as usize].push(seq);
                }
                Src::Fp(p) if self.fp_pregs[p as usize].in_rf_at == NEVER => {
                    self.fp_consumers[p as usize].push(seq);
                }
                _ => {}
            }
        }
    }

    fn exec_latency(&self, kind: InstKind) -> u64 {
        match kind {
            InstKind::IntAlu | InstKind::Branch | InstKind::Jump | InstKind::JumpReg => 1,
            InstKind::IntMul => self.config.mul_latency,
            InstKind::IntDiv => self.config.div_latency,
            InstKind::Load | InstKind::Store => 1, // address generation
            InstKind::FpAlu => self.config.fp_latency,
            InstKind::FpDiv => self.config.fpdiv_latency,
            InstKind::Nop | InstKind::Halt => 1,
        }
    }

    // ----- issue ---------------------------------------------------------

    /// Can a source captured at cycle `c` get its value, and from the RF?
    fn can_capture(&self, src: Src, c: u64) -> Option<bool> {
        let st = match src {
            Src::None | Src::Zero => return Some(false),
            Src::Int(p) => &self.int_pregs[p as usize],
            Src::Fp(p) => &self.fp_pregs[p as usize],
        };
        if st.in_rf_at <= c {
            Some(true)
        } else if st.cap_avail_at <= c
            && (self.full_bypass || c < st.cap_avail_at.saturating_add(2))
        {
            Some(false)
        } else {
            None
        }
    }

    fn issue(&mut self) {
        // The Long-file guard (paper §3.1) stalls issue when free Long
        // entries drop to the threshold. The oldest instruction is exempt:
        // it is the only guaranteed source of forward progress (its commit
        // frees entries), so stalling it too would livelock.
        let guard = self.int_rf.should_stall_issue();
        if guard {
            self.stats.long_guard_stall_cycles += 1;
            if T::ENABLED {
                self.tracer.event(TraceEvent::LongGuard { cycle: self.now });
            }
        }
        let oldest = self.rob.front().map(|s| s.seq);
        let capture_cycle = self.now + self.read_stages;
        // Event-driven candidate set: only instructions woken for this
        // cycle are evaluated, instead of rescanning both issue queues.
        // Sorted (oldest-first, as the scan-based scheduler selected) and
        // deduplicated (an entry may have been woken by several events).
        // Every candidate the cycle cannot issue is rescheduled, so the
        // candidate set always covers what the full rescan would have
        // found ready; evaluating a not-ready entry has no side effects.
        self.issue_cand.clear();
        self.wake_wheel.drain_into(self.now, &mut self.issue_cand);
        if self.issue_cand.is_empty() {
            return;
        }
        self.issue_cand.sort_unstable();
        self.issue_cand.dedup();

        let mut issued = 0usize;
        let mut ci = 0usize;
        while ci < self.issue_cand.len() {
            let seq = self.issue_cand[ci];
            if issued >= self.config.issue_width {
                // Issue width exhausted: everything still pending retries
                // next cycle (the rescan scheduler re-saw it every cycle).
                for wi in ci..self.issue_cand.len() {
                    let s = self.issue_cand[wi];
                    self.wake_wheel.schedule(self.now, self.now + 1, s);
                }
                break;
            }
            ci += 1;
            // Squashed or already-issued wakeups drop out here.
            let Some(idx) = self.slot_index(seq) else { continue };
            if self.rob[idx].state != SlotState::Waiting {
                continue;
            }
            if guard && Some(seq) != oldest {
                self.wake_wheel.schedule(self.now, self.now + 1, seq);
                continue;
            }
            let kind = self.rob[idx].kind;
            let srcs = self.rob[idx].srcs;

            // Operand readiness and RF/bypass routing.
            let mut from_rf = [false; 2];
            let mut ready = true;
            let mut int_reads = 0u32;
            let mut fp_reads = 0u32;
            for (i, src) in srcs.iter().enumerate() {
                match self.can_capture(*src, capture_cycle) {
                    Some(rf) => {
                        // Zero/None sources report `false` but consume
                        // nothing.
                        let needs_port = rf && matches!(src, Src::Int(_) | Src::Fp(_));
                        from_rf[i] = needs_port;
                        if needs_port {
                            match src {
                                Src::Int(_) => int_reads += 1,
                                Src::Fp(_) => fp_reads += 1,
                                _ => unreachable!(),
                            }
                        }
                    }
                    None => {
                        ready = false;
                        break;
                    }
                }
            }
            if !ready {
                // Re-evaluate at the operands' next possible capture (or
                // park on a producer's wakeup list if none is known).
                self.requeue_waiting(seq, srcs, self.now + 1);
                continue;
            }

            // Register-file read ports at the capture cycle (checked before
            // the FU so a denial leaks nothing past this cycle). Denials
            // are structural: retry next cycle.
            if int_reads > 0 && !self.int_read_ports.try_acquire_n(int_reads) {
                self.wake_wheel.schedule(self.now, self.now + 1, seq);
                continue;
            }
            if fp_reads > 0 && !self.fp_read_ports.try_acquire_n(fp_reads) {
                self.wake_wheel.schedule(self.now, self.now + 1, seq);
                continue;
            }

            // Functional unit for the execute stage.
            let exec_start = capture_cycle + 1;
            let duration = match kind {
                InstKind::IntDiv => self.config.div_latency,
                InstKind::FpDiv => self.config.fpdiv_latency,
                _ => 1,
            };
            let pool = match kind {
                InstKind::FpAlu | InstKind::FpDiv => &mut self.fp_fus,
                _ => &mut self.int_fus,
            };
            if !pool.try_acquire(exec_start, duration) {
                self.wake_wheel.schedule(self.now, self.now + 1, seq);
                continue;
            }

            // Selected.
            self.rob[idx].state = SlotState::Issued;
            self.rob[idx].issued_at = self.now;
            self.rob[idx].src_from_rf = from_rf;
            if T::ENABLED {
                self.tracer.event(TraceEvent::Issue { cycle: self.now, seq });
            }
            self.capture_wheel.schedule(self.now, capture_cycle, seq);
            // Speculative wakeup: consumers may be selected against the
            // scheduled completion time of this producer. Loads are woken
            // assuming an L1 hit (address generation + hit latency);
            // consumers that issue on a wrong hit speculation replay from
            // the issue queue at capture.
            if let Some(dest) = self.rob[idx].dest {
                let done = match kind {
                    InstKind::Load => {
                        capture_cycle + 1 + u64::from(self.config.hierarchy.dl1.latency)
                    }
                    _ => capture_cycle + self.exec_latency(kind),
                };
                let bank = if dest.is_int { &mut self.int_pregs } else { &mut self.fp_pregs };
                bank[dest.new as usize].cap_avail_at = done;
                // `done - read_stages` is the first cycle a consumer could
                // be selected against this estimate; it is always at least
                // `now + 1` (a dependent can never issue the same cycle,
                // and this cycle's wakeups have already drained).
                let at = (self.now + 1).max(done.saturating_sub(self.read_stages));
                self.wake_consumers(dest.is_int, dest.new, at);
            }
            match kind {
                InstKind::FpAlu | InstKind::FpDiv => self.fp_iq_len -= 1,
                _ => self.int_iq_len -= 1,
            }
            issued += 1;
        }
    }

    // ----- dispatch (rename) ----------------------------------------------

    #[inline]
    fn dispatch_stall_event(&mut self, cause: DispatchStallCause) {
        if T::ENABLED {
            self.tracer.event(TraceEvent::DispatchStall { cycle: self.now, cause });
        }
    }

    fn dispatch(&mut self) {
        for _ in 0..self.config.fetch_width {
            let Some(fetched) = self.fetch_q.front().copied() else { break };
            if fetched.ready_at > self.now {
                break;
            }
            let inst = fetched.inst;
            let kind = inst.kind();

            // Structural hazards.
            if self.rob.len() >= self.config.rob_size {
                self.stats.dispatch_stalls.rob += 1;
                self.dispatch_stall_event(DispatchStallCause::Rob);
                break;
            }
            let is_mem = matches!(kind, InstKind::Load | InstKind::Store);
            if is_mem && self.lsq.is_full() {
                self.stats.dispatch_stalls.lsq += 1;
                self.dispatch_stall_event(DispatchStallCause::Lsq);
                break;
            }
            let uses_fp_iq = matches!(kind, InstKind::FpAlu | InstKind::FpDiv);
            let needs_iq = !matches!(kind, InstKind::Nop | InstKind::Halt);
            if needs_iq {
                let len = if uses_fp_iq { self.fp_iq_len } else { self.int_iq_len };
                let cap = if uses_fp_iq { self.config.iq_fp } else { self.config.iq_int };
                if len >= cap {
                    self.stats.dispatch_stalls.iq += 1;
                    self.dispatch_stall_event(DispatchStallCause::Iq);
                    break;
                }
            }
            let takes_checkpoint = matches!(kind, InstKind::Branch | InstKind::JumpReg);
            if takes_checkpoint && self.unresolved_branches >= self.config.checkpoints {
                self.stats.dispatch_stalls.checkpoints += 1;
                self.dispatch_stall_event(DispatchStallCause::Checkpoints);
                break;
            }
            let dest_ref = inst.dest();
            let needs_int_preg = matches!(dest_ref, Some(carf_isa::RegRef::Int(r)) if !r.is_zero());
            let needs_fp_preg = matches!(dest_ref, Some(carf_isa::RegRef::Fp(_)));
            if (needs_int_preg && self.rename.int_free_count() == 0)
                || (needs_fp_preg && self.rename.fp_free_count() == 0)
            {
                self.stats.dispatch_stalls.pregs += 1;
                self.dispatch_stall_event(DispatchStallCause::Pregs);
                break;
            }

            // Commit to dispatching this instruction.
            self.fetch_q.pop_front();
            self.seq_counter += 1;
            let seq = self.seq_counter;

            let mut srcs = [Src::None, Src::None];
            for (i, s) in inst.sources().iter().enumerate() {
                srcs[i] = match s {
                    None => Src::None,
                    Some(carf_isa::RegRef::Int(r)) if r.is_zero() => Src::Zero,
                    Some(carf_isa::RegRef::Int(r)) => Src::Int(self.rename.lookup_int(*r)),
                    Some(carf_isa::RegRef::Fp(r)) => Src::Fp(self.rename.lookup_fp(*r)),
                };
            }

            let dest = match dest_ref {
                Some(carf_isa::RegRef::Int(r)) if !r.is_zero() => {
                    let (new, old) =
                        self.rename.rename_int_dest(r).expect("free count checked above");
                    self.int_rf.on_alloc(new as usize);
                    self.int_pregs[new as usize] = PregState::reset();
                    // A freed register's waiting consumers were all
                    // squashed or committed; drop the stale list entries.
                    self.int_consumers[new as usize].clear();
                    Some(Dest { is_int: true, arch: r.number(), new, old })
                }
                Some(carf_isa::RegRef::Fp(r)) => {
                    let (new, old) =
                        self.rename.rename_fp_dest(r).expect("free count checked above");
                    self.fp_rf.on_alloc(new as usize);
                    self.fp_pregs[new as usize] = PregState::reset();
                    self.fp_consumers[new as usize].clear();
                    Some(Dest { is_int: false, arch: r.number(), new, old })
                }
                _ => None,
            };

            if is_mem {
                let size = match kind {
                    InstKind::Load => match load_width(inst.op) {
                        LoadWidth::U64 | LoadWidth::F64 => 8,
                        LoadWidth::I32 => 4,
                        LoadWidth::U8 => 1,
                    },
                    _ => store_bytes(store_width(inst.op)) as u8,
                };
                self.lsq
                    .try_push(seq, kind == InstKind::Load, size)
                    .expect("fullness checked above");
            }
            if takes_checkpoint {
                self.unresolved_branches += 1;
            }

            let state = if needs_iq { SlotState::Waiting } else { SlotState::Completed };
            if needs_iq {
                if uses_fp_iq {
                    self.fp_iq_len += 1;
                } else {
                    self.int_iq_len += 1;
                }
                // Event-driven scheduling: park on the producers that may
                // still change, and queue the first issue evaluation for
                // the earliest cycle the operands allow (issue has already
                // run this cycle, so never before `now + 1`).
                self.register_consumers(seq, srcs);
                self.requeue_waiting(seq, srcs, self.now + 1);
            }
            self.rob.push_back(Slot {
                seq,
                pc: fetched.pc,
                inst,
                kind,
                pred_next: fetched.pred_next,
                dest,
                srcs,
                src_from_rf: [false; 2],
                src_vals: [0; 2],
                state,
                wb_done_at: NEVER,
                actual_next: fetched.pred_next,
                mem_addr: None,
                load_data: 0,
                result: 0,
                branch_unresolved: takes_checkpoint,
                wb_fail_cycles: 0,
                cond_pred: fetched.cond_pred,
                dispatched_at: self.now,
                issued_at: 0,
                executed_at: 0,
            });
            if T::ENABLED {
                self.tracer.event(TraceEvent::Dispatch {
                    cycle: self.now,
                    seq,
                    pc: fetched.pc,
                    inst,
                    kind,
                });
            }
        }
    }

    // ----- fetch -----------------------------------------------------------

    fn fetch(&mut self) -> Result<(), SimError> {
        if self.now < self.fetch_resume_at || self.fetch_wild || self.halted {
            // A wild fetch with nothing in flight to redirect it means the
            // program ran off the end without halting.
            if self.fetch_wild && self.rob.is_empty() && self.fetch_q.is_empty() {
                return Err(SimError::RunawayFetch { pc: self.fetch_pc });
            }
            return Ok(());
        }
        if self.fetch_q.len() >= 4 * self.config.fetch_width {
            return Ok(());
        }
        for i in 0..self.config.fetch_width {
            let pc = self.fetch_pc;
            let Some(idx) = self.program.index_of(pc) else {
                self.fetch_wild = true;
                break;
            };
            if i == 0 {
                let latency = u64::from(self.hier.fetch_latency(pc));
                if latency > 1 {
                    // Instruction-cache miss: the line is being filled;
                    // retry once it arrives.
                    self.fetch_resume_at = self.now + latency;
                    return Ok(());
                }
            }
            let inst = self.program.insts[idx];
            let fallthrough = pc + INST_BYTES;
            let mut cond_pred = None;
            let pred_next = match inst.kind() {
                InstKind::Branch => {
                    let pred = self.bpred.predict_cond(pc);
                    cond_pred = Some(pred);
                    if pred.taken {
                        inst.imm as u64
                    } else {
                        fallthrough
                    }
                }
                InstKind::Jump => {
                    if inst.rd != 0 {
                        self.bpred.push_return(fallthrough);
                    }
                    inst.imm as u64
                }
                InstKind::JumpReg => {
                    let is_return = inst.rd == 0;
                    let target = self.bpred.predict_indirect(pc, is_return);
                    if inst.rd != 0 {
                        self.bpred.push_return(fallthrough);
                    }
                    if target == 0 {
                        fallthrough
                    } else {
                        target
                    }
                }
                _ => fallthrough,
            };
            self.fetch_q.push_back(Fetched {
                inst,
                pc,
                pred_next,
                ready_at: self.now + self.config.frontend_depth,
                cond_pred,
            });
            self.stats.fetched += 1;
            if T::ENABLED {
                self.tracer.event(TraceEvent::Fetch { cycle: self.now, pc });
            }
            if inst.kind() == InstKind::Halt {
                self.fetch_wild = true; // nothing meaningful follows
                break;
            }
            self.fetch_pc = pred_next;
            if pred_next != fallthrough {
                break; // taken control flow ends the fetch group
            }
        }
        Ok(())
    }

    // ----- recovery --------------------------------------------------------

    fn redirect_fetch(&mut self, target: u64) {
        self.fetch_pc = target;
        self.fetch_wild = false;
        self.fetch_resume_at = self.now + 1;
        self.fetch_q.clear();
    }

    /// Squashes every instruction strictly younger than `keep_seq`.
    ///
    /// Cost is proportional to the squashed suffix only: the rename maps
    /// are recovered by undoing each popped rename in reverse program
    /// order (`map[arch] = old` restores what `arch` pointed to before
    /// that rename — after the whole suffix is undone, the maps equal the
    /// committed RAT plus the surviving prefix renames, i.e. exactly what
    /// a forward rebuild from the committed map produces). Surviving
    /// instructions are never visited, and no pending-event list is swept:
    /// squashed sequence numbers — never reused — are dropped lazily when
    /// their ROB lookup or state check fails.
    fn squash_younger_than(&mut self, keep_seq: u64, reason: SquashReason) {
        let squashed_before = self.stats.squashed;
        let mut int_map = *self.rename.int_map();
        let mut fp_map = *self.rename.fp_map();
        while matches!(self.rob.back(), Some(s) if s.seq > keep_seq) {
            let slot = self.rob.pop_back().expect("checked above");
            self.stats.squashed += 1;
            if slot.branch_unresolved {
                self.unresolved_branches = self.unresolved_branches.saturating_sub(1);
            }
            if slot.state == SlotState::Waiting {
                if matches!(slot.kind, InstKind::FpAlu | InstKind::FpDiv) {
                    self.fp_iq_len -= 1;
                } else {
                    self.int_iq_len -= 1;
                }
            }
            if let Some(d) = slot.dest {
                if d.is_int {
                    int_map[d.arch as usize] = d.old;
                    self.int_rf.release(d.new as usize);
                    self.rename.free_int(d.new);
                    self.int_pregs[d.new as usize] = PregState::reset();
                } else {
                    fp_map[d.arch as usize] = d.old;
                    self.fp_rf.release(d.new as usize);
                    self.rename.free_fp(d.new);
                    self.fp_pregs[d.new as usize] = PregState::reset();
                }
            }
        }
        self.rename.set_maps(int_map, fp_map);
        self.lsq.squash_after(keep_seq);
        if T::ENABLED {
            self.tracer.event(TraceEvent::Squash {
                cycle: self.now,
                keep_seq,
                squashed: self.stats.squashed - squashed_before,
                reason,
            });
        }
    }

    // ----- sampling --------------------------------------------------------

    fn sample(&mut self) {
        // Occupancy statistics are cheap; sample them every cycle.
        self.int_rf.sample_occupancy();
        let Some(period) = self.config.oracle_period else { return };
        if !self.now.is_multiple_of(period) {
            return;
        }
        self.oracle_scratch.clear();
        self.oracle_scratch.extend(self.int_pregs.iter().filter(|s| s.valid).map(|s| s.value));
        self.stats.oracle.record(&self.oracle_scratch);
    }
}

impl<T: Tracer> std::fmt::Debug for Simulator<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cycle", &self.now)
            .field("committed", &self.stats.committed)
            .field("rob", &self.rob.len())
            .field("halted", &self.halted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carf_core::{CarfParams, Policies};
    use carf_isa::{f, x, Asm};

    const HEAP: u64 = 0x0000_7f3a_8000_0000;

    fn run_with(config: SimConfig, asm: Asm) -> (Simulator, SimResult) {
        let program = asm.finish().expect("assembly");
        let mut sim = Simulator::new(config, &program);
        let result = sim.run(5_000_000).expect("simulation");
        assert!(result.halted, "program must halt");
        (sim, result)
    }

    fn run(asm: Asm) -> (Simulator, SimResult) {
        run_with(SimConfig::test_small(), asm)
    }

    fn sum_loop(n: u64) -> Asm {
        let mut asm = Asm::new();
        asm.li(x(1), 0);
        asm.li(x(2), 1);
        asm.li(x(3), n + 1);
        asm.label("loop");
        asm.add(x(1), x(1), x(2));
        asm.addi(x(2), x(2), 1);
        asm.blt(x(2), x(3), "loop");
        asm.halt();
        asm
    }

    #[test]
    fn straight_line_commits_in_order() {
        let mut asm = Asm::new();
        asm.li(x(1), 5);
        asm.li(x(2), 7);
        asm.add(x(3), x(1), x(2));
        asm.mul(x(4), x(3), x(3));
        asm.halt();
        let (_, r) = run(asm);
        assert_eq!(r.committed, 5);
        assert!(r.cycles > 5); // pipeline fill
    }

    #[test]
    fn cosim_validates_a_long_loop() {
        let (sim, r) = run(sum_loop(500));
        assert_eq!(r.committed, 3 + 3 * 500 + 1);
        assert!(sim.stats().ipc() > 0.5, "ipc = {}", sim.stats().ipc());
    }

    #[test]
    fn branch_predictor_learns_the_loop() {
        let (sim, _) = run(sum_loop(2000));
        assert!(
            sim.stats().bpred.cond_accuracy() > 0.95,
            "accuracy = {}",
            sim.stats().bpred.cond_accuracy()
        );
    }

    #[test]
    fn memory_round_trip_with_forwarding() {
        let mut asm = Asm::new();
        let buf = asm.alloc_bytes_zeroed(256);
        asm.li(x(1), buf);
        asm.li(x(2), 0xdead_beef_1234_5678);
        asm.st(x(2), x(1), 8);
        asm.ld(x(3), x(1), 8); // same-address load: forwarded or from cache
        asm.add(x(4), x(3), x(3));
        asm.st(x(4), x(1), 16);
        asm.halt();
        let (sim, r) = run(asm);
        assert_eq!(r.committed, 7);
        assert!(sim.stats().loads >= 1 && sim.stats().stores >= 2);
    }

    #[test]
    fn store_load_chain_through_memory() {
        // Writes then reads back a small table; catches LSQ/memory ordering
        // bugs under cosim.
        let mut asm = Asm::new();
        let buf = asm.alloc_bytes_zeroed(512);
        asm.li(x(1), buf);
        asm.li(x(2), 0); // i
        asm.li(x(3), 32); // n
        asm.label("fill");
        asm.slli(x(4), x(2), 3);
        asm.add(x(5), x(1), x(4));
        asm.mul(x(6), x(2), x(2));
        asm.st(x(6), x(5), 0);
        asm.addi(x(2), x(2), 1);
        asm.blt(x(2), x(3), "fill");
        asm.li(x(2), 0);
        asm.li(x(7), 0); // sum
        asm.label("read");
        asm.slli(x(4), x(2), 3);
        asm.add(x(5), x(1), x(4));
        asm.ld(x(6), x(5), 0);
        asm.add(x(7), x(7), x(6));
        asm.addi(x(2), x(2), 1);
        asm.blt(x(2), x(3), "read");
        asm.halt();
        let (_, r) = run(asm);
        assert!(r.committed > 64);
    }

    #[test]
    fn function_calls_through_ras() {
        let mut asm = Asm::new();
        asm.li(x(10), 1);
        asm.li(x(20), 0); // call count
        asm.label("main_loop");
        asm.jal(x(31), "double");
        asm.addi(x(20), x(20), 1);
        asm.slti(x(21), x(20), 6);
        asm.bne(x(21), x(0), "main_loop");
        asm.halt();
        asm.label("double");
        asm.add(x(10), x(10), x(10));
        asm.ret(x(31));
        let (_, r) = run(asm);
        assert!(r.halted);
        // 6 iterations of 4 instructions + 6 * 2 callee + prologue/halt.
        assert_eq!(r.committed, 2 + 6 * 4 + 6 * 2 + 1);
    }

    #[test]
    fn fp_pipeline_with_cosim() {
        let mut asm = Asm::new();
        let data = asm.alloc_f64s(&[1.5, 2.5, 3.5, 4.5]);
        asm.li(x(1), data);
        asm.li(x(2), 0);
        asm.li(x(3), 4);
        asm.fld(f(10), x(1), 0);
        asm.label("loop");
        asm.slli(x(4), x(2), 3);
        asm.add(x(5), x(1), x(4));
        asm.fld(f(1), x(5), 0);
        asm.fmul(f(2), f(1), f(1));
        asm.fadd(f(10), f(10), f(2));
        asm.addi(x(2), x(2), 1);
        asm.blt(x(2), x(3), "loop");
        asm.fst(f(10), x(1), 64);
        asm.fcvt_if(x(6), f(10));
        asm.halt();
        let (_, r) = run(asm);
        assert!(r.halted);
    }

    #[test]
    fn division_and_unpipelined_units() {
        let mut asm = Asm::new();
        asm.li(x(1), 1000);
        asm.li(x(2), 7);
        asm.div(x(3), x(1), x(2));
        asm.div(x(4), x(3), x(2));
        asm.div(x(5), x(1), x(0)); // divide by zero convention
        asm.fcvt_fi(f(1), x(1));
        asm.fcvt_fi(f(2), x(2));
        asm.fdiv(f(3), f(1), f(2));
        asm.halt();
        let (_, r) = run(asm);
        assert_eq!(r.committed, 9);
    }

    #[test]
    fn data_dependent_branches_mispredict_and_recover() {
        // Branch on a pseudo-random bit: forces mispredicts and recovery.
        let mut asm = Asm::new();
        asm.li(x(1), 12345); // lcg state
        asm.li(x(2), 0); // taken counter
        asm.li(x(3), 400); // iterations
        asm.li(x(5), 6364136223846793005u64);
        asm.li(x(6), 1442695040888963407u64);
        asm.label("loop");
        asm.mul(x(1), x(1), x(5));
        asm.add(x(1), x(1), x(6));
        asm.srli(x(4), x(1), 61);
        asm.andi(x(4), x(4), 1);
        asm.beq(x(4), x(0), "skip");
        asm.addi(x(2), x(2), 1);
        asm.label("skip");
        asm.addi(x(3), x(3), -1);
        asm.bne(x(3), x(0), "loop");
        asm.halt();
        let (sim, r) = run(asm);
        assert!(r.halted);
        assert!(sim.stats().mispredicts > 10, "mispredicts = {}", sim.stats().mispredicts);
        assert!(sim.stats().squashed > 0);
    }

    #[test]
    fn carf_machine_matches_golden_on_pointer_workload() {
        // Pointer-chasing through a heap-like region: exercises short
        // classification under cosim.
        let mut asm = Asm::new();
        asm.set_data_base(HEAP);
        // A linked ring of 8 nodes, 16 bytes apart.
        let mut nodes = Vec::new();
        for i in 0..8u64 {
            nodes.push(HEAP + ((i + 1) % 8) * 16);
            nodes.push(i * i);
        }
        let mut bytes = Vec::new();
        for w in &nodes {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let head = asm.alloc_data(&bytes);
        asm.li(x(1), head);
        asm.li(x(2), 0); // sum
        asm.li(x(3), 64); // steps
        asm.label("chase");
        asm.ld(x(4), x(1), 8); // payload
        asm.add(x(2), x(2), x(4));
        asm.ld(x(1), x(1), 0); // next pointer
        asm.addi(x(3), x(3), -1);
        asm.bne(x(3), x(0), "chase");
        asm.halt();

        let mut cfg = SimConfig::test_small();
        cfg.regfile = RegFileKind::ContentAware(
            CarfParams { simple_entries: 64, ..CarfParams::paper_default() },
            Policies::default(),
        );
        let (sim, r) = run_with(cfg, asm);
        assert!(r.halted);
        let stats = sim.stats();
        // The pointer values classify as short, the counters as simple.
        assert!(stats.int_rf.writes.short > 0, "{:?}", stats.int_rf.writes);
        assert!(stats.int_rf.writes.simple > 0);
    }

    #[test]
    fn carf_and_baseline_compute_identical_results() {
        for make_cfg in [
            SimConfig::test_small,
            || {
                let mut c = SimConfig::test_small();
                c.regfile = RegFileKind::ContentAware(
                    CarfParams { simple_entries: 64, ..CarfParams::paper_default() },
                    Policies::default(),
                );
                c
            },
        ] {
            let (_, r) = run_with(make_cfg(), sum_loop(300));
            assert_eq!(r.committed, 3 + 3 * 300 + 1);
        }
    }

    #[test]
    fn carf_pays_a_small_ipc_cost() {
        let big_loop = || {
            let mut asm = Asm::new();
            asm.set_data_base(HEAP);
            let buf = asm.alloc_bytes_zeroed(4096);
            asm.li(x(1), buf);
            asm.li(x(2), 0);
            asm.li(x(3), 2000);
            asm.label("loop");
            asm.andi(x(4), x(2), 511);
            asm.slli(x(4), x(4), 3);
            asm.add(x(5), x(1), x(4));
            asm.st(x(2), x(5), 0);
            asm.ld(x(6), x(5), 0);
            asm.add(x(7), x(7), x(6));
            asm.addi(x(2), x(2), 1);
            asm.blt(x(2), x(3), "loop");
            asm.halt();
            asm
        };
        let (_, base) = run_with(SimConfig::test_small(), big_loop());
        let mut cfg = SimConfig::test_small();
        cfg.regfile = RegFileKind::ContentAware(
            CarfParams { simple_entries: 64, ..CarfParams::paper_default() },
            Policies::default(),
        );
        let (_, carf) = run_with(cfg, big_loop());
        assert_eq!(base.committed, carf.committed);
        let rel = carf.ipc / base.ipc;
        // The paper reports ~1.7% loss; structurally anything in (0.7, 1.01]
        // is sane for a small kernel.
        assert!(rel > 0.7 && rel < 1.02, "carf/base ipc = {rel:.3}");
    }

    #[test]
    fn long_file_pressure_stalls_but_stays_correct() {
        // Values drawn from many distinct high-bit regions: mostly long.
        let mut asm = Asm::new();
        asm.li(x(9), 0x0101_0101_0101_0101);
        asm.li(x(1), 0x1234_5678_9abc_def0);
        asm.li(x(3), 200);
        asm.label("loop");
        asm.add(x(1), x(1), x(9));
        asm.add(x(2), x(1), x(9));
        asm.add(x(4), x(2), x(9));
        asm.add(x(5), x(4), x(9));
        asm.addi(x(3), x(3), -1);
        asm.bne(x(3), x(0), "loop");
        asm.halt();

        let mut cfg = SimConfig::test_small();
        cfg.regfile = RegFileKind::ContentAware(
            CarfParams {
                simple_entries: 64,
                // Tight: far fewer Long entries than live long values, so
                // the guard (and possibly the recovery path) must engage.
                long_entries: 16,
                ..CarfParams::paper_default()
            },
            Policies { long_stall_threshold: 8, ..Policies::default() },
        );
        let (sim, r) = run_with(cfg, asm);
        assert!(r.halted);
        assert!(
            sim.stats().long_guard_stall_cycles > 0 || sim.stats().wb_long_retries > 0,
            "expected long-file pressure: {:?} guard cycles, {:?} retries",
            sim.stats().long_guard_stall_cycles,
            sim.stats().wb_long_retries,
        );
    }

    #[test]
    fn bypass_supplies_dependent_chains() {
        let (sim, _) = run(sum_loop(400));
        let stats = sim.stats();
        assert!(stats.bypassed_operands > 0, "dependent ops must bypass");
        assert!(stats.rf_operands > 0, "stable values must read the RF");
        let frac = stats.bypass_fraction();
        assert!(frac > 0.05 && frac < 0.95, "bypass fraction = {frac}");
    }

    #[test]
    fn oracle_sampling_records_live_values() {
        let mut cfg = SimConfig::test_small();
        cfg.oracle_period = Some(4);
        let (sim, _) = run_with(cfg, sum_loop(500));
        let oracle = &sim.stats().oracle;
        assert!(oracle.snapshots > 10);
        assert!(oracle.mean_live() > 4.0, "mean live = {}", oracle.mean_live());
        let f = oracle.values.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_register_operands_are_free() {
        let mut asm = Asm::new();
        asm.li(x(3), 50);
        asm.label("loop");
        asm.add(x(1), x(0), x(0));
        asm.addi(x(3), x(3), -1);
        asm.bne(x(3), x(0), "loop");
        asm.halt();
        let (sim, _) = run(asm);
        assert!(sim.stats().zero_operands > 100);
    }

    #[test]
    fn runaway_program_is_detected() {
        let mut asm = Asm::new();
        asm.li(x(1), 1); // no halt: falls off the end
        let program = asm.finish().unwrap();
        let mut sim = Simulator::new(SimConfig::test_small(), &program);
        match sim.run(1_000) {
            Err(SimError::RunawayFetch { .. }) => {}
            other => panic!("expected runaway fetch, got {other:?}"),
        }
    }

    #[test]
    fn instruction_budget_stops_infinite_loops() {
        let mut asm = Asm::new();
        asm.label("spin");
        asm.addi(x(1), x(1), 1);
        asm.j("spin");
        let program = asm.finish().unwrap();
        let mut sim = Simulator::new(SimConfig::test_small(), &program);
        let r = sim.run(500).expect("runs fine, just never halts");
        assert!(!r.halted);
        assert!(r.committed >= 500);
    }

    #[test]
    fn table4_operand_mix_is_recorded_for_carf() {
        let mut cfg = SimConfig::test_small();
        cfg.regfile = RegFileKind::ContentAware(
            CarfParams { simple_entries: 64, ..CarfParams::paper_default() },
            Policies::default(),
        );
        let (sim, _) = run_with(cfg, sum_loop(300));
        assert!(sim.stats().operand_mix.total() > 100);
        // A counting loop's operands are overwhelmingly simple.
        assert!(sim.stats().operand_mix.fractions()[0] > 0.5);
    }

    #[test]
    fn paper_configs_run_the_same_program() {
        for cfg in [SimConfig::paper_baseline(), SimConfig::paper_unlimited()] {
            let mut c = cfg;
            c.cosim = true;
            let (_, r) = run_with(c, sum_loop(200));
            assert_eq!(r.committed, 3 + 3 * 200 + 1);
        }
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::*;
    use carf_isa::{x, Asm};

    #[test]
    fn timeline_records_stage_ordering() {
        let mut asm = Asm::new();
        asm.li(x(1), 3);
        asm.add(x(2), x(1), x(1));
        asm.mul(x(3), x(2), x(2));
        asm.halt();
        let program = asm.finish().unwrap();
        let mut sim = Simulator::new(SimConfig::test_small(), &program);
        sim.record_timeline(16);
        sim.run(1_000).unwrap();

        let tl = sim.timeline();
        assert_eq!(tl.len(), 4);
        // Commit order equals program order here.
        for w in tl.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].committed <= w[1].committed);
        }
        // Stage ordering within each executing instruction.
        for t in tl.iter().take(3) {
            assert!(t.dispatched <= t.issued, "{t}");
            assert!(t.issued < t.executed, "{t}");
            assert!(t.executed < t.committed, "{t}");
        }
        // The dependent multiply executes after its source add.
        assert!(tl[2].executed > tl[1].executed);
        // Display formatting carries the disassembly.
        assert!(tl[2].to_string().contains("mul x3, x2, x2"));
    }

    #[test]
    fn timeline_limit_caps_recording() {
        let mut asm = Asm::new();
        asm.li(x(1), 50);
        asm.label("l");
        asm.addi(x(1), x(1), -1);
        asm.bne(x(1), x(0), "l");
        asm.halt();
        let program = asm.finish().unwrap();
        let mut sim = Simulator::new(SimConfig::test_small(), &program);
        sim.record_timeline(5);
        sim.run(10_000).unwrap();
        assert_eq!(sim.timeline().len(), 5);
    }

    #[test]
    fn timeline_off_by_default() {
        let mut asm = Asm::new();
        asm.li(x(1), 1);
        asm.halt();
        let program = asm.finish().unwrap();
        let mut sim = Simulator::new(SimConfig::test_small(), &program);
        sim.run(100).unwrap();
        assert!(sim.timeline().is_empty());
    }
}

#[cfg(test)]
mod memdep_tests {
    use super::*;
    use crate::lsq::MemDepPolicy;
    use carf_isa::{x, Asm};

    /// A store whose address depends on a slow divide, followed by a load
    /// to the same location: the optimistic machine reads early and must
    /// detect the violation when the store resolves.
    fn conflict_kernel(iters: u64) -> carf_isa::Program {
        let mut asm = Asm::new();
        let buf = asm.alloc_u64s(&[5, 6, 7, 8]);
        asm.li(x(10), buf);
        asm.li(x(20), iters);
        asm.li(x(9), 24);
        asm.li(x(8), 3);
        asm.label("loop");
        // Slow address: offset = (24 / 3) = 8, known only after the divide.
        asm.div(x(2), x(9), x(8));
        asm.add(x(3), x(10), x(2));
        asm.st(x(20), x(3), 0); // store to buf+8
        asm.ld(x(4), x(10), 8); // load from buf+8: depends on that store
        asm.add(x(1), x(1), x(4));
        asm.addi(x(20), x(20), -1);
        asm.bne(x(20), x(0), "loop");
        asm.halt();
        asm.finish().expect("assembles")
    }

    #[test]
    fn optimistic_policy_detects_and_recovers_violations() {
        let mut cfg = SimConfig::test_small();
        cfg.mem_dep = MemDepPolicy::Optimistic;
        let program = conflict_kernel(100);
        let mut sim = Simulator::new(cfg, &program);
        let r = sim.run(1_000_000).expect("cosim-clean despite violations");
        assert!(r.halted);
        assert!(
            sim.stats().mem_dep_violations > 10,
            "expected violations, got {}",
            sim.stats().mem_dep_violations
        );
    }

    #[test]
    fn conservative_policy_never_violates() {
        let mut cfg = SimConfig::test_small();
        cfg.mem_dep = MemDepPolicy::Conservative;
        let program = conflict_kernel(100);
        let mut sim = Simulator::new(cfg, &program);
        let r = sim.run(1_000_000).expect("clean");
        assert!(r.halted);
        assert_eq!(sim.stats().mem_dep_violations, 0);
    }

    #[test]
    fn optimistic_policy_speeds_up_independent_loads_behind_slow_stores() {
        // The store's address resolves slowly but never conflicts with the
        // loads: the optimistic machine should not wait for it.
        let kernel = |iters: u64| {
            let mut asm = Asm::new();
            let buf = asm.alloc_u64s(&[1, 2, 3, 4, 5, 6, 7, 8]);
            asm.li(x(10), buf);
            asm.li(x(20), iters);
            asm.li(x(9), 192);
            asm.li(x(8), 4);
            asm.label("loop");
            asm.div(x(2), x(9), x(8)); // 48: slow
            asm.add(x(3), x(10), x(2));
            asm.st(x(20), x(3), 0); // buf+48: disjoint from the loads
            asm.ld(x(4), x(10), 0);
            asm.ld(x(5), x(10), 8);
            asm.add(x(1), x(4), x(5));
            asm.addi(x(20), x(20), -1);
            asm.bne(x(20), x(0), "loop");
            asm.halt();
            asm.finish().expect("assembles")
        };
        let run = |policy: MemDepPolicy| {
            let mut cfg = SimConfig::test_small();
            cfg.mem_dep = policy;
            let mut sim = Simulator::new(cfg, &kernel(300));
            sim.run(1_000_000).expect("clean").cycles
        };
        let conservative = run(MemDepPolicy::Conservative);
        let optimistic = run(MemDepPolicy::Optimistic);
        assert!(
            optimistic < conservative,
            "optimistic {optimistic} should beat conservative {conservative}"
        );
    }
}
