//! Simulation statistics: everything the paper's tables and figures need.

use crate::bpred::BpredStats;
use carf_core::analysis::GroupAccumulator;
use carf_core::{AccessStats, ValueClass};
use carf_mem::HierarchyStats;

/// Source-operand value-type mix over committed instructions that read at
/// least one integer register (paper Table 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperandMix {
    /// All integer source operands were simple.
    pub only_simple: u64,
    /// All were short.
    pub only_short: u64,
    /// All were long.
    pub only_long: u64,
    /// Mixed simple and short.
    pub simple_short: u64,
    /// Mixed simple and long.
    pub simple_long: u64,
    /// Mixed short and long.
    pub short_long: u64,
}

impl OperandMix {
    /// Records one committed instruction's integer operand classes.
    pub fn record(&mut self, classes: &[ValueClass]) {
        if classes.is_empty() {
            return;
        }
        let has = |c: ValueClass| classes.contains(&c);
        let (s, sh, l) = (has(ValueClass::Simple), has(ValueClass::Short), has(ValueClass::Long));
        match (s, sh, l) {
            (true, false, false) => self.only_simple += 1,
            (false, true, false) => self.only_short += 1,
            (false, false, true) => self.only_long += 1,
            (true, true, false) => self.simple_short += 1,
            (true, false, true) => self.simple_long += 1,
            (false, true, true) => self.short_long += 1,
            // Three-way mixes are folded into short+long, the rarest bucket
            // the paper reports.
            (true, true, true) => self.short_long += 1,
            (false, false, false) => {}
        }
    }

    /// Instructions recorded.
    pub fn total(&self) -> u64 {
        self.only_simple
            + self.only_short
            + self.only_long
            + self.simple_short
            + self.simple_long
            + self.short_long
    }

    /// The six fractions in the paper's Table 4 row order.
    pub fn fractions(&self) -> [f64; 6] {
        let t = self.total();
        if t == 0 {
            return [0.0; 6];
        }
        [
            self.only_simple as f64 / t as f64,
            self.only_short as f64 / t as f64,
            self.only_long as f64 / t as f64,
            self.simple_short as f64 / t as f64,
            self.simple_long as f64 / t as f64,
            self.short_long as f64 / t as f64,
        ]
    }

    /// Fraction of instructions whose operands were all of one type (the
    /// paper reports over 86%, motivating value-type clustering).
    pub fn same_type_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (self.only_simple + self.only_short + self.only_long) as f64 / t as f64
    }
}

/// Oracle live-value demographics (paper Figures 1 and 2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleData {
    /// Exact-value grouping (Figure 1).
    pub values: GroupAccumulator,
    /// `(64-8)`-similarity grouping (Figure 2a).
    pub sim_d8: GroupAccumulator,
    /// `(64-12)`-similarity grouping (Figure 2b).
    pub sim_d12: GroupAccumulator,
    /// `(64-16)`-similarity grouping (Figure 2c).
    pub sim_d16: GroupAccumulator,
    /// Mean number of live integer values per snapshot.
    pub live_sum: u64,
    /// Snapshots taken.
    pub snapshots: u64,
}

impl OracleData {
    /// Records one snapshot of the live integer values.
    pub fn record(&mut self, live: &[u64]) {
        if live.is_empty() {
            return;
        }
        self.values.record_values(live);
        self.sim_d8.record_similarity(live, 8);
        self.sim_d12.record_similarity(live, 12);
        self.sim_d16.record_similarity(live, 16);
        self.live_sum += live.len() as u64;
        self.snapshots += 1;
    }

    /// Mean live integer registers per snapshot.
    pub fn mean_live(&self) -> f64 {
        if self.snapshots == 0 {
            0.0
        } else {
            self.live_sum as f64 / self.snapshots as f64
        }
    }
}

/// Where dispatch stalled, by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStalls {
    /// Reorder buffer full.
    pub rob: u64,
    /// No free physical register.
    pub pregs: u64,
    /// Load/store queue full.
    pub lsq: u64,
    /// Issue queue full.
    pub iq: u64,
    /// No branch checkpoint available.
    pub checkpoints: u64,
}

/// Everything measured during one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed conditional branches.
    pub branches: u64,
    /// Committed FP arithmetic operations.
    pub fp_ops: u64,
    /// Instructions fetched (including wrong path).
    pub fetched: u64,
    /// Instructions squashed by recovery.
    pub squashed: u64,
    /// Branch mispredict recoveries.
    pub mispredicts: u64,
    /// Long-file pseudo-deadlock recoveries (should be ~0 with the guard).
    pub deadlock_recoveries: u64,
    /// Cycles issue was stalled by the Long-file guard.
    pub long_guard_stall_cycles: u64,
    /// Source operands supplied by the bypass network.
    pub bypassed_operands: u64,
    /// Source operands read from the register files.
    pub rf_operands: u64,
    /// Source operands satisfied by the hardwired zero register.
    pub zero_operands: u64,
    /// Write-back retries due to a full Long file.
    pub wb_long_retries: u64,
    /// Issue-queue replays caused by load-hit misspeculation.
    pub load_replays: u64,
    /// Memory-dependence violations (optimistic policy only): a store
    /// resolved over a younger already-performed load, forcing a squash.
    pub mem_dep_violations: u64,
    /// Dispatch stall causes.
    pub dispatch_stalls: DispatchStalls,
    /// Table 4 operand mix.
    pub operand_mix: OperandMix,
    /// Oracle demographics (when enabled).
    pub oracle: OracleData,
    /// Branch predictor counters (copied at end of run).
    pub bpred: BpredStats,
    /// Cache hierarchy counters (copied at end of run).
    pub mem: HierarchyStats,
    /// Integer register-file access counters (copied at end of run).
    pub int_rf: AccessStats,
    /// FP register-file access counters (copied at end of run).
    pub fp_rf: AccessStats,
    /// Mean live Long entries (content-aware runs).
    pub long_mean_live: f64,
    /// Peak live Long entries.
    pub long_peak_live: usize,
    /// Mean Short-file occupancy.
    pub short_mean_occupancy: f64,
    /// Sampled Long-file occupancy histogram (`hist[i]` = samples with `i`
    /// live entries; content-aware runs only).
    pub long_occupancy_hist: Vec<u64>,
    /// Committed instructions whose integer result class equaled one of
    /// their integer source classes (paper §6: "the result operand is
    /// typically of the same value type as the source operands").
    pub dest_class_matches: u64,
    /// Committed instructions with an integer destination and at least one
    /// integer register source (denominator for the above).
    pub dest_class_total: u64,
    /// Store-to-load forwards.
    pub stl_forwards: u64,
    /// Integer read-port arbitration denials at issue (the instruction
    /// retries next cycle; port-reduced organizations make this visible).
    pub rf_read_port_denials: u64,
    /// Integer functional-unit acquisition denials (structural pressure).
    pub int_fu_denials: u64,
    /// FP functional-unit acquisition denials.
    pub fp_fu_denials: u64,
    /// Load disambiguation wait events in the LSQ.
    pub lsq_wait_events: u64,
    /// Highest LSQ occupancy reached.
    pub lsq_peak: usize,
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of committed results that shared a value type with one of
    /// their sources (1.0 when nothing qualified).
    pub fn dest_class_match_fraction(&self) -> f64 {
        if self.dest_class_total == 0 {
            0.0
        } else {
            self.dest_class_matches as f64 / self.dest_class_total as f64
        }
    }

    /// Fraction of register source operands that came from bypass rather
    /// than a register-file read (paper Table 2 — zero-register operands
    /// are excluded, as they require neither).
    pub fn bypass_fraction(&self) -> f64 {
        let total = self.bypassed_operands + self.rf_operands;
        if total == 0 {
            0.0
        } else {
            self.bypassed_operands as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_mix_buckets() {
        let mut m = OperandMix::default();
        m.record(&[ValueClass::Simple, ValueClass::Simple]);
        m.record(&[ValueClass::Simple]);
        m.record(&[ValueClass::Short, ValueClass::Short]);
        m.record(&[ValueClass::Long]);
        m.record(&[ValueClass::Simple, ValueClass::Short]);
        m.record(&[ValueClass::Simple, ValueClass::Long]);
        m.record(&[ValueClass::Short, ValueClass::Long]);
        m.record(&[]); // no integer operands: not counted
        assert_eq!(m.total(), 7);
        assert_eq!(m.only_simple, 2);
        assert_eq!(m.only_short, 1);
        assert_eq!(m.only_long, 1);
        assert_eq!(m.simple_short, 1);
        assert_eq!(m.simple_long, 1);
        assert_eq!(m.short_long, 1);
        let f = m.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((m.same_type_fraction() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn ipc_and_bypass_fraction() {
        let s = SimStats {
            cycles: 100,
            committed: 250,
            bypassed_operands: 30,
            rf_operands: 70,
            zero_operands: 1000, // must not affect the fraction
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.bypass_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.bypass_fraction(), 0.0);
        assert_eq!(s.operand_mix.fractions(), [0.0; 6]);
    }

    #[test]
    fn oracle_records_mean_live() {
        let mut o = OracleData::default();
        o.record(&[1, 2, 3, 4]);
        o.record(&[5, 6]);
        assert_eq!(o.snapshots, 2);
        assert!((o.mean_live() - 3.0).abs() < 1e-12);
        o.record(&[]); // ignored
        assert_eq!(o.snapshots, 2);
    }
}
