#[cfg(test)]
mod pipeline_tests {
    use crate::sim::*;
    use carf_core::{CarfParams, Policies};
    use carf_isa::{f, x, Asm};

    const HEAP: u64 = 0x0000_7f3a_8000_0000;

    fn run_with(config: SimConfig, asm: Asm) -> (AnySimulator, SimResult) {
        let program = asm.finish().expect("assembly");
        let mut sim = AnySimulator::new(config, &program);
        let result = sim.run(5_000_000).expect("simulation");
        assert!(result.halted, "program must halt");
        (sim, result)
    }

    fn run(asm: Asm) -> (AnySimulator, SimResult) {
        run_with(SimConfig::test_small(), asm)
    }

    fn sum_loop(n: u64) -> Asm {
        let mut asm = Asm::new();
        asm.li(x(1), 0);
        asm.li(x(2), 1);
        asm.li(x(3), n + 1);
        asm.label("loop");
        asm.add(x(1), x(1), x(2));
        asm.addi(x(2), x(2), 1);
        asm.blt(x(2), x(3), "loop");
        asm.halt();
        asm
    }

    #[test]
    fn straight_line_commits_in_order() {
        let mut asm = Asm::new();
        asm.li(x(1), 5);
        asm.li(x(2), 7);
        asm.add(x(3), x(1), x(2));
        asm.mul(x(4), x(3), x(3));
        asm.halt();
        let (_, r) = run(asm);
        assert_eq!(r.committed, 5);
        assert!(r.cycles > 5); // pipeline fill
    }

    #[test]
    fn cosim_validates_a_long_loop() {
        let (sim, r) = run(sum_loop(500));
        assert_eq!(r.committed, 3 + 3 * 500 + 1);
        assert!(sim.stats().ipc() > 0.5, "ipc = {}", sim.stats().ipc());
    }

    #[test]
    fn branch_predictor_learns_the_loop() {
        let (sim, _) = run(sum_loop(2000));
        assert!(
            sim.stats().bpred.cond_accuracy() > 0.95,
            "accuracy = {}",
            sim.stats().bpred.cond_accuracy()
        );
    }

    #[test]
    fn memory_round_trip_with_forwarding() {
        let mut asm = Asm::new();
        let buf = asm.alloc_bytes_zeroed(256);
        asm.li(x(1), buf);
        asm.li(x(2), 0xdead_beef_1234_5678);
        asm.st(x(2), x(1), 8);
        asm.ld(x(3), x(1), 8); // same-address load: forwarded or from cache
        asm.add(x(4), x(3), x(3));
        asm.st(x(4), x(1), 16);
        asm.halt();
        let (sim, r) = run(asm);
        assert_eq!(r.committed, 7);
        assert!(sim.stats().loads >= 1 && sim.stats().stores >= 2);
    }

    #[test]
    fn store_load_chain_through_memory() {
        // Writes then reads back a small table; catches LSQ/memory ordering
        // bugs under cosim.
        let mut asm = Asm::new();
        let buf = asm.alloc_bytes_zeroed(512);
        asm.li(x(1), buf);
        asm.li(x(2), 0); // i
        asm.li(x(3), 32); // n
        asm.label("fill");
        asm.slli(x(4), x(2), 3);
        asm.add(x(5), x(1), x(4));
        asm.mul(x(6), x(2), x(2));
        asm.st(x(6), x(5), 0);
        asm.addi(x(2), x(2), 1);
        asm.blt(x(2), x(3), "fill");
        asm.li(x(2), 0);
        asm.li(x(7), 0); // sum
        asm.label("read");
        asm.slli(x(4), x(2), 3);
        asm.add(x(5), x(1), x(4));
        asm.ld(x(6), x(5), 0);
        asm.add(x(7), x(7), x(6));
        asm.addi(x(2), x(2), 1);
        asm.blt(x(2), x(3), "read");
        asm.halt();
        let (_, r) = run(asm);
        assert!(r.committed > 64);
    }

    #[test]
    fn function_calls_through_ras() {
        let mut asm = Asm::new();
        asm.li(x(10), 1);
        asm.li(x(20), 0); // call count
        asm.label("main_loop");
        asm.jal(x(31), "double");
        asm.addi(x(20), x(20), 1);
        asm.slti(x(21), x(20), 6);
        asm.bne(x(21), x(0), "main_loop");
        asm.halt();
        asm.label("double");
        asm.add(x(10), x(10), x(10));
        asm.ret(x(31));
        let (_, r) = run(asm);
        assert!(r.halted);
        // 6 iterations of 4 instructions + 6 * 2 callee + prologue/halt.
        assert_eq!(r.committed, 2 + 6 * 4 + 6 * 2 + 1);
    }

    #[test]
    fn fp_pipeline_with_cosim() {
        let mut asm = Asm::new();
        let data = asm.alloc_f64s(&[1.5, 2.5, 3.5, 4.5]);
        asm.li(x(1), data);
        asm.li(x(2), 0);
        asm.li(x(3), 4);
        asm.fld(f(10), x(1), 0);
        asm.label("loop");
        asm.slli(x(4), x(2), 3);
        asm.add(x(5), x(1), x(4));
        asm.fld(f(1), x(5), 0);
        asm.fmul(f(2), f(1), f(1));
        asm.fadd(f(10), f(10), f(2));
        asm.addi(x(2), x(2), 1);
        asm.blt(x(2), x(3), "loop");
        asm.fst(f(10), x(1), 64);
        asm.fcvt_if(x(6), f(10));
        asm.halt();
        let (_, r) = run(asm);
        assert!(r.halted);
    }

    #[test]
    fn division_and_unpipelined_units() {
        let mut asm = Asm::new();
        asm.li(x(1), 1000);
        asm.li(x(2), 7);
        asm.div(x(3), x(1), x(2));
        asm.div(x(4), x(3), x(2));
        asm.div(x(5), x(1), x(0)); // divide by zero convention
        asm.fcvt_fi(f(1), x(1));
        asm.fcvt_fi(f(2), x(2));
        asm.fdiv(f(3), f(1), f(2));
        asm.halt();
        let (_, r) = run(asm);
        assert_eq!(r.committed, 9);
    }

    #[test]
    fn data_dependent_branches_mispredict_and_recover() {
        // Branch on a pseudo-random bit: forces mispredicts and recovery.
        let mut asm = Asm::new();
        asm.li(x(1), 12345); // lcg state
        asm.li(x(2), 0); // taken counter
        asm.li(x(3), 400); // iterations
        asm.li(x(5), 6364136223846793005u64);
        asm.li(x(6), 1442695040888963407u64);
        asm.label("loop");
        asm.mul(x(1), x(1), x(5));
        asm.add(x(1), x(1), x(6));
        asm.srli(x(4), x(1), 61);
        asm.andi(x(4), x(4), 1);
        asm.beq(x(4), x(0), "skip");
        asm.addi(x(2), x(2), 1);
        asm.label("skip");
        asm.addi(x(3), x(3), -1);
        asm.bne(x(3), x(0), "loop");
        asm.halt();
        let (sim, r) = run(asm);
        assert!(r.halted);
        assert!(sim.stats().mispredicts > 10, "mispredicts = {}", sim.stats().mispredicts);
        assert!(sim.stats().squashed > 0);
    }

    #[test]
    fn carf_machine_matches_golden_on_pointer_workload() {
        // Pointer-chasing through a heap-like region: exercises short
        // classification under cosim.
        let mut asm = Asm::new();
        asm.set_data_base(HEAP);
        // A linked ring of 8 nodes, 16 bytes apart.
        let mut nodes = Vec::new();
        for i in 0..8u64 {
            nodes.push(HEAP + ((i + 1) % 8) * 16);
            nodes.push(i * i);
        }
        let mut bytes = Vec::new();
        for w in &nodes {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let head = asm.alloc_data(&bytes);
        asm.li(x(1), head);
        asm.li(x(2), 0); // sum
        asm.li(x(3), 64); // steps
        asm.label("chase");
        asm.ld(x(4), x(1), 8); // payload
        asm.add(x(2), x(2), x(4));
        asm.ld(x(1), x(1), 0); // next pointer
        asm.addi(x(3), x(3), -1);
        asm.bne(x(3), x(0), "chase");
        asm.halt();

        let mut cfg = SimConfig::test_small();
        cfg.regfile = RegFileKind::ContentAware(
            CarfParams { simple_entries: 64, ..CarfParams::paper_default() },
            Policies::default(),
        );
        let (sim, r) = run_with(cfg, asm);
        assert!(r.halted);
        let stats = sim.stats();
        // The pointer values classify as short, the counters as simple.
        assert!(stats.int_rf.writes.short > 0, "{:?}", stats.int_rf.writes);
        assert!(stats.int_rf.writes.simple > 0);
    }

    #[test]
    fn carf_and_baseline_compute_identical_results() {
        for make_cfg in [
            SimConfig::test_small,
            || {
                let mut c = SimConfig::test_small();
                c.regfile = RegFileKind::ContentAware(
                    CarfParams { simple_entries: 64, ..CarfParams::paper_default() },
                    Policies::default(),
                );
                c
            },
        ] {
            let (_, r) = run_with(make_cfg(), sum_loop(300));
            assert_eq!(r.committed, 3 + 3 * 300 + 1);
        }
    }

    #[test]
    fn carf_pays_a_small_ipc_cost() {
        let big_loop = || {
            let mut asm = Asm::new();
            asm.set_data_base(HEAP);
            let buf = asm.alloc_bytes_zeroed(4096);
            asm.li(x(1), buf);
            asm.li(x(2), 0);
            asm.li(x(3), 2000);
            asm.label("loop");
            asm.andi(x(4), x(2), 511);
            asm.slli(x(4), x(4), 3);
            asm.add(x(5), x(1), x(4));
            asm.st(x(2), x(5), 0);
            asm.ld(x(6), x(5), 0);
            asm.add(x(7), x(7), x(6));
            asm.addi(x(2), x(2), 1);
            asm.blt(x(2), x(3), "loop");
            asm.halt();
            asm
        };
        let (_, base) = run_with(SimConfig::test_small(), big_loop());
        let mut cfg = SimConfig::test_small();
        cfg.regfile = RegFileKind::ContentAware(
            CarfParams { simple_entries: 64, ..CarfParams::paper_default() },
            Policies::default(),
        );
        let (_, carf) = run_with(cfg, big_loop());
        assert_eq!(base.committed, carf.committed);
        let rel = carf.ipc / base.ipc;
        // The paper reports ~1.7% loss; structurally anything in (0.7, 1.01]
        // is sane for a small kernel.
        assert!(rel > 0.7 && rel < 1.02, "carf/base ipc = {rel:.3}");
    }

    #[test]
    fn long_file_pressure_stalls_but_stays_correct() {
        // Values drawn from many distinct high-bit regions: mostly long.
        let mut asm = Asm::new();
        asm.li(x(9), 0x0101_0101_0101_0101);
        asm.li(x(1), 0x1234_5678_9abc_def0);
        asm.li(x(3), 200);
        asm.label("loop");
        asm.add(x(1), x(1), x(9));
        asm.add(x(2), x(1), x(9));
        asm.add(x(4), x(2), x(9));
        asm.add(x(5), x(4), x(9));
        asm.addi(x(3), x(3), -1);
        asm.bne(x(3), x(0), "loop");
        asm.halt();

        let mut cfg = SimConfig::test_small();
        cfg.regfile = RegFileKind::ContentAware(
            CarfParams {
                simple_entries: 64,
                // Tight: far fewer Long entries than live long values, so
                // the guard (and possibly the recovery path) must engage.
                long_entries: 16,
                ..CarfParams::paper_default()
            },
            Policies { long_stall_threshold: 8, ..Policies::default() },
        );
        let (sim, r) = run_with(cfg, asm);
        assert!(r.halted);
        assert!(
            sim.stats().long_guard_stall_cycles > 0 || sim.stats().wb_long_retries > 0,
            "expected long-file pressure: {:?} guard cycles, {:?} retries",
            sim.stats().long_guard_stall_cycles,
            sim.stats().wb_long_retries,
        );
    }

    #[test]
    fn bypass_supplies_dependent_chains() {
        let (sim, _) = run(sum_loop(400));
        let stats = sim.stats();
        assert!(stats.bypassed_operands > 0, "dependent ops must bypass");
        assert!(stats.rf_operands > 0, "stable values must read the RF");
        let frac = stats.bypass_fraction();
        assert!(frac > 0.05 && frac < 0.95, "bypass fraction = {frac}");
    }

    #[test]
    fn oracle_sampling_records_live_values() {
        let mut cfg = SimConfig::test_small();
        cfg.oracle_period = Some(4);
        let (sim, _) = run_with(cfg, sum_loop(500));
        let oracle = &sim.stats().oracle;
        assert!(oracle.snapshots > 10);
        assert!(oracle.mean_live() > 4.0, "mean live = {}", oracle.mean_live());
        let f = oracle.values.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_register_operands_are_free() {
        let mut asm = Asm::new();
        asm.li(x(3), 50);
        asm.label("loop");
        asm.add(x(1), x(0), x(0));
        asm.addi(x(3), x(3), -1);
        asm.bne(x(3), x(0), "loop");
        asm.halt();
        let (sim, _) = run(asm);
        assert!(sim.stats().zero_operands > 100);
    }

    #[test]
    fn runaway_program_is_detected() {
        let mut asm = Asm::new();
        asm.li(x(1), 1); // no halt: falls off the end
        let program = asm.finish().unwrap();
        let mut sim = AnySimulator::new(SimConfig::test_small(), &program);
        match sim.run(1_000) {
            Err(SimError::RunawayFetch { .. }) => {}
            other => panic!("expected runaway fetch, got {other:?}"),
        }
    }

    #[test]
    fn instruction_budget_stops_infinite_loops() {
        let mut asm = Asm::new();
        asm.label("spin");
        asm.addi(x(1), x(1), 1);
        asm.j("spin");
        let program = asm.finish().unwrap();
        let mut sim = AnySimulator::new(SimConfig::test_small(), &program);
        let r = sim.run(500).expect("runs fine, just never halts");
        assert!(!r.halted);
        assert!(r.committed >= 500);
    }

    #[test]
    fn table4_operand_mix_is_recorded_for_carf() {
        let mut cfg = SimConfig::test_small();
        cfg.regfile = RegFileKind::ContentAware(
            CarfParams { simple_entries: 64, ..CarfParams::paper_default() },
            Policies::default(),
        );
        let (sim, _) = run_with(cfg, sum_loop(300));
        assert!(sim.stats().operand_mix.total() > 100);
        // A counting loop's operands are overwhelmingly simple.
        assert!(sim.stats().operand_mix.fractions()[0] > 0.5);
    }

    #[test]
    fn paper_configs_run_the_same_program() {
        for cfg in [SimConfig::paper_baseline(), SimConfig::paper_unlimited()] {
            let mut c = cfg;
            c.cosim = true;
            let (_, r) = run_with(c, sum_loop(200));
            assert_eq!(r.committed, 3 + 3 * 200 + 1);
        }
    }
}

#[cfg(test)]
mod timeline_tests {
    use crate::sim::*;
    use carf_isa::{x, Asm};

    #[test]
    fn timeline_records_stage_ordering() {
        let mut asm = Asm::new();
        asm.li(x(1), 3);
        asm.add(x(2), x(1), x(1));
        asm.mul(x(3), x(2), x(2));
        asm.halt();
        let program = asm.finish().unwrap();
        let mut sim = AnySimulator::new(SimConfig::test_small(), &program);
        sim.record_timeline(16);
        sim.run(1_000).unwrap();

        let tl = sim.timeline();
        assert_eq!(tl.len(), 4);
        // Commit order equals program order here.
        for w in tl.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].committed <= w[1].committed);
        }
        // Stage ordering within each executing instruction.
        for t in tl.iter().take(3) {
            assert!(t.dispatched <= t.issued, "{t}");
            assert!(t.issued < t.executed, "{t}");
            assert!(t.executed < t.committed, "{t}");
        }
        // The dependent multiply executes after its source add.
        assert!(tl[2].executed > tl[1].executed);
        // Display formatting carries the disassembly.
        assert!(tl[2].to_string().contains("mul x3, x2, x2"));
    }

    #[test]
    fn timeline_limit_caps_recording() {
        let mut asm = Asm::new();
        asm.li(x(1), 50);
        asm.label("l");
        asm.addi(x(1), x(1), -1);
        asm.bne(x(1), x(0), "l");
        asm.halt();
        let program = asm.finish().unwrap();
        let mut sim = AnySimulator::new(SimConfig::test_small(), &program);
        sim.record_timeline(5);
        sim.run(10_000).unwrap();
        assert_eq!(sim.timeline().len(), 5);
    }

    #[test]
    fn timeline_off_by_default() {
        let mut asm = Asm::new();
        asm.li(x(1), 1);
        asm.halt();
        let program = asm.finish().unwrap();
        let mut sim = AnySimulator::new(SimConfig::test_small(), &program);
        sim.run(100).unwrap();
        assert!(sim.timeline().is_empty());
    }
}

#[cfg(test)]
mod memdep_tests {
    use crate::sim::*;
    use crate::lsq::MemDepPolicy;
    use carf_isa::{x, Asm};

    /// A store whose address depends on a slow divide, followed by a load
    /// to the same location: the optimistic machine reads early and must
    /// detect the violation when the store resolves.
    fn conflict_kernel(iters: u64) -> carf_isa::Program {
        let mut asm = Asm::new();
        let buf = asm.alloc_u64s(&[5, 6, 7, 8]);
        asm.li(x(10), buf);
        asm.li(x(20), iters);
        asm.li(x(9), 24);
        asm.li(x(8), 3);
        asm.label("loop");
        // Slow address: offset = (24 / 3) = 8, known only after the divide.
        asm.div(x(2), x(9), x(8));
        asm.add(x(3), x(10), x(2));
        asm.st(x(20), x(3), 0); // store to buf+8
        asm.ld(x(4), x(10), 8); // load from buf+8: depends on that store
        asm.add(x(1), x(1), x(4));
        asm.addi(x(20), x(20), -1);
        asm.bne(x(20), x(0), "loop");
        asm.halt();
        asm.finish().expect("assembles")
    }

    #[test]
    fn optimistic_policy_detects_and_recovers_violations() {
        let mut cfg = SimConfig::test_small();
        cfg.mem_dep = MemDepPolicy::Optimistic;
        let program = conflict_kernel(100);
        let mut sim = AnySimulator::new(cfg, &program);
        let r = sim.run(1_000_000).expect("cosim-clean despite violations");
        assert!(r.halted);
        assert!(
            sim.stats().mem_dep_violations > 10,
            "expected violations, got {}",
            sim.stats().mem_dep_violations
        );
    }

    #[test]
    fn conservative_policy_never_violates() {
        let mut cfg = SimConfig::test_small();
        cfg.mem_dep = MemDepPolicy::Conservative;
        let program = conflict_kernel(100);
        let mut sim = AnySimulator::new(cfg, &program);
        let r = sim.run(1_000_000).expect("clean");
        assert!(r.halted);
        assert_eq!(sim.stats().mem_dep_violations, 0);
    }

    #[test]
    fn optimistic_policy_speeds_up_independent_loads_behind_slow_stores() {
        // The store's address resolves slowly but never conflicts with the
        // loads: the optimistic machine should not wait for it.
        let kernel = |iters: u64| {
            let mut asm = Asm::new();
            let buf = asm.alloc_u64s(&[1, 2, 3, 4, 5, 6, 7, 8]);
            asm.li(x(10), buf);
            asm.li(x(20), iters);
            asm.li(x(9), 192);
            asm.li(x(8), 4);
            asm.label("loop");
            asm.div(x(2), x(9), x(8)); // 48: slow
            asm.add(x(3), x(10), x(2));
            asm.st(x(20), x(3), 0); // buf+48: disjoint from the loads
            asm.ld(x(4), x(10), 0);
            asm.ld(x(5), x(10), 8);
            asm.add(x(1), x(4), x(5));
            asm.addi(x(20), x(20), -1);
            asm.bne(x(20), x(0), "loop");
            asm.halt();
            asm.finish().expect("assembles")
        };
        let run = |policy: MemDepPolicy| {
            let mut cfg = SimConfig::test_small();
            cfg.mem_dep = policy;
            let mut sim = AnySimulator::new(cfg, &kernel(300));
            sim.run(1_000_000).expect("clean").cycles
        };
        let conservative = run(MemDepPolicy::Conservative);
        let optimistic = run(MemDepPolicy::Optimistic);
        assert!(
            optimistic < conservative,
            "optimistic {optimistic} should beat conservative {conservative}"
        );
    }
}
