//! Commit: in-order retirement, golden-model checking, and per-cycle stall attribution.

use super::*;

impl<R: IntRegFile, T: Tracer> Simulator<R, T> {
    /// Charges the just-finished commit stage's cycle to one
    /// [`StallCause`] bucket, based on what is blocking the ROB head.
    /// Called once per cycle, so the buckets sum to total cycles.
    pub(super) fn classify_cycle(&self, commits: u64) -> StallCause {
        if commits > 0 {
            return StallCause::Commit;
        }
        let Some(head) = self.rob.front() else {
            return StallCause::FrontendEmpty;
        };
        match head.state {
            SlotState::Waiting => {
                let capture = self.now + self.read_stages;
                let ready =
                    head.srcs.iter().all(|src| self.can_capture(*src, capture).is_some());
                if ready {
                    StallCause::IssueStructural
                } else {
                    StallCause::DataDependency
                }
            }
            SlotState::Issued | SlotState::Captured => StallCause::Execute,
            SlotState::WaitDisambig => StallCause::MemDisambig,
            SlotState::WaitData => StallCause::MemData,
            SlotState::WbPending => {
                if head.wb_fail_cycles > 0 {
                    StallCause::LongWriteback
                } else {
                    StallCause::WritebackPort
                }
            }
            SlotState::WbGranted => StallCause::WritebackLatency,
            SlotState::Completed => {
                if head.kind == InstKind::Store {
                    StallCause::StoreCommitPort
                } else {
                    StallCause::Other
                }
            }
        }
    }

    // ----- commit --------------------------------------------------------

    pub(super) fn commit(&mut self) -> Result<(), SimError> {
        for _ in 0..self.config.commit_width {
            // `run_exact`'s instruction-precise brake: stop mid-burst at
            // the requested boundary so the committed architectural state
            // is exactly the one after `commit_limit` instructions.
            if self.commit_limit.is_some_and(|limit| self.stats.committed >= limit) {
                break;
            }
            let ready = match self.rob.front() {
                Some(slot) => match slot.state {
                    SlotState::Completed => true,
                    SlotState::WbGranted => self.now >= slot.wb_done_at,
                    _ => false,
                },
                None => false,
            };
            if !ready {
                break;
            }
            // Stores drain to memory at commit and need a cache port.
            let (is_store, addr) = {
                let slot = self.rob.front().expect("checked above");
                (slot.kind == InstKind::Store, slot.mem_addr)
            };
            if is_store {
                if !self.hier.try_dl1_port() {
                    break;
                }
                let slot = self.rob.front().expect("checked above");
                // A store only reaches `Completed` after address generation
                // set `mem_addr`; a missing address here is a pipeline bug.
                let Some(addr) = addr else {
                    return Err(SimError::Internal {
                        cycle: self.now,
                        detail: format!("store seq {} committing without an address", slot.seq),
                    });
                };
                self.hier.data_access(addr, true);
                let data = slot.src_vals[1];
                match store_bytes(store_width(slot.inst.op)) {
                    8 => self.mem.write_u64(addr, data),
                    4 => self.mem.write_u32(addr, data as u32),
                    _ => self.mem.write_u8(addr, data as u8),
                }
            }

            let slot = self.rob.pop_front().expect("checked above");
            self.check_golden(&slot)?;
            self.retire_bookkeeping(&slot);
            if slot.kind == InstKind::Halt {
                self.halted = true;
                return Ok(());
            }
        }
        Ok(())
    }

    pub(super) fn retire_bookkeeping(&mut self, slot: &Slot) {
        self.stats.committed += 1;
        self.last_commit_cycle = self.now;
        // Architectural PC at the new commit boundary. `actual_next` is
        // resolved by commit time for every kind; `halt` architecturally
        // stays put (matching the functional executor).
        self.commit_next_pc =
            if slot.kind == InstKind::Halt { slot.pc } else { slot.actual_next };
        if T::ENABLED {
            self.tracer.event(TraceEvent::Retire {
                cycle: self.now,
                seq: slot.seq,
                pc: slot.pc,
            });
        }
        if self.timeline.len() < self.timeline_limit {
            self.timeline.push(InstTimeline {
                seq: slot.seq,
                pc: slot.pc,
                text: slot.inst.to_string(),
                dispatched: slot.dispatched_at,
                issued: slot.issued_at,
                executed: slot.executed_at,
                committed: self.now,
            });
        }
        match slot.kind {
            InstKind::Load => self.stats.loads += 1,
            InstKind::Store => self.stats.stores += 1,
            InstKind::Branch => self.stats.branches += 1,
            InstKind::FpAlu | InstKind::FpDiv => self.stats.fp_ops += 1,
            _ => {}
        }
        // Table 4: the value types of this instruction's integer register
        // operands (known by now — producers committed earlier). At most
        // two sources, so a fixed array suffices.
        let mut class_buf = [carf_core::ValueClass::Simple; 2];
        let mut n_classes = 0usize;
        for src in slot.srcs {
            if let Src::Int(p) = src {
                if let Some(c) = self.int_rf.class_of(p as usize) {
                    class_buf[n_classes] = c;
                    n_classes += 1;
                }
            }
        }
        let classes = &class_buf[..n_classes];
        self.stats.operand_mix.record(classes);
        // §6 clustering measurement: does the result's type match a source?
        if let Some(dest) = slot.dest {
            if dest.is_int && !classes.is_empty() {
                if let Some(dc) = self.int_rf.class_of(dest.new as usize) {
                    self.stats.dest_class_total += 1;
                    if classes.contains(&dc) {
                        self.stats.dest_class_matches += 1;
                    }
                }
            }
        }

        if slot.is_mem() {
            self.lsq.pop_commit(slot.seq);
        }
        if let Some(dest) = slot.dest {
            if dest.is_int {
                self.commit_int_rat[dest.arch as usize] = dest.new;
                self.int_rf.release(dest.old as usize);
                self.rename.free_int(dest.old);
                self.int_pregs[dest.old as usize] = PregState::reset();
            } else {
                self.commit_fp_rat[dest.arch as usize] = dest.new;
                self.fp_rf.release(dest.old as usize);
                self.rename.free_fp(dest.old);
                self.fp_pregs[dest.old as usize] = PregState::reset();
            }
        }
        // ROB-interval boundary: drive the Short file's reference-bit
        // aging (paper §3.1: "when the entire ROB is consumed").
        if self.config.rob_interval_commits > 0 {
            self.rob_interval_count += 1;
            if self.rob_interval_count >= self.config.rob_interval_commits {
                self.rob_interval_count = 0;
                self.int_rf.rob_interval_tick();
            }
        }
    }

    pub(super) fn check_golden(&mut self, slot: &Slot) -> Result<(), SimError> {
        let Some(golden) = self.golden.as_mut() else { return Ok(()) };
        let mismatch = |detail: String| SimError::CosimMismatch {
            seq: slot.seq,
            pc: slot.pc,
            detail,
        };
        let outcome = golden
            .step(&self.program)
            .map_err(|e| mismatch(format!("golden model error: {e}")))?;
        let retired = match outcome {
            StepOutcome::Retired(r) => r,
            StepOutcome::Halted => return Err(mismatch("golden model already halted".into())),
        };
        if retired.pc != slot.pc {
            return Err(mismatch(format!(
                "control flow diverged: golden pc {:#x}",
                retired.pc
            )));
        }
        match (slot.dest, retired.int_write, retired.fp_write) {
            (Some(d), Some((r, v)), None) if d.is_int => {
                if r.index() != d.arch as usize || v != slot.result {
                    return Err(mismatch(format!(
                        "int dest x{} = {:#x}, golden x{} = {v:#x}",
                        d.arch, slot.result, r.index()
                    )));
                }
            }
            (Some(d), None, Some((r, v))) if !d.is_int => {
                if r.index() != d.arch as usize || v.to_bits() != slot.result {
                    return Err(mismatch(format!(
                        "fp dest f{} = {:#x}, golden f{} = {:#x}",
                        d.arch,
                        slot.result,
                        r.index(),
                        v.to_bits()
                    )));
                }
            }
            (None, None, None) => {}
            other => {
                return Err(mismatch(format!("write shape mismatch: {other:?}")));
            }
        }
        if slot.is_mem() && retired.mem_addr != slot.mem_addr {
            return Err(mismatch(format!(
                "memory address {:?}, golden {:?}",
                slot.mem_addr, retired.mem_addr
            )));
        }
        Ok(())
    }
}
