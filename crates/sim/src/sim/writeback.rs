//! Writeback: port-arbitrated register-file writes (WR1/WR2 for the content-aware file) and Long pseudo-deadlock recovery triggering.

use super::*;

impl<R: IntRegFile, T: Tracer> Simulator<R, T> {
    // ----- writeback -----------------------------------------------------

    /// Drains the writeback queue under port arbitration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Internal`] if the FP file refuses a write — its
    /// baseline organization guarantees writes cannot stall, so a refusal
    /// is a simulator bug surfaced as an error instead of a panic.
    pub(super) fn writeback(&mut self) -> Result<(), SimError> {
        self.wb_pending.sort_unstable();
        // Swap the pending list into the scratch buffer and refill
        // `wb_pending` with whatever must retry; both allocations persist
        // across cycles.
        std::mem::swap(&mut self.wb_pending, &mut self.seq_scratch);
        let mut recovery: Option<u64> = None;
        for wi in 0..self.seq_scratch.len() {
            let seq = self.seq_scratch[wi];
            let Some(idx) = self.slot_index(seq) else { continue };
            if self.rob[idx].state != SlotState::WbPending {
                continue;
            }
            let dest = self.rob[idx].dest.expect("writeback without a destination");
            let result = self.rob[idx].result;
            if dest.is_int {
                if !self.int_write_ports.try_acquire() {
                    self.wb_pending.push(seq);
                    continue;
                }
                match self.int_rf.try_write(dest.new as usize, result, false) {
                    Ok(class) => {
                        let done = self.now + self.wb_stages;
                        self.rob[idx].state = SlotState::WbGranted;
                        self.rob[idx].wb_done_at = done;
                        self.int_pregs[dest.new as usize].in_rf_at = done;
                        // The register-file path opens: consumers may issue
                        // once their capture cycle reaches `done`.
                        let at = self.now.max(done.saturating_sub(self.read_stages));
                        self.wake_consumers(true, dest.new, at);
                        if T::ENABLED {
                            // `class` is the WR1 type-determination outcome.
                            self.tracer.event(TraceEvent::Writeback {
                                cycle: self.now,
                                seq,
                                class,
                            });
                        }
                    }
                    Err(_) => {
                        self.stats.wb_long_retries += 1;
                        self.rob[idx].wb_fail_cycles += 1;
                        if self.rob[idx].wb_fail_cycles >= LONG_RECOVERY_PATIENCE
                            && recovery.is_none()
                        {
                            recovery = Some(seq);
                        }
                        self.wb_pending.push(seq);
                        if T::ENABLED {
                            self.tracer.event(TraceEvent::WritebackRetry { cycle: self.now, seq });
                        }
                    }
                }
            } else {
                if !self.fp_write_ports.try_acquire() {
                    self.wb_pending.push(seq);
                    continue;
                }
                if self.fp_rf.try_write(dest.new as usize, result, false).is_err() {
                    return Err(SimError::Internal {
                        cycle: self.now,
                        detail: format!("fp writeback refused for preg {}", dest.new),
                    });
                }
                let done = self.now + 1; // the FP file keeps a 1-stage writeback
                self.rob[idx].state = SlotState::WbGranted;
                self.rob[idx].wb_done_at = done;
                self.fp_pregs[dest.new as usize].in_rf_at = done;
                let at = self.now.max(done.saturating_sub(self.read_stages));
                self.wake_consumers(false, dest.new, at);
                if T::ENABLED {
                    self.tracer.event(TraceEvent::Writeback { cycle: self.now, seq, class: None });
                }
            }
        }
        self.seq_scratch.clear();

        // Pseudo-deadlock recovery: the Long file stayed full long enough
        // that commit cannot drain it (younger completed instructions hold
        // every entry). Flush everything younger than the starving write.
        if let Some(seq) = recovery {
            if self.slot_index(seq).is_some_and(|i| i + 1 < self.rob.len()) {
                self.stats.deadlock_recoveries += 1;
                let redirect = self.next_pc_of(seq);
                self.squash_younger_than(seq, SquashReason::LongRecovery);
                self.redirect_fetch(redirect);
            }
        }
        Ok(())
    }

    pub(super) fn next_pc_of(&self, seq: u64) -> u64 {
        let idx = self.slot_index(seq).expect("sequence must be in the ROB");
        let slot = &self.rob[idx];
        if slot.inst.is_control() {
            slot.actual_next
        } else {
            slot.pc + INST_BYTES
        }
    }
}
