//! Issue: event-driven wakeup/select, operand readiness, and port/FU arbitration.

use super::*;

impl<R: IntRegFile, T: Tracer> Simulator<R, T> {
    // ----- wakeup --------------------------------------------------------

    /// Fires the wakeup list of a physical register whose availability
    /// improved: every still-waiting consumer becomes an issue candidate at
    /// cycle `at` (the first cycle the improvement can matter). Consumers
    /// that issued or were squashed are dropped; the rest stay parked for
    /// the register's next event (e.g. the bypass window closing and the
    /// register-file path opening later).
    pub(super) fn wake_consumers(&mut self, is_int: bool, preg: Preg, at: u64) {
        let list = if is_int {
            &mut self.int_consumers[preg as usize]
        } else {
            &mut self.fp_consumers[preg as usize]
        };
        if list.is_empty() {
            return;
        }
        let mut list = std::mem::take(list);
        let mut keep = 0usize;
        for i in 0..list.len() {
            let seq = list[i];
            let waiting = self
                .slot_index(seq)
                .is_some_and(|idx| self.rob[idx].state == SlotState::Waiting);
            if waiting {
                self.wake_wheel.schedule(self.now, at, seq);
                list[keep] = seq;
                keep += 1;
            }
        }
        list.truncate(keep);
        let slot = if is_int {
            &mut self.int_consumers[preg as usize]
        } else {
            &mut self.fp_consumers[preg as usize]
        };
        debug_assert!(slot.is_empty());
        *slot = list;
    }

    /// The earliest cycle `>= from` at which `src` could be captured
    /// (issue at `t` captures at `t + read_stages`), given the operand's
    /// current availability. `None` means no capture is schedulable from
    /// what is known now — the consumer parks on the producer's wakeup
    /// list and a future event (speculative wakeup, load resolution,
    /// completion, or writeback grant) reschedules it.
    pub(super) fn operand_next_cycle(&self, src: Src, from: u64) -> Option<u64> {
        let st = match src {
            Src::None | Src::Zero => return Some(from),
            Src::Int(p) => &self.int_pregs[p as usize],
            Src::Fp(p) => &self.fp_pregs[p as usize],
        };
        let mut best: Option<u64> = None;
        if st.in_rf_at != NEVER {
            best = Some(from.max(st.in_rf_at.saturating_sub(self.read_stages)));
        }
        if st.cap_avail_at != NEVER {
            let t = from.max(st.cap_avail_at.saturating_sub(self.read_stages));
            // The bypass network holds a value for two cycles past its
            // availability (see `can_capture`); if the earliest capture
            // already misses that window, later ones miss it too.
            let feasible = self.full_bypass
                || t + self.read_stages < st.cap_avail_at.saturating_add(2);
            if feasible {
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        }
        best
    }

    /// Schedules the next issue evaluation of a waiting instruction at the
    /// earliest cycle (`>= from`) all of its operands could be captured.
    /// If any operand has no schedulable capture, the instruction is not
    /// queued at all — it is parked on that operand's wakeup list.
    pub(super) fn requeue_waiting(&mut self, seq: u64, srcs: [Src; 2], from: u64) {
        let mut when = from;
        for src in srcs {
            match self.operand_next_cycle(src, from) {
                Some(t) => when = when.max(t),
                None => return,
            }
        }
        self.wake_wheel.schedule(self.now, when, seq);
    }

    // ----- issue ---------------------------------------------------------

    /// Can a source captured at cycle `c` get its value, and from the RF?
    pub(super) fn can_capture(&self, src: Src, c: u64) -> Option<bool> {
        let st = match src {
            Src::None | Src::Zero => return Some(false),
            Src::Int(p) => &self.int_pregs[p as usize],
            Src::Fp(p) => &self.fp_pregs[p as usize],
        };
        if st.in_rf_at <= c {
            Some(true)
        } else if st.cap_avail_at <= c
            && (self.full_bypass || c < st.cap_avail_at.saturating_add(2))
        {
            Some(false)
        } else {
            None
        }
    }

    pub(super) fn issue(&mut self) {
        // The Long-file guard (paper §3.1) stalls issue when free Long
        // entries drop to the threshold. The oldest instruction is exempt:
        // it is the only guaranteed source of forward progress (its commit
        // frees entries), so stalling it too would livelock.
        let guard = self.int_rf.should_stall_issue();
        if guard {
            self.stats.long_guard_stall_cycles += 1;
            if T::ENABLED {
                self.tracer.event(TraceEvent::LongGuard { cycle: self.now });
            }
        }
        let oldest = self.rob.front().map(|s| s.seq);
        let capture_cycle = self.now + self.read_stages;
        // Event-driven candidate set: only instructions woken for this
        // cycle are evaluated, instead of rescanning both issue queues.
        // Sorted (oldest-first, as the scan-based scheduler selected) and
        // deduplicated (an entry may have been woken by several events).
        // Every candidate the cycle cannot issue is rescheduled, so the
        // candidate set always covers what the full rescan would have
        // found ready; evaluating a not-ready entry has no side effects.
        self.issue_cand.clear();
        self.wake_wheel.drain_into(self.now, &mut self.issue_cand);
        if self.issue_cand.is_empty() {
            return;
        }
        self.issue_cand.sort_unstable();
        self.issue_cand.dedup();

        let mut issued = 0usize;
        let mut ci = 0usize;
        while ci < self.issue_cand.len() {
            let seq = self.issue_cand[ci];
            if issued >= self.config.issue_width {
                // Issue width exhausted: everything still pending retries
                // next cycle (the rescan scheduler re-saw it every cycle).
                for wi in ci..self.issue_cand.len() {
                    let s = self.issue_cand[wi];
                    self.wake_wheel.schedule(self.now, self.now + 1, s);
                }
                break;
            }
            ci += 1;
            // Squashed or already-issued wakeups drop out here.
            let Some(idx) = self.slot_index(seq) else { continue };
            if self.rob[idx].state != SlotState::Waiting {
                continue;
            }
            if guard && Some(seq) != oldest {
                self.wake_wheel.schedule(self.now, self.now + 1, seq);
                continue;
            }
            let kind = self.rob[idx].kind;
            let srcs = self.rob[idx].srcs;

            // Operand readiness and RF/bypass routing.
            let mut from_rf = [false; 2];
            let mut ready = true;
            let mut int_reads = 0u32;
            let mut fp_reads = 0u32;
            for (i, src) in srcs.iter().enumerate() {
                match self.can_capture(*src, capture_cycle) {
                    Some(rf) => {
                        // Zero/None sources report `false` but consume
                        // nothing.
                        let needs_port = rf && matches!(src, Src::Int(_) | Src::Fp(_));
                        from_rf[i] = needs_port;
                        if needs_port {
                            match src {
                                // A capture-buffer hit (port-reduced file)
                                // serves this operand without a physical
                                // port; the value is still read from the
                                // register file, so `from_rf` stays set.
                                Src::Int(p) if self.int_rf.capture_buffer_hit(*p as usize) => {}
                                Src::Int(_) => int_reads += 1,
                                Src::Fp(_) => fp_reads += 1,
                                _ => unreachable!(),
                            }
                        }
                    }
                    None => {
                        ready = false;
                        break;
                    }
                }
            }
            if !ready {
                // Re-evaluate at the operands' next possible capture (or
                // park on a producer's wakeup list if none is known).
                self.requeue_waiting(seq, srcs, self.now + 1);
                continue;
            }

            // Register-file read ports at the capture cycle (checked before
            // the FU so a denial leaks nothing past this cycle). Denials
            // are structural: retry next cycle.
            if int_reads > 0 && !self.int_read_ports.try_acquire_n(int_reads) {
                self.stats.rf_read_port_denials += 1;
                self.wake_wheel.schedule(self.now, self.now + 1, seq);
                continue;
            }
            if fp_reads > 0 && !self.fp_read_ports.try_acquire_n(fp_reads) {
                self.wake_wheel.schedule(self.now, self.now + 1, seq);
                continue;
            }

            // Functional unit for the execute stage.
            let exec_start = capture_cycle + 1;
            let duration = match kind {
                InstKind::IntDiv => self.config.div_latency,
                InstKind::FpDiv => self.config.fpdiv_latency,
                _ => 1,
            };
            let pool = match kind {
                InstKind::FpAlu | InstKind::FpDiv => &mut self.fp_fus,
                _ => &mut self.int_fus,
            };
            if !pool.try_acquire(exec_start, duration) {
                self.wake_wheel.schedule(self.now, self.now + 1, seq);
                continue;
            }

            // Selected.
            self.rob[idx].state = SlotState::Issued;
            self.rob[idx].issued_at = self.now;
            self.rob[idx].src_from_rf = from_rf;
            if T::ENABLED {
                self.tracer.event(TraceEvent::Issue { cycle: self.now, seq });
            }
            self.capture_wheel.schedule(self.now, capture_cycle, seq);
            // Speculative wakeup: consumers may be selected against the
            // scheduled completion time of this producer. Loads are woken
            // assuming an L1 hit (address generation + hit latency);
            // consumers that issue on a wrong hit speculation replay from
            // the issue queue at capture.
            if let Some(dest) = self.rob[idx].dest {
                let done = match kind {
                    InstKind::Load => {
                        capture_cycle + 1 + u64::from(self.config.hierarchy.dl1.latency)
                    }
                    _ => capture_cycle + self.exec_latency(kind),
                };
                let bank = if dest.is_int { &mut self.int_pregs } else { &mut self.fp_pregs };
                bank[dest.new as usize].cap_avail_at = done;
                // `done - read_stages` is the first cycle a consumer could
                // be selected against this estimate; it is always at least
                // `now + 1` (a dependent can never issue the same cycle,
                // and this cycle's wakeups have already drained).
                let at = (self.now + 1).max(done.saturating_sub(self.read_stages));
                self.wake_consumers(dest.is_int, dest.new, at);
            }
            match kind {
                InstKind::FpAlu | InstKind::FpDiv => self.fp_iq_len -= 1,
                _ => self.int_iq_len -= 1,
            }
            issued += 1;
        }
    }
}
