//! Recovery: fetch redirect and suffix squash (mispredict, memory-order, Long pseudo-deadlock).

use super::*;

impl<R: IntRegFile, T: Tracer> Simulator<R, T> {
    // ----- recovery --------------------------------------------------------

    pub(super) fn redirect_fetch(&mut self, target: u64) {
        self.fetch_pc = target;
        self.fetch_wild = false;
        self.fetch_resume_at = self.now + 1;
        self.fetch_q.clear();
    }

    /// Squashes every instruction strictly younger than `keep_seq`.
    ///
    /// Cost is proportional to the squashed suffix only: the rename maps
    /// are recovered by undoing each popped rename in reverse program
    /// order (`map[arch] = old` restores what `arch` pointed to before
    /// that rename — after the whole suffix is undone, the maps equal the
    /// committed RAT plus the surviving prefix renames, i.e. exactly what
    /// a forward rebuild from the committed map produces). Surviving
    /// instructions are never visited, and no pending-event list is swept:
    /// squashed sequence numbers — never reused — are dropped lazily when
    /// their ROB lookup or state check fails.
    pub(super) fn squash_younger_than(&mut self, keep_seq: u64, reason: SquashReason) {
        let squashed_before = self.stats.squashed;
        let mut int_map = *self.rename.int_map();
        let mut fp_map = *self.rename.fp_map();
        while matches!(self.rob.back(), Some(s) if s.seq > keep_seq) {
            let slot = self.rob.pop_back().expect("checked above");
            self.stats.squashed += 1;
            if slot.branch_unresolved {
                self.unresolved_branches = self.unresolved_branches.saturating_sub(1);
            }
            if slot.state == SlotState::Waiting {
                if matches!(slot.kind, InstKind::FpAlu | InstKind::FpDiv) {
                    self.fp_iq_len -= 1;
                } else {
                    self.int_iq_len -= 1;
                }
            }
            if let Some(d) = slot.dest {
                if d.is_int {
                    int_map[d.arch as usize] = d.old;
                    self.int_rf.release(d.new as usize);
                    self.rename.free_int(d.new);
                    self.int_pregs[d.new as usize] = PregState::reset();
                } else {
                    fp_map[d.arch as usize] = d.old;
                    self.fp_rf.release(d.new as usize);
                    self.rename.free_fp(d.new);
                    self.fp_pregs[d.new as usize] = PregState::reset();
                }
            }
        }
        self.rename.set_maps(int_map, fp_map);
        self.lsq.squash_after(keep_seq);
        if T::ENABLED {
            self.tracer.event(TraceEvent::Squash {
                cycle: self.now,
                keep_seq,
                squashed: self.stats.squashed - squashed_before,
                reason,
            });
        }
    }
}
