//! Enum dispatch over the monomorphized simulators, for call sites that
//! pick the register-file backend at run time.

use super::*;

/// A [`Simulator`] whose register-file backend is chosen by the
/// [`SimConfig`] at run time.
///
/// The generic `Simulator<R, T>` statically dispatches every register-file
/// access; this facade moves the one dynamic decision — which backend —
/// to construction time, where [`RegFileKind`]-driven harnesses (bench
/// bins, carf-trace, the parallel engine, sweeps) live. Inside a run,
/// each arm is the fully monomorphized machine.
///
/// Adding a backend (e.g. a compressing or port-reduced file) means
/// implementing [`IntRegFile`] + [`RegFileBackend`], extending
/// [`RegFileKind`], and adding an arm here; the pipeline itself is
/// untouched.
///
/// # Example
///
/// ```
/// use carf_core::CarfParams;
/// use carf_isa::{Asm, x};
/// use carf_sim::{AnySimulator, SimConfig};
///
/// let mut asm = Asm::new();
/// asm.li(x(1), 100);
/// asm.label("loop");
/// asm.addi(x(1), x(1), -1);
/// asm.bne(x(1), x(0), "loop");
/// asm.halt();
/// let program = asm.finish()?;
///
/// // Same program on the baseline and the content-aware machine.
/// let base = AnySimulator::new(SimConfig::paper_baseline(), &program).run(10_000)?;
/// let carf = AnySimulator::new(SimConfig::paper_carf(CarfParams::paper_default()), &program)
///     .run(10_000)?;
/// assert!(base.halted && carf.halted);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub enum AnySimulator<T: Tracer = NopTracer> {
    /// The monolithic baseline file.
    Baseline(Box<Simulator<BaselineRegFile, T>>),
    /// The paper's content-aware file.
    ContentAware(Box<Simulator<ContentAwareRegFile, T>>),
    /// The dictionary-compressed file with a full-width overflow bank.
    Compressed(Box<Simulator<CompressedRegFile, T>>),
    /// The read-port-reduced file with an operand-reuse capture buffer.
    PortReduced(Box<Simulator<PortReducedRegFile, T>>),
}

/// Runs `$body` with `$sim` bound to whichever arm is live.
macro_rules! dispatch {
    ($self:expr, $sim:ident => $body:expr) => {
        match $self {
            AnySimulator::Baseline($sim) => $body,
            AnySimulator::ContentAware($sim) => $body,
            AnySimulator::Compressed($sim) => $body,
            AnySimulator::PortReduced($sim) => $body,
        }
    };
}

impl AnySimulator {
    /// Builds an untraced machine with the backend named by
    /// `config.regfile`.
    pub fn new(config: SimConfig, program: &Program) -> Self {
        Self::with_tracer(config, program, NopTracer)
    }

    /// See [`Simulator::from_checkpoint`]; the backend is named by
    /// `config.regfile`.
    ///
    /// # Errors
    ///
    /// As [`Simulator::from_checkpoint`].
    pub fn from_checkpoint(
        config: SimConfig,
        program: &Program,
        ckpt: &Checkpoint,
    ) -> Result<Self, SimError> {
        Ok(match &config.regfile {
            RegFileKind::Baseline => AnySimulator::Baseline(Box::new(
                Simulator::from_checkpoint(config, program, ckpt)?,
            )),
            RegFileKind::ContentAware(..) => AnySimulator::ContentAware(Box::new(
                Simulator::from_checkpoint(config, program, ckpt)?,
            )),
            RegFileKind::Compressed(..) => AnySimulator::Compressed(Box::new(
                Simulator::from_checkpoint(config, program, ckpt)?,
            )),
            RegFileKind::PortReduced(..) => AnySimulator::PortReduced(Box::new(
                Simulator::from_checkpoint(config, program, ckpt)?,
            )),
        })
    }
}

impl<T: Tracer> AnySimulator<T> {
    /// Builds a machine that reports pipeline events to `tracer`, with the
    /// backend named by `config.regfile`.
    pub fn with_tracer(config: SimConfig, program: &Program, tracer: T) -> Self {
        match &config.regfile {
            RegFileKind::Baseline => {
                AnySimulator::Baseline(Box::new(Simulator::with_tracer(config, program, tracer)))
            }
            RegFileKind::ContentAware(..) => {
                AnySimulator::ContentAware(Box::new(Simulator::with_tracer(
                    config, program, tracer,
                )))
            }
            RegFileKind::Compressed(..) => {
                AnySimulator::Compressed(Box::new(Simulator::with_tracer(config, program, tracer)))
            }
            RegFileKind::PortReduced(..) => {
                AnySimulator::PortReduced(Box::new(Simulator::with_tracer(
                    config, program, tracer,
                )))
            }
        }
    }

    /// See [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on co-simulation divergence, watchdog expiry,
    /// runaway fetch, or an internal invariant failure.
    pub fn run(&mut self, max_insts: u64) -> Result<SimResult, SimError> {
        dispatch!(self, sim => sim.run(max_insts))
    }

    /// See [`Simulator::run_exact`].
    ///
    /// # Errors
    ///
    /// As [`AnySimulator::run`].
    pub fn run_exact(&mut self, target: u64) -> Result<SimResult, SimError> {
        dispatch!(self, sim => sim.run_exact(target))
    }

    /// See [`Simulator::arch_checkpoint`].
    pub fn arch_checkpoint(&self) -> Checkpoint {
        dispatch!(self, sim => sim.arch_checkpoint())
    }

    /// See [`Simulator::retired`].
    pub fn retired(&self) -> u64 {
        dispatch!(self, sim => sim.retired())
    }

    /// See [`Simulator::install_warm_state`].
    pub fn install_warm_state(&mut self, warm: &WarmState) {
        dispatch!(self, sim => sim.install_warm_state(warm))
    }

    /// See [`Simulator::step_cycle`].
    ///
    /// # Errors
    ///
    /// As [`AnySimulator::run`].
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        dispatch!(self, sim => sim.step_cycle())
    }

    /// See [`Simulator::stats`].
    pub fn stats(&self) -> &SimStats {
        dispatch!(self, sim => sim.stats())
    }

    /// See [`Simulator::is_halted`].
    pub fn is_halted(&self) -> bool {
        dispatch!(self, sim => sim.is_halted())
    }

    /// See [`Simulator::set_fetch_slot`].
    pub fn set_fetch_slot(&mut self, open: bool) {
        dispatch!(self, sim => sim.set_fetch_slot(open));
    }

    /// See [`Simulator::in_flight`].
    pub fn in_flight(&self) -> usize {
        dispatch!(self, sim => sim.in_flight())
    }

    /// See [`Simulator::attach_shared_l2`].
    pub fn attach_shared_l2(&mut self, handle: carf_mem::SharedL2Handle) {
        dispatch!(self, sim => sim.attach_shared_l2(handle));
    }

    /// See [`Simulator::record_timeline`].
    pub fn record_timeline(&mut self, limit: usize) {
        dispatch!(self, sim => sim.record_timeline(limit));
    }

    /// See [`Simulator::timeline`].
    pub fn timeline(&self) -> &[InstTimeline] {
        dispatch!(self, sim => sim.timeline())
    }

    /// The integer register file, behind the common interface. The
    /// defaulted [`IntRegFile`] hooks (CARF introspection, occupancy
    /// reports, SMT capacity limiting) replace per-backend type escape hatches.
    pub fn int_regfile(&self) -> &dyn IntRegFile {
        dispatch!(self, sim => sim.int_regfile() as &dyn IntRegFile)
    }

    /// Mutable access to the integer register file.
    pub fn int_regfile_mut(&mut self) -> &mut dyn IntRegFile {
        dispatch!(self, sim => sim.int_regfile_mut() as &mut dyn IntRegFile)
    }

    /// See [`Simulator::tracer`].
    pub fn tracer(&self) -> &T {
        dispatch!(self, sim => sim.tracer())
    }

    /// See [`Simulator::tracer_mut`].
    pub fn tracer_mut(&mut self) -> &mut T {
        dispatch!(self, sim => sim.tracer_mut())
    }

    /// See [`Simulator::into_tracer`].
    pub fn into_tracer(self) -> T {
        dispatch!(self, sim => sim.into_tracer())
    }
}

impl<T: Tracer> std::fmt::Debug for AnySimulator<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        dispatch!(self, sim => sim.fmt(f))
    }
}
