//! Execute: completion events, the memory stage, and operand capture.

use super::*;

impl<R: IntRegFile, T: Tracer> Simulator<R, T> {
    // ----- execute -------------------------------------------------------

    pub(super) fn exec_complete(&mut self) {
        let mut seqs = std::mem::take(&mut self.event_scratch);
        debug_assert!(seqs.is_empty());
        self.completion_wheel.drain_into(self.now, &mut seqs);
        for &seq in &seqs {
            // Squashed events (a mid-list branch resolution may flush
            // younger entries) are skipped lazily.
            let Some(idx) = self.slot_index(seq) else { continue };
            match self.rob[idx].state {
                SlotState::Captured => self.finish_execution(seq),
                SlotState::WaitData => self.finish_load(seq),
                _ => {}
            }
        }
        seqs.clear();
        self.event_scratch = seqs;
    }

    pub(super) fn finish_execution(&mut self, seq: u64) {
        let idx = self.slot_index(seq).expect("slot vanished mid-execution");
        let slot = &self.rob[idx];
        let (a, b) = (slot.src_vals[0], slot.src_vals[1]);
        let inst = slot.inst;
        let pc = slot.pc;
        let kind = slot.kind;
        let pred_next = slot.pred_next;

        match kind {
            InstKind::Load | InstKind::Store => {
                let addr = a.wrapping_add(inst.imm as u64);
                self.rob[idx].mem_addr = Some(addr);
                self.lsq.set_addr(seq, addr);
                // The Short file learns computed addresses here, in
                // parallel with the AGU (paper §3.1).
                self.int_rf.observe_address(addr);
                if kind == InstKind::Store {
                    self.lsq.set_store_data(seq, b);
                    self.rob[idx].state = SlotState::Completed;
                    if T::ENABLED {
                        // Address generation done: the store is executed.
                        self.tracer.event(TraceEvent::Execute { cycle: self.now, seq });
                    }
                    // Optimistic disambiguation: a younger load may already
                    // have read stale data for this address — squash from it.
                    if self.config.mem_dep == MemDepPolicy::Optimistic {
                        let size = self.lsq.get(seq).expect("store queued").size;
                        if let Some(victim) = self.lsq.store_violation(seq, addr, size) {
                            self.stats.mem_dep_violations += 1;
                            let target = {
                                let v = self
                                    .slot_index(victim)
                                    .expect("violating load is in flight");
                                self.rob[v].pc
                            };
                            self.squash_younger_than(victim - 1, SquashReason::MemOrder);
                            self.redirect_fetch(target);
                        }
                    }
                } else {
                    self.rob[idx].state = SlotState::WaitDisambig;
                    self.pending_loads.push(seq);
                }
                return;
            }
            _ => {}
        }

        let result: Option<u64> = match kind {
            InstKind::IntAlu | InstKind::IntMul | InstKind::IntDiv => Some(match inst.op {
                Opcode::Fcmplt | Opcode::Fcmpeq | Opcode::FcvtIF => {
                    eval_fp_to_int(inst.op, f64::from_bits(a), f64::from_bits(b))
                }
                Opcode::Li => inst.imm as u64,
                Opcode::Addi
                | Opcode::Andi
                | Opcode::Ori
                | Opcode::Xori
                | Opcode::Slli
                | Opcode::Srli
                | Opcode::Srai
                | Opcode::Slti => eval_int_alu(inst.op, a, inst.imm as u64),
                _ => eval_int_alu(inst.op, a, b),
            }),
            InstKind::FpAlu | InstKind::FpDiv => Some(match inst.op {
                Opcode::FcvtFI => eval_int_to_fp(a).to_bits(),
                _ => eval_fp_alu(inst.op, f64::from_bits(a), f64::from_bits(b)).to_bits(),
            }),
            InstKind::Jump | InstKind::JumpReg => Some(pc + INST_BYTES),
            InstKind::Branch => None,
            InstKind::Nop | InstKind::Halt | InstKind::Load | InstKind::Store => None,
        };

        // Control resolution (may squash everything younger).
        let mut squash_to: Option<u64> = None;
        match kind {
            InstKind::Branch => {
                let taken = eval_branch(inst.op, a, b);
                let actual = if taken { inst.imm as u64 } else { pc + INST_BYTES };
                let mispredicted = actual != pred_next;
                let pred = self.rob[idx]
                    .cond_pred
                    .expect("conditional branch without a prediction token");
                self.bpred.resolve_cond(pred, taken);
                self.rob[idx].actual_next = actual;
                self.rob[idx].branch_unresolved = false;
                self.unresolved_branches = self.unresolved_branches.saturating_sub(1);
                if mispredicted {
                    squash_to = Some(actual);
                }
            }
            InstKind::JumpReg => {
                let actual = a.wrapping_add(inst.imm as u64);
                let mispredicted = actual != pred_next;
                self.bpred.resolve_indirect(pc, actual, mispredicted);
                self.rob[idx].actual_next = actual;
                self.rob[idx].branch_unresolved = false;
                self.unresolved_branches = self.unresolved_branches.saturating_sub(1);
                if mispredicted {
                    squash_to = Some(actual);
                }
            }
            InstKind::Jump => {
                self.rob[idx].actual_next = inst.imm as u64;
            }
            _ => {}
        }

        match result {
            Some(value) => self.complete_with_result(seq, value),
            None => {
                let idx = self.slot_index(seq).expect("slot vanished");
                self.rob[idx].state = SlotState::Completed;
                self.rob[idx].executed_at = self.now;
                if T::ENABLED {
                    self.tracer.event(TraceEvent::Execute { cycle: self.now, seq });
                }
            }
        }

        if let Some(target) = squash_to {
            self.stats.mispredicts += 1;
            self.squash_younger_than(seq, SquashReason::Mispredict);
            self.redirect_fetch(target);
        }
    }

    /// Publishes a computed result: updates the bypass scoreboard and
    /// queues the register write (or completes, for `x0` destinations).
    pub(super) fn complete_with_result(&mut self, seq: u64, value: u64) {
        let idx = self.slot_index(seq).expect("slot vanished");
        self.rob[idx].result = value;
        self.rob[idx].executed_at = self.now;
        if T::ENABLED {
            self.tracer.event(TraceEvent::Execute { cycle: self.now, seq });
        }
        match self.rob[idx].dest {
            Some(dest) => {
                let bank = if dest.is_int { &mut self.int_pregs } else { &mut self.fp_pregs };
                let st = &mut bank[dest.new as usize];
                st.value = value;
                st.cap_avail_at = self.now;
                st.valid = true;
                self.rob[idx].state = SlotState::WbPending;
                self.wb_pending.push(seq);
                // The value is on the bypass network this cycle; waiting
                // consumers can be selected from this cycle's issue stage.
                self.wake_consumers(dest.is_int, dest.new, self.now);
            }
            None => {
                self.rob[idx].state = SlotState::Completed;
            }
        }
    }

    pub(super) fn finish_load(&mut self, seq: u64) {
        let idx = self.slot_index(seq).expect("slot vanished");
        let value = self.rob[idx].load_data;
        self.complete_with_result(seq, value);
    }

    // ----- memory stage --------------------------------------------------

    pub(super) fn memory_stage(&mut self) {
        // Same swap-through-scratch pattern as writeback: loads that cannot
        // start go straight back into `pending_loads`.
        std::mem::swap(&mut self.pending_loads, &mut self.seq_scratch);
        for pi in 0..self.seq_scratch.len() {
            let seq = self.seq_scratch[pi];
            let Some(idx) = self.slot_index(seq) else { continue };
            if self.rob[idx].state != SlotState::WaitDisambig {
                continue;
            }
            let inst = self.rob[idx].inst;
            let addr = self.rob[idx].mem_addr.expect("load in memory stage without address");
            match self.lsq.load_decision_with(seq, self.config.mem_dep) {
                LoadDecision::Forward(raw) => {
                    let v = extend_load(load_width(inst.op), raw);
                    self.rob[idx].load_data = v;
                    self.rob[idx].state = SlotState::WaitData;
                    self.lsq.mark_performed(seq);
                    self.completion_wheel.schedule(self.now, self.now + 1, seq);
                }
                LoadDecision::Memory => {
                    if self.hier.try_dl1_port() {
                        let latency = u64::from(self.hier.data_access(addr, false));
                        let width = load_width(inst.op);
                        let raw = match width {
                            LoadWidth::U64 | LoadWidth::F64 => self.mem.read_u64(addr),
                            LoadWidth::I32 => u64::from(self.mem.read_u32(addr)),
                            LoadWidth::U8 => u64::from(self.mem.read_u8(addr)),
                        };
                        self.rob[idx].load_data = extend_load(width, raw);
                        self.rob[idx].state = SlotState::WaitData;
                        self.lsq.mark_performed(seq);
                        let done = self.now + latency;
                        self.completion_wheel.schedule(self.now, done, seq);
                        // Load-resolution wakeup: the return time is now
                        // known, so dependents may schedule against it.
                        if let Some(dest) = self.rob[idx].dest {
                            let bank = if dest.is_int {
                                &mut self.int_pregs
                            } else {
                                &mut self.fp_pregs
                            };
                            bank[dest.new as usize].cap_avail_at = done;
                            let at = self.now.max(done.saturating_sub(self.read_stages));
                            self.wake_consumers(dest.is_int, dest.new, at);
                        }
                    } else {
                        self.pending_loads.push(seq);
                    }
                }
                LoadDecision::Wait => self.pending_loads.push(seq),
            }
        }
        self.seq_scratch.clear();
        // Any load that could not start this cycle has missed its hit
        // speculation: cancel the optimistic wakeup until it is granted.
        for pi in 0..self.pending_loads.len() {
            if let Some(idx) = self.slot_index(self.pending_loads[pi]) {
                if let Some(dest) = self.rob[idx].dest {
                    let bank =
                        if dest.is_int { &mut self.int_pregs } else { &mut self.fp_pregs };
                    bank[dest.new as usize].cap_avail_at = NEVER;
                }
            }
        }
    }

    // ----- operand capture -----------------------------------------------

    pub(super) fn capture_operands(&mut self) {
        let mut seqs = std::mem::take(&mut self.event_scratch);
        debug_assert!(seqs.is_empty());
        self.capture_wheel.drain_into(self.now, &mut seqs);
        for &seq in &seqs {
            let Some(idx) = self.slot_index(seq) else { continue };
            if self.rob[idx].state != SlotState::Issued {
                continue;
            }
            let srcs = self.rob[idx].srcs;
            let from_rf = self.rob[idx].src_from_rf;
            // Load-hit misspeculation replay: a bypassed operand whose
            // producer has not actually delivered goes back to the issue
            // queue (the select/read effort is wasted, as in hardware).
            let misspeculated = srcs.iter().zip(from_rf.iter()).any(|(src, rf)| {
                !rf && match *src {
                    Src::Int(p) => !self.int_pregs[p as usize].valid,
                    Src::Fp(p) => !self.fp_pregs[p as usize].valid,
                    _ => false,
                }
            });
            if misspeculated {
                self.rob[idx].state = SlotState::Waiting;
                self.stats.load_replays += 1;
                let kind = self.rob[idx].kind;
                // Revoke this instruction's own speculative wakeup — its
                // completion time is unknown again, and leaving the stale
                // estimate would let *its* consumers issue-and-replay every
                // cycle (a replay storm).
                if let Some(dest) = self.rob[idx].dest {
                    let bank =
                        if dest.is_int { &mut self.int_pregs } else { &mut self.fp_pregs };
                    bank[dest.new as usize].cap_avail_at = NEVER;
                }
                if matches!(kind, InstKind::FpAlu | InstKind::FpDiv) {
                    self.fp_iq_len += 1;
                } else {
                    self.int_iq_len += 1;
                }
                // Back in the queue: re-park on every still-unwritten
                // operand (the issue may have dropped this entry from the
                // wakeup lists) and re-evaluate from this cycle's issue
                // stage, exactly when the scan-based scheduler would next
                // have seen it.
                self.register_consumers(seq, srcs);
                self.requeue_waiting(seq, srcs, self.now);
                continue;
            }
            let mut vals = [0u64; 2];
            for (i, src) in srcs.iter().enumerate() {
                vals[i] = match *src {
                    Src::None => 0,
                    Src::Zero => {
                        self.stats.zero_operands += 1;
                        0
                    }
                    Src::Int(p) => {
                        if from_rf[i] {
                            self.stats.rf_operands += 1;
                            self.int_rf.read(p as usize)
                        } else {
                            self.stats.bypassed_operands += 1;
                            debug_assert!(self.int_pregs[p as usize].valid);
                            self.int_pregs[p as usize].value
                        }
                    }
                    Src::Fp(p) => {
                        if from_rf[i] {
                            self.stats.rf_operands += 1;
                            self.fp_rf.read(p as usize)
                        } else {
                            self.stats.bypassed_operands += 1;
                            debug_assert!(self.fp_pregs[p as usize].valid);
                            self.fp_pregs[p as usize].value
                        }
                    }
                };
            }
            self.rob[idx].src_vals = vals;
            self.rob[idx].state = SlotState::Captured;
            let latency = self.exec_latency(self.rob[idx].kind);
            self.completion_wheel.schedule(self.now, self.now + latency, seq);
        }
        seqs.clear();
        self.event_scratch = seqs;
    }

    /// Parks a waiting instruction on the wakeup list of every source
    /// register that has not yet been granted its register-file write:
    /// such a register's availability can still change (speculative
    /// wakeup, revocation, completion, writeback), and each change fires
    /// the list. A source already granted (`in_rf_at` finite) is frozen —
    /// `requeue_waiting` computes its exact readiness, no parking needed.
    pub(super) fn register_consumers(&mut self, seq: u64, srcs: [Src; 2]) {
        for src in srcs {
            match src {
                Src::Int(p) if self.int_pregs[p as usize].in_rf_at == NEVER => {
                    self.int_consumers[p as usize].push(seq);
                }
                Src::Fp(p) if self.fp_pregs[p as usize].in_rf_at == NEVER => {
                    self.fp_consumers[p as usize].push(seq);
                }
                _ => {}
            }
        }
    }

    pub(super) fn exec_latency(&self, kind: InstKind) -> u64 {
        match kind {
            InstKind::IntAlu | InstKind::Branch | InstKind::Jump | InstKind::JumpReg => 1,
            InstKind::IntMul => self.config.mul_latency,
            InstKind::IntDiv => self.config.div_latency,
            InstKind::Load | InstKind::Store => 1, // address generation
            InstKind::FpAlu => self.config.fp_latency,
            InstKind::FpDiv => self.config.fpdiv_latency,
            InstKind::Nop | InstKind::Halt => 1,
        }
    }
}
