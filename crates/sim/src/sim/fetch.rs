//! Fetch: branch prediction, I-cache latency, and the fetch queue.

use super::*;

impl<R: IntRegFile, T: Tracer> Simulator<R, T> {
    // ----- fetch -----------------------------------------------------------

    pub(super) fn fetch(&mut self) -> Result<(), SimError> {
        if self.now < self.fetch_resume_at || self.fetch_wild || self.halted {
            // A wild fetch with nothing in flight to redirect it means the
            // program ran off the end without halting.
            if self.fetch_wild && self.rob.is_empty() && self.fetch_q.is_empty() {
                return Err(SimError::RunawayFetch { pc: self.fetch_pc });
            }
            return Ok(());
        }
        // Arbitrated-away fetch slot (multi-context SMT): skip this cycle
        // without touching the IL1 or the predictor. Checked after the
        // runaway test above so a wild machine is still diagnosed.
        if !self.fetch_gate {
            return Ok(());
        }
        if self.fetch_q.len() >= 4 * self.config.fetch_width {
            return Ok(());
        }
        for i in 0..self.config.fetch_width {
            let pc = self.fetch_pc;
            let Some(idx) = self.program.index_of(pc) else {
                self.fetch_wild = true;
                break;
            };
            if i == 0 {
                let latency = u64::from(self.hier.fetch_latency(pc));
                if latency > 1 {
                    // Instruction-cache miss: the line is being filled;
                    // retry once it arrives.
                    self.fetch_resume_at = self.now + latency;
                    return Ok(());
                }
            }
            let inst = self.program.insts[idx];
            let fallthrough = pc + INST_BYTES;
            let mut cond_pred = None;
            let pred_next = match inst.kind() {
                InstKind::Branch => {
                    let pred = self.bpred.predict_cond(pc);
                    cond_pred = Some(pred);
                    if pred.taken {
                        inst.imm as u64
                    } else {
                        fallthrough
                    }
                }
                InstKind::Jump => {
                    if inst.rd != 0 {
                        self.bpred.push_return(fallthrough);
                    }
                    inst.imm as u64
                }
                InstKind::JumpReg => {
                    let is_return = inst.rd == 0;
                    let target = self.bpred.predict_indirect(pc, is_return);
                    if inst.rd != 0 {
                        self.bpred.push_return(fallthrough);
                    }
                    if target == 0 {
                        fallthrough
                    } else {
                        target
                    }
                }
                _ => fallthrough,
            };
            self.fetch_q.push_back(Fetched {
                inst,
                pc,
                pred_next,
                ready_at: self.now + self.config.frontend_depth,
                cond_pred,
            });
            self.stats.fetched += 1;
            if T::ENABLED {
                self.tracer.event(TraceEvent::Fetch { cycle: self.now, pc });
            }
            if inst.kind() == InstKind::Halt {
                self.fetch_wild = true; // nothing meaningful follows
                break;
            }
            self.fetch_pc = pred_next;
            if pred_next != fallthrough {
                break; // taken control flow ends the fetch group
            }
        }
        Ok(())
    }
}
